"""The paper's primary contribution: the dynamic accelerator middleware.

* :class:`RemoteAccelerator` — the front-end ``ac*`` computation API,
* :class:`Daemon` — the back-end daemon on every accelerator node,
* :class:`ResourceManager` / :class:`ArmClient` — the accelerator resource
  manager and its resource-management API,
* transfer protocols (naive / pipeline) and block-size policies,
* fault injection, and a synchronous session driver for scripts.
"""

from .api import RemoteAccelerator, run_parallel
from .arm import AcceleratorRecord, AcceleratorState, ArmClient, ResourceManager
from .batch import BatchJobRecord, BatchJobSpec, BatchRunner, JobContext
from .collectives import ring_allreduce, ring_broadcast
from .blocksize import (
    AdaptiveBlockPolicy,
    BlockPolicy,
    DEFAULT_TRANSFER,
    FixedBlockPolicy,
    NAIVE_TRANSFER,
    TransferConfig,
    pipeline,
)
from .daemon import Daemon, DaemonStats
from .discovery import (
    Autoscaler,
    AutoscalerPolicy,
    CapabilityReport,
    DiscoveryAgent,
)
from .faults import FaultInjector
from .interface import CapabilitySet, UnsupportedOp, unsupported
from .protocol import (
    AcceleratorHandle,
    BATCHABLE_OPS,
    DEDUP_OPS,
    IDEMPOTENT_OPS,
    Op,
    RETRYABLE_OPS,
    Request,
    Response,
    Status,
    TAG_ARM,
    TAG_REQUEST,
    VirtualAcceleratorHandle,
    data_tag,
    next_request_id,
    reply_tag,
)
from .reliability import (
    DEFAULT_RETRY,
    FailoverConfig,
    FailoverPolicy,
    ResilientAccelerator,
    RetryPolicy,
    TenantAccelerator,
    reliable_rpc,
    tenant_accelerator,
)
from .scheduler import (
    AdmissionController,
    Lease,
    TenantSpec,
    WeightedFairQueue,
    jain_fairness,
)
from .session import SyncSession
from .stream import DEFAULT_MAX_BATCH, Stream, StreamFuture
from .transfer import assemble_chunks, payload_meta, slice_chunks

__all__ = [
    "RemoteAccelerator",
    "run_parallel",
    "BatchRunner",
    "BatchJobSpec",
    "BatchJobRecord",
    "JobContext",
    "Daemon",
    "DaemonStats",
    "ResourceManager",
    "ArmClient",
    "AcceleratorState",
    "AcceleratorRecord",
    "AcceleratorHandle",
    "VirtualAcceleratorHandle",
    "TenantSpec",
    "WeightedFairQueue",
    "AdmissionController",
    "Lease",
    "jain_fairness",
    "TenantAccelerator",
    "tenant_accelerator",
    "FaultInjector",
    "CapabilitySet",
    "UnsupportedOp",
    "unsupported",
    "ring_allreduce",
    "ring_broadcast",
    "DiscoveryAgent",
    "CapabilityReport",
    "Autoscaler",
    "AutoscalerPolicy",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "FailoverPolicy",
    "FailoverConfig",
    "ResilientAccelerator",
    "reliable_rpc",
    "IDEMPOTENT_OPS",
    "RETRYABLE_OPS",
    "DEDUP_OPS",
    "BATCHABLE_OPS",
    "Stream",
    "StreamFuture",
    "DEFAULT_MAX_BATCH",
    "TransferConfig",
    "BlockPolicy",
    "FixedBlockPolicy",
    "AdaptiveBlockPolicy",
    "DEFAULT_TRANSFER",
    "NAIVE_TRANSFER",
    "pipeline",
    "SyncSession",
    "Op",
    "Status",
    "Request",
    "Response",
    "TAG_REQUEST",
    "TAG_ARM",
    "reply_tag",
    "data_tag",
    "next_request_id",
    "payload_meta",
    "slice_chunks",
    "assemble_chunks",
]
