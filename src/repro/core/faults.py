"""Fault injection for the fault-tolerance experiments.

The paper argues (Sect. III-A) that in the dynamic architecture a broken
accelerator no longer takes a compute node down with it.  The injector
models a hardware failure of one accelerator's GPU: the daemon host stays
up (it answers every subsequent request with ``Status.BROKEN``), the ARM
marks the accelerator BROKEN, and the owning compute node sees an
:class:`~repro.errors.AcceleratorFault` on its next operation instead of
losing its own node.
"""

from __future__ import annotations

import typing as _t

from .protocol import Op, Request, Status, TAG_ARM, next_request_id

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster


class FaultInjector:
    """Schedules accelerator failures and repairs on a cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.engine = cluster.engine

    def break_at(self, ac_id: int, at_time: float) -> None:
        """Break accelerator ``ac_id`` at virtual time ``at_time``."""
        daemon = self.cluster.daemons[ac_id]

        def failer():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            daemon.broken = True
            # Hardware monitoring notifies the ARM out of band.
            self._notify_arm(Op.ARM_BREAK, ac_id)
            if False:
                yield  # pragma: no cover

        self.engine.process(failer(), name=f"fault:ac{ac_id}")

    def crash_at(self, ac_id: int, at_time: float,
                 notify_arm: bool = False) -> None:
        """Silently kill accelerator ``ac_id``'s daemon host at ``at_time``.

        Unlike :meth:`break_at` — where the daemon host survives and keeps
        answering ``Status.BROKEN`` — a crashed daemon drops every request
        without replying.  The failure is only observable through client
        deadlines (:class:`~repro.errors.RequestTimeout`) or the ARM's
        heartbeat monitor.  ``notify_arm=True`` models out-of-band hardware
        monitoring that still reports the crash to the ARM.
        """
        daemon = self.cluster.daemons[ac_id]

        def crasher():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            daemon.crashed = True
            if notify_arm:
                self._notify_arm(Op.ARM_BREAK, ac_id)
            if False:
                yield  # pragma: no cover

        self.engine.process(crasher(), name=f"crash:ac{ac_id}")

    def repair_at(self, ac_id: int, at_time: float) -> None:
        """Repair accelerator ``ac_id`` at virtual time ``at_time``."""
        daemon = self.cluster.daemons[ac_id]

        def repairer():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            daemon.broken = False
            daemon.crashed = False
            self._notify_arm(Op.ARM_REPAIR, ac_id)
            if False:
                yield  # pragma: no cover

        self.engine.process(repairer(), name=f"repair:ac{ac_id}")

    # -- discovery-layer injections (chaos scenarios) -------------------
    # These require a cluster built with ``discovery=True`` (it owns the
    # per-accelerator DiscoveryAgents).  Pure state flips are scheduled
    # with Engine.call_at instead of one generator process each.

    def join_at(self, ac_id: int, at_time: float) -> None:
        """Start ``ac_id``'s discovery agent: the node joins the pool."""
        agent = self.cluster.agents[ac_id]
        self.engine.call_at(at_time, lambda: agent.start())

    def leave_at(self, ac_id: int, at_time: float,
                 reason: str | None = "departed") -> None:
        """Gracefully leave the pool (``ARM_LEAVE``) at ``at_time``.

        ``reason=None`` leaves silently — the agent just stops reporting
        and the node ages out via the ARM's TTL sweep instead.
        """
        agent = self.cluster.agents[ac_id]
        self.engine.call_at(at_time, lambda: agent.stop(reason=reason))

    def flap_at(self, ac_id: int, at_time: float, until_time: float,
                half_period_s: float) -> None:
        """Oscillate ``ac_id``'s report stream (heartbeat flapping).

        The agent pauses and resumes every ``half_period_s`` until
        ``until_time``: with a pause longer than the ARM's TTL the node
        is repeatedly evicted and rejoins, churning the pool.
        """
        agent = self.cluster.agents[ac_id]

        def flapper():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            while self.engine.now < until_time:
                agent.pause()
                yield self.engine.timeout(half_period_s)
                agent.resume()
                yield self.engine.timeout(half_period_s)
            agent.resume()

        self.engine.process(flapper(), name=f"flap:ac{ac_id}")

    def slow_at(self, ac_id: int, at_time: float, factor: float,
                until_time: float | None = None) -> None:
        """Make ``ac_id``'s daemon a straggler (software slowdown).

        Every software cost — request handling, mallocs, and crucially
        the discovery report cadence — multiplies by ``factor``; a severe
        straggler ages out of the pool like a crash (gray failure).
        ``until_time`` restores nominal speed.
        """
        daemon = self.cluster.daemons[ac_id]
        self.engine.call_at(at_time,
                            lambda: setattr(daemon, "slow_factor", factor))
        if until_time is not None:
            self.engine.call_at(until_time,
                                lambda: setattr(daemon, "slow_factor", 1.0))

    def partition_at(self, group_a: _t.Sequence[str],
                     group_b: _t.Sequence[str], at_time: float,
                     until_time: float | None = None) -> None:
        """Cut every fabric link between two endpoint-name groups.

        Messages crossing the cut vanish in flight (no error back to the
        sender); ``until_time`` heals the cut.  In-flight drops stay
        dropped — the wire does not retroactively deliver.
        """
        fabric = self.cluster.fabric
        a, b = list(group_a), list(group_b)

        def cut():
            for x in a:
                for y in b:
                    fabric.cut(x, y)

        def heal():
            for x in a:
                for y in b:
                    fabric.heal(x, y)

        self.engine.call_at(at_time, cut)
        if until_time is not None:
            self.engine.call_at(until_time, heal)

    def slow_link_at(self, a: str, b: str, extra_s: float, at_time: float,
                     until_time: float | None = None) -> None:
        """Add ``extra_s`` propagation latency to the ``a``/``b`` link."""
        fabric = self.cluster.fabric
        self.engine.call_at(at_time,
                            lambda: fabric.set_link_delay(a, b, extra_s))
        if until_time is not None:
            self.engine.call_at(until_time,
                                lambda: fabric.set_link_delay(a, b, 0.0))

    def upgrade_at(self, ac_id: int, at_time: float, version: str,
                   downtime_s: float) -> None:
        """One rolling-upgrade step: announce, go down, restart upgraded.

        The daemon leaves gracefully (reason ``upgrade``), is unreachable
        for ``downtime_s`` (requests dropped, live slices lost), then
        restarts advertising ``version`` and rejoins via discovery.
        """
        daemon = self.cluster.daemons[ac_id]
        agent = self.cluster.agents.get(ac_id)

        def take_down():
            if agent is not None:
                agent.stop(reason="upgrade")
            daemon.crashed = True

        def bring_up():
            daemon.restart(version=version)
            if agent is not None:
                agent.start()

        self.engine.call_at(at_time, take_down)
        self.engine.call_at(at_time + downtime_s, bring_up)

    def _notify_arm(self, op: Op, ac_id: int) -> None:
        # The notification is sent from the accelerator's own rank (its
        # management agent); the reply is consumed by a helper process.
        daemon = self.cluster.daemons[ac_id]
        req = Request(op=op, req_id=next_request_id(),
                      reply_to=daemon.rank.index, params={"ac_id": ac_id})
        daemon.rank.isend(self.cluster.arm_rank_index, TAG_ARM, req)

        def consume_reply():
            from .protocol import reply_tag
            msg = yield from daemon.rank.recv(
                source=self.cluster.arm_rank_index, tag=reply_tag(req.req_id))
            resp = msg.payload
            if resp.status not in (Status.OK,):
                raise RuntimeError(f"ARM rejected fault notification: {resp}")

        self.engine.process(consume_reply(), name=f"fault-ack:ac{ac_id}")
