"""Fault injection for the fault-tolerance experiments.

The paper argues (Sect. III-A) that in the dynamic architecture a broken
accelerator no longer takes a compute node down with it.  The injector
models a hardware failure of one accelerator's GPU: the daemon host stays
up (it answers every subsequent request with ``Status.BROKEN``), the ARM
marks the accelerator BROKEN, and the owning compute node sees an
:class:`~repro.errors.AcceleratorFault` on its next operation instead of
losing its own node.
"""

from __future__ import annotations

import typing as _t

from .protocol import Op, Request, Status, TAG_ARM, next_request_id

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster


class FaultInjector:
    """Schedules accelerator failures and repairs on a cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.engine = cluster.engine

    def break_at(self, ac_id: int, at_time: float) -> None:
        """Break accelerator ``ac_id`` at virtual time ``at_time``."""
        daemon = self.cluster.daemons[ac_id]

        def failer():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            daemon.broken = True
            # Hardware monitoring notifies the ARM out of band.
            self._notify_arm(Op.ARM_BREAK, ac_id)
            if False:
                yield  # pragma: no cover

        self.engine.process(failer(), name=f"fault:ac{ac_id}")

    def crash_at(self, ac_id: int, at_time: float,
                 notify_arm: bool = False) -> None:
        """Silently kill accelerator ``ac_id``'s daemon host at ``at_time``.

        Unlike :meth:`break_at` — where the daemon host survives and keeps
        answering ``Status.BROKEN`` — a crashed daemon drops every request
        without replying.  The failure is only observable through client
        deadlines (:class:`~repro.errors.RequestTimeout`) or the ARM's
        heartbeat monitor.  ``notify_arm=True`` models out-of-band hardware
        monitoring that still reports the crash to the ARM.
        """
        daemon = self.cluster.daemons[ac_id]

        def crasher():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            daemon.crashed = True
            if notify_arm:
                self._notify_arm(Op.ARM_BREAK, ac_id)
            if False:
                yield  # pragma: no cover

        self.engine.process(crasher(), name=f"crash:ac{ac_id}")

    def repair_at(self, ac_id: int, at_time: float) -> None:
        """Repair accelerator ``ac_id`` at virtual time ``at_time``."""
        daemon = self.cluster.daemons[ac_id]

        def repairer():
            delay = at_time - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            daemon.broken = False
            daemon.crashed = False
            self._notify_arm(Op.ARM_REPAIR, ac_id)
            if False:
                yield  # pragma: no cover

        self.engine.process(repairer(), name=f"repair:ac{ac_id}")

    def _notify_arm(self, op: Op, ac_id: int) -> None:
        # The notification is sent from the accelerator's own rank (its
        # management agent); the reply is consumed by a helper process.
        daemon = self.cluster.daemons[ac_id]
        req = Request(op=op, req_id=next_request_id(),
                      reply_to=daemon.rank.index, params={"ac_id": ac_id})
        daemon.rank.isend(self.cluster.arm_rank_index, TAG_ARM, req)

        def consume_reply():
            from .protocol import reply_tag
            msg = yield from daemon.rank.recv(
                source=self.cluster.arm_rank_index, tag=reply_tag(req.req_id))
            resp = msg.payload
            if resp.status not in (Status.OK,):
                raise RuntimeError(f"ARM rejected fault notification: {resp}")

        self.engine.process(consume_reply(), name=f"fault-ack:ac{ac_id}")
