"""Robustness layer for the middleware RPC path.

The paper's availability claim (Sect. III-B2, Fig. 3) is that a broken
accelerator must not take its compute node down, and that the ARM can hand
out a replacement at runtime.  This module supplies the client-side
machinery that turns those claims into observable behaviour:

* :class:`RetryPolicy` — per-request virtual-time timeouts with a
  deterministic (jitterless) exponential backoff schedule.  Timed-out
  idempotent operations (see :data:`~repro.core.protocol.RETRYABLE_OPS`)
  are resent under the *same* request id; the daemon's request-id dedup
  cache makes the retries at-most-once for ops with side effects.
* :func:`reliable_rpc` — the shared request/reply engine used by both the
  accelerator front-end and the ARM client.
* :class:`FailoverPolicy` / :class:`FailoverConfig` — what to do when an
  operation fails with :class:`~repro.errors.AcceleratorFault` (the daemon
  answered ``Status.BROKEN``) or :class:`~repro.errors.RequestTimeout`
  (the daemon is unresponsive).
* :class:`ResilientAccelerator` — a front-end wrapper that reports breaks
  to the ARM, allocates a replacement, replays registered kernels and
  re-uploads tracked buffers, then resumes the interrupted operation.

Buffer addresses returned by :class:`ResilientAccelerator` are *virtual*:
stable across failover, translated to the current device addresses on
every call, so application code survives a reallocation without pointer
patching.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

import numpy as np

from ..errors import AcceleratorFault, MiddlewareError, RequestTimeout
from ..mpisim import Phantom, RankHandle
from ..obs.spans import NULL_SPAN, collector_for
from .interface import (
    AcceleratorLifecycle,
    CapabilitySet,
    reinterpret_legacy_peer_transfer,
    release_all,
    unsupported,
)
from .protocol import (
    AcceleratorHandle,
    Op,
    Request,
    Response,
    RETRYABLE_OPS,
    next_request_id,
    reply_tag,
)
from .transfer import as_flat_bytes, payload_meta

if _t.TYPE_CHECKING:  # pragma: no cover
    from .api import RemoteAccelerator
    from .arm import ArmClient


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Timeout and deterministic backoff schedule for middleware RPCs.

    ``timeout_s=None`` (the default) disables deadlines entirely — the
    legacy wait-forever behaviour.  With a timeout set, retryable ops are
    resent up to ``max_attempts`` times; attempt *k* waits
    ``backoff_base_s * backoff_factor**k`` before resending (no jitter, so
    simulations stay deterministic).  Bulk-transfer deadlines get a
    size-proportional allowance on top of ``timeout_s`` assuming at least
    ``transfer_floor_Bps`` of throughput.
    """

    timeout_s: float | None = None
    max_attempts: int = 4
    backoff_base_s: float = 100e-6
    backoff_factor: float = 2.0
    transfer_floor_Bps: float = 100e6

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise MiddlewareError(f"timeout must be positive: {self.timeout_s!r}")
        if self.max_attempts < 1:
            raise MiddlewareError(f"max_attempts must be >= 1: {self.max_attempts!r}")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise MiddlewareError("invalid backoff schedule")
        if self.transfer_floor_Bps <= 0:
            raise MiddlewareError("transfer_floor_Bps must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before resend number ``attempt + 1``."""
        return self.backoff_base_s * self.backoff_factor ** attempt

    def transfer_timeout_s(self, nbytes: int) -> float | None:
        """Deadline for a bulk transfer of ``nbytes`` (None when disabled)."""
        if self.timeout_s is None:
            return None
        return self.timeout_s + nbytes / self.transfer_floor_Bps


#: Timeouts disabled; identical to the pre-reliability behaviour.
DEFAULT_RETRY = RetryPolicy()


def reliable_rpc(rank: RankHandle, dst: int, tag: int, op: Op, params: dict,
                 policy: RetryPolicy, timeout_s: float | None,
                 stats: _t.Any = None, span=None, sub_traces: list | None = None):
    """One request/reply exchange with timeout + retry (generator).

    Posts a single reply receive, then sends the request up to
    ``policy.max_attempts`` times (same request id, ``attempt`` counted
    up) while racing the receive against a fresh deadline per attempt.
    Non-retryable ops get exactly one attempt.  Returns the
    :class:`Response` (``raise_for_status`` is the caller's job); raises
    :class:`RequestTimeout` when every deadline expired.

    ``stats`` may provide ``requests`` / ``timeouts`` integer attributes
    to be incremented (the front-end passes itself).  ``span`` is the
    caller's open trace span: its context rides each request frame and
    timeouts / resends are recorded as span events.  ``sub_traces``
    (MBATCH frames) rides each send too, so retried merged frames keep
    their per-sub-frame span parenting.
    """
    if span is None:
        span = NULL_SPAN
    engine = rank.comm.engine
    req_id = next_request_id()
    rreq = rank.irecv(source=dst, tag=reply_tag(req_id))
    attempts = policy.max_attempts if (timeout_s is not None
                                       and op in RETRYABLE_OPS) else 1
    for attempt in range(attempts):
        if stats is not None:
            stats.requests += 1
        if attempt:
            span.event("retry", attempt=attempt, req_id=req_id)
        rank.isend(dst, tag, Request(op=op, req_id=req_id,
                                     reply_to=rank.index, params=params,
                                     attempt=attempt, trace=span.wire,
                                     sub_traces=sub_traces))
        if timeout_s is None:
            yield rreq.done
            break
        cond, dl = engine.race(rreq.done, timeout_s)
        yield cond
        if rreq.completed:
            if not dl.processed:
                dl.cancel()
            break
        if stats is not None:
            stats.timeouts += 1
        span.event("timeout", attempt=attempt, deadline_s=timeout_s)
        if attempt + 1 < attempts:
            yield engine.timeout(policy.backoff_s(attempt))
            if rreq.completed:  # the straggler reply landed during backoff
                break
    if not rreq.completed:
        raise RequestTimeout(
            f"{op.value} to rank {dst} timed out "
            f"({attempts} attempt(s), {timeout_s:g} s deadline each)")
    resp: Response = rreq.message.payload
    return resp


class FailoverPolicy(enum.Enum):
    """What :class:`ResilientAccelerator` does when an operation faults."""

    #: Surface the fault to the application unchanged.
    FAIL_FAST = "fail_fast"
    #: Wait ``retry_delay_s`` and retry on the same accelerator (for
    #: transient faults that an out-of-band repair will clear).
    RETRY_SAME = "retry_same"
    #: Report the break to the ARM, allocate a replacement, replay state,
    #: and retry there (the paper's dynamic re-assignment).
    REALLOCATE = "reallocate"


@dataclasses.dataclass(frozen=True)
class FailoverConfig:
    """Tuning for :class:`ResilientAccelerator`."""

    policy: FailoverPolicy = FailoverPolicy.REALLOCATE
    #: Recovery attempts per guarded operation before giving up.
    max_failovers: int = 3
    #: RETRY_SAME: wait this long before retrying the same accelerator.
    retry_delay_s: float = 1e-3
    #: REALLOCATE: queue FIFO at the ARM when the pool is empty instead of
    #: failing with :class:`~repro.errors.AllocationError`.
    wait_for_replacement: bool = False
    #: Job label for replacement allocations.
    job: str | None = None

    def __post_init__(self) -> None:
        if self.max_failovers < 0:
            raise MiddlewareError(f"max_failovers must be >= 0: {self.max_failovers!r}")
        if self.retry_delay_s < 0:
            raise MiddlewareError(f"retry_delay_s must be >= 0: {self.retry_delay_s!r}")


class _TrackedBuffer:
    """Host-side shadow of one device buffer, for replay after failover."""

    __slots__ = ("nbytes", "shadow", "meta", "has_real")

    def __init__(self, nbytes: int):
        self.nbytes = nbytes
        self.shadow: np.ndarray | None = None  # lazy uint8 mirror
        self.meta = None                       # (dtype str, shape) of full writes
        self.has_real = False

    def record_write(self, payload: _t.Any, offset: int) -> None:
        flat = as_flat_bytes(payload)
        if flat is None:  # Phantom: timing-only, device holds no data either
            return
        if self.shadow is None:
            self.shadow = np.zeros(self.nbytes, dtype=np.uint8)
        self.shadow[offset:offset + flat.nbytes] = flat
        self.has_real = True
        if offset == 0 and flat.nbytes == self.nbytes:
            self.meta = payload_meta(payload)

    def replay_payload(self) -> _t.Any:
        """The payload to re-upload on a replacement accelerator."""
        if not self.has_real or self.shadow is None:
            return Phantom(self.nbytes)
        if self.meta is not None:
            dtype, shape = self.meta
            return self.shadow.view(np.dtype(dtype)).reshape(shape)
        return self.shadow


#: Virtual-address space handed out by ResilientAccelerator.  Far above any
#: simulated device address so kernel parameters that happen to be small
#: integers can never be mistaken for a buffer reference.
VADDR_BASE = 0x5EED_0000_0000
VADDR_STEP = 0x1_0000


class ResilientAccelerator(AcceleratorLifecycle):
    """Failover-capable front-end over one ARM-assigned accelerator.

    Mirrors the :class:`~repro.core.api.RemoteAccelerator` surface
    (``mem_alloc`` / ``memcpy_h2d`` / ``memcpy_d2h`` / ``kernel_create`` /
    ``kernel_set_args`` / ``kernel_run`` / ``mem_free`` / ``ping``) but:

    * device addresses are virtualized and stay valid across failover;
    * every operation is guarded: on :class:`AcceleratorFault` or
      :class:`RequestTimeout` the configured :class:`FailoverPolicy` runs
      and the operation is retried;
    * REALLOCATE failover reports the break to the ARM, allocates a
      replacement, re-creates registered kernels, re-uploads every tracked
      buffer from its host shadow, and resumes.

    Kernel side effects since the last upload are *not* replayed — device
    state on the replacement equals the last uploaded contents.  Wrap a
    multi-operation sequence with :meth:`run_guarded` to re-run it as a
    unit when a fault interrupts it mid-way.
    """

    def __init__(self, arm: "ArmClient",
                 make_remote: _t.Callable[[AcceleratorHandle], "RemoteAccelerator"],
                 handle: AcceleratorHandle,
                 config: FailoverConfig | None = None):
        self.arm = arm
        self.config = config or FailoverConfig()
        self._make_remote = make_remote
        self._ac = make_remote(handle)
        self._vaddrs = itertools.count()
        self._vmap: dict[int, int] = {}            # vaddr -> device addr
        self._buffers: dict[int, _TrackedBuffer] = {}
        self._kernels: dict[int, str] = {}          # creation order -> name
        self._kernel_args: dict[str, dict] = {}
        #: Failover metrics for the experiments.
        self.failovers = 0
        self._retired_requests = 0   # RPC counters of replaced front-ends
        self._retired_timeouts = 0
        #: Duration of each recovery (fault surfaced -> state replayed).
        self.recovery_latencies: list[float] = []
        #: Absolute virtual time each recovery completed (lets experiments
        #: measure injection-to-recovery, i.e. including detection time).
        self.recovered_at: list[float] = []

    # -- introspection ----------------------------------------------------
    @property
    def current(self) -> "RemoteAccelerator":
        """The underlying front-end currently in use."""
        return self._ac

    @property
    def handle(self) -> AcceleratorHandle:
        return self._ac.handle

    @property
    def engine(self):
        return self._ac.rank.comm.engine

    def _lifecycle_engine(self):
        return self.engine

    @property
    def requests(self) -> int:
        """RPCs sent, aggregated across all front-ends this wrapper used."""
        return self._retired_requests + self._ac.requests

    @property
    def timeouts(self) -> int:
        """Request deadlines that fired, aggregated across front-ends."""
        return self._retired_timeouts + self._ac.timeouts

    def _phys(self, vaddr: int) -> int:
        try:
            return self._vmap[vaddr]
        except KeyError:
            raise MiddlewareError(f"unknown buffer {vaddr:#x}") from None

    def _translate_params(self, params: dict) -> dict:
        return {k: self._vmap.get(v, v) if isinstance(v, int) else v
                for k, v in params.items()}

    # -- the failover guard ----------------------------------------------
    def run_guarded(self, op_factory: _t.Callable[[], _t.Iterator]):
        """Run ``op_factory()`` (a fresh generator per attempt) with failover.

        On :class:`AcceleratorFault` / :class:`RequestTimeout` the failover
        policy runs, then a *new* generator from ``op_factory`` is executed
        against the (possibly replaced) accelerator.  Application-level
        transactions — e.g. one upload/compute/download iteration — go
        through here so the whole unit re-runs on restored state.
        """
        remaining = self.config.max_failovers
        pending: Exception | None = None
        while True:
            try:
                if pending is not None:
                    cause, pending = pending, None
                    yield from self._recover(cause)
                result = yield from op_factory()
                return result
            except (AcceleratorFault, RequestTimeout) as exc:
                # A fault during recovery itself (e.g. the replacement died
                # too) lands here as well and consumes another attempt.
                if (self.config.policy is FailoverPolicy.FAIL_FAST
                        or remaining <= 0):
                    raise
                remaining -= 1
                pending = exc

    def _recover(self, cause: Exception):
        t0 = self.engine.now
        self.failovers += 1
        broken = self._ac.handle
        with collector_for(self.engine).start(
                "failover.recover", f"cn{self._ac.rank.index}",
                cause=type(cause).__name__,
                policy=self.config.policy.value,
                broken=f"ac{broken.ac_id}") as span:
            if self.config.policy is FailoverPolicy.RETRY_SAME:
                if self.config.retry_delay_s > 0:
                    yield self.engine.timeout(self.config.retry_delay_s)
                self.recovery_latencies.append(self.engine.now - t0)
                self.recovered_at.append(self.engine.now)
                return
            # REALLOCATE: acquire a replacement, then replay state onto it.
            replacement = yield from self._reacquire(broken, span)
            self._retired_requests += self._ac.requests
            self._retired_timeouts += self._ac.timeouts
            self._ac = self._make_remote(replacement)
            yield from self._prepare_replacement(span)
            yield from self._replay_state(span)
            self.recovery_latencies.append(self.engine.now - t0)
            self.recovered_at.append(self.engine.now)

    def _reacquire(self, broken: AcceleratorHandle, span):
        """Obtain the replacement handle (generator, policy-specific).

        The whole-device path reports the break to the ARM and allocates
        a fresh accelerator; :class:`TenantAccelerator` overrides this to
        release its revoked lease and lease anew instead.
        """
        yield from self.arm.report_break(broken.ac_id)
        span.event("break_reported", ac=broken.ac_id)
        replacement = yield from self.arm.alloc(
            count=1, wait=self.config.wait_for_replacement,
            job=self.config.job)
        span.event("replacement_assigned", ac=replacement[0].ac_id)
        return replacement[0]

    def _prepare_replacement(self, span):
        """Hook between front-end swap and state replay (generator).

        The whole-device path needs nothing here; lease-based subclasses
        attach the new slice on its daemon before replay can allocate.
        """
        return
        yield  # pragma: no cover - makes this a generator

    def _replay_state(self, span):
        """Re-create buffers and kernels on the replacement (generator).

        Buffers replay from their host shadows in virtual-address order
        and kernels in creation order, so the rebuilt device state is
        bit-identical and deterministic regardless of which operation the
        fault interrupted.
        """
        for vaddr, buf in sorted(self._buffers.items()):
            addr = yield from self._ac.mem_alloc(buf.nbytes)
            self._vmap[vaddr] = addr
            yield from self._ac.memcpy_h2d(addr, buf.replay_payload())
        for _, name in sorted(self._kernels.items()):
            yield from self._ac.kernel_create(name)
            if name in self._kernel_args:
                self._ac.kernel_set_args(
                    name, self._translate_params(self._kernel_args[name]))
        span.set(replayed_buffers=len(self._buffers),
                 replayed_kernels=len(self._kernels))

    # -- the ac* surface --------------------------------------------------
    def mem_alloc(self, nbytes: int):
        """Allocate device memory; returns a failover-stable address."""
        nbytes = int(nbytes)
        addr = yield from self.run_guarded(lambda: self._ac.mem_alloc(nbytes))
        vaddr = VADDR_BASE + next(self._vaddrs) * VADDR_STEP
        self._vmap[vaddr] = addr
        self._buffers[vaddr] = _TrackedBuffer(nbytes)
        return vaddr

    def mem_free(self, vaddr: int):
        self._phys(vaddr)  # validate before touching the wire
        yield from self.run_guarded(
            lambda: self._ac.mem_free(self._phys(vaddr)))
        del self._vmap[vaddr]
        del self._buffers[vaddr]

    def memcpy_h2d(self, dst: int, payload: _t.Any, transfer=None,
                   offset: int = 0, pinned: bool | None = None):
        buf = self._buffers.get(dst)
        if buf is None:
            raise MiddlewareError(f"unknown buffer {dst:#x}")
        yield from self.run_guarded(
            lambda: self._ac.memcpy_h2d(self._phys(dst), payload,
                                        transfer=transfer, offset=offset,
                                        pinned=pinned))
        buf.record_write(payload, offset)

    def memcpy_d2h(self, src: int, nbytes: int, transfer=None,
                   offset: int = 0, pinned: bool | None = None):
        result = yield from self.run_guarded(
            lambda: self._ac.memcpy_d2h(self._phys(src), int(nbytes),
                                        transfer=transfer, offset=offset,
                                        pinned=pinned))
        return result

    def kernel_create(self, name: str):
        yield from self.run_guarded(lambda: self._ac.kernel_create(name))
        self._kernels[len(self._kernels)] = name

    def kernel_set_args(self, name: str, params: dict) -> None:
        """Stage launch parameters (in virtual-address space)."""
        if name not in self._kernels.values():
            raise MiddlewareError(
                f"kernel {name!r} was not created on this accelerator")
        self._kernel_args[name] = dict(params)
        self._ac.kernel_set_args(name, self._translate_params(params))

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True):
        """Launch a kernel; buffer references in ``params`` may be virtual."""
        if params is None:
            params = self._kernel_args.get(name)

        def attempt():
            # Translate per attempt: after a failover the virtual->device
            # mapping has changed and a pre-translated dict would point at
            # the dead accelerator's addresses.
            if params is None:
                result = yield from self._ac.kernel_run(name, real=real)
            else:
                result = yield from self._ac.kernel_run(
                    name, self._translate_params(params), real=real)
            return result

        result = yield from self.run_guarded(attempt)
        return result

    def ping(self, timeout_s: float | None = None):
        result = yield from self.run_guarded(
            lambda: self._ac.ping(timeout_s=timeout_s))
        return result

    def capabilities(self) -> CapabilitySet:
        """Capabilities of the guarded surface.

        ``peer_put`` and ``streams`` are masked off the wrapped backend's
        set: a direct device↔device copy would bypass the host shadows
        this wrapper replays from on failover, and streams pump unbatched
        so each op stays individually guarded.
        """
        return dataclasses.replace(self._ac.capabilities(),
                                   peer_put=False, streams=False)

    def peer_put(self, src: int, nbytes: int, peer: _t.Any, dst: int,
                 *legacy, transfer=None, pinned: bool | None = None):
        """Staged peer copy through the failover guard.

        A *direct* fabric copy would move data accelerator-to-accelerator
        without updating the destination's host shadow, so a later
        failover of either side could not replay it
        (``capabilities().peer_put`` is False).  Instead the bytes bounce
        through this compute node as a guarded D2H + H2D pair — the
        receiving side's ``memcpy_h2d`` records the write into its
        shadow, keeping both replicas replayable.  A peer that cannot
        receive raises the typed :class:`~repro.errors.UnsupportedOp`.
        """
        transfer = reinterpret_legacy_peer_transfer(legacy, transfer)
        if not hasattr(peer, "memcpy_h2d"):
            unsupported("peer_put", self)
        data = yield from self.memcpy_d2h(src, int(nbytes), transfer=transfer,
                                          pinned=pinned)
        yield from peer.memcpy_h2d(dst, data, transfer=transfer,
                                   pinned=pinned)

    def release(self):
        """Free every live (virtual) allocation, with failover guarding."""
        yield from release_all(self, self._vmap)

    def stream(self, max_batch: int | None = None, name: str | None = None):
        """Create an asynchronous command stream over this wrapper.

        Ops pump one at a time through the guarded surface rather than in
        BATCH frames: each op must be individually failover-guarded so a
        mid-frame fault cannot leave half a frame applied to the old
        accelerator and half to its replacement.  The queue/future surface
        is identical to the batching stream.
        """
        from .stream import DEFAULT_MAX_BATCH, Stream
        if max_batch is None:
            max_batch = DEFAULT_MAX_BATCH
        return Stream(self, self.engine, max_batch=max_batch, batching=False,
                      name=name or f"resilient-ac{self._ac.handle.ac_id}-stream")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResilientAccelerator ac{self._ac.handle.ac_id} "
                f"policy={self.config.policy.value} failovers={self.failovers}>")


class TenantAccelerator(ResilientAccelerator):
    """Failover wrapper over one tenant's virtual-accelerator lease.

    The ARM may revoke a lease at any moment to admit a higher-priority
    tenant; the next operation then fails with
    :class:`~repro.errors.AcceleratorFault` (``Status.PREEMPTED`` on the
    wire).  Recovery releases the revoked lease (idempotent), leases a
    fresh virtual accelerator — queueing under the tenant's WFQ weight
    when ``config.wait_for_replacement`` — attaches it on the hosting
    daemon with the granted share and memory quota, and replays tracked
    buffers and kernels from their host shadows, exactly like whole-device
    failover.  The preempted tenant's device state is thereby parked in
    the replay machinery while it waits its turn again.

    Construct via :func:`tenant_accelerator` or directly from an ARM
    ``valloc`` grant; the initial ``VAC_ATTACH`` must have been issued
    (both helpers do).
    """

    def __init__(self, arm: "ArmClient",
                 make_remote: _t.Callable[[AcceleratorHandle], "RemoteAccelerator"],
                 grant: dict, config: FailoverConfig | None = None):
        super().__init__(arm, make_remote, grant["vac"], config=config)
        self.tenant: str = grant["vac"].tenant
        self._grant = grant
        #: Leases this wrapper lost to preemption and survived.
        self.preemptions_survived = 0

    def _reacquire(self, broken, span):
        # The revoked lease is already torn down server-side; vrelease
        # acknowledges it (and is a plain release if the fault was a
        # timeout rather than a preemption).
        yield from self.arm.vrelease(broken)
        span.event("lease_released", vac=broken.vac_id)
        self._grant = yield from self.arm.valloc(
            self.tenant, wait=self.config.wait_for_replacement,
            job=self.config.job)
        handle = self._grant["vac"]
        span.event("lease_reacquired", vac=handle.vac_id, ac=handle.ac_id)
        self.preemptions_survived += 1
        return handle

    def _prepare_replacement(self, span):
        # The new slice must exist on its daemon before replay allocates.
        yield from self._ac.vac_attach(share=self._grant["share"],
                                       mem_quota=self._grant["mem_quota"])
        span.event("lease_attached", vac=self._grant["vac"].vac_id)

    def release_lease(self):
        """Detach the slice and return the lease to the ARM (generator)."""
        try:
            yield from self._ac.vac_detach()
        except AcceleratorFault:
            # Already revoked daemon-side; the ARM release below settles it.
            pass
        yield from self.arm.vrelease(self._ac.handle)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TenantAccelerator {self.tenant!r} "
                f"vac{self._ac.handle.vac_id} "
                f"preemptions={self.preemptions_survived}>")


def tenant_accelerator(arm: "ArmClient",
                       make_remote: _t.Callable[[AcceleratorHandle], "RemoteAccelerator"],
                       tenant: str, config: FailoverConfig | None = None,
                       wait: bool = True, job: str | None = None):
    """Lease and attach a virtual accelerator for ``tenant`` (generator).

    Performs the full acquisition handshake — ARM ``valloc`` then daemon
    ``VAC_ATTACH`` — and returns a ready :class:`TenantAccelerator`.
    """
    grant = yield from arm.valloc(tenant, wait=wait, job=job)
    ac = TenantAccelerator(arm, make_remote, grant, config=config)
    # Guarded: a VAC_REVOKE can race ahead of this very first attach (the
    # ARM preempts or loses the device before the daemon ever saw the
    # lease).  The daemon answers PREEMPTED and the guard reacquires a
    # fresh lease instead of surfacing a fault for a session that never
    # started.  After a recovery the replacement slice is already
    # attached, so re-running the attempt is an idempotent re-attach.
    yield from ac.run_guarded(
        lambda: ac.current.vac_attach(share=ac._grant["share"],
                                      mem_quota=ac._grant["mem_quota"]))
    return ac
