"""The unified accelerator interface all backends conform to.

Three front-ends drive accelerators in this library — the paper's remote
middleware path (:class:`~repro.core.api.RemoteAccelerator`), the static
node-attached baseline (:class:`~repro.baselines.local.LocalAccelerator`),
and the failover wrapper
(:class:`~repro.core.reliability.ResilientAccelerator`).  Workloads are
written once against :class:`AcceleratorAPI` and measured on any of them;
the conformance suite (``tests/core/test_interface_conformance.py``)
asserts the same op program produces identical results on all three.

Canonical signatures (the drifted per-backend spellings are reconciled
behind deprecation shims, not removed):

* ``memcpy_h2d(dst, payload, transfer=None, offset=0, pinned=None)`` and
  ``memcpy_d2h(src, nbytes, transfer=None, offset=0, pinned=None)`` —
  every backend accepts both the remote path's ``transfer``
  (:class:`~repro.core.blocksize.TransferConfig`) and the local path's
  per-call ``pinned`` override; backends ignore what has no meaning for
  them (a local copy has no network protocol).
* ``peer_put(src, nbytes, peer, dst, *, transfer=None, pinned=None)`` —
  unified across all backends in the P2P redesign.  The fourth parameter
  was historically called ``peer_addr`` and ``transfer`` was positional;
  both old spellings keep working for one release behind
  :func:`reinterpret_legacy_peer_transfer` (a ``DeprecationWarning``, same
  policy as the ``pinned`` shim).  Backends without a native fabric path
  stage the transfer through host memory (D2H + H2D) instead of raising,
  *provided* the peer can participate; an unusable peer still raises the
  typed :class:`~repro.errors.UnsupportedOp`.
* Capability negotiation: ``capabilities()`` returns a frozen
  :class:`CapabilitySet` so callers branch on a query up front instead of
  catching :class:`~repro.errors.UnsupportedOp` after the fact.  Direct
  calls to an unsupported op still raise the typed error — the query and
  the raise must agree (the conformance suite checks this).
* Every backend is a context manager: ``with`` synchronizes and releases
  live allocations on exit (see :class:`AcceleratorLifecycle`).
"""

from __future__ import annotations

import dataclasses
import typing as _t
import warnings

from ..errors import UnsupportedOp


@dataclasses.dataclass(frozen=True)
class CapabilitySet:
    """What one accelerator front-end can actually do.

    * ``peer_put`` — native device↔device path over the fabric (daemon
      forwards directly to the peer daemon).  ``False`` means a call to
      ``peer_put`` degrades to a staged host copy when the peer exposes
      ``memcpy_h2d``, and raises :class:`~repro.errors.UnsupportedOp`
      otherwise.
    * ``streams`` — ``stream()`` coalesces control ops into BATCH frames
      (``False``: streams exist but execute eagerly, no batching).
    * ``zero_copy`` — the data plane hands out :class:`ChunkView` loans
      instead of materialised copies.
    * ``fabric`` — operations traverse the simulated network fabric (and
      therefore appear in fabric byte/message accounting).
    """

    peer_put: bool = False
    streams: bool = False
    zero_copy: bool = False
    fabric: bool = False


@_t.runtime_checkable
class AcceleratorAPI(_t.Protocol):
    """Structural type of one accelerator front-end (the ``ac*`` surface).

    All operations except ``kernel_set_args`` are generators to be driven
    inside a simulation process (or through
    :class:`~repro.core.session.SyncSession`).
    """

    def mem_alloc(self, nbytes: int) -> _t.Iterator: ...

    def mem_free(self, addr: int) -> _t.Iterator: ...

    def memcpy_h2d(self, dst: int, payload: _t.Any,
                   transfer: _t.Any = None, offset: int = 0,
                   pinned: bool | None = None) -> _t.Iterator: ...

    def memcpy_d2h(self, src: int, nbytes: int,
                   transfer: _t.Any = None, offset: int = 0,
                   pinned: bool | None = None) -> _t.Iterator: ...

    def kernel_create(self, name: str) -> _t.Iterator: ...

    def kernel_set_args(self, name: str, params: dict) -> None: ...

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True) -> _t.Iterator: ...

    def ping(self) -> _t.Iterator: ...

    def capabilities(self) -> "CapabilitySet": ...

    def peer_put(self, src: int, nbytes: int, peer: _t.Any,
                 dst: int, *, transfer: _t.Any = None,
                 pinned: bool | None = None) -> _t.Iterator: ...

    def stream(self, max_batch: int | None = None,
               name: str | None = None) -> _t.Any: ...

    def release(self) -> _t.Iterator: ...

    def __enter__(self) -> "AcceleratorAPI": ...

    def __exit__(self, exc_type, exc, tb) -> bool: ...


class AcceleratorLifecycle:
    """Context-manager lifecycle shared by every backend.

    ``with ac:`` releases all live allocations on exit by driving the
    backend's :meth:`release` generator.  Two execution contexts work:

    * plain scripts (the engine is idle): the cleanup runs synchronously,
      advancing the shared virtual clock like a
      :class:`~repro.core.session.SyncSession` call would;
    * inside a simulation process (the engine is running): the cleanup is
      spawned as a background process and completes as the simulation
      advances — ``with`` cannot block there, because ``__exit__`` is not
      a generator.

    After a with-body exception, cleanup failures are swallowed so they
    never mask the original error; on the clean path they propagate.

    Subclasses provide ``_lifecycle_engine()`` and ``release()``.
    """

    def _lifecycle_engine(self):
        raise NotImplementedError  # pragma: no cover - abstract

    def release(self) -> _t.Iterator:
        raise NotImplementedError  # pragma: no cover - abstract

    def close(self) -> None:
        """Free live allocations (drives :meth:`release`, see above)."""
        engine = self._lifecycle_engine()
        proc = engine.process(self.release(), name=f"release:{self!r}")
        if not getattr(engine, "_running", False):
            engine.run(until=proc)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.close()
        except Exception:
            if exc_type is None:
                raise
            # Unwinding from a with-body failure already: a cleanup error
            # (e.g. the accelerator broke mid-body) must not mask it.
        return False


def release_all(ac, live: _t.Iterable[int]) -> _t.Iterator:
    """Free every address in ``live`` (a shared ``release()`` body).

    Addresses are freed in insertion order; ``live`` is snapshotted first
    because ``mem_free`` mutates the backend's live-set as it goes.
    """
    for addr in list(live):
        yield from ac.mem_free(addr)


def unsupported(op: str, backend: _t.Any) -> _t.NoReturn:
    """Raise the typed capability error for an optional op."""
    raise UnsupportedOp(op, type(backend).__name__)


def reinterpret_legacy_pinned(transfer: _t.Any, pinned: bool | None,
                              method: str) -> tuple[_t.Any, bool | None]:
    """Deprecation shim for the pre-unification LocalAccelerator order.

    ``LocalAccelerator.memcpy_*`` used to take ``pinned`` as its third
    parameter where the unified signature puts ``transfer``; a bool
    arriving in the ``transfer`` slot is old calling code.  Warn and
    reinterpret instead of breaking it.
    """
    if isinstance(transfer, bool):
        warnings.warn(
            f"{method}: passing 'pinned' positionally is deprecated — the "
            f"unified AcceleratorAPI signature is "
            f"{method}(..., transfer=None, offset=0, pinned=None); "
            f"use the pinned= keyword",
            DeprecationWarning, stacklevel=3)
        return None, transfer if pinned is None else pinned
    return transfer, pinned


def reinterpret_legacy_peer_transfer(legacy: tuple, transfer: _t.Any,
                                     method: str = "peer_put") -> _t.Any:
    """Deprecation shim for the pre-redesign ``peer_put`` call shape.

    ``peer_put`` used to take ``transfer`` as a fifth positional
    parameter; the unified surface makes it keyword-only (matching
    ``memcpy_*``).  One release of grace: a fifth positional argument is
    reinterpreted as ``transfer`` with a ``DeprecationWarning``, after
    which the shim is removed and the call becomes a ``TypeError``.
    """
    if not legacy:
        return transfer
    if len(legacy) > 1:
        raise TypeError(
            f"{method}() takes 4 positional arguments "
            f"(src, nbytes, peer, dst) but {4 + len(legacy)} were given")
    warnings.warn(
        f"{method}: passing 'transfer' positionally is deprecated — the "
        f"unified AcceleratorAPI signature is "
        f"{method}(src, nbytes, peer, dst, *, transfer=None, pinned=None); "
        f"use the transfer= keyword (shim removed next release)",
        DeprecationWarning, stacklevel=3)
    if transfer is not None:
        raise TypeError(f"{method}() got 'transfer' both positionally "
                        f"and as a keyword")
    return legacy[0]


#: Methods every backend must expose; the conformance suite checks this
#: list against :class:`AcceleratorAPI` so the two cannot drift.
API_METHODS = (
    "mem_alloc", "mem_free", "memcpy_h2d", "memcpy_d2h",
    "kernel_create", "kernel_set_args", "kernel_run",
    "ping", "capabilities", "peer_put", "stream", "release",
    "__enter__", "__exit__",
)
