"""Collective operations over the accelerator pool: ring allreduce and
ring broadcast.

The paper's workloads move data strictly host↔device; with the P2P data
plane (``peer_put`` daemon→daemon forwarding) the classic ring
collectives become expressible: each device talks only to its ring
neighbour, so every transfer crosses at most the trunk segments between
adjacent devices — on a topology-aware placement, usually zero.

Both collectives run in two modes sharing one schedule:

* ``mode="p2p"`` — transfers go device-direct over the fabric
  (``peer_put``), never touching the driving compute node;
* ``mode="staged"`` — the historical two-hop path (D2H to the compute
  node, H2D to the peer), the oracle the P2P path must match
  bit-identically.

Bit-identity holds because the *schedule* fixes the accumulation order:
reduce-scatter steps are barrier-separated and chunk ``c`` is summed
sequentially along the ring, so the float64 additions associate the same
way regardless of transport timing.

Addresses are passed as per-device chunk tables (``chunks[i][c]`` =
address of chunk ``c`` on device ``i``); chunks are separate allocations
because the daemon's ``PEER_PUT`` path copies whole allocations from
offset 0.
"""

from __future__ import annotations

import typing as _t

from ..errors import MiddlewareError
from .api import run_parallel

#: Kernel used to accumulate a received chunk into the local one.
_REDUCE_KERNEL = "daxpy"


def _put(ac, src: int, nbytes: int, peer, dst: int, mode: str):
    """One peer transfer in the requested mode (generator)."""
    if mode == "p2p":
        yield from ac.peer_put(src, nbytes, peer, dst)
    elif mode == "staged":
        data = yield from ac.memcpy_d2h(src, nbytes)
        yield from peer.memcpy_h2d(dst, data)
    else:
        raise MiddlewareError(f"unknown collective mode {mode!r}")


def ring_allreduce(engine, acs: _t.Sequence, chunks: _t.Sequence[_t.Sequence[int]],
                   scratch: _t.Sequence[int], chunk_nbytes: int,
                   elements: int, mode: str = "p2p"):
    """Sum-allreduce across ``len(acs)`` devices (generator).

    Every device starts with its own values in all ``N`` of its chunks
    and ends with every chunk holding the element-wise sum over devices.
    ``chunks[i][c]`` is chunk ``c``'s address on device ``i``;
    ``scratch[i]`` is a receive buffer of ``chunk_nbytes`` on device
    ``i``; ``elements`` is the float64 count per chunk.

    Standard two-phase ring schedule (2·(N−1) steps): reduce-scatter
    leaves device ``i`` holding the complete sum of chunk ``(i+1) % N``,
    then allgather circulates the completed chunks.  Total bytes on the
    wire per device: ``2 · (N-1) · chunk_nbytes``.
    """
    n = len(acs)
    if n == 0:
        raise MiddlewareError("allreduce over an empty device list")
    if len(chunks) != n or any(len(row) != n for row in chunks):
        raise MiddlewareError(f"need an {n}x{n} chunk table")
    if len(scratch) != n:
        raise MiddlewareError("need one scratch buffer per device")
    if n == 1:
        return
    yield from run_parallel(
        engine, [ac.kernel_create(_REDUCE_KERNEL) for ac in acs])

    # Phase 1: reduce-scatter.  At step s device i forwards chunk
    # (i - s) % n to its successor's scratch; the successor folds the
    # received values into its own copy of that chunk.
    for s in range(n - 1):
        def _step(i: int, s: int = s):
            j = (i + 1) % n
            c = (i - s) % n
            yield from _put(acs[i], chunks[i][c], chunk_nbytes,
                            acs[j], scratch[j], mode)
            yield from acs[j].kernel_run(_REDUCE_KERNEL, {
                "x": scratch[j], "y": chunks[j][c],
                "n": elements, "alpha": 1.0})
        yield from run_parallel(engine, [_step(i) for i in range(n)])

    # Phase 2: allgather.  Completed chunks circulate; receivers
    # overwrite in place (no reduction kernel).
    for s in range(n - 1):
        def _gather(i: int, s: int = s):
            j = (i + 1) % n
            c = (i + 1 - s) % n
            yield from _put(acs[i], chunks[i][c], chunk_nbytes,
                            acs[j], chunks[j][c], mode)
        yield from run_parallel(engine, [_gather(i) for i in range(n)])


def ring_broadcast(engine, acs: _t.Sequence,
                   chunks: _t.Sequence[_t.Sequence[int]], chunk_nbytes: int,
                   root: int = 0, mode: str = "p2p"):
    """Copy the root's chunks to every device around the ring (generator).

    A pipeline-free store-and-forward ring: hop ``k`` copies all chunks
    from device ``(root+k-1) % N`` to ``(root+k) % N`` (chunks move in
    parallel within a hop).  N−1 hops; each crosses one ring edge only,
    which is what makes it topology-friendly.
    """
    n = len(acs)
    if n == 0:
        raise MiddlewareError("broadcast over an empty device list")
    if not 0 <= root < n:
        raise MiddlewareError(f"broadcast root {root} out of range 0..{n - 1}")
    for k in range(1, n):
        i = (root + k - 1) % n
        j = (root + k) % n
        yield from run_parallel(engine, [
            _put(acs[i], chunks[i][c], chunk_nbytes, acs[j], chunks[j][c],
                 mode)
            for c in range(len(chunks[i]))])
