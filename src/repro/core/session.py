"""Synchronous driver for scripts and examples.

Inside the simulation, middleware calls are generators driven by processes.
:class:`SyncSession` lets plain Python code (the examples, notebooks, quick
experiments) call them sequentially: each call spins the engine until the
operation completes and returns its value, advancing the shared virtual
clock.
"""

from __future__ import annotations

import typing as _t

from ..errors import ProcessInterrupt, RequestTimeout
from ..obs.spans import collector_for
from ..sim import Engine


class SyncSession:
    """Runs middleware generators to completion on a shared engine."""

    def __init__(self, engine: Engine):
        self.engine = engine

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now

    def call(self, generator: _t.Iterator, name: str | None = None,
             timeout_s: float | None = None) -> _t.Any:
        """Run one operation to completion; returns its result.

        With ``timeout_s`` the whole call is raced against a virtual-time
        deadline: if it has not finished in time the process is interrupted
        and :class:`~repro.errors.RequestTimeout` is raised.
        """
        proc = self.engine.process(generator, name=name or "sync-call")
        if timeout_s is None:
            return self.engine.run(until=proc)
        cond, dl = self.engine.race(proc, timeout_s)
        self.engine.run(until=cond)  # re-raises if the process failed
        if proc.triggered:
            if not dl.processed:
                dl.cancel()
            return proc.value
        proc.interrupt("sync-call deadline")
        try:
            self.engine.run(until=proc)
        except ProcessInterrupt:
            pass
        # The interrupted operation may have died between span open and
        # close (e.g. mid-transfer); don't leak its spans into the export.
        collector_for(self.engine).abort_open("sync-call deadline")
        raise RequestTimeout(
            f"sync call {proc.name!r} exceeded its {timeout_s:g} s deadline")

    def parallel(self, generators: _t.Sequence[_t.Iterator]) -> list[_t.Any]:
        """Run several operations concurrently; returns their results.

        The first failure propagates annotated with which branches failed
        (see :func:`~repro.core.api.run_parallel`).
        """
        from .api import _annotate_parallel_failure
        procs = [self.engine.process(g) for g in generators]
        if not procs:
            return []
        try:
            self.engine.run(until=self.engine.all_of(procs))
        except Exception as exc:
            _annotate_parallel_failure(exc, procs)
            collector_for(self.engine).abort_open(
                f"parallel branch failed: {type(exc).__name__}")
            raise
        return [p.value for p in procs]

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds``."""
        self.engine.run(until=self.engine.now + seconds)
