"""Batch execution on the dynamic cluster: jobs, nodes, and the ARM.

Sect. V-B describes the production flow: "a user would specify the number
of accelerators requested per node in his or her batch script.  The job
would start once the requested number of compute and accelerator nodes
becomes available" — the static assignment strategy, with availability
maximized because no job holds more accelerators than it uses.

:class:`BatchRunner` implements exactly that on a live simulated cluster:
each submitted job waits for a free compute node and its requested
accelerator count (FIFO through the ARM), runs its body with ready-made
:class:`~repro.core.api.RemoteAccelerator` front-ends, and releases
everything on completion — including on failure.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..errors import AllocationError
from ..obs.spans import collector_for
from ..sim import Event, Store
from .api import RemoteAccelerator

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster


@dataclasses.dataclass
class JobContext:
    """What a running job's body receives."""

    cluster: "Cluster"
    cn_index: int
    accelerators: list[RemoteAccelerator]

    @property
    def engine(self):
        return self.cluster.engine

    @property
    def rank(self):
        return self.cluster.compute_rank(self.cn_index)

    @property
    def cpu(self):
        return self.cluster.compute_nodes[self.cn_index].cpu


#: A job body: a generator function taking the JobContext.
JobBody = _t.Callable[[JobContext], _t.Iterator]


@dataclasses.dataclass(frozen=True)
class BatchJobSpec:
    """One batch submission."""

    name: str
    body: JobBody
    n_accelerators: int = 1
    arrival_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_accelerators < 0:
            raise AllocationError("negative accelerator request")
        if self.arrival_s < 0:
            raise AllocationError("negative arrival time")


@dataclasses.dataclass
class BatchJobRecord:
    """Outcome of one batch job."""

    spec: BatchJobSpec
    cn_index: int
    start_s: float
    end_s: float
    result: _t.Any = None
    error: BaseException | None = None

    @property
    def wait_s(self) -> float:
        return self.start_s - self.spec.arrival_s

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchRunner:
    """FIFO batch execution over a cluster's nodes and accelerator pool."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.engine = cluster.engine
        self._free_nodes = Store(self.engine)
        for i in range(len(cluster.compute_nodes)):
            self._free_nodes.put(i)
        self.records: list[BatchJobRecord] = []

    def submit(self, spec: BatchJobSpec) -> Event:
        """Queue a job; the returned event fires with its BatchJobRecord."""
        if spec.n_accelerators > len(self.cluster.accelerator_nodes):
            raise AllocationError(
                f"job {spec.name!r} wants {spec.n_accelerators} accelerators, "
                f"the pool has {len(self.cluster.accelerator_nodes)}")
        done = self.engine.event()
        self.engine.process(self._run(spec, done), name=f"batch:{spec.name}")
        return done

    def _run(self, spec: BatchJobSpec, done: Event):
        if self.engine.now < spec.arrival_s:
            yield self.engine.timeout(spec.arrival_s - self.engine.now)
        # 1. Wait for a compute node, then for the accelerators (FIFO at
        #    the ARM) — the "job starts once ... available" semantics.
        cn_index = yield self._free_nodes.get()
        arm = self.cluster.arm_client(cn_index)
        handles: list = []
        start = self.engine.now
        result, error = None, None
        try:
            if spec.n_accelerators:
                handles = yield from arm.alloc(count=spec.n_accelerators,
                                               wait=True, job=spec.name)
            ctx = JobContext(
                cluster=self.cluster,
                cn_index=cn_index,
                accelerators=[self.cluster.remote(cn_index, h)
                              for h in handles],
            )
            start = self.engine.now
            result = yield from spec.body(ctx)
        except Exception as exc:
            error = exc
        # 2. Release everything, success or not.  The release itself can
        #    fail (the node broke mid-job, the ARM rejected the handles);
        #    the compute node must go back to the FIFO regardless, so
        #    queued jobs acquire it and fail (or run) deterministically on
        #    their own allocations instead of stranding forever.
        if handles:
            try:
                yield from arm.release(handles)
            except Exception as exc:
                if error is None:
                    error = exc
        if error is not None:
            # A body (or release) that died mid-operation leaves client
            # and daemon spans open; close them so trace exports stay
            # well-formed.
            collector_for(self.engine).abort_open(
                f"batch job {spec.name!r} failed: {type(error).__name__}")
        yield self._free_nodes.put(cn_index)
        record = BatchJobRecord(spec=spec, cn_index=cn_index, start_s=start,
                                end_s=self.engine.now, result=result,
                                error=error)
        self.records.append(record)
        done.succeed(record)

    def run_all(self, specs: _t.Sequence[BatchJobSpec]) -> list[BatchJobRecord]:
        """Submit a set of jobs and run the cluster until all complete."""
        events = [self.submit(s) for s in specs]
        self.engine.run(until=self.engine.all_of(events))
        return [ev.value for ev in events]
