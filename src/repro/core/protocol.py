"""Wire protocol between middleware front-ends, daemons, and the ARM.

Every middleware operation follows the paper's two-message pattern
(Sect. IV): the front-end sends a :class:`Request`, the back-end replies
with a :class:`Response` carrying an error code and optional value.  Bulk
payloads travel as separate data messages on a per-request data tag so that
concurrent operations from one front-end to one daemon never interleave.

Tag layout (all below the simulated-MPI collective tag space):

* ``TAG_REQUEST`` — requests to accelerator daemons,
* ``TAG_ARM`` — requests to the accelerator resource manager,
* ``reply_tag(req_id)`` — the unique response tag of one request,
* ``data_tag(req_id)`` — the unique bulk-data tag of one request.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

from ..errors import ProtocolError

TAG_REQUEST = 100
TAG_ARM = 101

_REPLY_BASE = 10_000
_REPLY_SPAN = 290_000
_DATA_BASE = 300_000
_DATA_SPAN = 700_000

#: Global request-id source; uniqueness only matters per (src, dst) pair
#: and per in-flight window, which this amply provides.
_req_ids = itertools.count(1)


def next_request_id() -> int:
    return next(_req_ids)


def reset_request_ids() -> None:
    """Restart the request-id stream at 1 (for test harnesses).

    Control frames are sized by pickling and a pickled int grows with
    its magnitude, so *absolute* virtual times are only comparable
    across two independently built rigs when both draw the same id
    sequence.  The A/B identity harness resets before each run;
    production code never calls this.
    """
    global _req_ids
    _req_ids = itertools.count(1)


def reply_tag(req_id: int) -> int:
    return _REPLY_BASE + (req_id % _REPLY_SPAN)


def data_tag(req_id: int) -> int:
    return _DATA_BASE + (req_id % _DATA_SPAN)


class Op(enum.Enum):
    """Middleware operation codes (the ``ac*`` API, Listing 2)."""

    MEM_ALLOC = "mem_alloc"
    MEM_FREE = "mem_free"
    MEMCPY_H2D = "memcpy_h2d"
    MEMCPY_D2H = "memcpy_d2h"
    KERNEL_CREATE = "kernel_create"
    KERNEL_RUN = "kernel_run"
    PEER_PUT = "peer_put"         # direct accelerator-to-accelerator copy
    PING = "ping"
    BATCH = "batch"               # several control ops in one frame
    MBATCH = "mbatch"             # several *merged* sub-frames in one frame
    SHUTDOWN = "shutdown"
    # ARM operations:
    ARM_ALLOC = "arm_alloc"
    ARM_RELEASE = "arm_release"
    ARM_STATUS = "arm_status"
    ARM_BREAK = "arm_break"
    ARM_REPAIR = "arm_repair"
    # Multi-tenant ARM operations:
    ARM_TENANT = "arm_tenant"       # register a tenant spec with the ARM
    ARM_VALLOC = "arm_valloc"       # lease a virtual accelerator
    ARM_VRELEASE = "arm_vrelease"   # return a virtual accelerator
    # Daemon-side virtual-accelerator lifecycle:
    VAC_ATTACH = "vac_attach"       # instantiate the lease on the device
    VAC_DETACH = "vac_detach"       # tear the slice down, free its memory
    VAC_REVOKE = "vac_revoke"       # ARM-initiated preemption notice
    # Resource discovery (daemon -> ARM, one-way):
    ARM_REPORT = "arm_report"       # periodic capability/health report
    ARM_LEAVE = "arm_leave"         # graceful departure from the pool


#: Ops whose handler is safe to re-execute on a duplicate request: probes,
#: validations, and read-only transfers.
IDEMPOTENT_OPS = frozenset({
    Op.PING,
    Op.KERNEL_CREATE,
    Op.MEMCPY_D2H,
    Op.ARM_STATUS,
    Op.ARM_BREAK,
    Op.ARM_REPAIR,
    Op.ARM_TENANT,      # re-registering a tenant spec overwrites in place
    Op.VAC_REVOKE,      # revoking an already-revoked slice is a no-op
    Op.ARM_REPORT,      # reports carry full state; replays refresh in place
    Op.ARM_LEAVE,       # leaving an already-left pool is a no-op
})

#: Ops the client may automatically resend (same request id) after a
#: timeout.  PING / KERNEL_CREATE / the ARM probes are naturally
#: idempotent; MEM_ALLOC is retried safely because the daemon's
#: request-id dedup cache replays the first allocation's address instead
#: of allocating twice.
RETRYABLE_OPS = frozenset({
    Op.PING,
    Op.MEM_ALLOC,
    Op.KERNEL_CREATE,
    Op.BATCH,
    Op.MBATCH,
    Op.ARM_STATUS,
    Op.ARM_BREAK,
    Op.ARM_REPAIR,
    Op.ARM_TENANT,
    Op.VAC_ATTACH,      # dedup-cached by the daemon (see DEDUP_OPS)
    Op.VAC_DETACH,
})

#: Non-idempotent daemon ops that get at-most-once protection through the
#: daemon's request-id dedup cache: a duplicate request replays the cached
#: response instead of mutating device state again.
DEDUP_OPS = frozenset({
    Op.MEM_ALLOC,
    Op.MEM_FREE,
    Op.MEMCPY_H2D,
    Op.KERNEL_RUN,
    Op.PEER_PUT,
    Op.BATCH,
    Op.MBATCH,
    Op.VAC_ATTACH,
    Op.VAC_DETACH,
})

#: Control ops a :class:`~repro.core.stream.Stream` may coalesce into one
#: :data:`Op.BATCH` frame.  Bulk transfers are excluded: their data blocks
#: travel on per-request tags and must keep their own frames.  A retried
#: batch is at-most-once because BATCH is in :data:`DEDUP_OPS` — the daemon
#: replays the recorded sub-responses instead of re-executing the ops.
BATCHABLE_OPS = frozenset({
    Op.PING,
    Op.MEM_ALLOC,
    Op.MEM_FREE,
    Op.KERNEL_CREATE,
    Op.KERNEL_RUN,
})


class Status(enum.IntEnum):
    """Response error codes."""

    OK = 0
    ERROR = 1
    BROKEN = 2          # the accelerator hardware has failed
    UNAVAILABLE = 3     # ARM: not enough free accelerators
    DENIED = 4          # ARM: invalid release / ownership violation
    PREEMPTED = 5       # the virtual accelerator's lease was revoked


@dataclasses.dataclass
class Request:
    """A front-end request.  ``params`` must be small and picklable."""

    op: Op
    req_id: int
    reply_to: int                      # rank to answer
    params: dict = dataclasses.field(default_factory=dict)
    #: Retry attempt number (0 = first send).  Resends keep the same
    #: ``req_id`` so the receiver can deduplicate.
    attempt: int = 0
    #: Span context ``(trace_id, span_id)`` of the front-end operation
    #: this request belongs to, or None when tracing is off.  The daemon
    #: opens its spans as children of this context so one remote op
    #: decomposes across client and server on a single trace id.
    trace: tuple[int, int] | None = None
    #: For :data:`Op.MBATCH` frames only: one span context (or None) per
    #: merged sub-frame, so the daemon parents each sub-frame's spans under
    #: its *originating* stream's trace rather than the carrier frame's.
    sub_traces: list | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.op, Op):
            raise ProtocolError(f"op must be an Op, got {self.op!r}")
        if self.req_id <= 0:
            raise ProtocolError(f"invalid request id: {self.req_id!r}")
        if self.reply_to < 0:
            raise ProtocolError(f"invalid reply rank: {self.reply_to!r}")
        if self.attempt < 0:
            raise ProtocolError(f"invalid attempt number: {self.attempt!r}")
        if self.trace is not None and (
                not isinstance(self.trace, tuple) or len(self.trace) != 2):
            raise ProtocolError(f"invalid trace context: {self.trace!r}")

    def wire_sized(self) -> "Request":
        """The frame as measured for transfer-time accounting.

        The span contexts (frame-level and per-sub-frame) are out-of-band
        observability metadata: they must not change the simulated wire
        size, or enabling tracing would perturb the virtual timeline
        (tracing on/off is asserted to be bit-identical).
        """
        if self.trace is None and self.sub_traces is None:
            return self
        return dataclasses.replace(self, trace=None, sub_traces=None)


@dataclasses.dataclass
class Response:
    """A back-end response to one request."""

    req_id: int
    status: Status
    value: _t.Any = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == Status.OK

    def raise_for_status(self) -> None:
        """Raise the library exception matching a failure status."""
        if self.status == Status.OK:
            return
        from ..errors import AcceleratorFault, AllocationError, MiddlewareError
        if self.status == Status.BROKEN:
            raise AcceleratorFault(self.error or "accelerator failed")
        if self.status == Status.PREEMPTED:
            # A revoked lease looks like a device fault to the caller so
            # the resilience layer's reacquire-and-replay path kicks in.
            raise AcceleratorFault(self.error or "virtual accelerator preempted")
        if self.status in (Status.UNAVAILABLE, Status.DENIED):
            raise AllocationError(self.error or self.status.name)
        raise MiddlewareError(self.error or f"request {self.req_id} failed")


@dataclasses.dataclass(frozen=True)
class AcceleratorHandle:
    """Opaque handle identifying one exclusively assigned accelerator.

    The front-end passes it to every ``ac*`` call, exactly like the
    ``ac_handle`` parameter in the paper's Listing 2.
    """

    ac_id: int
    daemon_rank: int

    def __post_init__(self) -> None:
        if self.ac_id < 0 or self.daemon_rank < 0:
            raise ProtocolError("invalid accelerator handle")


@dataclasses.dataclass(frozen=True)
class VirtualAcceleratorHandle:
    """Handle to one leased *virtual* accelerator.

    Carries the physical coordinates (``ac_id`` / ``daemon_rank``) so the
    existing request routing works unchanged, plus the lease identity
    (``vac_id`` / ``tenant``) that the daemon uses to resolve the slice.
    A preempted lease keeps its handle; operations on it answer
    :data:`Status.PREEMPTED` until the tenant re-allocates.
    """

    vac_id: int
    ac_id: int
    daemon_rank: int
    tenant: str

    def __post_init__(self) -> None:
        if self.vac_id <= 0 or self.ac_id < 0 or self.daemon_rank < 0:
            raise ProtocolError("invalid virtual accelerator handle")
        if not self.tenant:
            raise ProtocolError("virtual accelerator handle needs a tenant")

    def physical(self) -> AcceleratorHandle:
        """The physical handle this lease is multiplexed onto."""
        return AcceleratorHandle(ac_id=self.ac_id, daemon_rank=self.daemon_rank)
