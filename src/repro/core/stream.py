"""Asynchronous command streams with RPC batching.

The synchronous ``ac*`` API pays two MPI messages per operation (Sect. IV),
so control-heavy sequences like ``acKernelCreate -> acKernelSetArgs ->
acKernelRun`` serialize on network round trips even while the GPU idles.
A :class:`Stream` removes that cost the way rCUDA-style remote-GPU stacks
do: operations are *queued* and return :class:`StreamFuture` handles
immediately; a per-stream pump process drains the queue in FIFO order and
coalesces consecutive small control ops (see
:data:`~repro.core.protocol.BATCHABLE_OPS`) into a single
:data:`~repro.core.protocol.Op.BATCH` request frame — one round trip
instead of N.  Bulk transfers keep their own frames (their data blocks
travel on per-request tags) but still overlap with work on *other*
streams, because every stream pumps in its own simulation process.

Ordering and failure semantics follow CUDA streams:

* ops within one stream execute strictly in queue order (the pump issues
  one frame at a time and the simulated-MPI layer is non-overtaking per
  (source, destination) pair);
* ops on different streams may interleave arbitrarily;
* the first failing op fails its future, aborts everything queued behind
  it, and leaves the stream in a sticky error state that
  :meth:`Stream.synchronize` re-raises.

Retries are safe: a whole batch frame travels under one request id and
``Op.BATCH`` is in :data:`~repro.core.protocol.DEDUP_OPS`, so a timed-out
frame that is resent replays the daemon's recorded sub-responses instead
of re-executing the ops — at-most-once, exactly like the single-op path.

A future may be passed *as a parameter* to a later op on any stream (a
``mem_alloc`` future as a copy destination, or inside a ``kernel_run``
parameter dict).  The pump resolves it before issuing; if it is still
pending — e.g. the alloc sits in an earlier frame of the same stream —
the pump flushes up to it and waits, so data dependencies are honoured
without the caller ever blocking.
"""

from __future__ import annotations

import collections
import typing as _t

from ..errors import MiddlewareError
from ..obs.spans import collector_for
from ..sim import Engine, Event
from .protocol import BATCHABLE_OPS, Op

#: Largest number of control ops coalesced into one BATCH frame.  Bounded
#: so one frame's daemon-side execution cannot starve interleaved streams
#: and a lost frame retries a bounded amount of work.
DEFAULT_MAX_BATCH = 16


class StreamFuture:
    """Deferred result of one queued stream operation.

    ``result()`` is valid once the op completed (after a
    :meth:`Stream.synchronize`, or whenever :attr:`done` turns True); a
    pending or failed future raises.  Futures can also be passed as
    parameters to later stream ops — the pump resolves them in order.
    """

    __slots__ = ("stream", "label", "_event")

    def __init__(self, stream: "Stream", label: str):
        self.stream = stream
        self.label = label
        self._event = Event(stream.engine)

    @property
    def done(self) -> bool:
        """True once the op has completed (successfully or not)."""
        return self._event.triggered

    @property
    def ok(self) -> bool:
        """True once the op completed successfully."""
        return self._event.triggered and self._event.ok

    def result(self) -> _t.Any:
        """The op's return value; raises its error if it failed."""
        if not self._event.triggered:
            raise MiddlewareError(
                f"stream op {self.label!r} has not completed — "
                f"synchronize the stream first")
        if not self._event.ok:
            raise self._event.value
        return self._event.value

    def wait(self):
        """Block (generator) until this op completes; returns its value."""
        if not self._event.processed:
            yield self._event
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("pending" if not self._event.triggered
                 else "ok" if self._event.ok else "failed")
        return f"<StreamFuture {self.label} {state}>"


class _QueuedOp:
    """One queued operation: how to issue it, and its future."""

    __slots__ = ("op", "method", "args", "kwargs", "future", "local")

    def __init__(self, op: Op | None, method: str, args: tuple, kwargs: dict,
                 future: StreamFuture, local: bool = False):
        self.op = op              # protocol op when batchable, else None
        self.method = method      # front-end method name for the solo path
        self.args = args
        self.kwargs = kwargs
        self.future = future
        self.local = local        # no RPC at all (kernel_set_args)

    def pending_futures(self) -> list[StreamFuture]:
        """Unresolved futures among this op's parameters."""
        out: list[StreamFuture] = []
        _collect_pending(self.args, out)
        _collect_pending(self.kwargs, out)
        return out


def _collect_pending(value: _t.Any, out: list[StreamFuture]) -> None:
    if isinstance(value, StreamFuture):
        if not value.done:
            out.append(value)
    elif isinstance(value, dict):
        for v in value.values():
            _collect_pending(v, out)
    elif isinstance(value, (list, tuple)):
        for v in value:
            _collect_pending(v, out)


def _resolve(value: _t.Any) -> _t.Any:
    """Replace completed futures with their results, recursively."""
    if isinstance(value, StreamFuture):
        return value.result()
    if isinstance(value, dict):
        return {k: _resolve(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_resolve(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_resolve(v) for v in value)
    return value


class Stream:
    """An in-order asynchronous command queue over one accelerator front-end.

    Works over any front-end exposing the ``ac*`` generator surface
    (:class:`~repro.core.api.RemoteAccelerator`,
    :class:`~repro.baselines.local.LocalAccelerator`,
    :class:`~repro.core.reliability.ResilientAccelerator`).  Batching is
    used when the front-end provides ``batch_rpc`` (the remote middleware
    path); otherwise ops are pumped one at a time, which keeps workload
    code backend-agnostic.

    Obtain streams through the front-ends' ``stream()`` factories rather
    than constructing directly.
    """

    def __init__(self, ac: _t.Any, engine: Engine,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 batching: bool | None = None, name: str = "stream",
                 coalescer: _t.Any = None):
        if max_batch < 1:
            raise MiddlewareError(f"max_batch must be >= 1: {max_batch!r}")
        if coalescer is not None and not hasattr(ac, "coalesced_rpc"):
            raise MiddlewareError(
                f"front-end {type(ac).__name__} cannot use a coalescer "
                f"(no coalesced_rpc)")
        self.ac = ac
        self.engine = engine
        self.max_batch = max_batch
        self.batching = (batching if batching is not None
                         else hasattr(ac, "batch_rpc"))
        #: Cross-stream merge point: when set, control runs are submitted
        #: as sub-frames to this :class:`~repro.core.coalesce.FrameCoalescer`
        #: instead of being issued as per-stream BATCH frames — even runs
        #: of one op, so solo control ops also merge with other streams.
        self.coalescer = coalescer
        self.name = name
        self._obs = collector_for(engine)
        self._queue: collections.deque[_QueuedOp] = collections.deque()
        self._pump = None
        self._error: Exception | None = None
        #: Accounting: logical ops queued, frames actually issued, and how
        #: many ops rode inside multi-op BATCH frames.
        self.ops_issued = 0
        self.frames_issued = 0
        self.ops_batched = 0
        self._local_ops = 0

    # -- queueing --------------------------------------------------------
    def _submit(self, op: Op | None, method: str, args: tuple = (),
                kwargs: dict | None = None, local: bool = False) -> StreamFuture:
        if self._error is not None:
            raise MiddlewareError(
                f"stream {self.name!r} is in a sticky error state "
                f"({self._error}); create a new stream") from self._error
        future = StreamFuture(self, method)
        self._queue.append(_QueuedOp(op, method, args, kwargs or {},
                                     future, local=local))
        self.ops_issued += 1
        self._ensure_pump()
        return future

    def _ensure_pump(self) -> None:
        if self._pump is None or self._pump.triggered:
            self._pump = self.engine.process(self._drain(),
                                             name=f"{self.name}:pump")

    # -- the ac* surface (all return futures immediately) ----------------
    def mem_alloc(self, nbytes: int) -> StreamFuture:
        return self._submit(Op.MEM_ALLOC, "mem_alloc", (int(nbytes),))

    def mem_free(self, addr: int | StreamFuture) -> StreamFuture:
        return self._submit(Op.MEM_FREE, "mem_free", (addr,))

    def memcpy_h2d(self, dst: int | StreamFuture, payload: _t.Any,
                   **kw) -> StreamFuture:
        return self._submit(None, "memcpy_h2d", (dst, payload), kw)

    def memcpy_d2h(self, src: int | StreamFuture, nbytes: int,
                   **kw) -> StreamFuture:
        return self._submit(None, "memcpy_d2h", (src, int(nbytes)), kw)

    def kernel_create(self, name: str) -> StreamFuture:
        return self._submit(Op.KERNEL_CREATE, "kernel_create", (name,))

    def kernel_set_args(self, name: str, params: dict) -> StreamFuture:
        # Purely local staging, but queued so it stays ordered between the
        # kernel_create and kernel_run around it.
        return self._submit(None, "kernel_set_args", (name, params),
                            local=True)

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True,
                   timeout_s: float | None = None) -> StreamFuture:
        if timeout_s is not None:
            # A custom deadline needs its own frame (the solo path).
            return self._submit(None, "kernel_run", (name, params),
                                {"real": real, "timeout_s": timeout_s})
        return self._submit(Op.KERNEL_RUN, "kernel_run", (name, params),
                            {"real": real})

    def ping(self) -> StreamFuture:
        return self._submit(Op.PING, "ping", ())

    # -- synchronization -------------------------------------------------
    def synchronize(self):
        """Wait (generator) until every queued op has completed.

        Raises the stream's first error, if any — after which the stream
        refuses further ops (sticky, like a CUDA stream error).
        """
        while self._queue or (self._pump is not None
                              and not self._pump.triggered):
            yield self._pump
        if self._error is not None:
            raise self._error
        return None

    def close(self) -> None:
        """Flush the queue (drives :meth:`synchronize`).

        Mirrors :class:`~repro.core.interface.AcceleratorLifecycle`: from
        a plain script (engine idle) the flush runs synchronously; inside
        a running simulation it is spawned as a background process.
        """
        engine = self.engine
        proc = engine.process(self.synchronize(), name=f"sync:{self.name}")
        if not getattr(engine, "_running", False):
            engine.run(until=proc)

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.close()
        except Exception:
            if exc_type is None:
                raise
            # Already unwinding from a with-body error: the stream's
            # sticky error must not mask it.
        return False

    @property
    def roundtrips_saved(self) -> int:
        """Request round trips avoided by coalescing, so far."""
        return self.ops_issued_remote() - self.frames_issued

    def ops_issued_remote(self) -> int:
        """Logical ops that would each have been one request when sync."""
        return self.ops_issued - self._local_ops

    # -- the pump --------------------------------------------------------
    def _drain(self):
        while self._queue:
            head = self._queue[0]
            pending = head.pending_futures()
            if pending:
                # A parameter is produced by an op still in flight (or
                # queued on another stream): wait for it, then re-check.
                try:
                    yield pending[0]._event
                except Exception:
                    pass  # dependency failed; handled just below
                if not pending[0].ok:
                    self._abort(MiddlewareError(
                        f"stream op {head.method!r} depends on failed "
                        f"op {pending[0].label!r}"))
                    return
                continue
            if self.batching and head.op in BATCHABLE_OPS:
                run = [self._queue.popleft()]
                while (self._queue and len(run) < self.max_batch
                       and self.batching
                       and self._queue[0].op in BATCHABLE_OPS
                       and not self._queue[0].pending_futures()):
                    run.append(self._queue.popleft())
                if len(run) == 1 and self.coalescer is None:
                    yield from self._issue_solo(run[0])
                else:
                    yield from self._issue_batch(run)
            else:
                yield from self._issue_solo(self._queue.popleft())
            if self._error is not None:
                return

    def _issue_solo(self, item: _QueuedOp):
        self.frames_issued += 0 if item.local else 1
        if item.local:
            self._local_ops += 1
            try:
                result = getattr(self.ac, item.method)(
                    *_resolve(item.args), **_resolve(item.kwargs))
            except Exception as exc:
                self._fail(item, exc)
                return
            item.future._event.succeed(result)
            return
        with self._obs.start("stream.frame", self.name, ops=1,
                             method=item.method,
                             queue_depth=len(self._queue)) as frame:
            try:
                args = _resolve(item.args)
                kwargs = _resolve(item.kwargs)
                method = getattr(self.ac, item.method)
                # The front-end's own client.* span adopts the frame span
                # as parent (stage-then-call, no yield in between), so the
                # op becomes the frame's per-op child.
                self._obs.adopt_parent(frame.context)
                try:
                    result = yield from method(*args, **kwargs)
                finally:
                    self._obs.clear_adopted()
            except Exception as exc:
                self._fail(item, exc)
                return
        item.future._event.succeed(result)

    def _issue_batch(self, run: list[_QueuedOp]):
        self.frames_issued += 1
        self.ops_batched += len(run)
        frame = self._obs.start("stream.frame", self.name, ops=len(run),
                                queue_depth=len(self._queue))
        with frame:
            children = [frame.child(f"stream.{item.method}", op=i)
                        for i, item in enumerate(run)]
            try:
                calls = [self._as_call(item) for item in run]
                self._obs.adopt_parent(frame.context)
                try:
                    if self.coalescer is not None:
                        subs = yield from self.ac.coalesced_rpc(
                            self.coalescer, calls)
                    else:
                        subs = yield from self.ac.batch_rpc(calls)
                finally:
                    self._obs.clear_adopted()
            except Exception as exc:
                # The frame itself failed (timeout after retries, broken
                # accelerator, ...): every op in it fails identically.
                for item, child in zip(run, children):
                    child.finish(error=type(exc).__name__)
                    item.future._event.fail(exc)
                self._abort_rest(exc)
                return
            failed: Exception | None = None
            for item, sub, child in zip(run, subs, children):
                if failed is not None:
                    child.finish(skipped=True)
                    item.future._event.fail(failed)
                    continue
                try:
                    sub.raise_for_status()
                except Exception as exc:
                    child.finish(error=type(exc).__name__)
                    failed = exc
                    self._fail(item, exc)
                    continue
                child.finish()
                self._post_op(item, sub.value)
                item.future._event.succeed(sub.value)

    def _as_call(self, item: _QueuedOp) -> tuple[Op, dict]:
        """Translate one queued op into its (Op, params) wire form."""
        args = _resolve(item.args)
        kwargs = _resolve(item.kwargs)
        if item.op is Op.MEM_ALLOC:
            return item.op, {"nbytes": args[0]}
        if item.op is Op.MEM_FREE:
            return item.op, {"addr": args[0]}
        if item.op is Op.KERNEL_CREATE:
            return item.op, {"name": args[0]}
        if item.op is Op.KERNEL_RUN:
            name, params = args
            if params is None:
                staged = getattr(self.ac, "_kernels", {})
                if name not in staged:
                    raise MiddlewareError(
                        f"kernel {name!r} was not created on this accelerator")
                params = staged[name]
            return item.op, {"name": name, "params": params,
                             "real": kwargs.get("real", True)}
        if item.op is Op.PING:
            return item.op, {}
        raise MiddlewareError(f"op {item.op!r} cannot ride a batch frame")

    def _post_op(self, item: _QueuedOp, value: _t.Any) -> None:
        """Mirror the front-end's client-side bookkeeping for batched ops."""
        if item.op is Op.KERNEL_CREATE:
            kernels = getattr(self.ac, "_kernels", None)
            if kernels is not None:
                kernels[item.args[0]] = {}

    # -- failure ---------------------------------------------------------
    def _fail(self, item: _QueuedOp, exc: Exception) -> None:
        item.future._event.fail(exc)
        self._abort_rest(exc)

    def _abort_rest(self, exc: Exception) -> None:
        if self._error is None:
            self._error = exc
        while self._queue:
            dropped = self._queue.popleft()
            dropped.future._event.fail(MiddlewareError(
                f"stream op {dropped.method!r} aborted: an earlier stream "
                f"op failed ({exc})"))

    def _abort(self, exc: Exception) -> None:
        head = self._queue.popleft()
        head.future._event.fail(exc)
        self._abort_rest(exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Stream {self.name} ops={self.ops_issued} "
                f"frames={self.frames_issued} queued={len(self._queue)}>")
