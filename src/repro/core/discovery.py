"""Resource discovery and autoscaling for a dynamic accelerator pool.

The paper's ARM is built from a static device roster; this module makes
pool membership *dynamic*, in the spirit of the ARC GPU
information-provider: every accelerator daemon runs a
:class:`DiscoveryAgent` that periodically publishes a capability/health
report (one-way ``ARM_REPORT``), and the ARM builds its pool from the
feed — unknown healthy reporters join as FREE, silent devices age out of
the pool after a TTL (the ARM's sweeper, see
:meth:`~repro.core.arm.ResourceManager.enable_discovery`), and a
graceful departure sends ``ARM_LEAVE``.

Failure detection falls out of the reporting cadence: a crashed daemon
stops publishing and is TTL-evicted; a *straggler* publishes late (its
agent's sleep scales with the daemon's ``slow_factor``) and, when severe
enough, ages out exactly like a crash — gray failures and hard failures
are indistinguishable from the consumer side, which is the point.

:class:`Autoscaler` closes the loop against offered load: it samples the
ARM's lease backlog and grows the virtual pool by starting an inactive
agent, or shrinks it by gracefully retiring an idle one (the retired
agent leaves with reason ``scale-down`` so membership scoring can tell
policy from failure).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .protocol import Op, Request, TAG_ARM, next_request_id

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry
    from .arm import ResourceManager
    from .daemon import Daemon


@dataclasses.dataclass(frozen=True)
class CapabilityReport:
    """One discovery report, as carried in ``ARM_REPORT`` params."""

    ac_id: int
    daemon_rank: int
    healthy: bool
    version: str
    active_slices: int
    #: Monotonic per-agent sequence number (diagnostics, not ordering —
    #: the fabric already delivers per-pair in order).
    seq: int
    #: Fabric placement: the switch this device hangs off and its trunk
    #: distance to the ARM (both None on a single-switch fabric) — lets
    #: the ARM place multi-device allocations topology-aware and lets
    #: operators see network locality in the discovery feed.
    switch: str | None = None
    hops_to_arm: int | None = None

    def params(self) -> dict:
        return {
            "ac_id": self.ac_id, "daemon_rank": self.daemon_rank,
            "healthy": self.healthy, "version": self.version,
            "active_slices": self.active_slices, "seq": self.seq,
            "switch": self.switch, "hops_to_arm": self.hops_to_arm,
            "oneway": True,
        }


class DiscoveryAgent:
    """Publishes one daemon's capability reports to the ARM.

    The agent lives on the daemon's own rank and sends one-way reports
    every ``period_s`` of virtual time (scaled by the daemon's
    ``slow_factor``, so stragglers report late and can age out).  A
    crashed daemon's agent goes silent — the host is gone — and resumes
    publishing when the daemon is repaired or restarted.  ``phase_s``
    staggers first reports so a fleet does not thunder in lockstep.
    """

    def __init__(self, daemon: "Daemon", ac_id: int, arm_rank: int,
                 period_s: float = 5e-4, phase_s: float = 0.0):
        self.daemon = daemon
        self.ac_id = ac_id
        self.arm_rank = arm_rank
        self.period_s = period_s
        self.phase_s = phase_s
        self.engine = daemon.engine
        self.reports_sent = 0
        self._seq = 0
        #: Paused agents skip publishing (heartbeat-flap injection).
        self.paused = False
        #: Bumped on stop(): stale publish loops notice and exit.
        self._generation = 0
        self._proc = None

    @property
    def active(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    def start(self):
        """Begin (or resume after stop) the publish loop."""
        if self.active:
            return self._proc
        self._generation += 1
        self._proc = self.engine.process(
            self._publish(self._generation), name=f"discovery:ac{self.ac_id}")
        return self._proc

    def stop(self, reason: str | None = None) -> None:
        """Stop publishing; optionally announce a graceful departure.

        With ``reason`` the agent sends a one-way ``ARM_LEAVE`` (e.g.
        ``scale-down``, ``upgrade``) so the ARM removes the record now
        instead of waiting out the TTL.  A crashed daemon cannot send.
        """
        self._generation += 1
        self._proc = None
        if reason is not None and not self.daemon.crashed:
            self.daemon.rank.isend(self.arm_rank, TAG_ARM, Request(
                op=Op.ARM_LEAVE, req_id=next_request_id(),
                reply_to=self.daemon.rank.index,
                params={"ac_id": self.ac_id, "reason": reason,
                        "oneway": True}))

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def report(self) -> CapabilityReport:
        """The report the agent would publish right now."""
        d = self.daemon
        self._seq += 1
        switch = hops = None
        ep = getattr(d.node, "endpoint", None)
        if ep is not None and ep.switch is not None:
            switch = ep.switch
            fabric = ep.fabric
            if "arm" in fabric.endpoints:
                hops = fabric.hop_count(ep.name, "arm")
        return CapabilityReport(
            ac_id=self.ac_id, daemon_rank=d.rank.index,
            healthy=not d.broken, version=d.version,
            active_slices=sum(1 for v in d._vacs.values() if not v.revoked),
            seq=self._seq, switch=switch, hops_to_arm=hops)

    def _publish(self, generation: int):
        if self.phase_s > 0:
            yield self.engine.timeout(self.phase_s)
        while generation == self._generation:
            d = self.daemon
            if not (d.crashed or self.paused):
                self.daemon.rank.isend(self.arm_rank, TAG_ARM, Request(
                    op=Op.ARM_REPORT, req_id=next_request_id(),
                    reply_to=d.rank.index, params=self.report().params()))
                self.reports_sent += 1
            # A straggler publishes late: its reports age out via the
            # ARM's TTL exactly like a crash would, and the device
            # rejoins once the slowdown ends.
            yield self.engine.timeout(self.period_s * d.slow_factor)


@dataclasses.dataclass(frozen=True)
class AutoscalerPolicy:
    """When to grow or shrink the discovered pool."""

    #: Never retire below this many pool members.
    min_nodes: int = 1
    #: Never start agents beyond this many pool members.
    max_nodes: int = 8
    #: Grow when the ARM's lease backlog reaches this depth.
    scale_up_backlog: int = 1
    #: Shrink after this many consecutive idle (no backlog, spare
    #: capacity) sampling rounds.
    scale_down_idle_rounds: int = 4
    #: Sampling period in virtual seconds.
    period_s: float = 1e-3


class Autoscaler:
    """Grows/shrinks the virtual pool against the ARM's offered load.

    Scale-up starts the inactive agent with the lowest ``ac_id``; the
    device joins through the normal discovery feed, so queued waiters
    wake through the same (exactly-once) path as any other join.
    Scale-down gracefully retires the idle, leaseless pool member with
    the highest ``ac_id`` via ``ARM_LEAVE`` with reason ``scale-down``.
    """

    def __init__(self, arm: "ResourceManager",
                 agents: _t.Sequence[DiscoveryAgent],
                 policy: AutoscalerPolicy | None = None,
                 registry: "MetricsRegistry | None" = None):
        self.arm = arm
        self.agents = {a.ac_id: a for a in agents}
        self.policy = policy or AutoscalerPolicy()
        self.registry = registry
        self.engine = arm.engine
        self.scale_ups = 0
        self.scale_downs = 0
        #: Ordered decision log: (time, "up"/"down", ac_id).
        self.events: list[tuple[float, str, int]] = []
        self._idle_rounds = 0
        self._proc = None

    def backlog(self) -> int:
        """Queued demand the ARM cannot place right now."""
        return len(self.arm._vqueue) + len(self.arm._wait_queue)

    def start(self, rounds: int | None = None):
        if self._proc is not None and self._proc.is_alive:
            return self._proc
        self._proc = self.engine.process(self._loop(rounds),
                                         name="autoscaler")
        return self._proc

    def stop(self) -> None:
        self._proc = None

    def _loop(self, rounds: int | None):
        done = 0
        while self._proc is not None:
            if rounds is not None and done >= rounds:
                break
            yield self.engine.timeout(self.policy.period_s)
            done += 1
            self._sample()

    def _sample(self) -> None:
        pool = len(self.arm.records)
        backlog = self.backlog()
        if self.registry is not None:
            self.registry.gauge("autoscaler.pool_size").set(pool)
            self.registry.gauge("autoscaler.backlog").set(backlog)
        if backlog >= self.policy.scale_up_backlog:
            self._idle_rounds = 0
            if pool < self.policy.max_nodes:
                self._scale_up()
            return
        if backlog == 0 and pool > self.policy.min_nodes:
            self._idle_rounds += 1
            if self._idle_rounds >= self.policy.scale_down_idle_rounds:
                self._idle_rounds = 0
                self._scale_down()
        else:
            self._idle_rounds = 0

    def _scale_up(self) -> None:
        for ac_id in sorted(self.agents):
            agent = self.agents[ac_id]
            if agent.active or agent.daemon.crashed:
                continue
            agent.start()
            self.scale_ups += 1
            self.events.append((self.engine.now, "up", ac_id))
            if self.registry is not None:
                self.registry.counter("autoscaler.scale_ups").inc()
            return

    def _scale_down(self) -> None:
        # Retire the highest-id member that is FREE and hosts no leases.
        leased = {lease.ac_id for lease in self.arm.admission.leases.values()}
        for ac_id in sorted(self.arm.records, reverse=True):
            r = self.arm.records[ac_id]
            if r.state.value != "free" or ac_id in leased:
                continue
            agent = self.agents.get(ac_id)
            if agent is None or not agent.active:
                continue
            agent.stop(reason="scale-down")
            self.scale_downs += 1
            self.events.append((self.engine.now, "down", ac_id))
            if self.registry is not None:
                self.registry.counter("autoscaler.scale_downs").inc()
            return
