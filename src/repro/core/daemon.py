"""The middleware back-end: one daemon per accelerator node.

The daemon is the software of Figure 4's right-hand side: it receives
requests over simulated MPI, executes them on the local GPU through the
(virtual) CUDA driver API, and replies.  Requests are served strictly in
order — the daemon is single-threaded, like the prototype's.

Transfer handling implements the two protocols of Sect. IV/V-A:

* **naive** — the whole payload is received into host memory with one
  blocking receive, then copied to the GPU with one DMA.  Host staging
  memory equal to the full message size is required.
* **pipeline** — the payload arrives in blocks; each block's DMA is issued
  as soon as the block lands in the (GPUDirect-shared) pinned buffer while
  the next block is still on the wire.  Staging memory is bounded by the
  in-flight window; the per-block daemon handling cost is what eventually
  penalizes very small blocks on very large messages (the Fig. 5
  crossover).  With ``gpudirect=False`` each block pays an additional
  host-to-pinned staging copy on the accelerator CPU.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

import numpy as np

from ..buffers import ChunkView, zero_copy_enabled
from ..errors import DeviceMemoryError, GPUError, KernelError
from ..mpisim import Phantom, RankHandle
from ..obs.spans import NULL_SPAN, collector_for, context_from_wire
from ..sim import Event
from .protocol import DEDUP_OPS, Op, Request, Response, Status, TAG_REQUEST, reply_tag
from .transfer import ArrayMeta

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import AcceleratorNode


@dataclasses.dataclass
class DaemonStats:
    """Operation counters and staging-memory accounting."""

    requests: int = 0
    #: Requests that moved bulk data (H2D/D2H/peer copies).  Everything
    #: else is a *control* round trip — the traffic stream batching cuts.
    transfer_requests: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    kernels_run: int = 0

    @property
    def control_requests(self) -> int:
        return self.requests - self.transfer_requests
    #: BATCH frames served, and control ops that arrived inside them.
    batches: int = 0
    batched_ops: int = 0
    #: Cross-stream MBATCH frames served, the sub-frames merged into
    #: them, and the control ops those sub-frames carried.
    mbatches: int = 0
    mbatched_subs: int = 0
    mbatched_ops: int = 0
    #: Duplicate requests answered from the dedup cache (at-most-once).
    dedup_hits: int = 0
    #: Virtual-accelerator slices instantiated / revoked by preemption.
    vac_attaches: int = 0
    vac_revocations: int = 0
    #: Requests refused because their lease had been revoked.
    preempted_requests: int = 0
    #: Peak host staging bytes in use at any instant (naive transfers
    #: buffer the whole message; the pipeline stays bounded).
    staging_peak: int = 0
    staging_now: int = 0

    def stage(self, nbytes: int) -> None:
        self.staging_now += nbytes
        if self.staging_now > self.staging_peak:
            self.staging_peak = self.staging_now

    def unstage(self, nbytes: int) -> None:
        self.staging_now -= nbytes


#: At-most-once window: completed responses kept for duplicate detection.
#: The window is counted in *replayable sub-responses*, not cache entries:
#: a BATCH/MBATCH entry holds one recorded response per coalesced op, so a
#: merged frame consumes a proportional share of the window (otherwise 512
#: full frames could pin ~100x that many responses, and — worse — frames
#: evicted by entry count would lose at-most-once protection for every op
#: they carried at once).
DEDUP_CACHE_SIZE = 512


def _replay_weight(resp: Response) -> int:
    """How many recorded sub-responses a cached reply replays.

    1 for plain ops; the op count for BATCH (``value`` is a flat response
    list) and MBATCH (``value`` is one response list per merged sub-frame).
    """
    value = resp.value
    if not isinstance(value, list):
        return 1
    n = 0
    for entry in value:
        if isinstance(entry, Response):
            n += 1
        elif isinstance(entry, list):
            n += sum(1 for e in entry if isinstance(e, Response))
    return max(n, 1)

#: Lease-lifecycle ops exempt from the revoked-lease guard: they manage
#: the vac table itself (attach re-creates what the guard would reject).
_VAC_LIFECYCLE = frozenset({Op.VAC_ATTACH, Op.VAC_DETACH, Op.VAC_REVOKE})


class _Tombstone:
    """Marker for a lease revoked before its first attach arrived."""

    revoked = True

    def revoke(self) -> int:
        return 0


class Daemon:
    """Back-end daemon bound to one accelerator node."""

    def __init__(self, node: "AcceleratorNode", rank: RankHandle):
        self.node = node
        self.rank = rank
        self.engine = rank.comm.engine
        self.gpu = node.gpu
        self.cpu = node.cpu
        self.stats = DaemonStats()
        #: Set by fault injection: the accelerator hardware has failed.
        self.broken = False
        #: Set by fault injection: the daemon host itself is gone — requests
        #: are silently dropped, which is what makes client deadlines fire.
        self.crashed = False
        #: Software version advertised in discovery reports; a rolling
        #: upgrade bumps it through :meth:`restart`.
        self.version = "v1"
        #: Straggler dial: multiplies every software cost (request
        #: handling, mallocs) — 1.0 is nominal.  A severe straggler also
        #: publishes its discovery reports late and ages out of the pool.
        self.slow_factor = 1.0
        self.restarts = 0
        #: Per-block receive deadline for accepted transfers, or None for
        #: unbounded (the historical behavior).  Under a partition the
        #: blocks of an accepted H2D may never arrive; without a deadline
        #: the single-threaded serve loop would wedge forever.
        self.data_stall_s: float | None = None
        #: Responses of completed non-idempotent requests, for replaying to
        #: duplicate (retried) requests instead of re-executing them.
        self._dedup: collections.OrderedDict[int, Response] = collections.OrderedDict()
        #: Total replayable sub-responses held in ``_dedup`` (the eviction
        #: unit — see :data:`DEDUP_CACHE_SIZE`).
        self._dedup_weight = 0
        #: Virtual-accelerator slices attached to this device, by vac id.
        #: Revoked slices stay in the table so tenant requests against
        #: them answer PREEMPTED instead of "unknown".
        self._vacs: dict[int, _t.Any] = {}
        self._stopped = False
        self._obs = collector_for(self.engine)
        #: The span of the request currently being served.  The daemon is
        #: single-threaded (strictly in-order), so one slot suffices; the
        #: transfer handlers parent their network / staging / DMA child
        #: spans under it.
        self._cur_span = NULL_SPAN
        #: Engine shard this daemon executes on (0 on a plain engine).
        #: The cluster builder constructs each daemon inside its shard's
        #: scope, so the serve loop and every event it schedules stay on
        #: that shard's heap.
        self.shard = self.engine._active_shard
        #: Dispatch table built once — _serve() consults it per request.
        self._handler_map = self._handlers()
        self.proc = self.engine.process(self._serve(), name=f"daemon:{node.name}")

    # -- main loop ------------------------------------------------------
    def _serve(self):
        while not self._stopped:
            msg = yield from self.rank.recv(tag=TAG_REQUEST)
            req: Request = msg.payload
            if self.crashed:
                # A dead host: the request vanishes.  No reply, no drain —
                # the sender's deadline is its only way out.
                continue
            self.stats.requests += 1
            if req.op in (Op.MEMCPY_H2D, Op.MEMCPY_D2H, Op.PEER_PUT):
                self.stats.transfer_requests += 1
            # Software cost of receiving + dispatching one request.
            yield self.engine.timeout(
                self.cpu.request_handling_s * self.slow_factor)
            if req.op == Op.SHUTDOWN:
                self._reply(req, Response(req.req_id, Status.OK))
                self._stopped = True
                break
            if self.broken:
                # The GPU is gone, but the daemon host can still answer so
                # the compute node is not taken down with it (the paper's
                # fault-tolerance property).
                self._reply(req, Response(req.req_id, Status.BROKEN,
                                          error=f"{self.node.name} has failed"))
                # A broken transfer still has in-flight data blocks to drain.
                yield from self._drain_data(req, msg.source)
                continue
            cached = self._dedup.get(req.req_id)
            if cached is not None and req.op in DEDUP_OPS:
                # Duplicate of an already-executed request (the original
                # reply was lost or late): replay the recorded response —
                # at-most-once execution for ops with side effects.
                self.stats.dedup_hits += 1
                with self._obs.start(f"daemon.{req.op.value}",
                                     self.node.name,
                                     parent=context_from_wire(req.trace),
                                     req_id=req.req_id, dedup_replay=True):
                    yield from self._drain_data(req, msg.source)
                    self._reply(req, cached, dedup=True)
                continue
            vac_id = req.params.get("vac")
            if vac_id is not None and req.op not in _VAC_LIFECYCLE:
                vgpu = self._vacs.get(vac_id)
                if vgpu is None or vgpu.revoked:
                    # The lease behind this request is gone (preempted or
                    # never attached here).  PREEMPTED — not BROKEN — so
                    # the tenant's resilience layer re-leases instead of
                    # reporting healthy hardware as failed.
                    self.stats.preempted_requests += 1
                    self._reply(req, Response(
                        req.req_id, Status.PREEMPTED,
                        error=f"virtual accelerator {vac_id} was revoked"))
                    yield from self._drain_data(req, msg.source)
                    continue
            handler = self._handler_map.get(req.op)
            if handler is None:
                self._reply(req, Response(req.req_id, Status.ERROR,
                                          error=f"unsupported op {req.op}"))
                continue
            obs = self._obs
            span = (obs.start(f"daemon.{req.op.value}", self.node.name,
                              parent=context_from_wire(req.trace),
                              req_id=req.req_id)
                    if obs.enabled else NULL_SPAN)
            self._cur_span = span
            try:
                with span:
                    yield from handler(req, msg.source)
            finally:
                self._cur_span = NULL_SPAN

    def _handlers(self):
        return {
            Op.PING: self._ping,
            Op.MEM_ALLOC: self._mem_alloc,
            Op.MEM_FREE: self._mem_free,
            Op.MEMCPY_H2D: self._memcpy_h2d,
            Op.MEMCPY_D2H: self._memcpy_d2h,
            Op.KERNEL_CREATE: self._kernel_create,
            Op.KERNEL_RUN: self._kernel_run,
            Op.PEER_PUT: self._peer_put,
            Op.BATCH: self._batch,
            Op.MBATCH: self._mbatch,
            Op.VAC_ATTACH: self._vac_attach,
            Op.VAC_DETACH: self._vac_detach,
            Op.VAC_REVOKE: self._vac_revoke,
        }

    def _executors(self):
        """Control-op bodies usable standalone or inside a batch frame.

        Each is a generator taking ``(req_id, params)`` and returning a
        :class:`Response` without sending it — the caller decides whether
        the response travels alone or as one entry of a batch reply.
        """
        return {
            Op.PING: self._exec_ping,
            Op.MEM_ALLOC: self._exec_mem_alloc,
            Op.MEM_FREE: self._exec_mem_free,
            Op.KERNEL_CREATE: self._exec_kernel_create,
            Op.KERNEL_RUN: self._exec_kernel_run,
        }

    def _reply(self, req: Request, resp: Response, dedup: bool = False) -> None:
        if not dedup and req.op in DEDUP_OPS:
            prev = self._dedup.pop(req.req_id, None)
            if prev is not None:
                self._dedup_weight -= _replay_weight(prev)
            self._dedup[req.req_id] = resp
            self._dedup_weight += _replay_weight(resp)
            while self._dedup_weight > DEDUP_CACHE_SIZE and len(self._dedup) > 1:
                _, evicted = self._dedup.popitem(last=False)
                self._dedup_weight -= _replay_weight(evicted)
        self.rank.isend(req.reply_to, reply_tag(req.req_id), resp)

    def restart(self, version: str | None = None) -> None:
        """Bounce the daemon in place (one rolling-upgrade step).

        Device slices do not survive a restart: every live slice is
        revoked (its tenant discovers PREEMPTED and re-leases) and the
        lease / dedup tables reset.  Fault flags clear, the straggler
        dial returns to nominal, and the advertised version bumps.
        """
        for vgpu in self._vacs.values():
            if not vgpu.revoked:
                vgpu.revoke()
        self._vacs.clear()
        self._dedup.clear()
        self._dedup_weight = 0
        self.broken = False
        self.crashed = False
        self.slow_factor = 1.0
        self.restarts += 1
        if version is not None:
            self.version = version

    def _recv_block(self, src: int, dtag: int):
        """One data-block receive, bounded by ``data_stall_s`` when set.

        Returns the message, or None when the stall deadline fired first
        (the pending receive is cancelled, not leaked).
        """
        if self.data_stall_s is None:
            msg = yield from self.rank.recv(source=src, tag=dtag)
            return msg
        rreq = self.rank.irecv(source=src, tag=dtag)
        cond, dl = self.engine.race(rreq.done,
                                    self.data_stall_s * self.slow_factor)
        yield cond
        if rreq.completed:
            if not dl.processed:
                dl.cancel()
            return rreq.message
        self.rank.cancel_recv(rreq)
        return None

    def _abandon_stream(self, req: Request, src: int, remaining: int) -> None:
        """Give up on a stalled data stream without wedging the tag space.

        Blocks still in flight (delayed, not dropped) would otherwise sit
        in the unexpected queue and be mis-matched by a later transfer
        reusing the data tag; pre-discarding them keeps arrival one-shot.
        """
        if remaining > 0:
            self.rank.discard_next(src, req.params["data_tag"],
                                   count=remaining)

    def _drain_data(self, req: Request, src: int):
        """Consume data blocks of a request that was rejected up-front."""
        if req.op == Op.MEMCPY_H2D:
            blocks = req.params["blocks"]
            for i in range(len(blocks)):
                msg = yield from self._recv_block(src, req.params["data_tag"])
                if msg is None:
                    self._abandon_stream(req, src, len(blocks) - i)
                    return

    # -- virtual accelerators -------------------------------------------
    def _target(self, params: dict):
        """The execution target: the physical GPU, or the request's slice.

        The serve loop already rejected requests whose slice is missing
        or revoked, and the daemon is single-threaded, so resolution here
        cannot fail for requests that reached a handler.
        """
        vac_id = params.get("vac")
        return self.gpu if vac_id is None else self._vacs[vac_id]

    def _owner_error(self, params: dict, addr: int) -> str | None:
        """Cross-tenant isolation check for transfer addresses."""
        vac_id = params.get("vac")
        if vac_id is None:
            return None
        if not self._vacs[vac_id].memory.owns(addr):
            return (f"address {addr:#x} is not owned by "
                    f"virtual accelerator {vac_id}")
        return None

    def _vac_attach(self, req: Request, src: int):
        """Instantiate a lease granted by the ARM as a device slice."""
        p = req.params
        vac_id = p["vac_id"]
        yield self.engine.timeout(self.cpu.malloc_s * self.slow_factor)
        existing = self._vacs.get(vac_id)
        if existing is not None:
            if existing.revoked:
                # The ARM's VAC_REVOKE landed before (or between retries
                # of) this attach.  Re-creating the slice would resurrect
                # a lease the ARM already ended and possibly reassigned;
                # PREEMPTED routes the tenant to a fresh valloc instead.
                self.stats.preempted_requests += 1
                self._reply(req, Response(
                    req.req_id, Status.PREEMPTED,
                    error=f"virtual accelerator {vac_id} was revoked"))
                return
            # Already attached (idempotent re-attach outside the dedup
            # window); keep the live slice and its allocations.
            self._reply(req, Response(req.req_id, Status.OK))
            return
        self._vacs[vac_id] = self.gpu.virtualize(
            f"{self.gpu.name}/vac{vac_id}",
            share=p.get("share", 1.0), mem_quota=p.get("mem_quota"))
        self.stats.vac_attaches += 1
        self._reply(req, Response(req.req_id, Status.OK))

    def _vac_detach(self, req: Request, src: int):
        """Tear a slice down and free everything it still holds."""
        yield self.engine.timeout(self.cpu.malloc_s * self.slow_factor)
        vgpu = self._vacs.pop(req.params["vac_id"], None)
        freed = vgpu.revoke() if vgpu is not None else 0
        self._reply(req, Response(req.req_id, Status.OK, value=freed))

    def _vac_revoke(self, req: Request, src: int):
        """ARM-initiated preemption: stop the slice, free its memory.

        Sent one-way by the ARM (``params["oneway"]``) so its single-
        threaded serve loop never blocks on a daemon reply; the revoked
        tenant finds out via PREEMPTED on its next operation.
        """
        vgpu = self._vacs.get(req.params["vac_id"])
        freed = 0
        if vgpu is None:
            # The revoke raced ahead of the lease's first attach: leave a
            # tombstone so the late attach answers PREEMPTED instead of
            # silently resurrecting a lease the ARM already ended.
            self._vacs[req.params["vac_id"]] = _Tombstone()
            self.stats.vac_revocations += 1
        elif not vgpu.revoked:
            freed = vgpu.revoke()
            self.stats.vac_revocations += 1
        if not req.params.get("oneway"):
            self._reply(req, Response(req.req_id, Status.OK, value=freed))
        return
        yield  # pragma: no cover - makes this a generator

    # -- simple ops -----------------------------------------------------
    def _exec_ping(self, req_id: int, params: dict):
        return Response(req_id, Status.OK, value="pong")
        yield  # pragma: no cover - makes this a generator

    def _ping(self, req: Request, src: int):
        resp = yield from self._exec_ping(req.req_id, req.params)
        self._reply(req, resp)

    def _exec_mem_alloc(self, req_id: int, params: dict):
        yield self.engine.timeout(self.cpu.malloc_s * self.slow_factor)
        try:
            # Lease-scoped allocations go through the slice's partition:
            # quota enforcement plus ownership tracking for isolation.
            addr = self._target(params).memory.malloc(params["nbytes"])
        except DeviceMemoryError as exc:
            return Response(req_id, Status.ERROR, error=str(exc))
        return Response(req_id, Status.OK, value=addr)

    def _mem_alloc(self, req: Request, src: int):
        resp = yield from self._exec_mem_alloc(req.req_id, req.params)
        self._reply(req, resp)

    def _exec_mem_free(self, req_id: int, params: dict):
        yield self.engine.timeout(self.cpu.malloc_s * self.slow_factor)
        try:
            self._target(params).memory.free(params["addr"])
        except DeviceMemoryError as exc:
            return Response(req_id, Status.ERROR, error=str(exc))
        return Response(req_id, Status.OK)

    def _mem_free(self, req: Request, src: int):
        resp = yield from self._exec_mem_free(req.req_id, req.params)
        self._reply(req, resp)

    # -- batched control frames -----------------------------------------
    def _batch(self, req: Request, src: int):
        """Execute a coalesced control frame: N ops, one round trip.

        Sub-ops run strictly in list order (per-stream ordering).  The
        first failing sub-op aborts the rest — their entries answer ERROR
        without touching device state, so the client can map failures back
        to queue positions.  The frame-level reply is OK whenever the frame
        itself was well-formed; per-op status lives in the value list.
        """
        executors = self._executors()
        self.stats.batches += 1
        self.stats.batched_ops += len(req.params["ops"])
        sub: list[Response] = []
        failed: str | None = None
        for i, (op_value, params) in enumerate(req.params["ops"]):
            if i > 0:
                # Dispatching each additional sub-op costs daemon CPU just
                # like a separate request would — only the network round
                # trips are saved.
                yield self.engine.timeout(
                    self.cpu.request_handling_s * self.slow_factor)
            if failed is not None:
                sub.append(Response(req.req_id, Status.ERROR,
                                    error=f"skipped: {failed}"))
                continue
            try:
                op = Op(op_value)
            except ValueError:
                op = None
            exec_fn = executors.get(op) if op is not None else None
            if exec_fn is None:
                sub.append(Response(req.req_id, Status.ERROR,
                                    error=f"op {op_value!r} is not batchable"))
                failed = f"op {i} ({op_value}) was not batchable"
                continue
            resp = yield from exec_fn(req.req_id, params)
            sub.append(resp)
            if not resp.ok:
                failed = f"op {i} ({op_value}) failed: {resp.error}"
        self._reply(req, Response(req.req_id, Status.OK, value=sub))

    def _exec_merged_op(self, executors: dict, sub_id: int,
                        op_value: _t.Any, params: dict):
        """One sub-op of a merged frame: per-op validation + vac guard.

        Merged sub-frames come from *different* tenants, so the serve
        loop's frame-level revoked-lease guard cannot cover them — each
        op re-checks its own lease here, answering PREEMPTED exactly as
        a solo request against a revoked slice would.
        """
        try:
            op = Op(op_value)
        except ValueError:
            op = None
        exec_fn = executors.get(op) if op is not None else None
        if exec_fn is None:
            return Response(sub_id, Status.ERROR,
                            error=f"op {op_value!r} is not batchable")
        vac_id = params.get("vac")
        if vac_id is not None:
            vgpu = self._vacs.get(vac_id)
            if vgpu is None or vgpu.revoked:
                self.stats.preempted_requests += 1
                return Response(sub_id, Status.PREEMPTED,
                                error=f"virtual accelerator {vac_id} was revoked")
        resp = yield from exec_fn(sub_id, params)
        return resp

    def _mbatch(self, req: Request, src: int):
        """Execute a cross-stream merged frame: M sub-frames, one round trip.

        ``params["reqs"]`` is a list of ``(sub_req_id, ops)`` sub-frames
        gathered by a :class:`~repro.core.coalesce.FrameCoalescer` from
        *different* streams/tenants inside one coalescing window.  Unlike
        BATCH (one stream's ops, fail-fast in queue order), sub-frames are
        mutually independent: within a sub-frame the first failure skips
        the rest of *that* sub-frame, but never touches the others — one
        tenant's error must not poison its neighbours' merged requests.

        The reply value is one per-op response list per sub-frame, and the
        whole frame is dedup-cached under the carrier request id, so a
        retried merged frame replays every sub-response exactly once.
        Each sub-frame's spans parent under its originating stream's trace
        context (``req.sub_traces``), not the carrier frame's.
        """
        executors = self._executors()
        subs = req.params["reqs"]
        self.stats.mbatches += 1
        self.stats.mbatched_subs += len(subs)
        traces = req.sub_traces or [None] * len(subs)
        obs = self._obs
        value: list[list[Response]] = []
        first = True
        for j, (sub_id, ops) in enumerate(subs):
            self.stats.mbatched_ops += len(ops)
            span = (obs.start("daemon.mbatch.sub", self.node.name,
                              parent=context_from_wire(traces[j]),
                              req_id=sub_id, ops=len(ops))
                    if obs.enabled else NULL_SPAN)
            prev_span, self._cur_span = self._cur_span, span
            sub: list[Response] = []
            failed: str | None = None
            try:
                with span:
                    for i, (op_value, params) in enumerate(ops):
                        if not first:
                            # Same dispatch cost per additional op as a
                            # BATCH frame: only round trips are saved.
                            yield self.engine.timeout(
                                self.cpu.request_handling_s * self.slow_factor)
                        first = False
                        if failed is not None:
                            sub.append(Response(sub_id, Status.ERROR,
                                                error=f"skipped: {failed}"))
                            continue
                        resp = yield from self._exec_merged_op(
                            executors, sub_id, op_value, params)
                        sub.append(resp)
                        if not resp.ok:
                            failed = f"op {i} ({op_value}) failed: {resp.error}"
            finally:
                self._cur_span = prev_span
            value.append(sub)
        self._reply(req, Response(req.req_id, Status.OK, value=value))

    # -- transfers ------------------------------------------------------
    def _memcpy_h2d(self, req: Request, src: int):
        p = req.params
        dst = p["dst"]
        base = p.get("offset", 0)
        blocks: list[tuple[int, int]] = p["blocks"]
        dtag: int = p["data_tag"]
        pinned: bool = p.get("pinned", True)
        gpudirect: bool = p.get("gpudirect", True)
        meta: ArrayMeta = p.get("meta")
        nbytes = sum(size for _, size in blocks)
        try:
            alloc = self.gpu.memory.allocation(dst)
            if base + nbytes > alloc.nbytes:
                raise DeviceMemoryError(
                    f"copy of {nbytes}B at offset {base} exceeds "
                    f"allocation of {alloc.nbytes}B")
        except DeviceMemoryError as exc:
            self._reply(req, Response(req.req_id, Status.ERROR, error=str(exc)))
            yield from self._drain_data(req, src)
            return
        owner_err = self._owner_error(p, dst)
        if owner_err is not None:
            self._reply(req, Response(req.req_id, Status.ERROR, error=owner_err))
            yield from self._drain_data(req, src)
            return

        dma_events: list[Event] = []
        first = True
        for i, (off, size) in enumerate(blocks):
            recv_span = self._cur_span.child("net.recv", block=i, nbytes=size)
            msg = yield from self._recv_block(src, dtag)
            recv_span.finish()
            if msg is None:
                # The stream stalled (partition / dropped blocks).  Blocks
                # already DMA'd stay written; the client learns via ERROR.
                self._abandon_stream(req, src, len(blocks) - i)
                self._reply(req, Response(
                    req.req_id, Status.ERROR,
                    error=f"data stream for request {req.req_id} stalled "
                          f"at block {i}/{len(blocks)}"))
                return
            if not first:
                # Per-block software cost: posting the next receive and the
                # DMA descriptor (the first block's cost was the request
                # handling itself).
                yield self.engine.timeout(
                    self.cpu.request_handling_s * self.slow_factor)
            first = False
            if not gpudirect:
                # Without GPUDirect the block must be staged from the MPI
                # receive buffer into the pinned DMA buffer by the CPU.
                with self._cur_span.child("staging", block=i, nbytes=size):
                    yield self.engine.timeout(size / self.cpu.memcpy_bw_Bps)
            self.stats.stage(size)
            chunk = msg.payload
            is_real = not isinstance(chunk, Phantom)
            # The received chunk is a view over the sender's buffer (or a
            # snapshot when the zero-copy plane is off); the DMA engine
            # models time only, so nothing is staged host-side — the one
            # physical copy is the write into the device backing store.
            ev = self.gpu.dma.copy_view(chunk, pinned=pinned,
                                        ctx=self._cur_span.context)

            def _on_dma(_ev, off=off, size=size, chunk=chunk, is_real=is_real):
                if is_real:
                    self.gpu.memory.write(dst, base + off, chunk)
                self.stats.unstage(size)

            ev.add_callback(_on_dma)
            dma_events.append(ev)
        if dma_events:
            yield self.engine.all_of(dma_events)
        # Record the typed interpretation only for whole-buffer writes, so
        # partial updates (e.g. a factored diagonal block) cannot clobber
        # the buffer's shape.
        if meta is not None and base == 0 and nbytes == alloc.nbytes:
            self.gpu.memory.set_array_meta(dst, meta[0], meta[1])
        self.stats.bytes_h2d += nbytes
        self._reply(req, Response(req.req_id, Status.OK))

    def _memcpy_d2h(self, req: Request, src: int):
        p = req.params
        src_addr = p["src"]
        base = p.get("offset", 0)
        blocks: list[tuple[int, int]] = p["blocks"]
        dtag: int = p["data_tag"]
        pinned: bool = p.get("pinned", True)
        gpudirect: bool = p.get("gpudirect", True)
        nbytes = sum(size for _, size in blocks)
        try:
            alloc = self.gpu.memory.allocation(src_addr)
            if base + nbytes > alloc.nbytes:
                raise DeviceMemoryError(
                    f"copy of {nbytes}B at offset {base} exceeds "
                    f"allocation of {alloc.nbytes}B")
        except DeviceMemoryError as exc:
            self._reply(req, Response(req.req_id, Status.ERROR, error=str(exc)))
            return
        owner_err = self._owner_error(p, src_addr)
        if owner_err is not None:
            self._reply(req, Response(req.req_id, Status.ERROR, error=owner_err))
            return
        # Timing-only buffers (never written with real data) return phantoms.
        is_real = alloc.data is not None
        meta: ArrayMeta = None
        if (is_real and base == 0 and alloc.dtype is not None
                and alloc.shape is not None
                and nbytes == alloc.dtype.itemsize * int(np.prod(alloc.shape))):
            meta = (alloc.dtype.str, alloc.shape)
        block_post = p.get("block_post_s")
        # Zero-copy staging: loan the whole outgoing region once and send
        # per-block subviews of it.  The daemon serves requests strictly
        # in order, so device contents cannot change mid-handler; later
        # mutations trigger allocation-level COW, keeping in-flight and
        # client-held views stable snapshots.
        region: ChunkView | None = None
        if is_real and zero_copy_enabled():
            region = self.gpu.memory.read_chunk(src_addr, base, nbytes)
        for i, (off, size) in enumerate(blocks):
            # The pinned-ring slot is occupied from the start of the
            # device-to-pinned DMA until the NIC has drained it (send
            # injection) — symmetric to the H2D direction.
            self.stats.stage(size)
            yield self.gpu.dma.copy(size, pinned=pinned,
                                    ctx=self._cur_span.context)
            if not gpudirect:
                with self._cur_span.child("staging", block=i, nbytes=size):
                    yield self.engine.timeout(size / self.cpu.memcpy_bw_Bps)
            chunk: _t.Any = (region.subview(off, size) if region is not None
                             else self.gpu.memory.read(src_addr, base + off, size)
                             if is_real else Phantom(size))
            # Non-blocking: the send of block k overlaps the DMA of k+1;
            # sends come from the pre-registered pinned ring (cheap post).
            self._cur_span.event("net.send", block=i, nbytes=size)
            sreq = self.rank.isend(src, dtag, chunk, eager=True,
                                   injection_s=block_post)
            sreq.done.add_callback(
                lambda _ev, size=size: self.stats.unstage(size))
        self.stats.bytes_d2h += nbytes
        self._reply(req, Response(req.req_id, Status.OK, value=meta))

    def _peer_put(self, req: Request, src: int):
        """Direct accelerator-to-accelerator copy (no compute node involved).

        This daemon acts as the front-end of a regular H2D transfer into the
        peer daemon: device-to-host DMA here overlaps with the network
        stream into the peer, which pipelines into its own GPU.

        Validation replies synchronously; the forward-and-stream body
        (which waits on the peer daemon's reply) runs as its own process
        so this serve loop stays responsive.  Handled inline, a ring of
        concurrent peer_puts would deadlock: every daemon blocked on its
        successor's reply while the successor's loop — the only thing
        that could service the incoming forwarded H2D — is itself
        blocked the same way.
        """
        from .protocol import data_tag, next_request_id
        p = req.params
        src_addr = p["src"]
        blocks: list[tuple[int, int]] = p["blocks"]
        nbytes = sum(size for _, size in blocks)
        try:
            alloc = self.gpu.memory.allocation(src_addr)
            if nbytes > alloc.nbytes:
                raise DeviceMemoryError("peer copy exceeds source allocation")
        except DeviceMemoryError as exc:
            self._reply(req, Response(req.req_id, Status.ERROR, error=str(exc)))
            return
        owner_err = self._owner_error(p, src_addr)
        if owner_err is not None:
            self._reply(req, Response(req.req_id, Status.ERROR, error=owner_err))
            return
        is_real = alloc.data is not None
        meta: ArrayMeta = None
        if is_real and alloc.dtype is not None and alloc.shape is not None:
            meta = (alloc.dtype.str, alloc.shape)
        fwd_id = next_request_id()
        # The forwarded request carries this daemon's span context, so the
        # peer's H2D handling joins the same trace as the originating op.
        fwd = Request(op=Op.MEMCPY_H2D, req_id=fwd_id, reply_to=self.rank.index,
                      params={"dst": p["peer_addr"], "blocks": blocks,
                              "data_tag": data_tag(fwd_id),
                              "pinned": p.get("pinned", True),
                              "gpudirect": p.get("gpudirect", True),
                              "meta": meta},
                      trace=self._cur_span.wire)
        self.engine.process(
            self._peer_put_stream(req, fwd, is_real, nbytes,
                                  self._cur_span.wire),
            name=f"peerput:{self.node.name}")
        return
        yield  # pragma: no cover - makes this a generator

    def _peer_put_stream(self, req: Request, fwd: Request, is_real: bool,
                         nbytes: int, trace):
        """The streaming body of one PEER_PUT (its own process).

        Captures the handler span via its wire form instead of touching
        ``self._cur_span``, which by now belongs to whatever request the
        serve loop moved on to.
        """
        p = req.params
        peer_rank = p["peer_rank"]
        src_addr = p["src"]
        pinned: bool = p.get("pinned", True)
        obs = self._obs
        span = (obs.start("daemon.peer_put.stream", self.node.name,
                          parent=context_from_wire(trace),
                          req_id=req.req_id, nbytes=nbytes)
                if obs.enabled else NULL_SPAN)
        with span:
            self.rank.isend(peer_rank, TAG_REQUEST, fwd)
            block_post = p.get("block_post_s")
            dtag = fwd.params["data_tag"]
            region: ChunkView | None = None
            if is_real and zero_copy_enabled():
                region = self.gpu.memory.read_chunk(src_addr, 0, nbytes)
            for off, size in p["blocks"]:
                yield self.gpu.dma.copy(size, pinned=pinned, ctx=span.context)
                chunk: _t.Any = (region.subview(off, size)
                                 if region is not None
                                 else self.gpu.memory.read(src_addr, off, size)
                                 if is_real else Phantom(size))
                self.rank.isend(peer_rank, dtag, chunk, eager=True,
                                injection_s=block_post)
            msg = yield from self.rank.recv(source=peer_rank,
                                            tag=reply_tag(fwd.req_id))
            peer_resp: Response = msg.payload
            self._reply(req, Response(req.req_id, peer_resp.status,
                                      error=peer_resp.error))

    # -- kernels --------------------------------------------------------
    def _exec_kernel_create(self, req_id: int, params: dict):
        from ..gpusim.kernels import resolve
        name = params["name"]
        # kernel_create uploads the module if the device lacks it.
        if not resolve(self.gpu.registry, name):
            return Response(req_id, Status.ERROR,
                            error=f"unknown kernel {name!r}")
        return Response(req_id, Status.OK)
        yield  # pragma: no cover - makes this a generator

    def _kernel_create(self, req: Request, src: int):
        resp = yield from self._exec_kernel_create(req.req_id, req.params)
        self._reply(req, resp)

    def _exec_kernel_run(self, req_id: int, params: dict):
        try:
            # Lease-scoped launches go through the slice, i.e. the
            # device's WFQ time slicer weighted by the tenant's share.
            result = yield self._target(params).launch(
                params["name"], params.get("params") or {},
                real=params.get("real", True), ctx=self._cur_span.context)
        except KernelError as exc:
            return Response(req_id, Status.ERROR, error=str(exc))
        except GPUError as exc:
            # The slice was revoked while this launch waited its turn.
            return Response(req_id, Status.PREEMPTED, error=str(exc))
        self.stats.kernels_run += 1
        return Response(req_id, Status.OK, value=result)

    def _kernel_run(self, req: Request, src: int):
        resp = yield from self._exec_kernel_run(req.req_id, req.params)
        self._reply(req, resp)
