"""Pipeline block-size policies and transfer configuration.

The pipeline copy protocol splits a payload into blocks.  The paper finds
(Sect. V-A) that on its testbed 128 KiB blocks win for host-to-device
messages below ~9 MiB while 512 KiB blocks win above, and that 128 KiB is
best for device-to-host at all sizes; the adaptive policy encodes exactly
that tuning.  Policies are objects so the ablation benchmarks can sweep
them.
"""

from __future__ import annotations

import dataclasses
import functools
import typing as _t

from ..errors import MiddlewareError
from ..units import KiB, MiB


class BlockPolicy:
    """Chooses a pipeline block size for a given payload size."""

    name: str = "abstract"

    def block_bytes(self, nbytes: int, direction: str) -> int:
        """Block size for an ``nbytes`` transfer; direction 'h2d' or 'd2h'."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FixedBlockPolicy(BlockPolicy):
    """Always the same block size (the pipeline-<N>K curves of Fig. 5/6)."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MiddlewareError(f"block size must be positive: {self.size!r}")

    @property
    def name(self) -> str:
        return f"pipeline-{self.size // KiB}K"

    def block_bytes(self, nbytes: int, direction: str) -> int:
        return self.size


@dataclasses.dataclass(frozen=True)
class AdaptiveBlockPolicy(BlockPolicy):
    """The paper's tuned policy: 128 KiB below 9 MiB, 512 KiB above (H2D);
    128 KiB at all sizes for D2H."""

    small: int = 128 * KiB
    large: int = 512 * KiB
    threshold: int = 9 * MiB

    def __post_init__(self) -> None:
        if self.small <= 0 or self.large <= 0 or self.threshold <= 0:
            raise MiddlewareError("adaptive policy sizes must be positive")

    @property
    def name(self) -> str:
        return f"pipeline-{self.small // KiB}-{self.large // KiB}K"

    def block_bytes(self, nbytes: int, direction: str) -> int:
        if direction == "d2h":
            return self.small
        return self.small if nbytes < self.threshold else self.large


#: Per-block send posting cost for H2D streams: the front-end's source
#: buffer is arbitrary user memory, so each block pays an InfiniBand
#: memory-registration surcharge on top of the descriptor post.
H2D_BLOCK_POST_S = 1.4e-6
#: Per-block send posting cost for D2H streams: the daemon sends from its
#: pre-registered pinned ring with pre-built descriptors, far cheaper.
D2H_BLOCK_POST_S = 0.15e-6


@dataclasses.dataclass(frozen=True)
class TransferConfig:
    """How one memory copy should be performed.

    ``protocol`` is ``"naive"`` (single message, then single DMA) or
    ``"pipeline"`` (blocked and overlapped).  ``gpudirect`` models
    GPUDirect v1 shared pinned buffers: when off, every block pays an extra
    host staging copy on the accelerator CPU.  The per-block posting costs
    are the asymmetric knobs behind the Fig. 5 (H2D crossover near 9 MiB)
    vs Fig. 6 (128 KiB best everywhere) difference; the block-size ablation
    benchmark sweeps them.
    """

    protocol: str = "pipeline"
    policy: BlockPolicy = AdaptiveBlockPolicy()
    pinned: bool = True
    gpudirect: bool = True
    h2d_block_post_s: float = H2D_BLOCK_POST_S
    d2h_block_post_s: float = D2H_BLOCK_POST_S

    def __post_init__(self) -> None:
        if self.protocol not in ("naive", "pipeline"):
            raise MiddlewareError(f"unknown protocol {self.protocol!r}")

    @property
    def name(self) -> str:
        return "naive" if self.protocol == "naive" else self.policy.name

    def plan_blocks(self, nbytes: int, direction: str) -> list[tuple[int, int]]:
        """(offset, size) blocks for a transfer of ``nbytes``.

        Plans are memoized per (config, size, direction): the hot loops
        copy the same few payload sizes thousands of times, and for a
        multi-hundred-block large transfer re-planning costs more host
        time than the request bookkeeping itself.  The returned list is
        shared — treat it as read-only (every consumer only iterates).
        """
        if nbytes < 0:
            raise MiddlewareError(f"negative transfer size: {nbytes!r}")
        return _plan_blocks_cached(self, int(nbytes), direction)


@functools.lru_cache(maxsize=4096)
def _plan_blocks_cached(cfg: "TransferConfig", nbytes: int,
                        direction: str) -> list[tuple[int, int]]:
    """Memoized block planning (frozen configs and policies are hashable)."""
    if nbytes == 0:
        return []
    if cfg.protocol == "naive":
        return [(0, nbytes)]
    bs = cfg.policy.block_bytes(nbytes, direction)
    return [(off, min(bs, nbytes - off)) for off in range(0, nbytes, bs)]


#: Default configuration: the paper's tuned adaptive pipeline.
DEFAULT_TRANSFER = TransferConfig()
#: The naive single-message protocol, for comparison curves.
NAIVE_TRANSFER = TransferConfig(protocol="naive")


def pipeline(block_bytes: int, **kw: _t.Any) -> TransferConfig:
    """Convenience constructor for a fixed-block pipeline config."""
    return TransferConfig(protocol="pipeline",
                          policy=FixedBlockPolicy(block_bytes), **kw)
