"""Cross-stream control-frame coalescing (the job service's merge point).

PR 2's per-stream batching coalesces *consecutive ops of one stream* into
BATCH frames.  A serving front door multiplexes many concurrent jobs —
different tenants, different streams — onto the same gateway rank, and
their small control frames still pay one round trip each.  The
Acceleration-as-a-Service observation (PAPERS.md, arXiv:1508.02558) is
that virtualized accelerators only pay off when those concurrent clients'
requests are aggregated at the service boundary.

:class:`FrameCoalescer` is that aggregation point: one instance per
(gateway rank, daemon) pair.  Streams and job front-ends submit
*sub-frames* (each a short list of batchable control ops under its own
request id); the coalescer's pump gathers everything submitted within a
virtual-time window and ships the merged set as a single
:data:`~repro.core.protocol.Op.MBATCH` request.  The daemon executes the
sub-frames independently (one tenant's failure never skips another's)
and replies with one response list per sub-frame.

Semantics preserved across the merge:

* **at-most-once** — the carrier frame travels under one request id and
  ``MBATCH`` is in :data:`~repro.core.protocol.DEDUP_OPS`; a retried
  merged frame replays every recorded sub-response exactly once (the
  daemon's dedup window is weighted by sub-response count so merged
  entries age out honestly);
* **span parenting** — each sub-frame carries its originating stream's
  span context out-of-band (``Request.sub_traces``), so daemon-side spans
  parent under the right tenant's trace, not the carrier's;
* **failure isolation** — a frame-level failure (timeout after retries,
  broken device) fails every waiter identically, but the coalescer itself
  is not sticky: later submissions proceed, because the waiters belong to
  unrelated jobs.

With ``window_s=0`` the pump still merges whatever accumulated while the
previous frame was in flight (flush-on-drain), which is where most of the
round-trip savings come from under load; a positive window trades a small
added latency for denser frames.
"""

from __future__ import annotations

import collections
import typing as _t

from ..obs.spans import NULL_SPAN, collector_for
from ..sim import Event
from .protocol import Op, TAG_REQUEST
from .reliability import DEFAULT_RETRY, RetryPolicy, reliable_rpc

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..mpisim import RankHandle

#: Most sub-frames merged into one MBATCH frame.  Bounds the daemon time
#: one frame can monopolize and the work a lost frame retries.
DEFAULT_MAX_MERGE = 16

#: Merged frames concurrently in flight per coalescer.  Two keeps the
#: daemon fed (one frame executing while the next accumulates and
#: travels); one would idle the daemon for a full client round trip
#: between frames, costing more than the merge saves.
DEFAULT_MAX_INFLIGHT = 2


class _SubFrame:
    """One submitted sub-frame awaiting its merged round trip."""

    __slots__ = ("sub_id", "ops", "trace", "event")

    def __init__(self, sub_id: int, ops: list, trace, event: Event):
        self.sub_id = sub_id
        self.ops = ops
        self.trace = trace
        self.event = event


class FrameCoalescer:
    """Merges concurrent sub-frames to one daemon into MBATCH frames."""

    def __init__(self, rank: "RankHandle", daemon_rank: int,
                 window_s: float = 0.0,
                 max_merge: int = DEFAULT_MAX_MERGE,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 retry: RetryPolicy | None = None,
                 name: str | None = None):
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0: {window_s!r}")
        if max_merge < 1:
            raise ValueError(f"max_merge must be >= 1: {max_merge!r}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight!r}")
        self.rank = rank
        self.daemon_rank = daemon_rank
        self.engine = rank.comm.engine
        self.window_s = window_s
        self.max_merge = max_merge
        self.max_inflight = max_inflight
        self.retry = retry or DEFAULT_RETRY
        self.name = name or f"coalesce:cn{rank.index}->r{daemon_rank}"
        self._obs = collector_for(self.engine)
        self._pending: collections.deque[_SubFrame] = collections.deque()
        self._pump = None
        self._inflight = 0
        self._slot_free: Event | None = None
        #: Accounting: sub-frames submitted, ops inside them, wire frames
        #: actually sent, and sub-frames that shared a frame with another.
        self.subs_in = 0
        self.ops_in = 0
        self.frames_out = 0
        self.merged_subs = 0
        #: reliable_rpc stats protocol (wire attempts / expired deadlines).
        self.requests = 0
        self.timeouts = 0

    @property
    def roundtrips_saved(self) -> int:
        """Daemon round trips avoided by merging, so far."""
        return self.subs_in - self.frames_out

    @property
    def merged_ratio(self) -> float:
        """Fraction of sub-frames that shared a wire frame with another."""
        return self.merged_subs / self.subs_in if self.subs_in else 0.0

    def submit(self, ops: _t.Sequence[tuple], span=NULL_SPAN):
        """Queue one sub-frame (generator); returns its response list.

        ``ops`` is the wire form ``[(op_value, params), ...]`` (scoping is
        the caller's job — see ``RemoteAccelerator.coalesced_rpc``).  The
        sub-frame gets its own request id for dedup identity and rides the
        next merged frame; this generator resumes with the list of per-op
        :class:`~repro.core.protocol.Response` objects once the daemon's
        reply lands, or raises the carrier frame's failure.
        """
        from .protocol import next_request_id
        ev = Event(self.engine)
        self._pending.append(_SubFrame(next_request_id(), list(ops),
                                       span.wire, ev))
        self.subs_in += 1
        self.ops_in += len(ops)
        self._ensure_pump()
        subs = yield ev
        return subs

    def _ensure_pump(self) -> None:
        if self._pump is None or self._pump.triggered:
            self._pump = self.engine.process(self._drain(),
                                             name=f"{self.name}:pump")

    def _drain(self):
        while self._pending:
            if self.window_s > 0.0:
                # Let concurrent jobs' submissions accumulate.  The window
                # is virtual time, so merging on/off stays deterministic.
                yield self.engine.timeout(self.window_s)
            while self._inflight >= self.max_inflight:
                # Backpressure: new submissions keep accumulating into
                # `_pending` while we wait, which is where flush-on-drain
                # merging comes from.
                self._slot_free = Event(self.engine)
                yield self._slot_free
            if not self._pending:
                return
            batch = [self._pending.popleft()
                     for _ in range(min(len(self._pending), self.max_merge))]
            self._inflight += 1
            self.engine.process(self._issue_slot(batch),
                                name=f"{self.name}:frame")

    def _issue_slot(self, batch: list[_SubFrame]):
        try:
            yield from self._issue(batch)
        finally:
            self._inflight -= 1
            if self._slot_free is not None and not self._slot_free.triggered:
                self._slot_free.succeed(None)

    def _issue(self, batch: list[_SubFrame]):
        self.frames_out += 1
        if len(batch) > 1:
            self.merged_subs += len(batch)
        params = {"reqs": [(s.sub_id, s.ops) for s in batch]}
        span = self._obs.start("coalesce.frame", f"cn{self.rank.index}",
                               subs=len(batch),
                               ops=sum(len(s.ops) for s in batch))
        try:
            with span:
                resp = yield from reliable_rpc(
                    self.rank, self.daemon_rank, TAG_REQUEST, Op.MBATCH,
                    params, self.retry, self.retry.timeout_s,
                    stats=self, span=span,
                    sub_traces=[s.trace for s in batch])
                resp.raise_for_status()
        except Exception as exc:
            # Carrier-level failure: every rider fails identically, but the
            # coalescer keeps serving — the waiters are unrelated jobs.
            for s in batch:
                s.event.fail(exc)
            return
        for s, sub in zip(batch, resp.value):
            s.event.succeed(sub)
