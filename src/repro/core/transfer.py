"""Payload chunking and reassembly shared by front-end and daemon.

Real payloads are viewed as flat uint8 and sliced into the pipeline's
blocks; :class:`~repro.mpisim.datatypes.Phantom` payloads are sliced into
phantom blocks of the same sizes, so timing-only transfers exercise the
identical protocol path.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import MiddlewareError
from ..mpisim import Phantom

#: Array metadata carried in transfer headers: (dtype string, shape tuple).
ArrayMeta = _t.Optional[tuple[str, tuple[int, ...]]]


def payload_meta(payload: _t.Any) -> ArrayMeta:
    """dtype/shape metadata of an array payload (None for raw/phantom)."""
    if isinstance(payload, np.ndarray):
        return (payload.dtype.str, payload.shape)
    return None


def as_flat_bytes(payload: _t.Any) -> np.ndarray | None:
    """Flat uint8 view of a real payload; None for phantom/timing-only."""
    if payload is None or isinstance(payload, Phantom):
        return None
    if isinstance(payload, np.ndarray):
        return np.ascontiguousarray(payload).view(np.uint8).reshape(-1)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(payload), dtype=np.uint8)
    raise MiddlewareError(
        f"unsupported bulk payload type {type(payload).__name__}; "
        "use numpy arrays, bytes, or Phantom"
    )


def slice_chunks(payload: _t.Any, blocks: list[tuple[int, int]]) -> list[_t.Any]:
    """Split a payload into per-block chunks matching ``blocks``."""
    flat = as_flat_bytes(payload)
    if flat is None:
        return [Phantom(size) for _, size in blocks]
    total = sum(size for _, size in blocks)
    if flat.nbytes != total:
        raise MiddlewareError(
            f"payload of {flat.nbytes}B does not match planned blocks ({total}B)"
        )
    return [flat[off:off + size] for off, size in blocks]


def assemble_chunks(chunks: list[_t.Any], blocks: list[tuple[int, int]],
                    meta: ArrayMeta) -> _t.Any:
    """Reassemble received chunks into an array (or a Phantom).

    Returns a typed array when ``meta`` is available, a flat uint8 array
    otherwise, or a Phantom when the transfer was timing-only.
    """
    if len(chunks) != len(blocks):
        raise MiddlewareError(
            f"got {len(chunks)} chunks for {len(blocks)} planned blocks"
        )
    total = sum(size for _, size in blocks)
    n_phantom = sum(isinstance(c, Phantom) for c in chunks)
    if n_phantom:
        if n_phantom != len(chunks):
            # Collapsing a mix to a Phantom would silently discard the
            # real chunks' data.
            raise MiddlewareError(
                f"cannot assemble mixed chunks: {n_phantom} phantom, "
                f"{len(chunks) - n_phantom} real")
        return Phantom(total)
    out = np.empty(total, dtype=np.uint8)
    for chunk, (off, size) in zip(chunks, blocks):
        arr = np.asarray(chunk, dtype=np.uint8).reshape(-1)
        if arr.nbytes != size:
            raise MiddlewareError(
                f"chunk of {arr.nbytes}B does not match block size {size}B"
            )
        out[off:off + size] = arr
    if meta is not None:
        dtype, shape = meta
        return out.view(np.dtype(dtype)).reshape(shape)
    return out
