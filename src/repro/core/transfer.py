"""Payload chunking and reassembly shared by front-end and daemon.

Real payloads are viewed as flat uint8 and sliced into the pipeline's
blocks; :class:`~repro.mpisim.datatypes.Phantom` payloads are sliced into
phantom blocks of the same sizes, so timing-only transfers exercise the
identical protocol path.

With the zero-copy plane on (the default, see :mod:`repro.buffers`),
chunks are :class:`~repro.buffers.ChunkView` windows over one shared
backing buffer: slicing allocates nothing, the MPI layer moves them by
reference, and :func:`assemble_chunks` reassembles a contiguous run of
views with a slice instead of a gather.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..buffers import ChunkView, chunk_payload, copy_stats, zero_copy_enabled
from ..errors import MiddlewareError
from ..mpisim import Phantom

#: Array metadata carried in transfer headers: (dtype string, shape tuple).
ArrayMeta = _t.Optional[tuple[str, tuple[int, ...]]]


def payload_meta(payload: _t.Any) -> ArrayMeta:
    """dtype/shape metadata of an array payload (None for raw/phantom)."""
    if isinstance(payload, np.ndarray):
        return (payload.dtype.str, payload.shape)
    return None


def as_flat_bytes(payload: _t.Any) -> np.ndarray | None:
    """Flat uint8 view of a real payload; None for phantom/timing-only.

    The result aliases the caller's memory whenever the payload is
    contiguous — including ``bytes``/``bytearray``/``memoryview``
    payloads, which are wrapped with ``np.frombuffer`` on the original
    buffer rather than round-tripped through ``bytes()``.  The view is
    marked read-only where numpy allows it; note that a ``bytearray``
    payload remains mutable through the *original* object, so callers
    loan it to the middleware until the operation completes (DESIGN.md
    §10).  Only a non-contiguous array or memoryview costs a copy.
    """
    if payload is None or isinstance(payload, Phantom):
        return None
    if isinstance(payload, ChunkView):
        return payload.array
    if isinstance(payload, np.ndarray):
        if not payload.flags.c_contiguous:
            copy_stats.count_payload_copy(payload.nbytes)
            return np.ascontiguousarray(payload).view(np.uint8).reshape(-1)
        return payload.view(np.uint8).reshape(-1)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        if isinstance(payload, memoryview) and not payload.c_contiguous:
            copy_stats.count_payload_copy(payload.nbytes)
            payload = payload.tobytes()
        flat = np.frombuffer(payload, dtype=np.uint8)
        if flat.flags.writeable:  # bytearray / writable memoryview
            flat = flat.view()
            flat.flags.writeable = False
        return flat
    raise MiddlewareError(
        f"unsupported bulk payload type {type(payload).__name__}; "
        "use numpy arrays, bytes, or Phantom"
    )


def slice_chunks(payload: _t.Any, blocks: list[tuple[int, int]]) -> list[_t.Any]:
    """Split a payload into per-block chunks matching ``blocks``.

    Zero-copy mode yields :class:`ChunkView` windows over the payload's
    flat view (one shared buffer, no allocation per block); otherwise
    plain uint8 slices, which the MPI send layer then snapshots.
    """
    flat = as_flat_bytes(payload)
    if flat is None:
        return [Phantom(size) for _, size in blocks]
    total = sum(size for _, size in blocks)
    if flat.nbytes != total:
        raise MiddlewareError(
            f"payload of {flat.nbytes}B does not match planned blocks ({total}B)"
        )
    if zero_copy_enabled():
        return [ChunkView(flat, off, size) for off, size in blocks]
    return [flat[off:off + size] for off, size in blocks]


def _assemble_views(chunks: list[ChunkView],
                    blocks: list[tuple[int, int]]) -> np.ndarray | None:
    """Slice-reassembly of a contiguous run of views over one buffer.

    Returns the flat uint8 window (read-only, zero copy) or None when the
    chunks are not one contiguous run.
    """
    first = chunks[0]
    for prev, cur in zip(chunks, chunks[1:]):
        if not cur.follows(prev):
            return None
    total = sum(size for _, size in blocks)
    if first.nbytes + sum(c.nbytes for c in chunks[1:]) != total:
        return None
    out = first.base[first.offset:first.offset + total]
    out.flags.writeable = False
    return out


def assemble_chunks(chunks: list[_t.Any], blocks: list[tuple[int, int]],
                    meta: ArrayMeta) -> _t.Any:
    """Reassemble received chunks into an array (or a Phantom).

    Returns a typed array when ``meta`` is available, a flat uint8 array
    otherwise, or a Phantom when the transfer was timing-only.  When all
    chunks are :class:`ChunkView` windows forming one contiguous run
    over a single backing buffer — the zero-copy plane's happy path —
    assembly is a slice of that buffer and copies nothing; the result is
    then a read-only snapshot view (``.copy()`` it to mutate).
    """
    if len(chunks) != len(blocks):
        raise MiddlewareError(
            f"got {len(chunks)} chunks for {len(blocks)} planned blocks"
        )
    total = sum(size for _, size in blocks)
    n_phantom = sum(isinstance(c, Phantom) for c in chunks)
    if n_phantom:
        if n_phantom != len(chunks):
            # Collapsing a mix to a Phantom would silently discard the
            # real chunks' data.
            raise MiddlewareError(
                f"cannot assemble mixed chunks: {n_phantom} phantom, "
                f"{len(chunks) - n_phantom} real")
        return Phantom(total)
    out: np.ndarray | None = None
    if chunks and all(isinstance(c, ChunkView) for c in chunks):
        out = _assemble_views(chunks, blocks)
    if out is None:
        out = np.empty(total, dtype=np.uint8)
        copy_stats.count_payload_copy(total)
        for chunk, (off, size) in zip(chunks, blocks):
            arr = chunk_payload(chunk)
            if arr.nbytes != size:
                raise MiddlewareError(
                    f"chunk of {arr.nbytes}B does not match block size {size}B"
                )
            out[off:off + size] = arr
    if meta is not None:
        dtype, shape = meta
        return out.view(np.dtype(dtype)).reshape(shape)
    return out
