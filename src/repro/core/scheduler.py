"""Multi-tenant scheduling policy: quotas, weighted fair queueing, admission.

The ARM of the paper hands out *whole* accelerators FIFO.  Serving many
concurrent tenants (the Acceleration-as-a-Service model, arXiv:1508.02558)
needs three more mechanisms, all policy and therefore kept separate from
the ARM's message loop:

* :class:`TenantSpec` — per-tenant weight, priority, and quotas;
* :class:`WeightedFairQueue` — start-time fair queueing over pending
  allocation requests, so a tenant's share of admission bandwidth tracks
  its weight and no backlogged tenant starves;
* :class:`AdmissionController` — slot capacity per physical accelerator,
  quota enforcement, deterministic placement, and preemption-victim
  selection for priority admission.

Everything here is deterministic: ties break on (tenant id, submission
sequence), never on hash order or wall clock.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import typing as _t

from ..errors import AllocationError

#: Default device-memory share of one virtual accelerator when the tenant
#: did not ask for an explicit quota: the device split evenly by slots.
DEFAULT_SLOTS_PER_DEVICE = 4


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """Identity and resource envelope of one tenant.

    ``weight`` drives weighted fair queueing (2.0 drains twice as fast as
    1.0 under backlog) and is also the WFQ share of the tenant's kernel
    launches on a shared device.  ``priority`` drives admission: a
    request may preempt an active lease of *strictly lower* priority when
    the pool is full.  ``max_vaccels`` caps concurrent virtual
    accelerators; ``mem_quota_bytes`` caps device memory per virtual
    accelerator (None = the per-slot even split).
    """

    tenant_id: str
    weight: float = 1.0
    priority: int = 0
    max_vaccels: int = 1
    mem_quota_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise AllocationError("tenant_id must be non-empty")
        if self.weight <= 0:
            raise AllocationError(f"tenant weight must be positive: {self.weight!r}")
        if self.max_vaccels < 1:
            raise AllocationError(f"max_vaccels must be >= 1: {self.max_vaccels!r}")
        if self.mem_quota_bytes is not None and self.mem_quota_bytes <= 0:
            raise AllocationError(
                f"mem_quota_bytes must be positive: {self.mem_quota_bytes!r}")


@dataclasses.dataclass
class Lease:
    """One granted virtual accelerator."""

    vac_id: int
    tenant_id: str
    ac_id: int
    share: float
    mem_bytes: int
    priority: int
    granted_at: float
    #: Set when the lease was revoked by priority preemption.
    preempted: bool = False


class WeightedFairQueue:
    """Start-time fair queueing over per-tenant request backlogs.

    Each enqueued item carries a virtual finish tag: the tenant's virtual
    clock advanced by ``cost / weight``.  ``pop()`` returns the smallest
    tag (FIFO per tenant, weighted interleave across tenants).  The
    system virtual clock advances to each dispatched tag, so a tenant
    that was idle cannot bank unbounded credit and then lock out the
    others — the no-starvation property the tests assert.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, _t.Any]] = []
        self._seq = itertools.count()
        self._removed: set[int] = set()
        self._vtime = 0.0
        self._tenant_vtime: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._heap) - len(self._removed)

    def enqueue(self, tenant_id: str, weight: float, item: _t.Any,
                cost: float = 1.0) -> int:
        """Add ``item`` to the tenant's backlog; returns a removal token."""
        if weight <= 0:
            raise AllocationError(f"weight must be positive: {weight!r}")
        start = max(self._vtime, self._tenant_vtime.get(tenant_id, 0.0))
        tag = start + cost / weight
        self._tenant_vtime[tenant_id] = tag
        seq = next(self._seq)
        heapq.heappush(self._heap, (tag, seq, tenant_id, item))
        return seq

    def _skim(self) -> None:
        heap = self._heap
        while heap and heap[0][1] in self._removed:
            self._removed.discard(heap[0][1])
            heapq.heappop(heap)

    def peek(self) -> _t.Any | None:
        """The next item in WFQ order, without removing it."""
        self._skim()
        return self._heap[0][3] if self._heap else None

    def pop(self) -> _t.Any | None:
        """Remove and return the next item in WFQ order (None if empty)."""
        self._skim()
        if not self._heap:
            return None
        tag, _, _, item = heapq.heappop(self._heap)
        self._vtime = max(self._vtime, tag)
        return item

    def remove(self, token: int) -> None:
        """Remove a queued item by its enqueue token (lazy deletion)."""
        self._removed.add(token)

    def items(self) -> list[_t.Any]:
        """Live items in WFQ order (for draining / unsatisfiability scans)."""
        return [item for tag, seq, _, item in sorted(self._heap)
                if seq not in self._removed]

    def drain(self) -> list[_t.Any]:
        """Remove and return every live item in WFQ order."""
        out = self.items()
        self._heap.clear()
        self._removed.clear()
        return out


class AdmissionController:
    """Capacity, quota, placement, and preemption policy for virtual leases.

    The controller owns no messaging: the ARM consults it and carries out
    its verdicts.  Capacity is ``slots_per_device`` virtual accelerators
    per healthy physical device; placement picks the device with the most
    free slots (ties to the lowest ``ac_id``) so load spreads evenly and
    deterministically.
    """

    def __init__(self, slots_per_device: int = DEFAULT_SLOTS_PER_DEVICE):
        if slots_per_device < 1:
            raise AllocationError(
                f"slots_per_device must be >= 1: {slots_per_device!r}")
        self.slots_per_device = slots_per_device
        self.tenants: dict[str, TenantSpec] = {}
        self.leases: dict[int, Lease] = {}        # vac_id -> lease
        self._vac_ids = itertools.count(1)
        #: Cumulative weighted service per tenant (seconds of lease time
        #: normalized by weight) — the fairness metric's raw material.
        self.service_s: dict[str, float] = {}

    # -- tenants ----------------------------------------------------------
    def register(self, spec: TenantSpec) -> None:
        """Register (or re-register, updating) a tenant."""
        self.tenants[spec.tenant_id] = spec

    def tenant(self, tenant_id: str) -> TenantSpec:
        spec = self.tenants.get(tenant_id)
        if spec is None:
            raise AllocationError(f"unknown tenant {tenant_id!r}")
        return spec

    def active_vaccels(self, tenant_id: str) -> int:
        return sum(1 for lease in self.leases.values()
                   if lease.tenant_id == tenant_id and not lease.preempted)

    # -- capacity ---------------------------------------------------------
    def used_slots(self, ac_id: int) -> int:
        return sum(1 for lease in self.leases.values()
                   if lease.ac_id == ac_id and not lease.preempted)

    def free_slots(self, healthy_acs: _t.Sequence[int]) -> int:
        return sum(self.slots_per_device - self.used_slots(ac)
                   for ac in healthy_acs)

    def place(self, healthy_acs: _t.Sequence[int]) -> int | None:
        """The device to host one more lease, or None when full."""
        best: int | None = None
        best_free = 0
        for ac in sorted(healthy_acs):
            free = self.slots_per_device - self.used_slots(ac)
            if free > best_free:
                best, best_free = ac, free
        return best

    def find_victim(self, priority: int) -> Lease | None:
        """The active lease to preempt for a request at ``priority``.

        Only leases of *strictly lower* priority qualify; among those the
        lowest priority loses, oldest grant first (its tenant had the
        longest service), vac id as the final deterministic tie-break.
        """
        candidates = [lease for lease in self.leases.values()
                      if not lease.preempted and lease.priority < priority]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda le: (le.priority, le.granted_at, le.vac_id))

    # -- lease lifecycle --------------------------------------------------
    def grant(self, tenant_id: str, ac_id: int, mem_bytes: int,
              now: float) -> Lease:
        spec = self.tenant(tenant_id)
        lease = Lease(vac_id=next(self._vac_ids), tenant_id=tenant_id,
                      ac_id=ac_id, share=spec.weight, mem_bytes=mem_bytes,
                      priority=spec.priority, granted_at=now)
        self.leases[lease.vac_id] = lease
        return lease

    def end(self, vac_id: int, now: float) -> Lease:
        """Finish a lease (release or preemption) and account its service."""
        lease = self.leases.pop(vac_id, None)
        if lease is None:
            raise AllocationError(f"unknown virtual accelerator {vac_id}")
        held = max(now - lease.granted_at, 0.0)
        spec = self.tenants.get(lease.tenant_id)
        weight = spec.weight if spec is not None else 1.0
        self.service_s[lease.tenant_id] = (
            self.service_s.get(lease.tenant_id, 0.0) + held / weight)
        return lease


def jain_fairness(values: _t.Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one-taker.

    Computed over per-tenant weighted service; equal weighted service
    across tenants means the scheduler honoured the weights exactly.
    """
    vals = [v for v in values if v >= 0]
    if not vals:
        return 1.0
    total = sum(vals)
    if total == 0:
        return 1.0
    square_sum = sum(v * v for v in vals)
    return (total * total) / (len(vals) * square_sum)
