"""The Accelerator Resource Manager (ARM) and its client API.

The ARM (Sect. III-B2) maintains which accelerators are free, assigned, or
broken, and answers allocation requests from compute nodes with exclusive
:class:`~repro.core.protocol.AcceleratorHandle` s.  Both assignment
strategies of Figure 3 are supported:

* **static** — accelerators are requested before the job's compute phase
  starts and held for the job's duration;
* **dynamic** — compute-node processes allocate and release at runtime via
  the resource-management API (:class:`ArmClient`); unsatisfiable requests
  may wait FIFO until a release frees capacity.

Beyond the paper's whole-device model, the ARM is also a multi-tenant
scheduler: tenants register a :class:`~repro.core.scheduler.TenantSpec`
(weight / priority / quotas) and lease *virtual* accelerators
(:class:`~repro.core.protocol.VirtualAcceleratorHandle`) that are
multiplexed onto physical devices — ``slots_per_device`` leases per
device, memory quota'd per lease, kernel time shared by WFQ inside the
device's :class:`~repro.gpusim.device.GPUTimeSlicer`.  Admission applies
weighted fair queueing to backlogged lease requests and priority
preemption when the pool is full: the lowest-priority active lease below
the requester's priority is revoked (its daemon is told with a one-way
``VAC_REVOKE``), and its tenant discovers the revocation as
``Status.PREEMPTED`` on its next operation, which the resilience layer
turns into a reacquire-and-replay.

The ARM also records per-accelerator assignment time so the economy claim
(improved utilization) is measurable.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing as _t

from ..errors import AllocationError
from ..mpisim import RankHandle
from .protocol import (
    AcceleratorHandle,
    Op,
    Request,
    Response,
    Status,
    TAG_ARM,
    TAG_REQUEST,
    VirtualAcceleratorHandle,
    next_request_id,
    reply_tag,
)
from .reliability import DEFAULT_RETRY, RetryPolicy, reliable_rpc
from .scheduler import (
    DEFAULT_SLOTS_PER_DEVICE,
    AdmissionController,
    TenantSpec,
    WeightedFairQueue,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import AcceleratorNode


class AcceleratorState(enum.Enum):
    FREE = "free"
    ASSIGNED = "assigned"
    BROKEN = "broken"


@dataclasses.dataclass
class AcceleratorRecord:
    """ARM-side bookkeeping for one accelerator."""

    ac_id: int
    daemon_rank: int
    state: AcceleratorState = AcceleratorState.FREE
    owner_rank: int | None = None
    job: str | None = None
    #: Fabric switch the device hangs off (None on a single switch);
    #: drives topology-aware multi-device placement.
    switch: str | None = None
    #: Total seconds spent in ASSIGNED state (utilization accounting).
    assigned_seconds: float = 0.0
    _assigned_at: float | None = None
    #: Completed assignment intervals as (start, end) virtual times, so
    #: windowed utilization can intersect them with the window instead of
    #: mis-charging pre-window service to it.
    _history: list[tuple[float, float]] = dataclasses.field(
        default_factory=list, repr=False)

    def handle(self) -> AcceleratorHandle:
        return AcceleratorHandle(ac_id=self.ac_id, daemon_rank=self.daemon_rank)


class ResourceManager:
    """The ARM service process."""

    def __init__(self, rank: RankHandle,
                 accelerators: _t.Sequence[tuple[int, int]],
                 slots_per_device: int = DEFAULT_SLOTS_PER_DEVICE,
                 topology: _t.Any = None,
                 switches: _t.Mapping[int, str | None] | None = None):
        """``accelerators`` is a list of (ac_id, daemon_rank) pairs.

        ``topology`` (a :class:`~repro.netsim.Topology`) plus a
        ``switches`` map (ac_id → switch name) turn on topology-aware
        placement: multi-device allocations prefer co-located devices.
        """
        self.rank = rank
        self.engine = rank.comm.engine
        self.topology = topology
        self._switches = dict(switches) if switches else {}
        self.records: dict[int, AcceleratorRecord] = {
            ac_id: AcceleratorRecord(ac_id=ac_id, daemon_rank=daemon_rank,
                                     switch=self._switches.get(ac_id))
            for ac_id, daemon_rank in accelerators
        }
        #: FIFO of whole-device allocation requests waiting for capacity.
        self._wait_queue: collections.deque[tuple[Request]] = collections.deque()
        #: Admission policy and WFQ backlog for virtual-accelerator leases.
        self.admission = AdmissionController(slots_per_device)
        self._vqueue = WeightedFairQueue()
        #: Leases ended by preemption or device failure, so a tenant's
        #: eventual ``vrelease`` of a revoked handle succeeds idempotently.
        self._revoked_vacs: set[int] = set()
        self._stopped = False
        self._hb_proc = None
        self._hb_stop = False
        #: Accelerators evicted by the health monitor (metrics).
        self.heartbeat_evictions = 0
        #: Leases revoked to admit higher-priority tenants (metrics).
        self.preemptions = 0
        # -- resource discovery (dynamic pool membership) --
        #: Last report time per discovered accelerator.  Statically
        #: rostered devices never enter this map, so the TTL sweeper
        #: cannot evict them and the static path behaves as before.
        self._last_seen: dict[int, float] = {}
        #: Ordered pool-membership log: ``(time, kind, ac_id)`` with kind
        #: in {join, rejoin, leave[:reason], evict, break, repair}.  The
        #: chaos scorer derives recovery latency from it.
        self.pool_events: list[tuple[float, str, int]] = []
        self.joins = 0
        self.leaves = 0
        self.ttl_evictions = 0
        self.discovery_ttl_s: float | None = None
        self._sweep_proc = None
        self._sweep_stop = False
        self.proc = self.engine.process(self._serve(), name="arm")

    # -- queries (direct, for tests and metrics) -------------------------
    def free_count(self) -> int:
        return sum(1 for r in self.records.values()
                   if r.state == AcceleratorState.FREE)

    def _pool_capacity(self) -> int:
        """Devices that could *ever* satisfy a request (non-BROKEN)."""
        return sum(1 for r in self.records.values()
                   if r.state != AcceleratorState.BROKEN)

    def _healthy_acs(self) -> list[int]:
        """Devices eligible to host virtual leases (non-BROKEN)."""
        return [r.ac_id for r in self.records.values()
                if r.state != AcceleratorState.BROKEN]

    def lease_count(self, tenant: str | None = None) -> int:
        """Active virtual leases (optionally one tenant's)."""
        if tenant is None:
            return len(self.admission.leases)
        return self.admission.active_vaccels(tenant)

    def snapshot(self) -> dict[int, dict]:
        """Current registry state, finalized assignment times included."""
        out = {}
        for r in self.records.values():
            assigned = r.assigned_seconds
            if r._assigned_at is not None:
                assigned += self.engine.now - r._assigned_at
            out[r.ac_id] = {
                "state": r.state.value,
                "owner_rank": r.owner_rank,
                "job": r.job,
                "assigned_seconds": assigned,
                "leases": self.admission.used_slots(r.ac_id),
                "switch": r.switch,
            }
        return out

    def hop_distance(self, ac_a: int, ac_b: int) -> int:
        """Trunk hops between two pool devices (0 without a topology)."""
        if self.topology is None:
            return 0
        ra, rb = self.records.get(ac_a), self.records.get(ac_b)
        if ra is None or rb is None or ra.switch is None or rb.switch is None:
            return 0
        return self.topology.hops(ra.switch, rb.switch)

    def utilization(self, elapsed: float | None = None) -> float:
        """Mean assigned-time fraction over all accelerators.

        ``elapsed`` restricts accounting to the last ``elapsed`` seconds
        of virtual time: each assignment interval contributes only its
        overlap with ``[now - elapsed, now]``, so service completed before
        the window is not charged against it, and each accelerator's
        contribution (including in-flight assignments) is clamped to the
        window so the fraction never exceeds 1.0.
        """
        now = self.engine.now
        total = elapsed if elapsed is not None else now
        if total <= 0 or not self.records:
            return 0.0
        w0 = now - total
        acc = 0.0
        for r in self.records.values():
            assigned = 0.0
            for start, end in r._history:
                if end > w0:
                    assigned += end - max(start, w0)
            if r._assigned_at is not None:
                assigned += now - max(r._assigned_at, w0)
            acc += min(assigned, total)
        return acc / (total * len(self.records))

    # -- service loop -----------------------------------------------------
    def _serve(self):
        while not self._stopped:
            msg = yield from self.rank.recv(tag=TAG_ARM)
            req: Request = msg.payload
            if req.op == Op.SHUTDOWN:
                self._drain_on_shutdown()
                self._reply(req, Response(req.req_id, Status.OK))
                self._stopped = True
                break
            handler = {
                Op.ARM_ALLOC: self._alloc,
                Op.ARM_RELEASE: self._release,
                Op.ARM_STATUS: self._status,
                Op.ARM_BREAK: self._break,
                Op.ARM_REPAIR: self._repair,
                Op.ARM_TENANT: self._tenant,
                Op.ARM_VALLOC: self._valloc,
                Op.ARM_VRELEASE: self._vrelease,
                Op.ARM_REPORT: self._report,
                Op.ARM_LEAVE: self._leave,
            }.get(req.op)
            if handler is None:
                self._reply(req, Response(req.req_id, Status.ERROR,
                                          error=f"unsupported ARM op {req.op}"))
                continue
            handler(req)

    def _reply(self, req: Request, resp: Response) -> None:
        self.rank.isend(req.reply_to, reply_tag(req.req_id), resp)

    def _drain_on_shutdown(self) -> None:
        """Answer every queued waiter before stopping.

        Without this, requests parked in a wait queue when the ARM shuts
        down are stranded forever: their clients wait on a reply tag
        nobody will ever send to.
        """
        while self._wait_queue:
            (req,) = self._wait_queue.popleft()
            self._reply(req, Response(req.req_id, Status.UNAVAILABLE,
                                      error="ARM shutting down"))
        for req in self._vqueue.drain():
            self._reply(req, Response(req.req_id, Status.UNAVAILABLE,
                                      error="ARM shutting down"))

    # -- whole-device allocation ------------------------------------------
    def _alloc(self, req: Request) -> None:
        n = req.params.get("count", 1)
        if n <= 0:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"invalid count {n!r}"))
            return
        capacity = self._pool_capacity()
        if n > capacity:
            # Never-satisfiable: more devices than exist outside BROKEN.
            # Queueing it (even with wait=True) would deadlock the client.
            self._reply(req, Response(
                req.req_id, Status.UNAVAILABLE,
                error=f"{n} accelerator(s) requested but the pool "
                      f"holds only {capacity}"))
            return
        if not self._try_assign(req):
            if req.params.get("wait", True):
                self._wait_queue.append((req,))
            else:
                self._reply(req, Response(
                    req.req_id, Status.UNAVAILABLE,
                    error=f"only {self.free_count()} accelerator(s) free, "
                          f"{n} requested"))

    def _try_assign(self, req: Request) -> bool:
        n = req.params.get("count", 1)
        free = [r for r in self.records.values()
                if r.state == AcceleratorState.FREE
                and self.admission.used_slots(r.ac_id) == 0]
        if len(free) < n:
            return False
        chosen = self._place(free, n)
        for r in chosen:
            r.state = AcceleratorState.ASSIGNED
            r.owner_rank = req.reply_to
            r.job = req.params.get("job")
            r._assigned_at = self.engine.now
        self._reply(req, Response(req.req_id, Status.OK,
                                  value=[r.handle() for r in chosen]))
        return True

    def _place(self, free: list[AcceleratorRecord],
               n: int) -> list[AcceleratorRecord]:
        """Pick ``n`` devices from ``free``, topology-aware when possible.

        Without a topology (or for single-device requests) the historical
        lowest-id order applies.  With one, every free device's switch is
        tried as an anchor: the candidate set ranks the pool by
        ``(hops-from-anchor, ac_id)`` and the anchor whose top-``n`` has
        the smallest ``(max hop, total hops, ids)`` wins — same-switch
        groups first, then tight neighbourhoods, ids as the final
        deterministic tie-break (which also reproduces the historical
        choice whenever hops tie, e.g. all devices co-located).
        """
        if self.topology is None or n <= 1:
            return sorted(free, key=lambda r: r.ac_id)[:n]
        hops = self.topology.hops
        best = None
        for anchor in sorted({r.switch for r in free if r.switch}):
            ranked = sorted(
                free, key=lambda r: (hops(anchor, r.switch)
                                     if r.switch else len(self.topology.trunks),
                                     r.ac_id))[:n]
            dists = [hops(anchor, r.switch) for r in ranked if r.switch]
            score = (max(dists, default=0), sum(dists),
                     tuple(r.ac_id for r in ranked))
            if best is None or score < best[0]:
                best = (score, ranked)
        if best is None:  # no free device knows its switch
            return sorted(free, key=lambda r: r.ac_id)[:n]
        return best[1]

    def _release(self, req: Request) -> None:
        ac_ids = req.params.get("ac_ids", [])
        if len(set(ac_ids)) != len(ac_ids):
            # Reject before mutating anything: a duplicated id would
            # otherwise be finalized twice.
            self._reply(req, Response(req.req_id, Status.DENIED,
                                      error=f"duplicate ac_ids in release: "
                                            f"{sorted(ac_ids)}"))
            return
        records = []
        for ac_id in ac_ids:
            r = self.records.get(ac_id)
            if r is None or r.state != AcceleratorState.ASSIGNED:
                self._reply(req, Response(req.req_id, Status.DENIED,
                                          error=f"ac{ac_id} is not assigned"))
                return
            if r.owner_rank != req.reply_to:
                self._reply(req, Response(
                    req.req_id, Status.DENIED,
                    error=f"ac{ac_id} is owned by rank {r.owner_rank}, "
                          f"not {req.reply_to}"))
                return
            records.append(r)
        for r in records:
            self._finish_assignment(r)
            r.state = AcceleratorState.FREE
        self._reply(req, Response(req.req_id, Status.OK))
        self._drain_queue()
        self._drain_vqueue()

    def _finish_assignment(self, r: AcceleratorRecord) -> None:
        if r._assigned_at is not None:
            r.assigned_seconds += self.engine.now - r._assigned_at
            r._history.append((r._assigned_at, self.engine.now))
            r._assigned_at = None
        r.owner_rank = None
        r.job = None

    def _drain_queue(self) -> None:
        while self._wait_queue:
            (req,) = self._wait_queue[0]
            if not self._try_assign(req):
                break
            self._wait_queue.popleft()

    def _status(self, req: Request) -> None:
        self._reply(req, Response(req.req_id, Status.OK, value=self.snapshot()))

    def _break(self, req: Request) -> None:
        ac_id = req.params["ac_id"]
        r = self.records.get(ac_id)
        if r is None:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"unknown accelerator {ac_id}"))
            return
        self._mark_broken(r)
        self._reply(req, Response(req.req_id, Status.OK))

    def _mark_broken(self, r: AcceleratorRecord) -> None:
        if r.state == AcceleratorState.BROKEN:
            # Concurrent failure detectors (heartbeat eviction racing an
            # explicit ARM_BREAK or an unhealthy discovery report) must
            # converge on one transition: a second mark would revoke
            # leases twice and double-log the pool event.
            return
        if r.state == AcceleratorState.ASSIGNED:
            self._finish_assignment(r)
        r.state = AcceleratorState.BROKEN
        # Leases hosted on the failed device are gone with it.
        for lease in list(self.admission.leases.values()):
            if lease.ac_id == r.ac_id:
                self._revoke_lease(lease.vac_id, notify=False)
        self._log_pool("break", r.ac_id)
        self._fail_unsatisfiable()

    def _fail_unsatisfiable(self) -> None:
        """Answer waiters that a shrunken pool can never satisfy.

        Called whenever a device leaves the pool (``_break`` or heartbeat
        eviction): a queued ``alloc(count=N)`` with N above the surviving
        capacity would otherwise wait forever.
        """
        capacity = self._pool_capacity()
        kept: collections.deque[tuple[Request]] = collections.deque()
        while self._wait_queue:
            (req,) = self._wait_queue.popleft()
            n = req.params.get("count", 1)
            if n > capacity:
                self._reply(req, Response(
                    req.req_id, Status.UNAVAILABLE,
                    error=f"{n} accelerator(s) requested but the pool "
                          f"shrank to {capacity}"))
            else:
                kept.append((req,))
        self._wait_queue = kept
        if capacity == 0:
            for req in self._vqueue.drain():
                self._reply(req, Response(
                    req.req_id, Status.UNAVAILABLE,
                    error="no healthy accelerators remain"))

    # -- resource discovery (dynamic pool membership) ---------------------
    def _log_pool(self, kind: str, ac_id: int) -> None:
        self.pool_events.append((self.engine.now, kind, ac_id))

    def _pool_grew(self) -> None:
        """Wake queued waiters after pool growth — exactly once each.

        Both drains reply-and-pop atomically inside the calling handler
        (no yields between the capacity change and the drain), so a waiter
        the new capacity satisfies is answered exactly once, and waiters
        that still do not fit stay queued untouched.
        """
        self._drain_queue()
        self._drain_vqueue()

    def _report(self, req: Request) -> None:
        """A daemon's periodic capability/health report (one-way).

        Unknown healthy reporters join the pool as FREE; a BROKEN record
        reporting healthy again rejoins; an unhealthy report is a failure
        detection.  Re-reports of known healthy devices only refresh the
        TTL clock — no queue drains, no state clobbering.
        """
        p = req.params
        ac_id = p["ac_id"]
        r = self.records.get(ac_id)
        healthy = p.get("healthy", True)
        if r is None:
            if not healthy:
                return  # never admit a device reporting itself unhealthy
            self.records[ac_id] = AcceleratorRecord(
                ac_id=ac_id, daemon_rank=p["daemon_rank"],
                switch=p.get("switch", self._switches.get(ac_id)))
            self._last_seen[ac_id] = self.engine.now
            self.joins += 1
            self._log_pool("join", ac_id)
            self._pool_grew()
            return
        self._last_seen[ac_id] = self.engine.now
        if not healthy:
            self._mark_broken(r)
            return
        if r.state == AcceleratorState.BROKEN:
            r.state = AcceleratorState.FREE
            r.daemon_rank = p.get("daemon_rank", r.daemon_rank)
            self.joins += 1
            self._log_pool("rejoin", ac_id)
            self._pool_grew()

    def _leave(self, req: Request) -> None:
        """A daemon's graceful departure notice (one-way)."""
        r = self.records.get(req.params["ac_id"])
        if r is None:
            return  # already evicted or never joined: idempotent
        reason = req.params.get("reason")
        self._remove_record(r, f"leave:{reason}" if reason else "leave",
                            notify=True)

    def _remove_record(self, r: AcceleratorRecord, kind: str,
                       notify: bool) -> None:
        """Take a device out of the pool entirely (leave or TTL eviction).

        Unlike BROKEN (device present but failed), removal forgets the
        record: a later discovery report from the same ``ac_id`` is a
        fresh join.  Hosted leases are revoked (``notify`` as in
        :meth:`_revoke_lease`) and waiters the shrunken pool can never
        satisfy are answered.
        """
        if r.state == AcceleratorState.ASSIGNED:
            self._finish_assignment(r)
        for lease in list(self.admission.leases.values()):
            if lease.ac_id == r.ac_id:
                self._revoke_lease(lease.vac_id, notify=notify)
        del self.records[r.ac_id]
        self._last_seen.pop(r.ac_id, None)
        self.leaves += 1
        self._log_pool(kind, r.ac_id)
        self._fail_unsatisfiable()

    def enable_discovery(self, ttl_s: float,
                         sweep_period_s: float | None = None,
                         rounds: int | None = None):
        """Start the TTL sweeper that ages out silent discovered devices.

        A discovered device whose last report is older than ``ttl_s`` is
        removed from the pool (crash, partition, or a straggler too slow
        to publish on time — gray failures look identical from here).
        Statically rostered devices have no ``_last_seen`` entry and are
        never swept.  ``rounds`` bounds the sweeper's lifetime (``None``
        keeps the event queue non-empty forever; bound the run).
        """
        self.discovery_ttl_s = ttl_s
        if sweep_period_s is None:
            sweep_period_s = ttl_s / 2.0
        if self._sweep_proc is not None and self._sweep_proc.is_alive:
            return self._sweep_proc
        self._sweep_stop = False
        self._sweep_proc = self.engine.process(
            self._sweep(ttl_s, sweep_period_s, rounds), name="arm-sweep")
        return self._sweep_proc

    def stop_discovery(self) -> None:
        """Ask the TTL sweeper to exit after its current round."""
        self._sweep_stop = True

    def _sweep(self, ttl_s: float, period_s: float, rounds: int | None):
        done = 0
        while not (self._stopped or self._sweep_stop):
            if rounds is not None and done >= rounds:
                break
            yield self.engine.timeout(period_s)
            done += 1
            cutoff = self.engine.now - ttl_s
            for ac_id, seen in sorted(self._last_seen.items()):
                if seen >= cutoff:
                    continue
                r = self.records.get(ac_id)
                if r is None:  # pragma: no cover - defensive
                    self._last_seen.pop(ac_id, None)
                    continue
                self.ttl_evictions += 1
                self._remove_record(r, "evict", notify=False)

    # -- multi-tenant leases ----------------------------------------------
    def _tenant(self, req: Request) -> None:
        try:
            spec = TenantSpec(
                tenant_id=req.params["tenant"],
                weight=req.params.get("weight", 1.0),
                priority=req.params.get("priority", 0),
                max_vaccels=req.params.get("max_vaccels", 1),
                mem_quota_bytes=req.params.get("mem_quota_bytes"))
        except (AllocationError, KeyError) as exc:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"invalid tenant spec: {exc}"))
            return
        self.admission.register(spec)
        self._reply(req, Response(req.req_id, Status.OK))

    def _valloc(self, req: Request) -> None:
        tenant = req.params.get("tenant")
        spec = self.admission.tenants.get(tenant)
        if spec is None:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"unknown tenant {tenant!r}"))
            return
        if self.admission.active_vaccels(tenant) >= spec.max_vaccels:
            # Quota violations never queue: waiting cannot make the
            # tenant's own cap larger, and its other leases releasing
            # would race its own backlog.  Admission control says no.
            self._reply(req, Response(
                req.req_id, Status.DENIED,
                error=f"tenant {tenant!r} is at its max_vaccels quota "
                      f"({spec.max_vaccels})"))
            return
        if not self._healthy_acs():
            self._reply(req, Response(req.req_id, Status.UNAVAILABLE,
                                      error="no healthy accelerators remain"))
            return
        if self._try_vassign(req, spec):
            return
        if req.params.get("wait", True):
            self._vqueue.enqueue(tenant, spec.weight, req)
        else:
            self._reply(req, Response(
                req.req_id, Status.UNAVAILABLE,
                error="no virtual-accelerator slot free"))

    def _try_vassign(self, req: Request, spec: TenantSpec) -> bool:
        """Place a lease, preempting a lower-priority one when full."""
        healthy = self._healthy_acs()
        ac_id = self.admission.place(healthy)
        if ac_id is None:
            victim = self.admission.find_victim(spec.priority)
            if victim is None:
                return False
            self._revoke_lease(victim.vac_id, notify=True)
            self.preemptions += 1
            ac_id = self.admission.place(healthy)
            if ac_id is None:  # pragma: no cover - victim freed its slot
                return False
        lease = self.admission.grant(spec.tenant_id, ac_id,
                                     spec.mem_quota_bytes or 0,
                                     self.engine.now)
        record = self.records[ac_id]
        handle = VirtualAcceleratorHandle(
            vac_id=lease.vac_id, ac_id=ac_id,
            daemon_rank=record.daemon_rank, tenant=spec.tenant_id)
        self._reply(req, Response(req.req_id, Status.OK, value={
            "vac": handle,
            "share": spec.weight,
            "mem_quota": spec.mem_quota_bytes,
        }))
        return True

    def _revoke_lease(self, vac_id: int, notify: bool) -> None:
        """End a lease by force (preemption or device failure).

        ``notify`` sends the one-way ``VAC_REVOKE`` to the hosting daemon
        so the slice stops accepting work and frees its memory; device
        failure skips it (the daemon is gone, and a silently dropped
        message would be fine anyway).
        """
        lease = self.admission.end(vac_id, self.engine.now)
        lease.preempted = True
        self._revoked_vacs.add(vac_id)
        if notify:
            record = self.records[lease.ac_id]
            self.rank.isend(record.daemon_rank, TAG_REQUEST, Request(
                op=Op.VAC_REVOKE, req_id=next_request_id(),
                reply_to=self.rank.index,
                params={"vac_id": vac_id, "oneway": True}))

    def _vrelease(self, req: Request) -> None:
        vac_id = req.params.get("vac_id")
        tenant = req.params.get("tenant")
        lease = self.admission.leases.get(vac_id)
        if lease is None:
            if vac_id in self._revoked_vacs:
                # The lease was already torn down by preemption or device
                # failure — releasing it again is the tenant noticing.
                self._revoked_vacs.discard(vac_id)
                self._reply(req, Response(req.req_id, Status.OK,
                                          value={"revoked": True}))
            else:
                self._reply(req, Response(
                    req.req_id, Status.DENIED,
                    error=f"unknown virtual accelerator {vac_id}"))
            return
        if lease.tenant_id != tenant:
            self._reply(req, Response(
                req.req_id, Status.DENIED,
                error=f"vac{vac_id} belongs to {lease.tenant_id!r}, "
                      f"not {tenant!r}"))
            return
        self.admission.end(vac_id, self.engine.now)
        self._reply(req, Response(req.req_id, Status.OK,
                                  value={"revoked": False}))
        self._drain_vqueue()
        # A device with no leases left is whole-device allocatable again.
        self._drain_queue()

    def _drain_vqueue(self) -> None:
        while len(self._vqueue):
            req = self._vqueue.peek()
            tenant = req.params.get("tenant")
            spec = self.admission.tenants.get(tenant)
            if spec is None:  # pragma: no cover - spec removed while queued
                self._vqueue.pop()
                self._reply(req, Response(req.req_id, Status.ERROR,
                                          error=f"unknown tenant {tenant!r}"))
                continue
            if self.admission.active_vaccels(tenant) >= spec.max_vaccels:
                # Quota filled by an earlier grant while this one queued.
                self._vqueue.pop()
                self._reply(req, Response(
                    req.req_id, Status.DENIED,
                    error=f"tenant {tenant!r} is at its max_vaccels quota "
                          f"({spec.max_vaccels})"))
                continue
            healthy = self._healthy_acs()
            if self.admission.place(healthy) is None:
                break
            self._vqueue.pop()
            self._try_vassign(req, spec)

    # -- health checking --------------------------------------------------
    def start_heartbeat(self, period_s: float = 1e-3,
                        timeout_s: float = 0.5e-3,
                        rounds: int | None = None):
        """Start probing every registered daemon with PINGs.

        Each round (every ``period_s`` of virtual time) the ARM pings every
        non-broken accelerator and races the reply against ``timeout_s``.
        A ``Status.BROKEN`` reply or a missed deadline evicts the
        accelerator: it is marked BROKEN — and therefore leaves the free
        pool before it can be handed to anyone.  ``rounds`` bounds the
        monitor's lifetime (``None`` = run until :meth:`stop_heartbeat` or
        ARM shutdown — note that an unbounded monitor keeps the event queue
        non-empty forever).  Returns the monitor process.
        """
        if self._hb_proc is not None and self._hb_proc.is_alive:
            return self._hb_proc
        self._hb_stop = False
        self._hb_proc = self.engine.process(
            self._heartbeat(period_s, timeout_s, rounds), name="arm-heartbeat")
        return self._hb_proc

    def stop_heartbeat(self) -> None:
        """Ask the health monitor to exit after its current round."""
        self._hb_stop = True

    def _heartbeat(self, period_s: float, timeout_s: float,
                   rounds: int | None):
        done = 0
        while not (self._stopped or self._hb_stop):
            if rounds is not None and done >= rounds:
                break
            yield self.engine.timeout(period_s)
            done += 1
            for r in list(self.records.values()):
                if self._stopped or self._hb_stop:
                    break
                if r.state == AcceleratorState.BROKEN:
                    continue
                req_id = next_request_id()
                rreq = self.rank.irecv(source=r.daemon_rank,
                                       tag=reply_tag(req_id))
                self.rank.isend(r.daemon_rank, TAG_REQUEST,
                                Request(op=Op.PING, req_id=req_id,
                                        reply_to=self.rank.index,
                                        params={"heartbeat": True}))
                cond, dl = self.engine.race(rreq.done, timeout_s)
                yield cond
                healthy = (rreq.completed
                           and rreq.message.payload.status == Status.OK)
                if rreq.completed and not dl.processed:
                    dl.cancel()
                if not rreq.completed:
                    # Missed deadline: cancel the posted receive so each
                    # missed round doesn't leak a posted irecv, and the
                    # late PING reply (if it ever lands) is discarded
                    # instead of accumulating in the unexpected queue.
                    self.rank.cancel_recv(rreq)
                if not healthy and r.state != AcceleratorState.BROKEN:
                    self.heartbeat_evictions += 1
                    self._mark_broken(r)

    def _repair(self, req: Request) -> None:
        ac_id = req.params["ac_id"]
        r = self.records.get(ac_id)
        if r is None or r.state != AcceleratorState.BROKEN:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"ac{ac_id} is not broken"))
            return
        r.state = AcceleratorState.FREE
        self._log_pool("repair", r.ac_id)
        self._reply(req, Response(req.req_id, Status.OK))
        self._pool_grew()


class ArmClient:
    """The resource-management API used by compute-node processes."""

    def __init__(self, rank: RankHandle, arm_rank: int,
                 retry: RetryPolicy | None = None):
        self.rank = rank
        self.arm_rank = arm_rank
        self.retry = retry or DEFAULT_RETRY
        self.requests = 0
        self.timeouts = 0

    _USE_POLICY = object()  # sentinel: defer to the retry policy's timeout

    def _rpc(self, op: Op, params: dict, timeout_s=_USE_POLICY):
        if timeout_s is ArmClient._USE_POLICY:
            timeout_s = self.retry.timeout_s
        resp = yield from reliable_rpc(
            self.rank, self.arm_rank, TAG_ARM, op, params, self.retry,
            timeout_s, stats=self)
        resp.raise_for_status()
        return resp

    def alloc(self, count: int = 1, wait: bool = True, job: str | None = None):
        """Request ``count`` exclusive accelerators (generator).

        With ``wait=True`` the request queues FIFO until satisfiable (the
        batch-script style of Sect. V-B) — deadlines are suspended for the
        open-ended wait; with ``wait=False`` it fails immediately with
        :class:`AllocationError` when capacity is short.  A request for
        more accelerators than the pool could ever provide fails
        immediately in both modes instead of waiting forever.  Returns a
        list of :class:`AcceleratorHandle`.
        """
        resp = yield from self._rpc(Op.ARM_ALLOC,
                                    {"count": count, "wait": wait, "job": job},
                                    timeout_s=None if wait else ArmClient._USE_POLICY)
        return resp.value

    def release(self, handles: _t.Sequence[AcceleratorHandle]):
        """Return accelerators to the pool (generator)."""
        yield from self._rpc(Op.ARM_RELEASE,
                             {"ac_ids": [h.ac_id for h in handles]})

    def status(self):
        """ARM registry snapshot (generator)."""
        resp = yield from self._rpc(Op.ARM_STATUS, {})
        return resp.value

    def report_break(self, ac_id: int):
        """Report a failed accelerator to the ARM (generator)."""
        yield from self._rpc(Op.ARM_BREAK, {"ac_id": ac_id})

    def report_repair(self, ac_id: int):
        """Return a repaired accelerator to the pool (generator)."""
        yield from self._rpc(Op.ARM_REPAIR, {"ac_id": ac_id})

    # -- multi-tenant API -------------------------------------------------
    def register_tenant(self, tenant: str, weight: float = 1.0,
                        priority: int = 0, max_vaccels: int = 1,
                        mem_quota_bytes: int | None = None):
        """Register (or update) a tenant's scheduling spec (generator)."""
        yield from self._rpc(Op.ARM_TENANT, {
            "tenant": tenant, "weight": weight, "priority": priority,
            "max_vaccels": max_vaccels, "mem_quota_bytes": mem_quota_bytes})

    def valloc(self, tenant: str, wait: bool = True, job: str | None = None):
        """Lease one virtual accelerator for ``tenant`` (generator).

        Returns ``{"vac": VirtualAcceleratorHandle, "share": float,
        "mem_quota": int | None}`` — the share and quota the hosting
        daemon must apply at :data:`Op.VAC_ATTACH`.  With ``wait=True``
        the request joins the ARM's weighted fair queue under backlog;
        quota violations (tenant at ``max_vaccels``) fail immediately in
        both modes.
        """
        resp = yield from self._rpc(
            Op.ARM_VALLOC, {"tenant": tenant, "wait": wait, "job": job},
            timeout_s=None if wait else ArmClient._USE_POLICY)
        return resp.value

    def vrelease(self, handle: VirtualAcceleratorHandle):
        """Return a virtual accelerator (generator).

        Succeeds (with ``{"revoked": True}``) when the lease was already
        torn down by preemption or device failure, so reacquire paths can
        release unconditionally.
        """
        resp = yield from self._rpc(Op.ARM_VRELEASE, {
            "vac_id": handle.vac_id, "tenant": handle.tenant})
        return resp.value
