"""The Accelerator Resource Manager (ARM) and its client API.

The ARM (Sect. III-B2) maintains which accelerators are free, assigned, or
broken, and answers allocation requests from compute nodes with exclusive
:class:`~repro.core.protocol.AcceleratorHandle` s.  Both assignment
strategies of Figure 3 are supported:

* **static** — accelerators are requested before the job's compute phase
  starts and held for the job's duration;
* **dynamic** — compute-node processes allocate and release at runtime via
  the resource-management API (:class:`ArmClient`); unsatisfiable requests
  may wait FIFO until a release frees capacity.

The ARM also records per-accelerator assignment time so the economy claim
(improved utilization) is measurable.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing as _t

from ..errors import AllocationError
from ..mpisim import RankHandle
from .protocol import (
    AcceleratorHandle,
    Op,
    Request,
    Response,
    Status,
    TAG_ARM,
    TAG_REQUEST,
    next_request_id,
    reply_tag,
)
from .reliability import DEFAULT_RETRY, RetryPolicy, reliable_rpc

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import AcceleratorNode


class AcceleratorState(enum.Enum):
    FREE = "free"
    ASSIGNED = "assigned"
    BROKEN = "broken"


@dataclasses.dataclass
class AcceleratorRecord:
    """ARM-side bookkeeping for one accelerator."""

    ac_id: int
    daemon_rank: int
    state: AcceleratorState = AcceleratorState.FREE
    owner_rank: int | None = None
    job: str | None = None
    #: Total seconds spent in ASSIGNED state (utilization accounting).
    assigned_seconds: float = 0.0
    _assigned_at: float | None = None

    def handle(self) -> AcceleratorHandle:
        return AcceleratorHandle(ac_id=self.ac_id, daemon_rank=self.daemon_rank)


class ResourceManager:
    """The ARM service process."""

    def __init__(self, rank: RankHandle,
                 accelerators: _t.Sequence[tuple[int, int]]):
        """``accelerators`` is a list of (ac_id, daemon_rank) pairs."""
        self.rank = rank
        self.engine = rank.comm.engine
        self.records: dict[int, AcceleratorRecord] = {
            ac_id: AcceleratorRecord(ac_id=ac_id, daemon_rank=daemon_rank)
            for ac_id, daemon_rank in accelerators
        }
        #: FIFO of allocation requests waiting for capacity.
        self._wait_queue: collections.deque[tuple[Request]] = collections.deque()
        self._stopped = False
        self._hb_proc = None
        self._hb_stop = False
        #: Accelerators evicted by the health monitor (metrics).
        self.heartbeat_evictions = 0
        self.proc = self.engine.process(self._serve(), name="arm")

    # -- queries (direct, for tests and metrics) -------------------------
    def free_count(self) -> int:
        return sum(1 for r in self.records.values()
                   if r.state == AcceleratorState.FREE)

    def snapshot(self) -> dict[int, dict]:
        """Current registry state, finalized assignment times included."""
        out = {}
        for r in self.records.values():
            assigned = r.assigned_seconds
            if r._assigned_at is not None:
                assigned += self.engine.now - r._assigned_at
            out[r.ac_id] = {
                "state": r.state.value,
                "owner_rank": r.owner_rank,
                "job": r.job,
                "assigned_seconds": assigned,
            }
        return out

    def utilization(self, elapsed: float | None = None) -> float:
        """Mean assigned-time fraction over all accelerators.

        ``elapsed`` restricts accounting to the last ``elapsed`` seconds of
        virtual time; each accelerator's contribution (including in-flight
        assignments) is clamped to that window so the fraction never
        exceeds 1.0.
        """
        total = elapsed if elapsed is not None else self.engine.now
        if total <= 0 or not self.records:
            return 0.0
        acc = 0.0
        for r in self.records.values():
            assigned = r.assigned_seconds
            if r._assigned_at is not None:
                assigned += min(self.engine.now - r._assigned_at, total)
            acc += min(assigned, total)
        return acc / (total * len(self.records))

    # -- service loop -----------------------------------------------------
    def _serve(self):
        while not self._stopped:
            msg = yield from self.rank.recv(tag=TAG_ARM)
            req: Request = msg.payload
            if req.op == Op.SHUTDOWN:
                self._reply(req, Response(req.req_id, Status.OK))
                self._stopped = True
                break
            handler = {
                Op.ARM_ALLOC: self._alloc,
                Op.ARM_RELEASE: self._release,
                Op.ARM_STATUS: self._status,
                Op.ARM_BREAK: self._break,
                Op.ARM_REPAIR: self._repair,
            }.get(req.op)
            if handler is None:
                self._reply(req, Response(req.req_id, Status.ERROR,
                                          error=f"unsupported ARM op {req.op}"))
                continue
            handler(req)

    def _reply(self, req: Request, resp: Response) -> None:
        self.rank.isend(req.reply_to, reply_tag(req.req_id), resp)

    def _alloc(self, req: Request) -> None:
        n = req.params.get("count", 1)
        if n <= 0:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"invalid count {n!r}"))
            return
        if not self._try_assign(req):
            if req.params.get("wait", True):
                self._wait_queue.append((req,))
            else:
                self._reply(req, Response(
                    req.req_id, Status.UNAVAILABLE,
                    error=f"only {self.free_count()} accelerator(s) free, "
                          f"{n} requested"))

    def _try_assign(self, req: Request) -> bool:
        n = req.params.get("count", 1)
        free = [r for r in self.records.values()
                if r.state == AcceleratorState.FREE]
        if len(free) < n:
            return False
        chosen = sorted(free, key=lambda r: r.ac_id)[:n]
        for r in chosen:
            r.state = AcceleratorState.ASSIGNED
            r.owner_rank = req.reply_to
            r.job = req.params.get("job")
            r._assigned_at = self.engine.now
        self._reply(req, Response(req.req_id, Status.OK,
                                  value=[r.handle() for r in chosen]))
        return True

    def _release(self, req: Request) -> None:
        ac_ids = req.params.get("ac_ids", [])
        if len(set(ac_ids)) != len(ac_ids):
            # Reject before mutating anything: a duplicated id would
            # otherwise be finalized twice.
            self._reply(req, Response(req.req_id, Status.DENIED,
                                      error=f"duplicate ac_ids in release: "
                                            f"{sorted(ac_ids)}"))
            return
        records = []
        for ac_id in ac_ids:
            r = self.records.get(ac_id)
            if r is None or r.state != AcceleratorState.ASSIGNED:
                self._reply(req, Response(req.req_id, Status.DENIED,
                                          error=f"ac{ac_id} is not assigned"))
                return
            if r.owner_rank != req.reply_to:
                self._reply(req, Response(
                    req.req_id, Status.DENIED,
                    error=f"ac{ac_id} is owned by rank {r.owner_rank}, "
                          f"not {req.reply_to}"))
                return
            records.append(r)
        for r in records:
            self._finish_assignment(r)
            r.state = AcceleratorState.FREE
        self._reply(req, Response(req.req_id, Status.OK))
        self._drain_queue()

    def _finish_assignment(self, r: AcceleratorRecord) -> None:
        if r._assigned_at is not None:
            r.assigned_seconds += self.engine.now - r._assigned_at
            r._assigned_at = None
        r.owner_rank = None
        r.job = None

    def _drain_queue(self) -> None:
        while self._wait_queue:
            (req,) = self._wait_queue[0]
            if not self._try_assign(req):
                break
            self._wait_queue.popleft()

    def _status(self, req: Request) -> None:
        self._reply(req, Response(req.req_id, Status.OK, value=self.snapshot()))

    def _break(self, req: Request) -> None:
        ac_id = req.params["ac_id"]
        r = self.records.get(ac_id)
        if r is None:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"unknown accelerator {ac_id}"))
            return
        self._mark_broken(r)
        self._reply(req, Response(req.req_id, Status.OK))

    def _mark_broken(self, r: AcceleratorRecord) -> None:
        if r.state == AcceleratorState.ASSIGNED:
            self._finish_assignment(r)
        r.state = AcceleratorState.BROKEN

    # -- health checking --------------------------------------------------
    def start_heartbeat(self, period_s: float = 1e-3,
                        timeout_s: float = 0.5e-3,
                        rounds: int | None = None):
        """Start probing every registered daemon with PINGs.

        Each round (every ``period_s`` of virtual time) the ARM pings every
        non-broken accelerator and races the reply against ``timeout_s``.
        A ``Status.BROKEN`` reply or a missed deadline evicts the
        accelerator: it is marked BROKEN — and therefore leaves the free
        pool before it can be handed to anyone.  ``rounds`` bounds the
        monitor's lifetime (``None`` = run until :meth:`stop_heartbeat` or
        ARM shutdown — note that an unbounded monitor keeps the event queue
        non-empty forever).  Returns the monitor process.
        """
        if self._hb_proc is not None and self._hb_proc.is_alive:
            return self._hb_proc
        self._hb_stop = False
        self._hb_proc = self.engine.process(
            self._heartbeat(period_s, timeout_s, rounds), name="arm-heartbeat")
        return self._hb_proc

    def stop_heartbeat(self) -> None:
        """Ask the health monitor to exit after its current round."""
        self._hb_stop = True

    def _heartbeat(self, period_s: float, timeout_s: float,
                   rounds: int | None):
        done = 0
        while not (self._stopped or self._hb_stop):
            if rounds is not None and done >= rounds:
                break
            yield self.engine.timeout(period_s)
            done += 1
            for r in list(self.records.values()):
                if self._stopped or self._hb_stop:
                    break
                if r.state == AcceleratorState.BROKEN:
                    continue
                req_id = next_request_id()
                rreq = self.rank.irecv(source=r.daemon_rank,
                                       tag=reply_tag(req_id))
                self.rank.isend(r.daemon_rank, TAG_REQUEST,
                                Request(op=Op.PING, req_id=req_id,
                                        reply_to=self.rank.index,
                                        params={"heartbeat": True}))
                cond, dl = self.engine.race(rreq.done, timeout_s)
                yield cond
                healthy = (rreq.completed
                           and rreq.message.payload.status == Status.OK)
                if rreq.completed and not dl.processed:
                    dl.cancel()
                if not healthy and r.state != AcceleratorState.BROKEN:
                    self.heartbeat_evictions += 1
                    self._mark_broken(r)

    def _repair(self, req: Request) -> None:
        ac_id = req.params["ac_id"]
        r = self.records.get(ac_id)
        if r is None or r.state != AcceleratorState.BROKEN:
            self._reply(req, Response(req.req_id, Status.ERROR,
                                      error=f"ac{ac_id} is not broken"))
            return
        r.state = AcceleratorState.FREE
        self._reply(req, Response(req.req_id, Status.OK))
        self._drain_queue()


class ArmClient:
    """The resource-management API used by compute-node processes."""

    def __init__(self, rank: RankHandle, arm_rank: int,
                 retry: RetryPolicy | None = None):
        self.rank = rank
        self.arm_rank = arm_rank
        self.retry = retry or DEFAULT_RETRY
        self.requests = 0
        self.timeouts = 0

    _USE_POLICY = object()  # sentinel: defer to the retry policy's timeout

    def _rpc(self, op: Op, params: dict, timeout_s=_USE_POLICY):
        if timeout_s is ArmClient._USE_POLICY:
            timeout_s = self.retry.timeout_s
        resp = yield from reliable_rpc(
            self.rank, self.arm_rank, TAG_ARM, op, params, self.retry,
            timeout_s, stats=self)
        resp.raise_for_status()
        return resp

    def alloc(self, count: int = 1, wait: bool = True, job: str | None = None):
        """Request ``count`` exclusive accelerators (generator).

        With ``wait=True`` the request queues FIFO until satisfiable (the
        batch-script style of Sect. V-B) — deadlines are suspended for the
        open-ended wait; with ``wait=False`` it fails immediately with
        :class:`AllocationError` when capacity is short.  Returns a list
        of :class:`AcceleratorHandle`.
        """
        resp = yield from self._rpc(Op.ARM_ALLOC,
                                    {"count": count, "wait": wait, "job": job},
                                    timeout_s=None if wait else ArmClient._USE_POLICY)
        return resp.value

    def release(self, handles: _t.Sequence[AcceleratorHandle]):
        """Return accelerators to the pool (generator)."""
        yield from self._rpc(Op.ARM_RELEASE,
                             {"ac_ids": [h.ac_id for h in handles]})

    def status(self):
        """ARM registry snapshot (generator)."""
        resp = yield from self._rpc(Op.ARM_STATUS, {})
        return resp.value

    def report_break(self, ac_id: int):
        """Report a failed accelerator to the ARM (generator)."""
        yield from self._rpc(Op.ARM_BREAK, {"ac_id": ac_id})

    def report_repair(self, ac_id: int):
        """Return a repaired accelerator to the pool (generator)."""
        yield from self._rpc(Op.ARM_REPAIR, {"ac_id": ac_id})
