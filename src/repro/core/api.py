"""The middleware front-end: the ``ac*`` computation API.

:class:`RemoteAccelerator` is what application code on a compute node uses
to drive one assigned accelerator — the paper's Listing 2 surface:

=====================  =========================================
Paper API              This library
=====================  =========================================
``acMemAlloc``         ``yield from ac.mem_alloc(nbytes)``
``acMemCpy`` (H2D)     ``yield from ac.memcpy_h2d(ptr, data)``
``acMemCpy`` (D2H)     ``yield from ac.memcpy_d2h(ptr, nbytes)``
``acKernelCreate``     ``yield from ac.kernel_create(name)``
``acKernelSetArgs``    ``ac.kernel_set_args(name, params)``
``acKernelRun``        ``yield from ac.kernel_run(name)``
``acMemFree``          ``yield from ac.mem_free(ptr)``
=====================  =========================================

All remote calls are generators to be driven inside a simulation process
(or through :class:`~repro.core.session.SyncSession` in plain scripts).
Every operation costs exactly two MPI messages (request + response) plus
data messages for bulk transfers, matching Sect. IV.

Every operation also opens a ``client.*`` span on the engine's
:class:`~repro.obs.TraceCollector`; the span's context rides the request
frame so the daemon's network/staging/DMA phases become children on the
same trace id (see :mod:`repro.obs`).  With tracing disabled the spans
are the shared no-op :data:`~repro.obs.NULL_SPAN` and virtual time is
bit-identical.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..buffers import zero_copy_enabled
from ..errors import MiddlewareError, RequestTimeout
from ..mpisim import RankHandle, payload_nbytes
from ..obs.spans import collector_for
from .blocksize import DEFAULT_TRANSFER, TransferConfig
from .interface import (
    AcceleratorLifecycle,
    CapabilitySet,
    reinterpret_legacy_peer_transfer,
    release_all,
)
from .protocol import (
    AcceleratorHandle,
    Op,
    Request,
    Response,
    TAG_REQUEST,
    VirtualAcceleratorHandle,
    data_tag,
    next_request_id,
    reply_tag,
)
from .reliability import DEFAULT_RETRY, RetryPolicy, reliable_rpc
from .transfer import assemble_chunks, payload_meta, slice_chunks


class RemoteAccelerator(AcceleratorLifecycle):
    """Front-end bound to one compute-node rank and one accelerator handle."""

    def __init__(self, rank: RankHandle, handle: AcceleratorHandle,
                 transfer: TransferConfig = DEFAULT_TRANSFER,
                 retry: RetryPolicy | None = None):
        self.rank = rank
        self.handle = handle
        self.transfer = transfer
        self.retry = retry or DEFAULT_RETRY
        #: Tenant scoping: a virtual handle stamps its lease id onto every
        #: request, and the daemon resolves ops against that slice.
        self._scope = ({"vac": handle.vac_id}
                       if isinstance(handle, VirtualAcceleratorHandle) else {})
        self._kernels: dict[str, dict] = {}  # name -> staged args
        #: Live device allocations (for context-manager release).
        self._live: dict[int, int] = {}      # addr -> nbytes
        self._obs = collector_for(rank.comm.engine)
        self._actor = f"cn{rank.index}"
        #: Cumulative accounting for the experiment harness.
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.requests = 0
        self.timeouts = 0

    # -- plumbing -------------------------------------------------------
    def _lifecycle_engine(self):
        return self.rank.comm.engine

    def _cfg(self, transfer: TransferConfig | None,
             pinned: bool | None) -> TransferConfig:
        """Resolve the per-call transfer configuration.

        ``pinned`` is the unified per-call override shared with the
        local backend; it derives a one-off config when it disagrees
        with the base one.
        """
        cfg = transfer or self.transfer
        if pinned is not None and pinned != cfg.pinned:
            cfg = dataclasses.replace(cfg, pinned=pinned)
        return cfg

    def _rpc(self, op: Op, params: dict, timeout_s: float | None = None,
             span=None):
        """One request/response round trip (generator). Returns Response.

        With a timeout (explicit or from the retry policy), the reply is
        raced against a virtual-time deadline; retryable ops are resent on
        expiry per the policy's backoff schedule, and
        :class:`RequestTimeout` surfaces once all deadlines passed.
        """
        if self._scope:
            params = {**params, **self._scope}
        resp = yield from reliable_rpc(
            self.rank, self.handle.daemon_rank, TAG_REQUEST, op, params,
            self.retry, timeout_s if timeout_s is not None else self.retry.timeout_s,
            stats=self, span=span)
        resp.raise_for_status()
        return resp

    def _await_reply(self, rreq, op: Op, timeout_s: float | None):
        """Wait for a transfer reply, racing the configured deadline."""
        if timeout_s is None:
            msg = yield rreq.done
            return msg
        cond, dl = self.rank.comm.engine.race(rreq.done, timeout_s)
        yield cond
        if not rreq.completed:
            self.timeouts += 1
            raise RequestTimeout(
                f"{op.value} to ac{self.handle.ac_id} timed out "
                f"({timeout_s:g} s deadline)")
        if not dl.processed:
            dl.cancel()
        return rreq.message

    # -- memory management ----------------------------------------------
    def mem_alloc(self, nbytes: int):
        """Allocate ``nbytes`` of device memory; returns the device address."""
        with self._obs.start("client.mem_alloc", self._actor,
                             nbytes=int(nbytes)) as span:
            resp = yield from self._rpc(Op.MEM_ALLOC,
                                        {"nbytes": int(nbytes)}, span=span)
            self._live[resp.value] = int(nbytes)
            return resp.value

    def mem_free(self, addr: int):
        """Release a device allocation."""
        with self._obs.start("client.mem_free", self._actor,
                             addr=addr) as span:
            yield from self._rpc(Op.MEM_FREE, {"addr": addr}, span=span)
            self._live.pop(addr, None)

    def release(self):
        """Free every live allocation this front-end made (generator)."""
        yield from release_all(self, self._live)

    # -- data movement ----------------------------------------------------
    def memcpy_h2d(self, dst: int, payload: _t.Any,
                   transfer: TransferConfig | None = None, offset: int = 0,
                   pinned: bool | None = None):
        """Copy a host payload to device address ``dst`` (+ ``offset``).

        ``payload`` is a numpy array, bytes, or a
        :class:`~repro.mpisim.Phantom` for timing-only transfers.
        """
        cfg = self._cfg(transfer, pinned)
        nbytes = payload_nbytes(payload)
        blocks = cfg.plan_blocks(nbytes, "h2d")
        span = self._obs.start("client.memcpy_h2d", self._actor,
                               nbytes=nbytes, blocks=len(blocks),
                               protocol=cfg.name)
        with span:
            req = Request(op=Op.MEMCPY_H2D, req_id=next_request_id(),
                          reply_to=self.rank.index,
                          params={"dst": dst, "offset": int(offset),
                                  "blocks": blocks,
                                  "data_tag": 0, "pinned": cfg.pinned,
                                  "gpudirect": cfg.gpudirect,
                                  "meta": payload_meta(payload) if offset == 0 else None,
                                  **self._scope},
                          trace=span.wire)
            dtag = data_tag(req.req_id)
            req.params["data_tag"] = dtag
            self.requests += 1
            reply = self.rank.irecv(source=self.handle.daemon_rank,
                                    tag=reply_tag(req.req_id))
            self.rank.isend(self.handle.daemon_rank, TAG_REQUEST, req)
            # Stream the blocks; eager because the header announced them, so
            # the daemon's pinned ring buffers count as pre-posted receives.
            # Each block pays the per-block registration/posting surcharge.
            inject = span.child("inject", nbytes=nbytes)
            for chunk in slice_chunks(payload, blocks):
                self.rank.isend(self.handle.daemon_rank, dtag, chunk, eager=True,
                                injection_s=cfg.h2d_block_post_s)
            inject.finish()
            msg = yield from self._await_reply(
                reply, Op.MEMCPY_H2D, self.retry.transfer_timeout_s(nbytes))
            resp: Response = msg.payload
            resp.raise_for_status()
            self.bytes_h2d += nbytes

    def memcpy_d2h(self, src: int, nbytes: int,
                   transfer: TransferConfig | None = None, offset: int = 0,
                   pinned: bool | None = None):
        """Copy ``nbytes`` from device address ``src`` (+ ``offset``) back.

        Returns a typed array when the whole buffer is read and it has
        recorded dtype/shape, a flat uint8 array otherwise, or a Phantom
        for timing-only buffers.
        """
        cfg = self._cfg(transfer, pinned)
        blocks = cfg.plan_blocks(int(nbytes), "d2h")
        span = self._obs.start("client.memcpy_d2h", self._actor,
                               nbytes=int(nbytes), blocks=len(blocks),
                               protocol=cfg.name)
        with span:
            req = Request(op=Op.MEMCPY_D2H, req_id=next_request_id(),
                          reply_to=self.rank.index,
                          params={"src": src, "offset": int(offset),
                                  "blocks": blocks,
                                  "data_tag": 0, "pinned": cfg.pinned,
                                  "gpudirect": cfg.gpudirect,
                                  "block_post_s": cfg.d2h_block_post_s,
                                  **self._scope},
                          trace=span.wire)
            dtag = data_tag(req.req_id)
            req.params["data_tag"] = dtag
            self.requests += 1
            # Pre-post all block receives (the protocol knows the block
            # count), then issue the request.
            block_reqs = [self.rank.irecv(source=self.handle.daemon_rank, tag=dtag)
                          for _ in blocks]
            reply = self.rank.irecv(source=self.handle.daemon_rank,
                                    tag=reply_tag(req.req_id))
            self.rank.isend(self.handle.daemon_rank, TAG_REQUEST, req)
            deadline_s = self.retry.transfer_timeout_s(int(nbytes))
            msg = yield from self._await_reply(reply, Op.MEMCPY_D2H, deadline_s)
            resp: Response = msg.payload
            # On failure the daemon sent no data; the pre-posted receives are
            # abandoned (their unique tag is never reused).
            resp.raise_for_status()
            if block_reqs:
                recv = span.child("net.recv", blocks=len(block_reqs))
                all_blocks = self.rank.comm.engine.all_of(
                    [r.done for r in block_reqs])
                if deadline_s is None:
                    yield all_blocks
                else:
                    cond, dl = self.rank.comm.engine.race(all_blocks, deadline_s)
                    yield cond
                    if not all_blocks.triggered:
                        self.timeouts += 1
                        raise RequestTimeout(
                            f"memcpy_d2h data stream from ac{self.handle.ac_id} "
                            f"stalled ({deadline_s:g} s deadline)")
                    if not dl.processed:
                        dl.cancel()
                recv.finish()
            chunks = [r.message.payload for r in block_reqs]
            self.bytes_d2h += int(nbytes)
            return assemble_chunks(chunks, blocks, resp.value)

    def capabilities(self) -> CapabilitySet:
        """What this front-end supports (see :class:`CapabilitySet`)."""
        return CapabilitySet(peer_put=True, streams=True,
                             zero_copy=zero_copy_enabled(), fabric=True)

    def peer_put(self, src: int, nbytes: int, peer: "RemoteAccelerator",
                 dst: int, *legacy,
                 transfer: TransferConfig | None = None,
                 pinned: bool | None = None):
        """Copy device memory directly to another accelerator.

        The data flows accelerator-to-accelerator over the fabric without
        touching this compute node — the capability the paper highlights as
        impossible with CUDA 4.2 / OpenCL 1.2 (Sect. III-C).  ``dst`` is
        the destination address on ``peer`` (wire name ``peer_addr``).
        """
        transfer = reinterpret_legacy_peer_transfer(legacy, transfer)
        cfg = self._cfg(transfer, pinned)
        blocks = cfg.plan_blocks(int(nbytes), "d2h")
        with self._obs.start("client.peer_put", self._actor,
                             nbytes=int(nbytes),
                             peer=f"ac{peer.handle.ac_id}") as span:
            resp = yield from self._rpc(Op.PEER_PUT, {
                "src": src, "blocks": blocks,
                "peer_rank": peer.handle.daemon_rank, "peer_addr": dst,
                "pinned": cfg.pinned, "gpudirect": cfg.gpudirect,
                "block_post_s": cfg.d2h_block_post_s,
            }, span=span)
            return resp

    # -- kernels ----------------------------------------------------------
    def kernel_create(self, name: str):
        """Declare intent to run kernel ``name`` (validates it remotely)."""
        with self._obs.start("client.kernel_create", self._actor,
                             kernel=name) as span:
            yield from self._rpc(Op.KERNEL_CREATE, {"name": name}, span=span)
            self._kernels[name] = {}

    def kernel_set_args(self, name: str, params: dict) -> None:
        """Stage launch parameters locally (sent with the next run)."""
        if name not in self._kernels:
            raise MiddlewareError(
                f"kernel {name!r} was not created on this accelerator")
        self._kernels[name] = dict(params)

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True, timeout_s: float | None = None):
        """Launch the kernel and wait for completion; returns its result.

        ``timeout_s`` overrides the retry policy's deadline for this launch
        (long-running kernels need more headroom than control RPCs).
        """
        if params is None:
            if name not in self._kernels:
                raise MiddlewareError(
                    f"kernel {name!r} was not created on this accelerator")
            params = self._kernels[name]
        with self._obs.start("client.kernel_run", self._actor,
                             kernel=name) as span:
            resp = yield from self._rpc(Op.KERNEL_RUN, {
                "name": name, "params": params, "real": real},
                timeout_s=timeout_s, span=span)
            return resp.value

    # -- virtual-accelerator lifecycle ------------------------------------
    def vac_attach(self, share: float = 1.0, mem_quota: int | None = None):
        """Instantiate this front-end's lease as a slice on the daemon.

        Only meaningful when the front-end was built from a
        :class:`~repro.core.protocol.VirtualAcceleratorHandle` (an ARM
        ``valloc`` grant); ``share`` and ``mem_quota`` come from the grant.
        Must run before any other op — until then the daemon answers
        ``Status.PREEMPTED`` for this lease.
        """
        if not self._scope:
            raise MiddlewareError("vac_attach needs a virtual handle")
        with self._obs.start("client.vac_attach", self._actor,
                             vac=self.handle.vac_id) as span:
            yield from self._rpc(Op.VAC_ATTACH, {
                "vac_id": self.handle.vac_id, "share": share,
                "mem_quota": mem_quota}, span=span)

    def vac_detach(self):
        """Tear the slice down on the daemon; returns bytes freed there."""
        if not self._scope:
            raise MiddlewareError("vac_detach needs a virtual handle")
        with self._obs.start("client.vac_detach", self._actor,
                             vac=self.handle.vac_id) as span:
            resp = yield from self._rpc(Op.VAC_DETACH,
                                        {"vac_id": self.handle.vac_id},
                                        span=span)
            self._live.clear()
            return resp.value

    # -- misc -------------------------------------------------------------
    def ping(self, timeout_s: float | None = None):
        """Round-trip liveness probe; returns the one-way-ish RTT payload."""
        with self._obs.start("client.ping", self._actor) as span:
            resp = yield from self._rpc(Op.PING, {}, timeout_s=timeout_s,
                                        span=span)
            return resp.value

    # -- batching / streams -----------------------------------------------
    def batch_rpc(self, calls: _t.Sequence[tuple[Op, dict]],
                  timeout_s: float | None = None):
        """Execute several control ops in one request frame (generator).

        ``calls`` is a list of ``(op, params)`` pairs drawn from
        :data:`~repro.core.protocol.BATCHABLE_OPS`.  The whole frame costs
        one round trip; the daemon executes the ops in order and replies
        with the list of per-op :class:`Response` objects, which this
        returns without raising — the caller (normally a
        :class:`~repro.core.stream.Stream`) inspects each sub-response.
        A retried frame is at-most-once via the daemon's dedup cache.
        """
        from .protocol import BATCHABLE_OPS
        wire = []
        for op, params in calls:
            if op not in BATCHABLE_OPS:
                raise MiddlewareError(
                    f"op {op.value!r} cannot ride a batch frame")
            # Sub-ops are resolved from their own params by the daemon's
            # executors, so each needs the lease scope too.
            wire.append((op.value, {**params, **self._scope}))
        with self._obs.start("client.batch", self._actor,
                             ops=len(wire)) as span:
            resp = yield from self._rpc(Op.BATCH, {"ops": wire},
                                        timeout_s=timeout_s, span=span)
            # Track allocations made inside the frame so context-manager
            # release covers batched mem_alloc/mem_free too.
            for (op_value, params), sub in zip(wire, resp.value):
                if not sub.ok:
                    continue
                if op_value == Op.MEM_ALLOC.value:
                    self._live[sub.value] = params.get("nbytes", 0)
                elif op_value == Op.MEM_FREE.value:
                    self._live.pop(params.get("addr"), None)
            return resp.value

    def coalesced_rpc(self, coalescer, calls: _t.Sequence[tuple[Op, dict]]):
        """Submit control ops as one sub-frame to a cross-stream coalescer.

        Same contract as :meth:`batch_rpc` — the returned list of per-op
        :class:`Response` objects is not raised on — but the round trip is
        shared: the :class:`~repro.core.coalesce.FrameCoalescer` merges
        this sub-frame with concurrent submissions from *other* streams
        and tenants into one MBATCH wire frame.  The sub-frame keeps its
        own request id (at-most-once) and span context (parenting).
        """
        from .protocol import BATCHABLE_OPS
        wire = []
        for op, params in calls:
            if op not in BATCHABLE_OPS:
                raise MiddlewareError(
                    f"op {op.value!r} cannot ride a batch frame")
            wire.append((op.value, {**params, **self._scope}))
        with self._obs.start("client.mbatch", self._actor,
                             ops=len(wire)) as span:
            subs = yield from coalescer.submit(wire, span=span)
            for (op_value, params), sub in zip(wire, subs):
                if not sub.ok:
                    continue
                if op_value == Op.MEM_ALLOC.value:
                    self._live[sub.value] = params.get("nbytes", 0)
                elif op_value == Op.MEM_FREE.value:
                    self._live.pop(params.get("addr"), None)
            return subs

    def stream(self, max_batch: int | None = None, name: str | None = None,
               coalescer=None):
        """Create an asynchronous command :class:`~repro.core.stream.Stream`.

        The stream queues ``ac*`` ops, returns futures immediately, and
        coalesces consecutive control ops into BATCH frames over this
        front-end's reliable-RPC path.  With a
        :class:`~repro.core.coalesce.FrameCoalescer`, control runs are
        instead submitted as sub-frames to be merged with *other* streams'
        traffic to the same daemon.
        """
        from .stream import DEFAULT_MAX_BATCH, Stream
        if max_batch is None:
            max_batch = DEFAULT_MAX_BATCH
        return Stream(self, self.rank.comm.engine, max_batch=max_batch,
                      name=name or f"ac{self.handle.ac_id}-stream",
                      coalescer=coalescer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteAccelerator ac{self.handle.ac_id} via rank {self.rank.index}>"


def run_parallel(engine, generators: _t.Sequence[_t.Iterator]):
    """Run several front-end operations concurrently (generator).

    Spawns each generator as its own process and waits for all — e.g. the
    multi-GPU factorizations use this to drive their accelerators in
    parallel from one compute-node process.  Returns the list of results.

    If any branch raises, the first failure propagates annotated with
    which branches failed — the bare AllOf condition would otherwise
    surface an exception with no hint of its origin, and silently drop
    every failure after the first.  Open trace spans are closed (marked
    aborted) before the failure surfaces: a branch that died mid-request
    must not leak half-open spans into the export.
    """
    procs = [engine.process(g) for g in generators]
    if procs:
        try:
            yield engine.all_of(procs)
        except Exception as exc:
            _annotate_parallel_failure(exc, procs)
            collector_for(engine).abort_open(
                f"run_parallel branch failed: {type(exc).__name__}")
            raise
    return [p.value for p in procs]


def _annotate_parallel_failure(exc: Exception, procs) -> None:
    """Attach which parallel branches failed to the surfaced exception."""
    failed = [f"branch {i} ({p.name}): "
              f"{type(p.value).__name__}: {p.value}"
              for i, p in enumerate(procs)
              if p.triggered and not p.ok]
    if not failed:
        failed = [f"{type(exc).__name__}: {exc}"]
    note = ("run_parallel: " + "; ".join(failed)
            + (f" [{len(failed)} of {len(procs)} branches failed]"
               if len(failed) > 1 else ""))
    if hasattr(exc, "add_note"):  # Python >= 3.11
        exc.add_note(note)
    else:  # pragma: no cover - exercised on the 3.10 CI leg
        exc.args = (f"{exc.args[0] if exc.args else exc}\n{note}",
                    *exc.args[1:])
