"""From-scratch discrete-event simulation kernel.

Everything in the repro library — network fabric, MPI ranks, GPUs, the
accelerator middleware, and the workloads — runs as generator processes on
this kernel's virtual clock.

Public surface::

    from repro.sim import Engine, Event, Timeout, Process
    from repro.sim import Store, Resource, BandwidthShare
    from repro.sim import Tracer
"""

from .engine import Engine
from .events import AllOf, AnyOf, Condition, Deadline, Event, Timeout
from .process import Process
from .resources import BandwidthShare, Resource, Store
from .sharded import (ShardContext, ShardedEngine, ShardProgram,
                      TimerChurnProgram, WireMessage, run_cooperative,
                      run_multiprocess, run_single_reference)
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Engine",
    "ShardedEngine",
    "ShardContext",
    "ShardProgram",
    "TimerChurnProgram",
    "WireMessage",
    "run_cooperative",
    "run_multiprocess",
    "run_single_reference",
    "Event",
    "Timeout",
    "Deadline",
    "Condition",
    "AllOf",
    "AnyOf",
    "Process",
    "Store",
    "Resource",
    "BandwidthShare",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
