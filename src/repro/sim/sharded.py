"""Sharded event engine with conservative lookahead synchronization.

The single :class:`~repro.sim.engine.Engine` tops out at a fixed number of
events per host second, which caps how much virtual hardware one run can
simulate.  This module partitions a simulation into *shards* — one event
heap (plus timer slot pools) per accelerator/compute node group — with
conservative lookahead synchronization across shard boundaries: fabric
link latency is the natural lookahead window, so a shard may safely
advance to ``min(neighbor clock + link latency)`` before it must wait.

Three execution modes share one wire protocol:

``merge`` (the oracle)
    :meth:`ShardedEngine.run`.  Every shard keeps its own heap, pools,
    and dead-entry accounting, but events are processed in global
    ``(time, seq)`` order across all heaps — provably the exact order a
    single engine would use, because the sequence counter is shared and
    the per-shard heaps partition the same event multiset.  Sharded
    cluster runs in this mode are **bit-identical** to single-engine
    runs by construction; the mode exists to prove the partition itself
    (shard pinning, crossing accounting, channel routing) perturbs
    nothing, and it is the only mode the shared-object cluster graph may
    use (its shards exchange arbitrary Python references, so they cannot
    be executed out of global order safely).

``rounds`` (cooperative conservative execution)
    :meth:`ShardedEngine.run_rounds`.  Shards advance in deterministic
    round-robin batches: each round a shard processes every local event
    strictly below its safe horizon in one tight loop.  Requires the
    workload to be *channel-confined* — cross-shard interaction only
    through :meth:`ShardContext.send`, which enforces the declared
    lookahead.  Idle shards advance their clocks by explicit null ticks;
    zero-latency links fall back to a global same-timestamp merge tick.
    An un-channelled cross-shard wake-up raises instead of corrupting
    the batch.

``multiprocess``
    :func:`run_multiprocess`.  The same conservative round protocol, but
    each shard owns a real :class:`Engine` in a ``spawn``-ed worker
    process and the coordinator exchanges :class:`WireMessage` batches
    over pipes.  Requires strictly positive lookahead on every link and
    picklable :class:`ShardProgram` objects.

:func:`run_single_reference` executes the same channel-confined programs
on one engine, giving the 1-shard oracle the equivalence tests compare
``rounds`` and ``multiprocess`` executions against.

Same-timestamp determinism across modes rests on two rules: (a) within
one shard, local events keep their creation order (the engine sequence
counter), and (b) channel deliveries are pushed with a sort key in a
dedicated band above every local sequence number —
``(time, _DELIVERY_BASE + src * _SENDER_STRIDE + sender_seq)`` — so a
delivery always sorts after local events at the same instant and
same-time deliveries order by ``(src, sender_seq)``.  Both components of
that key are mode-invariant (each sender's emission order is fixed by
its own shard's deterministic execution), which is what lets the three
executions replay identical per-shard histories.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing as _t

from ..errors import SimulationError
from .engine import Engine
from .events import Deadline, Event, Timeout

__all__ = [
    "Shard",
    "ShardedEngine",
    "ShardContext",
    "ShardProgram",
    "TimerChurnProgram",
    "WireMessage",
    "run_cooperative",
    "run_multiprocess",
    "run_single_reference",
]

_INF = float("inf")

#: Channel deliveries sort in their own key band above all local events
#: (see module docstring).  2**60 leaves ~10^18 local sequence numbers.
_DELIVERY_BASE = 1 << 60
_SENDER_STRIDE = 1 << 30


class Shard:
    """Per-shard event-loop state: heap, slot pools, clock, accounting."""

    __slots__ = ("id", "name", "heap", "n_dead", "deadline_pool",
                 "timeout_pool", "clock", "processed")

    def __init__(self, shard_id: int, name: str | None = None):
        self.id = shard_id
        self.name = name or f"shard{shard_id}"
        self.heap: list[tuple[float, int, Event]] = []
        self.n_dead = 0
        #: Slot pools are *shard-local* on purpose: a cancelled deadline
        #: may still sit (lazily deleted) in its own shard's heap, and
        #: recycling it from another shard would re-arm an object whose
        #: stale heap entry could then fire spuriously.
        self.deadline_pool: list[Deadline] = []
        self.timeout_pool: list[Timeout] = []
        self.clock = 0.0
        self.processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Shard {self.name} t={self.clock:.9f} "
                f"queued={len(self.heap) - self.n_dead}>")


class ShardedEngine(Engine):
    """An :class:`Engine` whose event queue is partitioned into shards.

    Drop-in compatible with the single engine: the whole simulation
    object graph is built against one ``ShardedEngine``, processes are
    pinned to shards (see :meth:`Engine.shard_scope` and the ``shard``
    argument of :meth:`Engine.process`), and :meth:`run` executes the
    deterministic global merge described in the module docstring.

    ``lookahead_s`` declares the minimum cross-shard scheduling latency
    (uniform, or per directed pair via :meth:`set_link_lookahead`) —
    for a simulated cluster this is the fabric trunk latency.
    """

    def __init__(self, shards: int = 1, lookahead_s: float = 0.0,
                 names: _t.Sequence[str] | None = None):
        if shards < 1:
            raise SimulationError(f"need at least one shard, got {shards}")
        super().__init__()
        self._sharded = True
        self._shards: list[Shard] = [
            Shard(i, names[i] if names else None) for i in range(shards)]
        # Shard 0 owns the Engine-inherited containers, so everything
        # scheduled before the first context switch lands there.
        s0 = self._shards[0]
        s0.heap = self._heap
        s0.deadline_pool = self._deadline_pool
        s0.timeout_pool = self._timeout_pool
        if lookahead_s < 0:
            raise SimulationError(f"negative lookahead: {lookahead_s!r}")
        self._lookahead_default = float(lookahead_s)
        self._lookahead: dict[tuple[int, int], float] = {}
        #: Cross-shard process wake-ups, per ``(src, dst)`` pair.
        self.crossings: dict[tuple[int, int], int] = {}
        #: Null-message clock advances taken by idle shards (rounds mode).
        self.null_ticks = 0
        #: Same-timestamp global merge fallbacks (zero-latency links).
        self.merge_ticks = 0
        self._shard_mode = "merge"

    # -- topology ------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[Shard, ...]:
        return tuple(self._shards)

    @property
    def total_processed(self) -> int:
        """Events processed across all shards (any mode)."""
        return sum(s.processed for s in self._shards)

    def set_link_lookahead(self, src: int, dst: int, latency_s: float) -> None:
        """Declare the minimum delay of ``src``→``dst`` cross-shard events."""
        if latency_s < 0:
            raise SimulationError(f"negative lookahead: {latency_s!r}")
        self._check_shard(src)
        self._check_shard(dst)
        self._lookahead[(src, dst)] = float(latency_s)

    def lookahead(self, src: int, dst: int) -> float:
        return self._lookahead.get((src, dst), self._lookahead_default)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < len(self._shards):
            raise SimulationError(
                f"shard {shard} out of range 0..{len(self._shards) - 1}")

    # -- context switching ---------------------------------------------
    def _switch_shard(self, shard: int) -> None:
        active = self._active_shard
        if shard == active:
            return
        self._check_shard(shard)
        old = self._shards[active]
        old.n_dead = self._n_dead
        new = self._shards[shard]
        # The list objects themselves are shared between engine attrs and
        # the shard structs (engine code only ever mutates them in
        # place), so switching is pure alias rebinding plus the scalar
        # dead-entry counter.
        self._heap = new.heap
        self._n_dead = new.n_dead
        self._deadline_pool = new.deadline_pool
        self._timeout_pool = new.timeout_pool
        self._active_shard = shard

    def _note_crossing(self, src: int, dst: int) -> None:
        """A process pinned to ``dst`` was woken from ``src``'s context."""
        if self._shard_mode == "rounds":
            raise SimulationError(
                f"cross-shard wake-up shard{src}->shard{dst} outside a "
                f"channel during round execution; batched shards may only "
                f"interact through ShardContext.send")
        key = (src, dst)
        self.crossings[key] = self.crossings.get(key, 0) + 1

    def crossing_count(self) -> int:
        """Total cross-shard process wake-ups observed so far."""
        return sum(self.crossings.values())

    # -- shared plumbing ------------------------------------------------
    def _note_dead_on(self, shard: int) -> None:
        """Count a cancelled entry against the heap that actually holds it.

        ``Event._scheduled`` stores ``shard + 1`` at push time, so a
        cancel issued from another shard's context still charges the
        right heap (the single engine maps everything to shard 0 and
        keeps its historical behaviour).
        """
        if shard == self._active_shard:
            self._note_dead()
            return
        s = self._shards[shard]
        s.n_dead += 1
        heap = s.heap
        if len(heap) >= self.COMPACT_MIN and s.n_dead * 2 > len(heap):
            live = []
            for entry in heap:
                if entry[2]._cancelled:
                    self._retire_to(s, entry[2])
                else:
                    live.append(entry)
            heap[:] = live
            heapq.heapify(heap)
            s.n_dead = 0

    def _retire_to(self, s: Shard, event: Event) -> None:
        """Shard-local twin of :meth:`Engine._retire`."""
        event._scheduled = False
        if not getattr(event, "_poolable", False):
            return
        cls = type(event)
        if cls is Deadline:
            if len(s.deadline_pool) < self.POOL_MAX:
                s.deadline_pool.append(event)
        elif cls is Timeout:
            if len(s.timeout_pool) < self.POOL_MAX:
                s.timeout_pool.append(event)

    def _peek_live(self, s: Shard) -> tuple[float, int, Event] | None:
        """Head live entry of one shard's heap (cleaning cancelled heads)."""
        active = s.id == self._active_shard
        if active:
            s.n_dead = self._n_dead
        heap = s.heap
        while heap and heap[0][2]._cancelled:
            _, _, event = heapq.heappop(heap)
            s.n_dead -= 1
            self._retire_to(s, event)
        if active:
            self._n_dead = s.n_dead
        return heap[0] if heap else None

    # -- Engine interface overrides -------------------------------------
    def peek(self) -> float:
        entries = [e for e in map(self._peek_live, self._shards)
                   if e is not None]
        return min(entries)[0] if entries else _INF

    @property
    def queued(self) -> int:
        self._shards[self._active_shard].n_dead = self._n_dead
        return sum(len(s.heap) - s.n_dead for s in self._shards)

    def step(self) -> None:
        if not self._merge_step():
            raise SimulationError("step() on an empty event queue")

    def _merge_step(self) -> bool:
        """Process the globally next ``(time, key)`` event; False if none."""
        best_shard: Shard | None = None
        best_entry: tuple[float, int, Event] | None = None
        for s in self._shards:
            entry = self._peek_live(s)
            if entry is not None and (best_entry is None
                                      or entry[:2] < best_entry[:2]):
                best_shard, best_entry = s, entry
        if best_shard is None:
            return False
        self._process_head(best_shard, best_entry)
        return True

    def _process_head(self, s: Shard, entry: tuple[float, int, Event]) -> None:
        if s.id != self._active_shard:
            self._switch_shard(s.id)
        heapq.heappop(self._heap)
        event = entry[2]
        event._scheduled = False
        self.now = entry[0]
        if entry[0] > s.clock:
            s.clock = entry[0]
        s.processed += 1
        event._process()

    def run(self, until: Event | float | None = None) -> _t.Any:
        """Deterministic global-merge execution (single-engine order)."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._shard_mode = "merge"
        try:
            if until is None:
                while self._merge_step():
                    pass
                return None
            if isinstance(until, Event):
                stop = until
                while not stop._processed:
                    if not self._merge_step():
                        raise SimulationError(
                            "deadlock: event queue empty before 'until' "
                            "event fired")
                if not stop.ok:
                    raise stop.value
                return stop.value
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(
                    f"cannot run until {horizon}, clock already at {self.now}")
            while True:
                best_shard: Shard | None = None
                best_entry: tuple[float, int, Event] | None = None
                for s in self._shards:
                    entry = self._peek_live(s)
                    if entry is not None and (best_entry is None
                                              or entry[:2] < best_entry[:2]):
                        best_shard, best_entry = s, entry
                if best_shard is None or best_entry[0] > horizon:
                    break
                self._process_head(best_shard, best_entry)
            self.now = horizon
            for s in self._shards:
                s.clock = max(s.clock, horizon)
            return None
        finally:
            self._running = False

    # -- conservative round execution -----------------------------------
    def safe_horizon(self, shard: int) -> float:
        """How far ``shard`` may advance before a neighbour could still
        send it an event: ``min over others (their clock + lookahead)``."""
        horizon = _INF
        for o in self._shards:
            if o.id == shard:
                continue
            bound = o.clock + self.lookahead(o.id, shard)
            if bound < horizon:
                horizon = bound
        return horizon

    def run_rounds(self, until: float | None = None,
                   record: bool = False) -> list[tuple] | None:
        """Cooperative conservative execution in deterministic rounds.

        Each lap, every shard (ascending id) batch-processes all local
        events strictly below its safe horizon.  When a lap does no real
        work, idle clocks null-tick forward to the next global event
        time; if clocks cannot advance at all (zero-latency links), one
        global same-timestamp merge tick breaks the tie in ``(time,
        key)`` order.  Requires channel-confined workloads (see module
        docstring).

        With ``record=True`` returns the causality log: one
        ``(shard, event_time, horizon, clocks_before)`` row per batch,
        which the property tests assert lookahead safety against.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._shard_mode = "rounds"
        log: list[tuple] | None = [] if record else None
        shards = self._shards
        try:
            while True:
                batched = False
                for s in shards:
                    horizon = self.safe_horizon(s.id)
                    if until is not None and horizon > until:
                        horizon = until
                    if horizon <= s.clock:
                        continue
                    head = self._peek_live(s)
                    if head is not None and head[0] < horizon:
                        if log is not None:
                            log.append((s.id, head[0], horizon,
                                        tuple(o.clock for o in shards)))
                        self._run_shard_batch(s, horizon)
                        batched = True
                    elif horizon != _INF:
                        s.clock = horizon
                        self.null_ticks += 1
                if until is not None and all(s.clock >= until
                                             for s in shards):
                    break
                if batched:
                    continue
                # No real work this lap: jump straight to the next
                # global event time (the explicit null-message tick) or,
                # if clocks are already there (zero-latency tie), run a
                # deterministic same-timestamp merge tick.
                heads = [e for e in map(self._peek_live, shards)
                         if e is not None]
                if not heads:
                    break
                t = min(h[0] for h in heads)
                if until is not None and t > until:
                    break
                if any(s.clock < t for s in shards):
                    for s in shards:
                        if s.clock < t:
                            s.clock = t
                            self.null_ticks += 1
                    continue
                self.merge_ticks += 1
                while True:
                    entry = None
                    owner = None
                    for s in shards:
                        head = self._peek_live(s)
                        if head is not None and head[0] == t and (
                                entry is None or head[:2] < entry[:2]):
                            entry, owner = head, s
                    if entry is None:
                        break
                    self._process_head(owner, entry)
            if until is not None:
                for s in shards:
                    s.clock = max(s.clock, until)
                self.now = max(self.now, until)
            return log
        finally:
            self._shard_mode = "merge"
            self._running = False

    def _run_shard_batch(self, s: Shard, limit: float) -> None:
        """Drain one shard's events with ``t < limit`` in a tight loop.

        This is the throughput path: within the safe window the shard
        needs no merge decisions, so the loop is the single engine's
        fast loop with :meth:`Event._process` inlined and no ``until``
        bookkeeping — the structural win conservative lookahead buys.
        """
        self._switch_shard(s.id)
        if self.now < s.clock:
            self.now = s.clock
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        while heap:
            entry = heap[0]
            if entry[0] >= limit:
                break
            heappop(heap)
            event = entry[2]
            if event._cancelled:
                self._n_dead -= 1
                self._retire(event)
                continue
            event._scheduled = False
            self.now = entry[0]
            # Event._process inlined (minus the _cancelled re-check the
            # pop above already performed).
            event._processed = True
            callbacks = event.callbacks
            if callbacks is not None:
                for cb in callbacks:
                    cb(event)
                callbacks.clear()
            processed += 1
        s.processed += processed
        s.clock = limit if limit != _INF else self.now


# ---------------------------------------------------------------------------
# Channel-confined shard programs: the workload shape rounds/multiprocess
# execution can run out of global order, plus the shared wire protocol.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WireMessage:
    """One cross-shard event on the wire (all execution modes).

    ``seq`` is the per-sender emission index; together with ``src`` it
    forms the mode-invariant part of the delivery sort key, fixing the
    merge order of same-timestamp cross-shard events independently of
    host timing or batch interleaving.
    """

    time: float
    src: int
    dst: int
    seq: int
    tag: str
    payload: _t.Any = None


class ShardContext:
    """What a :class:`ShardProgram` sees: its engine, id, and channel."""

    def __init__(self, engine: Engine, shard: int, n_shards: int,
                 send: _t.Callable[[int, float, str, _t.Any], None],
                 lookahead: _t.Callable[[int, int], float]):
        self.engine = engine
        self.shard = shard
        self.n_shards = n_shards
        self._send = send
        self._lookahead = lookahead
        self._handler: _t.Callable[[float, str, _t.Any], None] | None = None
        #: Observable history: ``(virtual_time, tag, payload)`` rows.
        self.logs: list[tuple[float, str, _t.Any]] = []

    def log(self, tag: str, payload: _t.Any = None) -> None:
        self.logs.append((self.engine.now, tag, payload))

    def send(self, dst: int, delay: float, tag: str,
             payload: _t.Any = None) -> None:
        """Send a cross-shard event, delivered ``delay`` from now.

        ``delay`` must respect the declared lookahead of the link — that
        promise is exactly what lets the destination shard run ahead.
        """
        if dst == self.shard:
            raise SimulationError("channel send to the local shard")
        minimum = self._lookahead(self.shard, dst)
        if delay < minimum:
            raise SimulationError(
                f"channel send shard{self.shard}->shard{dst} with delay "
                f"{delay!r} below the declared lookahead {minimum!r}")
        self._send(dst, delay, tag, payload)

    def on_message(self,
                   handler: _t.Callable[[float, str, _t.Any], None]) -> None:
        """Register the inbound handler ``(time, tag, payload) -> None``."""
        self._handler = handler

    def _dispatch(self, time: float, tag: str, payload: _t.Any) -> None:
        if self._handler is not None:
            self._handler(time, tag, payload)


class ShardProgram:
    """Base class for channel-confined shard workloads.

    Subclasses implement :meth:`setup`, spawning processes and wiring
    :meth:`ShardContext.on_message`.  Instances must be picklable to run
    under :func:`run_multiprocess`.
    """

    def setup(self, ctx: ShardContext) -> None:  # pragma: no cover
        raise NotImplementedError


class TimerChurnProgram(ShardProgram):
    """The engine's leanest cycle, shard-local, with periodic channel
    pings: ``n`` timer waits spaced ``spacing_s`` apart; every
    ``ping_every`` waits, send a ping to the next shard ``ping_delay_s``
    ahead.  Received pings are logged, so the equivalence digests cover
    the cross-shard path as well as local ordering."""

    def __init__(self, n: int, spacing_s: float = 1e-6,
                 ping_every: int = 0, ping_delay_s: float = 1e-3):
        self.n = n
        self.spacing_s = spacing_s
        self.ping_every = ping_every
        self.ping_delay_s = ping_delay_s

    def setup(self, ctx: ShardContext) -> None:
        engine = ctx.engine

        def churn():
            for i in range(self.n):
                yield Timeout(engine, self.spacing_s)
                if (self.ping_every and ctx.n_shards > 1
                        and i % self.ping_every == 0):
                    ctx.send((ctx.shard + 1) % ctx.n_shards,
                             self.ping_delay_s, "ping", (ctx.shard, i))
            ctx.log("done", self.n)

        engine.process(churn(), name=f"churn{ctx.shard}")
        ctx.on_message(lambda t, tag, payload: ctx.log(tag, payload))


def _delivery_key(src: int, sender_seq: int) -> int:
    return _DELIVERY_BASE + src * _SENDER_STRIDE + sender_seq


def _deliver(engine: Engine, heap: list, shard_id: int, time: float,
             key: int, ctx: ShardContext, tag: str,
             payload: _t.Any) -> None:
    """Push a channel delivery event onto a specific shard heap."""
    event = Event(engine)
    event._ok = True
    event._value = None
    event.callbacks = [lambda _ev, t=time, g=tag, p=payload:
                       ctx._dispatch(t, g, p)]
    event._scheduled = shard_id + 1
    heapq.heappush(heap, (time, key, event))


def _make_contexts(engine: Engine,
                   heap_for: _t.Callable[[int], list],
                   shard_tag_for: _t.Callable[[int], int],
                   n: int,
                   lookahead: _t.Callable[[int, int], float]
                   ) -> list[ShardContext]:
    """Contexts whose ``send`` delivers in-process with the canonical key."""
    contexts: list[ShardContext] = []
    emitted = [0] * n
    for shard in range(n):
        def send(dst: int, delay: float, tag: str, payload: _t.Any,
                 _src: int = shard) -> None:
            key = _delivery_key(_src, emitted[_src])
            emitted[_src] += 1
            _deliver(engine, heap_for(dst), shard_tag_for(dst),
                     engine.now + delay, key, contexts[dst], tag, payload)

        contexts.append(ShardContext(engine, shard, n, send, lookahead))
    return contexts


def run_cooperative(programs: _t.Sequence[ShardProgram],
                    lookahead_s: float = 1e-3,
                    until: float | None = None,
                    record: bool = False,
                    lookahead_map: dict[tuple[int, int], float] | None = None,
                    ) -> tuple[ShardedEngine, list[list[tuple]], list[tuple] | None]:
    """Run programs on a :class:`ShardedEngine` in rounds mode.

    Returns ``(engine, per-shard logs, causality log)``.
    """
    n = len(programs)
    engine = ShardedEngine(n, lookahead_s=lookahead_s)
    if lookahead_map:
        for (src, dst), latency in lookahead_map.items():
            engine.set_link_lookahead(src, dst, latency)
    contexts = _make_contexts(
        engine,
        lambda dst: engine.shards[dst].heap,
        lambda dst: dst,
        n, engine.lookahead)
    for shard, program in enumerate(programs):
        with engine.shard_scope(shard):
            program.setup(contexts[shard])
    log = engine.run_rounds(until=until, record=record)
    return engine, [ctx.logs for ctx in contexts], log


def run_single_reference(programs: _t.Sequence[ShardProgram],
                         lookahead_s: float = 1e-3,
                         until: float | None = None,
                         lookahead_map: dict[tuple[int, int], float] | None = None,
                         ) -> tuple[Engine, list[list[tuple]]]:
    """The 1-engine oracle: same programs, same channel semantics, one heap."""
    engine = Engine()
    n = len(programs)
    lookup = dict(lookahead_map or {})

    def lookahead(src: int, dst: int) -> float:
        return lookup.get((src, dst), lookahead_s)

    contexts = _make_contexts(
        engine,
        lambda dst: engine._heap,
        lambda dst: 0,
        n, lookahead)
    for shard, program in enumerate(programs):
        program.setup(contexts[shard])
    engine.run(until=until)
    return engine, [ctx.logs for ctx in contexts]


# ---------------------------------------------------------------------------
# Multiprocess execution: one worker process per shard, coordinator-driven
# conservative rounds over pipes, spawn start method pinned.
# ---------------------------------------------------------------------------


def _drain_exclusive(engine: Engine, horizon: float) -> int:
    """Process every event strictly below ``horizon``; return the count."""
    n = 0
    while engine.peek() < horizon:
        engine.step()
        n += 1
    return n


def _mp_worker(conn, shard: int, n_shards: int, program: ShardProgram,
               lookahead_s: float,
               lookahead_map: dict[tuple[int, int], float],
               extra_paths: list[str]) -> None:
    """Worker entry point: one shard engine driven by advance commands."""
    import sys
    for path in reversed(extra_paths):
        if path not in sys.path:
            sys.path.insert(0, path)
    try:
        engine = Engine()
        outbox: list[WireMessage] = []
        emitted = 0

        def send(dst: int, delay: float, tag: str, payload: _t.Any) -> None:
            nonlocal emitted
            outbox.append(WireMessage(engine.now + delay, shard, dst,
                                      emitted, tag, payload))
            emitted += 1

        def lookahead(src: int, dst: int) -> float:
            return lookahead_map.get((src, dst), lookahead_s)

        ctx = ShardContext(engine, shard, n_shards, send, lookahead)
        program.setup(ctx)
        processed = 0
        while True:
            cmd = conn.recv()
            if cmd[0] == "stop":
                break
            _, horizon, deliveries = cmd
            for msg in deliveries:
                if msg.time < engine.now - 1e-12:
                    raise SimulationError(
                        f"late delivery at {msg.time} behind shard clock "
                        f"{engine.now} — lookahead protocol violation")
                _deliver(engine, engine._heap, 0, msg.time,
                         _delivery_key(msg.src, msg.seq), ctx,
                         msg.tag, msg.payload)
            processed += _drain_exclusive(engine, horizon)
            sends = list(outbox)
            outbox.clear()
            conn.send(("round", engine.peek(), sends))
        conn.send(("logs", ctx.logs, processed))
    except BaseException as exc:  # surface worker crashes to the parent
        import traceback
        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _recv(conn, timeout_s: float, who: str):
    if not conn.poll(timeout_s):
        raise SimulationError(f"timed out waiting for {who}")
    try:
        reply = conn.recv()
    except EOFError as exc:
        raise SimulationError(f"{who} died mid-protocol") from exc
    if reply[0] == "error":
        raise SimulationError(f"{who} failed:\n{reply[1]}")
    return reply


def run_multiprocess(programs: _t.Sequence[ShardProgram],
                     lookahead_s: float = 1e-3,
                     until: float | None = None,
                     lookahead_map: dict[tuple[int, int], float] | None = None,
                     timeout_s: float = 120.0,
                     max_rounds: int = 100_000,
                     ) -> tuple[list[list[tuple]], int]:
    """Run each program in its own spawned worker process.

    Returns ``(per-shard logs, total events processed)``.  Every link's
    lookahead must be strictly positive — zero-latency pairs must be
    co-located on one shard before distribution.

    The coordinator runs the conservative round protocol: each round it
    computes per-shard horizons from neighbour *promises* (a shard
    cannot emit before its next event or earliest undelivered inbound
    message), routes pending :class:`WireMessage` batches sorted by the
    canonical delivery key, and advances every worker to its horizon.
    """
    import multiprocessing as mp
    import sys

    n = len(programs)
    lookup = dict(lookahead_map or {})

    def lookahead(src: int, dst: int) -> float:
        return lookup.get((src, dst), lookahead_s)

    for src in range(n):
        for dst in range(n):
            if src != dst and lookahead(src, dst) <= 0:
                raise SimulationError(
                    f"multiprocess execution needs positive lookahead on "
                    f"every link; shard{src}->shard{dst} has "
                    f"{lookahead(src, dst)!r}")

    ctx = mp.get_context("spawn")
    pipes = [ctx.Pipe() for _ in range(n)]
    extra_paths = [p for p in sys.path if p]
    workers = [
        ctx.Process(target=_mp_worker,
                    args=(child, shard, n, programs[shard], lookahead_s,
                          lookup, extra_paths),
                    daemon=True, name=f"shard{shard}-worker")
        for shard, (_, child) in enumerate(pipes)]
    for w in workers:
        w.start()
    for _, child in pipes:
        child.close()
    conns = [parent for parent, _ in pipes]

    clocks = [0.0] * n
    next_event = [0.0] * n
    pending: list[WireMessage] = []
    logs: list[list[tuple]] = [[] for _ in range(n)]
    total = 0
    try:
        for _round in range(max_rounds):
            if all(ne == _INF for ne in next_event) and not pending:
                break
            if until is not None and all(c >= until for c in clocks):
                break
            # A shard cannot emit before it next executes anything: its
            # next local event or its earliest undelivered inbound.
            promise = list(next_event)
            for msg in pending:
                if msg.time < promise[msg.dst]:
                    promise[msg.dst] = msg.time
            for o in range(n):
                if promise[o] < clocks[o]:
                    promise[o] = clocks[o]
            horizons = []
            for s in range(n):
                bound = min((promise[o] + lookahead(o, s)
                             for o in range(n) if o != s), default=_INF)
                if until is not None and bound > until:
                    bound = until
                horizons.append(bound)
            deliveries: list[list[WireMessage]] = [[] for _ in range(n)]
            for msg in sorted(pending,
                              key=lambda m: (m.time, m.src, m.seq)):
                deliveries[msg.dst].append(msg)
            pending = []
            for s in range(n):
                conns[s].send(("advance", horizons[s], deliveries[s]))
            for s in range(n):
                _, ne, sends = _recv(conns[s], timeout_s,
                                     f"shard{s} worker")
                next_event[s] = ne
                pending.extend(sends)
            clocks = horizons
        else:
            raise SimulationError(
                f"multiprocess coordinator exceeded {max_rounds} rounds "
                f"(livelock or degenerate lookahead)")
        for s in range(n):
            conns[s].send(("stop",))
        for s in range(n):
            _, shard_logs, processed = _recv(conns[s], timeout_s,
                                             f"shard{s} worker logs")
            logs[s] = shard_logs
            total += processed
    finally:
        for conn in conns:
            conn.close()
        for w in workers:
            w.join(timeout=timeout_s)
        for w in workers:
            if w.is_alive():  # pragma: no cover - crash cleanup
                w.terminate()
                w.join(timeout=5.0)
    return logs, total
