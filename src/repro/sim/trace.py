"""Lightweight instrumentation for simulations.

Components append :class:`TraceRecord` entries to a shared :class:`Tracer`.
The analysis layer turns traces into utilization figures and timelines; the
tests use them to assert ordering properties.  Tracing is off by default and
costs one predicate call per record when disabled.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamped, categorized payload."""

    time: float
    category: str
    actor: str
    detail: _t.Any = None


class Tracer:
    """Collects trace records, optionally filtered by category."""

    def __init__(self, enabled: bool = True, categories: _t.Iterable[str] | None = None):
        self.enabled = enabled
        self.categories: frozenset[str] | None = (
            frozenset(categories) if categories is not None else None
        )
        self.records: list[TraceRecord] = []

    def log(self, time: float, category: str, actor: str, detail: _t.Any = None) -> None:
        """Append a record if tracing is enabled for ``category``."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, actor, detail))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def by_actor(self, actor: str) -> list[TraceRecord]:
        """All records from one actor, in time order."""
        return [r for r in self.records if r.actor == actor]

    def counts(self) -> dict[str, int]:
        """Record counts per category."""
        out: dict[str, int] = collections.Counter()
        for r in self.records:
            out[r.category] += 1
        return dict(out)

    def clear(self) -> None:
        self.records.clear()


#: A shared no-op tracer for components constructed without one.
NULL_TRACER = Tracer(enabled=False)
