"""Synchronization and flow-control primitives built on the event kernel.

* :class:`Store` — a FIFO buffer of items with blocking ``put``/``get``
  (used as mailboxes and request queues).
* :class:`Resource` — counted resource with ``acquire``/``release`` (a
  ``capacity=1`` resource is a lock; used to serialize DMA engines, NIC
  injection, CPU cores).
* :class:`BandwidthShare` — a fluid-flow bandwidth pool: concurrent flows
  share the capacity equally, and rates are recomputed whenever a flow
  starts or finishes.  This models fair-share link contention without
  simulating individual packets.
"""

from __future__ import annotations

import collections
import typing as _t

from ..errors import SimulationError
from .engine import Engine
from .events import Event, Timeout


class Store:
    """FIFO item buffer with optional capacity.

    ``put(item)`` returns an event that succeeds once the item is accepted;
    ``get()`` returns an event that succeeds with the next item.  With the
    default infinite capacity, ``put`` always succeeds immediately.
    """

    def __init__(self, engine: Engine, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity!r}")
        self.engine = engine
        self.capacity = capacity
        self.items: collections.deque[_t.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, _t.Any]] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: _t.Any) -> Event:
        """Offer ``item``; the returned event succeeds when it is buffered."""
        ev = Event(self.engine)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        """Request the next item; the event succeeds with it."""
        ev = Event(self.engine)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed(None)
                progressed = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True


class Resource:
    """Counted resource; ``capacity=1`` behaves as a mutex.

    Waiters are served FIFO.  ``release()`` must be called exactly once per
    granted ``acquire()``; a double release raises.
    """

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity!r}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Returns an event that succeeds when a unit is granted."""
        ev = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a unit; wakes the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1


class _Flow:
    __slots__ = ("remaining", "weight", "done")

    def __init__(self, nbytes: float, weight: float, done: Event):
        self.remaining = float(nbytes)
        self.weight = weight
        self.done = done


class BandwidthShare:
    """Fluid-flow model of a shared bandwidth pool.

    A flow of *n* bytes transfers at rate ``capacity * weight / W`` where
    ``W`` is the total weight of active flows — i.e. max-min fair sharing
    with equal (or weighted) shares.  Whenever the flow set changes, all
    remaining byte counts are advanced to the current time and the single
    next-completion timer is rescheduled.

    With one flow at a time this degenerates to ``n / capacity`` exactly,
    so uncontended transfers are precise.
    """

    def __init__(self, engine: Engine, capacity_bytes_per_s: float):
        if capacity_bytes_per_s <= 0:
            raise SimulationError(f"capacity must be positive: {capacity_bytes_per_s!r}")
        self.engine = engine
        self.capacity = float(capacity_bytes_per_s)
        self._flows: list[_Flow] = []
        self._timer: Timeout | None = None
        self._last_t = engine.now

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self) -> float:
        """Per-flow fair-share rate at this instant (bytes/s)."""
        total_w = sum(f.weight for f in self._flows)
        return self.capacity / total_w if total_w > 0 else self.capacity

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start a flow of ``nbytes``; the event succeeds at completion."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes!r}")
        if weight <= 0:
            raise SimulationError(f"flow weight must be positive: {weight!r}")
        done = Event(self.engine)
        if nbytes == 0:
            done.succeed(None)
            return done
        self._advance()
        self._flows.append(_Flow(nbytes, weight, done))
        self._reschedule()
        return done

    # -- internal -------------------------------------------------------
    def _advance(self) -> None:
        """Debit elapsed bytes from each active flow."""
        now = self.engine.now
        dt = now - self._last_t
        self._last_t = now
        flows = self._flows
        if dt <= 0 or not flows:
            return
        if len(flows) == 1:
            # Fast path; bit-identical to the general formula because
            # w / w == 1.0 exactly and capacity * 1.0 == capacity.
            f = flows[0]
            f.remaining -= self.capacity * dt
            if f.remaining < 0:
                f.remaining = 0.0
            return
        total_w = sum(f.weight for f in flows)
        for f in flows:
            f.remaining -= self.capacity * (f.weight / total_w) * dt
        # Numerical guard: clamp tiny negatives from float error.
        for f in flows:
            if f.remaining < 0:
                f.remaining = 0.0

    #: Flows with less than this many bytes left are considered complete
    #: (absorbs float error from incremental debiting).
    _EPSILON_BYTES = 1e-6
    #: Timers shorter than this cannot advance the clock reliably; the flow
    #: is force-completed instead of spinning on zero-delay timers.
    _MIN_TIMER_S = 1e-12

    def _reschedule(self) -> None:
        if self._timer is not None and not self._timer._processed:
            self._timer.cancel()
        self._timer = None
        flows = self._flows
        if len(flows) == 1:
            # Fast path for the uncontended link (the overwhelmingly
            # common case for pipeline block streams); arithmetic is
            # bit-identical to the fair-share formula with one flow.
            f = flows[0]
            if f.remaining > self._EPSILON_BYTES:
                next_dt = f.remaining / self.capacity
                if next_dt > self._MIN_TIMER_S:
                    self._timer = self.engine.pooled_timer(next_dt)
                    self._timer.add_callback(self._on_timer)
                    return
            flows.clear()
            f.done.succeed(None)
            return
        while True:
            # Complete any flows that are done (or numerically done).
            finished = [f for f in self._flows if f.remaining <= self._EPSILON_BYTES]
            if finished:
                self._flows = [f for f in self._flows
                               if f.remaining > self._EPSILON_BYTES]
                for f in finished:
                    f.done.succeed(None)
            if not self._flows:
                return
            total_w = sum(f.weight for f in self._flows)
            next_dt = min(
                f.remaining / (self.capacity * (f.weight / total_w))
                for f in self._flows
            )
            if next_dt <= self._MIN_TIMER_S:
                # Residue below timer resolution: drain it and loop.
                for f in self._flows:
                    if f.remaining / (self.capacity * (f.weight / total_w)) <= self._MIN_TIMER_S:
                        f.remaining = 0.0
                continue
            # Pooled: every new flow cancels and replaces this timer, so
            # the share would otherwise allocate one Timeout per block of
            # every pipeline stream.
            self._timer = self.engine.pooled_timer(next_dt)
            self._timer.add_callback(self._on_timer)
            return

    def _on_timer(self, _ev: Event) -> None:
        self._advance()
        self._reschedule()
