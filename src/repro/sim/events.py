"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in virtual time.  It
starts *pending*, becomes *triggered* when given a value (success) or an
exception (failure), and becomes *processed* once the engine has run its
callbacks.  Processes (see :mod:`repro.sim.process`) suspend by yielding
events and are resumed when the event is processed.

The design follows the SimPy event model but is implemented from scratch and
trimmed to what the cluster simulation needs: plain events, timeouts,
all-of / any-of conditions, and cancellation (used by the fluid bandwidth
sharing model to rescind provisional completion timers).
"""

from __future__ import annotations

import heapq
import typing as _t

from ..errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

#: Sentinel meaning "this event has not been triggered yet".
PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    Callbacks are callables of one argument (the event itself).  They run when
    the engine processes the event; callbacks added *after* processing are
    invoked immediately so late waiters do not hang.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed",
                 "_cancelled", "_scheduled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        # Lazily allocated: many events (timers especially) are created,
        # fired, and collected without anyone ever registering a callback.
        self.callbacks: list[_t.Callable[["Event"], None]] | None = None
        self._value: _t.Any = PENDING
        self._ok: bool | None = None
        self._processed = False
        self._cancelled = False
        #: True while an entry for this event sits in the engine's heap
        #: (set by the engine; lets cancel() keep the live-event count).
        self._scheduled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before triggering."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> _t.Any:
        """The success value or failure exception. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- transitions ----------------------------------------------------
    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        # _trigger() inlined: succeed() fires on every message, flow, and
        # RPC completion, so one saved call per event is measurable.
        if self._cancelled:
            raise SimulationError("cannot trigger a cancelled event")
        if self._value is not PENDING:
            raise SimulationError(
                f"event already triggered (value={self._value!r})"
            )
        self._ok = True
        self._value = value
        engine = self.engine
        # Owning shard + 1 (see Engine._enqueue); plain engines are all
        # shard 0, so this stays truthy-True.
        self._scheduled = engine._active_shard + 1
        heapq.heappush(engine._heap,
                       (engine.now, next(engine._seq), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A process waiting on the event has the exception thrown into it.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(False, exception)
        return self

    def cancel(self) -> None:
        """Cancel a pending event.

        A cancelled event's callbacks never run.  Used for provisional
        timers.  Cancelling an already-processed event is an error.
        The heap entry is *lazily* deleted: the engine counts it dead and
        compacts the heap when dead entries dominate (see
        :meth:`Engine._note_dead`).
        """
        if self._processed:
            raise SimulationError("cannot cancel a processed event")
        self._cancelled = True
        if self._scheduled:
            # _scheduled is the owning shard + 1 (bool True == 1 maps to
            # shard 0 on a plain engine), so the dead-entry count lands
            # on the heap that actually holds the entry.
            self.engine._note_dead_on(self._scheduled - 1)

    def _trigger(self, ok: bool, value: _t.Any) -> None:
        if self._cancelled:
            raise SimulationError("cannot trigger a cancelled event")
        if self._value is not PENDING:
            raise SimulationError(
                f"event already triggered (value={self._value!r})"
            )
        self._ok = ok
        self._value = value
        self.engine._enqueue(self)

    def _process(self) -> None:
        """Run callbacks.  Called by the engine."""
        if self._cancelled:
            return
        self._processed = True
        callbacks = self.callbacks
        if callbacks is not None:
            # _processed is already set, so a callback registered *during*
            # this loop runs immediately instead of appending — iterating
            # then clearing in place is safe and allocation-free.
            for cb in callbacks:
                cb(self)
            callbacks.clear()

    def add_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self._processed:
            callback(self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled"
            if self._cancelled
            else "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` seconds in the future."""

    __slots__ = ("delay", "_poolable")

    def __init__(self, engine: "Engine", delay: float, value: _t.Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Event.__init__ unrolled — timers are the most-allocated event
        # type (one per simulated latency, plus every provisional timer).
        self.engine = engine
        self.callbacks = None
        self._value = value
        self._ok = True
        self._processed = False
        self._cancelled = False
        self.delay = float(delay)
        #: Recyclable through the engine's slot pool once cancelled and
        #: popped.  Only set on engine-created hot-path timers whose
        #: references provably do not outlive the race that made them.
        self._poolable = False
        self._scheduled = engine._active_shard + 1
        heapq.heappush(engine._heap,
                       (engine.now + self.delay, next(engine._seq), self))

    def succeed(self, value: _t.Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout triggers automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout triggers automatically")

    def _rearm(self, delay: float) -> None:
        """Reset a recycled (cancelled, popped) timer and re-enqueue it.

        Slot reuse for the request hot path: every RPC races its reply
        against a deadline, and the winner's cancelled deadline would
        otherwise be garbage plus a fresh allocation per request.

        A timer may only be re-armed once its heap entry is gone: re-arming
        while a (cancelled) entry still sits in *any* heap would clear
        ``_cancelled`` and let the stale entry fire the timer early.  Pools
        are engine-local (shard-local under a sharded engine) precisely so
        this cannot happen through the sanctioned recycle path; the guard
        turns any other path into a loud error instead of a spurious fire.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        if self._scheduled:
            raise SimulationError(
                "re-arming a timer whose heap entry is still scheduled "
                "(pool recycling must stay engine/shard-local)")
        self._cancelled = False
        self._processed = False
        self._ok = True
        self._value = None
        self.callbacks = None
        self.delay = float(delay)
        self.engine._enqueue(self, delay=self.delay)


class Deadline(Timeout):
    """A timeout used as a per-request deadline.

    Behaviourally identical to :class:`Timeout`; the distinct type lets
    code that races a deadline against a reply (see :meth:`Engine.race`)
    recognise which branch fired, and reads better in traces.
    """

    __slots__ = ()


class Condition(Event):
    """Composite event over a list of child events.

    ``AllOf`` succeeds once every child succeeded; ``AnyOf`` succeeds as soon
    as one child does.  If any child fails, the condition fails with that
    child's exception (first failure wins).
    """

    __slots__ = ("events", "_n_needed", "_n_done")

    def __init__(self, engine: "Engine", events: _t.Sequence[Event], n_needed: int):
        super().__init__(engine)
        self.events = list(events)
        if any(ev.engine is not engine for ev in self.events):
            raise SimulationError("condition mixes events from different engines")
        self._n_needed = min(n_needed, len(self.events))
        self._n_done = 0
        if self._n_needed == 0:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _collect(self) -> dict[Event, _t.Any]:
        return {ev: ev._value for ev in self.events
                if ev._value is not PENDING and ev._ok}

    def _on_child(self, child: Event) -> None:
        # Slot access over the property wrappers: conditions sit on every
        # fabric flow and RPC race, so this callback is hot.
        if self._value is not PENDING:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._n_done += 1
        if self._n_done >= self._n_needed:
            self.succeed(self._collect())


class AllOf(Condition):
    """Succeeds once all child events have succeeded."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: _t.Sequence[Event]):
        super().__init__(engine, events, n_needed=len(list(events)))


class AnyOf(Condition):
    """Succeeds as soon as any child event succeeds."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: _t.Sequence[Event]):
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        super().__init__(engine, events, n_needed=1)
