"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in virtual time.  It
starts *pending*, becomes *triggered* when given a value (success) or an
exception (failure), and becomes *processed* once the engine has run its
callbacks.  Processes (see :mod:`repro.sim.process`) suspend by yielding
events and are resumed when the event is processed.

The design follows the SimPy event model but is implemented from scratch and
trimmed to what the cluster simulation needs: plain events, timeouts,
all-of / any-of conditions, and cancellation (used by the fluid bandwidth
sharing model to rescind provisional completion timers).
"""

from __future__ import annotations

import typing as _t

from ..errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

#: Sentinel meaning "this event has not been triggered yet".
PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    Callbacks are callables of one argument (the event itself).  They run when
    the engine processes the event; callbacks added *after* processing are
    invoked immediately so late waiters do not hang.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed", "_cancelled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[_t.Callable[["Event"], None]] = []
        self._value: _t.Any = PENDING
        self._ok: bool | None = None
        self._processed = False
        self._cancelled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before triggering."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> _t.Any:
        """The success value or failure exception. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- transitions ----------------------------------------------------
    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A process waiting on the event has the exception thrown into it.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(False, exception)
        return self

    def cancel(self) -> None:
        """Cancel a pending event.

        A cancelled event's callbacks never run.  Used for provisional
        timers.  Cancelling an already-processed event is an error.
        """
        if self._processed:
            raise SimulationError("cannot cancel a processed event")
        self._cancelled = True

    def _trigger(self, ok: bool, value: _t.Any) -> None:
        if self._cancelled:
            raise SimulationError("cannot trigger a cancelled event")
        if self.triggered:
            raise SimulationError(
                f"event already triggered (value={self._value!r})"
            )
        self._ok = ok
        self._value = value
        self.engine._enqueue(self)

    def _process(self) -> None:
        """Run callbacks.  Called by the engine."""
        if self._cancelled:
            return
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled"
            if self._cancelled
            else "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: _t.Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(engine)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        engine._enqueue(self, delay=self.delay)

    def succeed(self, value: _t.Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout triggers automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout triggers automatically")


class Deadline(Timeout):
    """A timeout used as a per-request deadline.

    Behaviourally identical to :class:`Timeout`; the distinct type lets
    code that races a deadline against a reply (see :meth:`Engine.race`)
    recognise which branch fired, and reads better in traces.
    """

    __slots__ = ()


class Condition(Event):
    """Composite event over a list of child events.

    ``AllOf`` succeeds once every child succeeded; ``AnyOf`` succeeds as soon
    as one child does.  If any child fails, the condition fails with that
    child's exception (first failure wins).
    """

    __slots__ = ("events", "_n_needed", "_n_done")

    def __init__(self, engine: "Engine", events: _t.Sequence[Event], n_needed: int):
        super().__init__(engine)
        self.events = list(events)
        if any(ev.engine is not engine for ev in self.events):
            raise SimulationError("condition mixes events from different engines")
        self._n_needed = min(n_needed, len(self.events))
        self._n_done = 0
        if self._n_needed == 0:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _collect(self) -> dict[Event, _t.Any]:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._n_done += 1
        if self._n_done >= self._n_needed:
            self.succeed(self._collect())


class AllOf(Condition):
    """Succeeds once all child events have succeeded."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: _t.Sequence[Event]):
        super().__init__(engine, events, n_needed=len(list(events)))


class AnyOf(Condition):
    """Succeeds as soon as any child event succeeds."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: _t.Sequence[Event]):
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        super().__init__(engine, events, n_needed=1)
