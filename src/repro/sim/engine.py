"""The discrete-event simulation engine.

The engine owns a priority queue of (time, sequence, event) entries and a
virtual clock.  Triggered events are enqueued and processed in timestamp
order; equal timestamps are processed in trigger order (FIFO), which makes
the simulation deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import typing as _t

from ..errors import SimulationError
from .events import AllOf, AnyOf, Deadline, Event, Timeout
from .process import Process, ProcessGenerator


class Engine:
    """Event loop and virtual clock for one simulation.

    All simulation objects (networks, GPUs, MPI ranks, daemons) are built
    against one engine and share its clock.  Typical driver::

        eng = Engine()
        proc = eng.process(my_generator())
        eng.run(until=proc)
        print(eng.now, proc.value)
    """

    #: Compaction threshold: rebuild the heap once more than half of at
    #: least this many entries are cancelled (lazy deletion hygiene).
    COMPACT_MIN = 64
    #: Upper bound on recycled hot-path deadline objects kept around.
    POOL_MAX = 128

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._n_dead = 0
        #: Recycled race() deadlines awaiting slot reuse.
        self._deadline_pool: list[Deadline] = []
        #: Recycled plain timers (see :meth:`pooled_timer`).
        self._timeout_pool: list[Timeout] = []
        #: Sharding hooks.  A plain engine is one shard (id 0); the
        #: :class:`~repro.sim.sharded.ShardedEngine` subclass flips
        #: ``_sharded`` and swaps the heap/pool aliases per shard.
        self._sharded = False
        self._active_shard = 0

    # -- sharding hooks --------------------------------------------------
    def _switch_shard(self, shard: int) -> None:  # pragma: no cover - hook
        """Make ``shard`` the scheduling context (no-op on a plain engine)."""
        self._active_shard = shard

    def shard_scope(self, shard: int) -> "_ShardScope":
        """Context manager pinning construction to ``shard``.

        Simulation objects created inside the scope (and the processes
        they start) schedule onto that shard's event heap.  On a plain
        single-heap engine the scope only tags ``_active_shard`` so
        :class:`~repro.sim.process.Process` pinning stays consistent.
        """
        return _ShardScope(self, shard)

    # -- scheduling -----------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        # _scheduled holds the owning shard + 1 (truthy) so cancel() can
        # charge the heap that really holds the entry; a plain engine is
        # all shard 0, making this the historical True.
        event._scheduled = self._active_shard + 1
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def _note_dead_on(self, shard: int) -> None:
        """Shard-routed cancel accounting; one heap here, so plain
        :meth:`_note_dead` (the sharded engine overrides this)."""
        self._note_dead()

    def _note_dead(self) -> None:
        """A scheduled event was cancelled: count it, compact if rotten.

        Cancelled entries stay in the heap (lazy deletion — popping
        mid-heap is O(n) anyway); once more than half the heap is dead
        it is rebuilt without them, so RPC ``race()`` deadlines cannot
        rot the queue for the rest of a long run.
        """
        self._n_dead += 1
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN and self._n_dead * 2 > len(heap):
            live = []
            for entry in heap:
                if entry[2]._cancelled:
                    self._retire(entry[2])
                else:
                    live.append(entry)
            # In place, so the run loops' local heap binding stays valid.
            heap[:] = live
            heapq.heapify(heap)
            self._n_dead = 0

    def _retire(self, event: Event) -> None:
        """A dead heap entry is gone; recycle poolable timer slots.

        Exact-type checks keep subclasses with extra state out of the
        shared pools.
        """
        event._scheduled = False
        if not getattr(event, "_poolable", False):
            return
        cls = type(event)
        if cls is Deadline:
            if len(self._deadline_pool) < self.POOL_MAX:
                self._deadline_pool.append(event)
        elif cls is Timeout:
            if len(self._timeout_pool) < self.POOL_MAX:
                self._timeout_pool.append(event)

    def _pop_next(self) -> tuple[float, int, Event] | None:
        """Pop the next *live* heap entry (None if none remain).

        The single scan shared by :meth:`peek`, :meth:`step`, and the
        :meth:`run` loops — the former peek()+step() pairing walked past
        the same cancelled prefix twice per iteration.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[2]
            if event._cancelled:
                self._n_dead -= 1
                self._retire(event)
                continue
            event._scheduled = False
            return entry
        return None

    def peek(self) -> float:
        """Timestamp of the next live event, or ``inf`` if none remain."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            _, _, event = heapq.heappop(heap)
            self._n_dead -= 1
            self._retire(event)
        return heap[0][0] if heap else float("inf")

    @property
    def queued(self) -> int:
        """Live (non-cancelled) events in the queue."""
        return len(self._heap) - self._n_dead

    def step(self) -> None:
        """Process the single next event."""
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("step() on an empty event queue")
        when, _, event = entry
        if when < self.now:
            raise SimulationError("event queue went back in time")  # pragma: no cover
        self.now = when
        event._process()

    def run(self, until: Event | float | None = None) -> _t.Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until the event is processed and return its
          value (re-raising its exception if it failed).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        # The loops below inline _pop_next() with local bindings: one
        # dict lookup per event instead of a method call plus several
        # attribute loads, on the hottest loop in the whole simulator.
        # Compaction rewrites self._heap *in place*, so the local heap
        # binding stays valid across callbacks.
        heap = self._heap
        heappop = heapq.heappop
        try:
            if until is None:
                while heap:
                    entry = heappop(heap)
                    event = entry[2]
                    if event._cancelled:
                        self._n_dead -= 1
                        self._retire(event)
                        continue
                    event._scheduled = False
                    self.now = entry[0]
                    event._process()
                return None
            if isinstance(until, Event):
                stop = until
                while not stop._processed:
                    if not heap:
                        raise SimulationError(
                            "deadlock: event queue empty before 'until' event fired"
                        )
                    entry = heappop(heap)
                    event = entry[2]
                    if event._cancelled:
                        self._n_dead -= 1
                        self._retire(event)
                        continue
                    event._scheduled = False
                    self.now = entry[0]
                    event._process()
                if not stop.ok:
                    raise stop.value
                return stop.value
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(
                    f"cannot run until {horizon}, clock already at {self.now}"
                )
            while heap:
                entry = heappop(heap)
                event = entry[2]
                if event._cancelled:
                    self._n_dead -= 1
                    self._retire(event)
                    continue
                if entry[0] > horizon:
                    # Too far: put the live entry back (cheap, once).
                    heapq.heappush(heap, entry)
                    break
                event._scheduled = False
                self.now = entry[0]
                event._process()
            self.now = horizon
            return None
        finally:
            self._running = False

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def pooled_timer(self, delay: float) -> Timeout:
        """A plain valueless :class:`Timeout` recycled through the slot pool.

        For internal timers that are frequently cancelled and replaced
        (e.g. the fluid bandwidth model's provisional completion timer):
        once a cancelled instance is popped from the heap it is re-armed
        for the next caller instead of allocating afresh.  Callers must
        not keep references past cancellation (same contract as
        :meth:`race` deadlines).
        """
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._rearm(delay)
            return t
        t = Timeout(self, delay)
        t._poolable = True
        return t

    def process(self, gen: ProcessGenerator, name: str | None = None,
                shard: int | None = None) -> Process:
        """Start a new process from ``gen``.

        ``shard`` pins the process to one shard of a sharded engine; by
        default it inherits the shard active at creation time.
        """
        return Process(self, gen, name=name, shard=shard)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Event that succeeds once all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Event that succeeds once any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def deadline(self, seconds: float) -> Deadline:
        """A deadline timer firing ``seconds`` from now."""
        return Deadline(self, seconds)

    def call_at(self, when: float, fn: _t.Callable[[], None]) -> Timeout:
        """Run ``fn()`` at absolute virtual time ``when``.

        Fault/chaos injections are pure state flips at known instants;
        scheduling them as timer callbacks avoids one generator frame per
        injection.  A ``when`` at or before ``now`` runs at the current
        instant.  Returns the timer (``cancel()`` to unschedule).
        """
        t = Timeout(self, max(0.0, when - self.now))
        t.add_callback(lambda _ev: fn())
        return t

    def race(self, event: Event, seconds: float) -> tuple[AnyOf, Deadline]:
        """Race ``event`` against a fresh deadline of ``seconds``.

        Returns ``(condition, deadline)``.  A process yields the condition;
        afterwards ``event.triggered`` tells whether the real event won.  If
        it did, cancel the deadline (unless already processed) to keep the
        event heap clean::

            cond, dl = engine.race(reply.done, timeout_s)
            yield cond
            if reply.done.triggered:
                if not dl.processed:
                    dl.cancel()
            else:
                ...  # the deadline fired first

        Deadlines created here are slot-reused: once cancelled and
        retired from the heap, the object is re-armed for a later race
        instead of allocating a fresh one (the RPC hot path makes one
        per request).  Do not keep references to ``dl`` beyond the race.
        """
        pool = self._deadline_pool
        if pool:
            dl = pool.pop()
            dl._rearm(seconds)
        else:
            dl = Deadline(self, seconds)
            dl._poolable = True
        return self.any_of([event, dl]), dl

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self.now:.9f} queued={self.queued}>"


class _ShardScope:
    """Reentrant construction scope for :meth:`Engine.shard_scope`."""

    __slots__ = ("_engine", "_shard", "_saved")

    def __init__(self, engine: Engine, shard: int):
        self._engine = engine
        self._shard = shard
        self._saved = 0

    def __enter__(self) -> "_ShardScope":
        self._saved = self._engine._active_shard
        self._engine._switch_shard(self._shard)
        return self

    def __exit__(self, *exc) -> None:
        self._engine._switch_shard(self._saved)
