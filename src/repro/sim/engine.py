"""The discrete-event simulation engine.

The engine owns a priority queue of (time, sequence, event) entries and a
virtual clock.  Triggered events are enqueued and processed in timestamp
order; equal timestamps are processed in trigger order (FIFO), which makes
the simulation deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import typing as _t

from ..errors import SimulationError
from .events import AllOf, AnyOf, Deadline, Event, Timeout
from .process import Process, ProcessGenerator


class Engine:
    """Event loop and virtual clock for one simulation.

    All simulation objects (networks, GPUs, MPI ranks, daemons) are built
    against one engine and share its clock.  Typical driver::

        eng = Engine()
        proc = eng.process(my_generator())
        eng.run(until=proc)
        print(eng.now, proc.value)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False

    # -- scheduling -----------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        while True:
            if not self._heap:
                raise SimulationError("step() on an empty event queue")
            when, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            break
        if when < self.now:
            raise SimulationError("event queue went back in time")  # pragma: no cover
        self.now = when
        event._process()

    def run(self, until: Event | float | None = None) -> _t.Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until the event is processed and return its
          value (re-raising its exception if it failed).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            if until is None:
                while self._heap:
                    if self.peek() == float("inf"):
                        break
                    self.step()
                return None
            if isinstance(until, Event):
                stop = until
                while not stop.processed:
                    if self.peek() == float("inf"):
                        raise SimulationError(
                            "deadlock: event queue empty before 'until' event fired"
                        )
                    self.step()
                if not stop.ok:
                    raise stop.value
                return stop.value
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(
                    f"cannot run until {horizon}, clock already at {self.now}"
                )
            while self.peek() <= horizon:
                self.step()
            self.now = horizon
            return None
        finally:
            self._running = False

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGenerator, name: str | None = None) -> Process:
        """Start a new process from ``gen``."""
        return Process(self, gen, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Event that succeeds once all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Event that succeeds once any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def deadline(self, seconds: float) -> Deadline:
        """A deadline timer firing ``seconds`` from now."""
        return Deadline(self, seconds)

    def race(self, event: Event, seconds: float) -> tuple[AnyOf, Deadline]:
        """Race ``event`` against a fresh deadline of ``seconds``.

        Returns ``(condition, deadline)``.  A process yields the condition;
        afterwards ``event.triggered`` tells whether the real event won.  If
        it did, cancel the deadline (unless already processed) to keep the
        event heap clean::

            cond, dl = engine.race(reply.done, timeout_s)
            yield cond
            if reply.done.triggered:
                if not dl.processed:
                    dl.cancel()
            else:
                ...  # the deadline fired first
        """
        dl = Deadline(self, seconds)
        return self.any_of([event, dl]), dl

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self.now:.9f} queued={len(self._heap)}>"
