"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
instances.  Yielding an event suspends the process until the event is
processed; the event's value is sent back into the generator (or its
exception thrown in).  A :class:`Process` is itself an event that succeeds
with the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

import typing as _t

from ..errors import ProcessInterrupt, SimulationError
from .events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

ProcessGenerator = _t.Generator[Event, _t.Any, _t.Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process starts at the current simulation time (the first resumption
    is scheduled immediately, not executed synchronously, so a process never
    runs before ``engine.run()``).
    """

    __slots__ = ("_gen", "_send", "_throw", "_target", "name", "shard")

    def __init__(self, engine: "Engine", gen: ProcessGenerator, name: str | None = None,
                 shard: int | None = None):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"Process needs a generator, got {gen!r}")
        super().__init__(engine)
        self._gen = gen
        # Bound methods cached once: _resume runs once per event on the
        # hot path and the attribute chain is measurable there.
        self._send = gen.send
        self._throw = gen.throw
        self._target: Event | None = None
        self.name = name or getattr(gen, "__name__", "process")
        #: Shard this process executes on (inherited from the shard active
        #: when it was created, unless pinned explicitly).  On a plain
        #: engine this is always 0.
        self.shard = engine._active_shard if shard is None else shard
        # Kick off via an immediately-succeeding event so execution order is
        # controlled by the engine, not by construction order.
        start = Event(engine)
        self._target = start
        start.callbacks = [self._resume]
        start.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process.

        The interrupt is delivered at the current simulation time.  The
        event the process was waiting on is abandoned (its eventual value is
        ignored).  Interrupting a finished process is an error.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        # Deliver through a failing event so the engine sequences it.
        interrupt_ev = Event(self.engine)
        old_target = self._target
        self._target = interrupt_ev
        interrupt_ev.add_callback(lambda ev: self._resume(ev))
        interrupt_ev.fail(ProcessInterrupt(cause))
        # old_target's pending callback will see a stale target and no-op.
        del old_target

    # -- internal -------------------------------------------------------
    def _wait_on(self, event: Event) -> None:
        self._target = event
        event.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if event is not self._target:
            return  # stale wake-up (process was interrupted meanwhile)
        self._target = None
        engine = self.engine
        if engine._sharded and engine._active_shard != self.shard:
            # The wake-up crossed a partition boundary: record it and make
            # this process's shard the scheduling context, so events it
            # creates while running land on its own shard's heap.
            engine._note_crossing(engine._active_shard, self.shard)
            engine._switch_shard(self.shard)
        send = self._send
        while True:
            try:
                # Hot path: read the event slots directly (the property
                # wrappers re-validate "triggered", which is a given here).
                if event._ok:
                    target = send(event._value)
                else:
                    target = self._throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except ProcessInterrupt as exc:
                # An unhandled interrupt terminates the process as a failure.
                self.fail(exc)
                return
            except Exception as exc:
                if not self.callbacks:
                    # Nobody is waiting: surface the crash instead of
                    # silently swallowing it.
                    raise
                self.fail(exc)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
            if target.engine is not self.engine:
                raise SimulationError(
                    f"process {self.name!r} yielded an event from another engine"
                )
            if target._processed:
                # Already done: continue synchronously.
                event = target
                continue
            self._target = target
            if target.callbacks is None:
                target.callbacks = [self._resume]
            else:
                target.callbacks.append(self._resume)
            return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
