"""Observability: span tracing, trace export, and the metrics registry.

The site-operator's view of the dynamic accelerator cluster (the paper's
Sect. III utilization argument presumes one): every front-end ``ac*``
call opens a span whose context rides the request frame to the daemon,
where the network / staging / DMA / kernel phases open child spans on the
same trace id.  Exports feed ``chrome://tracing`` / Perfetto or an ASCII
timeline; the metrics registry distills latency percentiles and resource
counters for :func:`repro.analysis.metrics.collect`.

Public surface::

    from repro.obs import (Span, SpanContext, TraceCollector, NULL_SPAN,
                           collector_for, enable_tracing, trace_session)
    from repro.obs import (chrome_trace, write_chrome_trace,
                           validate_chrome_trace, render_timeline)
    from repro.obs import (MetricsRegistry, Counter, Gauge, Histogram,
                           instrument_cluster)
"""

from .export import (
    TraceSchemaError,
    chrome_trace,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument_cluster,
    latency_summary,
)
from .spans import (
    NULL_SPAN,
    NullSpan,
    Span,
    SpanContext,
    TraceCollector,
    TraceSession,
    collector_for,
    context_from_wire,
    enable_tracing,
    trace_session,
)

__all__ = [
    "Span",
    "SpanContext",
    "NullSpan",
    "NULL_SPAN",
    "TraceCollector",
    "TraceSession",
    "collector_for",
    "context_from_wire",
    "enable_tracing",
    "trace_session",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_timeline",
    "TraceSchemaError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "instrument_cluster",
    "latency_summary",
]
