"""Span-based tracing for the middleware request path.

A *span* is one timed phase of a request — ``client.memcpy_h2d`` on the
front-end, ``daemon.memcpy_h2d`` on the back-end, ``net.recv`` while a
data block is on the wire, ``dma`` while the PCIe engine moves it.  Spans
carry a :class:`SpanContext` (trace id + span id); the context of a
front-end span rides the :class:`~repro.core.protocol.Request` frame to
the daemon, whose spans become *children* on the same trace id, so one
remote operation decomposes into its injection / network / staging / DMA
phases end to end.

All timestamps are **virtual** times read from the simulation engine.
Recording a span never yields, never schedules an event, and never
advances the clock — tracing on or off, the simulation timeline is
bit-identical (asserted by ``tests/obs/test_identity.py``).

Disabled tracing follows the ``NULL_TRACER`` pattern of
:mod:`repro.sim.trace`: :meth:`TraceCollector.start` returns the shared
:data:`NULL_SPAN` whose methods all no-op, so hot paths pay one enabled
check per operation and nothing else.

Collectors are looked up per engine with :func:`collector_for` — every
component of one simulation shares one collector, exactly like they share
one clock.  :func:`trace_session` turns tracing on globally for a block
of code (the ``python -m repro trace`` CLI uses it to trace experiments
that build their own clusters internally).
"""

from __future__ import annotations

import contextlib
import itertools
import typing as _t
import weakref

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..sim import Engine


class SpanContext(_t.NamedTuple):
    """Wire-portable identity of one span: ``(trace_id, span_id)``."""

    trace_id: int
    span_id: int


class SpanEvent(_t.NamedTuple):
    """A timestamped point annotation inside a span (retry, failover...)."""

    time: float
    name: str
    attrs: dict


class Span:
    """One timed phase of a request, on one actor's timeline.

    Spans are created through :meth:`TraceCollector.start` (or
    :meth:`child`), finished explicitly with :meth:`finish` or by using
    the span as a context manager — which also closes it when an
    exception (including a process interrupt) unwinds the enclosing
    generator, so failed branches cannot leak open spans.
    """

    __slots__ = ("collector", "name", "category", "actor", "trace_id",
                 "span_id", "parent_id", "start", "end", "attrs", "events",
                 "shard")

    def __init__(self, collector: "TraceCollector", name: str, actor: str,
                 trace_id: int, span_id: int, parent_id: int | None,
                 start: float, attrs: dict, shard: int = 0):
        self.collector = collector
        self.name = name
        #: Chrome-trace category: the part of ``name`` before the first dot.
        self.category = name.split(".", 1)[0]
        self.actor = actor
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs = attrs
        self.events: list[SpanEvent] = []
        #: Engine shard active when the span opened (0 on a plain engine).
        #: Sharded runs keep one collector — per-shard span streams merge
        #: into one trace, tagged rather than separated.
        self.shard = shard

    # -- identity ---------------------------------------------------------
    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def wire(self) -> tuple[int, int]:
        """The context as a plain tuple, for riding a Request frame."""
        return (self.trace_id, self.span_id)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Span length; an open span extends to the collector's clock."""
        return (self.end if self.end is not None
                else self.collector.now) - self.start

    # -- recording --------------------------------------------------------
    def event(self, name: str, **attrs: _t.Any) -> None:
        """Record a timestamped point annotation on this span."""
        self.events.append(SpanEvent(self.collector.now, name, attrs))

    def set(self, **attrs: _t.Any) -> None:
        """Attach attributes to the span."""
        self.attrs.update(attrs)

    def child(self, name: str, actor: str | None = None,
              **attrs: _t.Any) -> "Span | NullSpan":
        """Open a child span (same trace id)."""
        return self.collector.start(name, actor or self.actor,
                                    parent=self.context, **attrs)

    def finish(self, **attrs: _t.Any) -> None:
        """Close the span at the current virtual time (idempotent)."""
        if self.end is None:
            if attrs:
                self.attrs.update(attrs)
            self.end = self.collector.now
            self.collector._open.discard(self)

    # -- context manager --------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self.end is None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.open else f"{self.duration * 1e6:.1f}us"
        return (f"<Span {self.name} t{self.trace_id}/s{self.span_id} "
                f"@{self.actor} {state}>")


class NullSpan:
    """The disabled-tracing span: every method no-ops.

    A single shared instance (:data:`NULL_SPAN`) is returned by disabled
    collectors so instrumented code never branches on "is tracing on".
    """

    __slots__ = ()

    context = None
    wire = None
    events: list = []
    attrs: dict = {}
    open = False
    duration = 0.0

    def event(self, name: str, **attrs: _t.Any) -> None:
        pass

    def set(self, **attrs: _t.Any) -> None:
        pass

    def child(self, name: str, actor: str | None = None,
              **attrs: _t.Any) -> "NullSpan":
        return self

    def finish(self, **attrs: _t.Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NullSpan>"


#: Shared no-op span returned whenever tracing is disabled.
NULL_SPAN = NullSpan()


def span_wire(span: "Span | NullSpan") -> tuple[int, int] | None:
    """The ``Request.trace`` payload for a span (None when disabled)."""
    return span.wire


def context_from_wire(wire: tuple[int, int] | None) -> SpanContext | None:
    """Rebuild a :class:`SpanContext` from a Request's ``trace`` field."""
    return SpanContext(*wire) if wire else None


class TraceCollector:
    """Per-engine span store, sharing the engine's virtual clock.

    One collector serves every component built against one engine — the
    front-ends, daemons, DMA engines, and the fabric all
    :func:`collector_for` the same instance, exactly like they share the
    clock.  ``enabled`` may be flipped at any time; components cache the
    collector object, not its state, so enabling after cluster
    construction works.
    """

    def __init__(self, engine: "Engine", enabled: bool = False):
        self.enabled = enabled
        # A weak reference: collectors live in a WeakKeyDictionary keyed
        # by engine, so a strong back-reference would pin the entry (and
        # the whole simulation) forever.
        self._engine_ref = weakref.ref(engine)
        self.spans: list[Span] = []
        self._open: set[Span] = set()
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._adopted: SpanContext | None = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        engine = self._engine_ref()
        return engine.now if engine is not None else 0.0

    # -- span creation ----------------------------------------------------
    def start(self, name: str, actor: str,
              parent: "SpanContext | Span | None" = None,
              **attrs: _t.Any) -> "Span | NullSpan":
        """Open a span; returns :data:`NULL_SPAN` when disabled.

        Without an explicit ``parent`` the span adopts any context staged
        by :meth:`adopt_parent` (consumed), else it roots a new trace.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent, self._adopted = self._adopted, None
        if isinstance(parent, Span):
            parent = parent.context
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(self._trace_ids), None
        engine = self._engine_ref()
        shard = engine._active_shard if engine is not None else 0
        span = Span(self, name, actor, trace_id, next(self._span_ids),
                    parent_id, self.now, attrs, shard=shard)
        self.spans.append(span)
        self._open.add(span)
        return span

    def adopt_parent(self, ctx: "SpanContext | None") -> None:
        """Stage a parent context for the *next* :meth:`start` call.

        The simulation is cooperatively scheduled, so a stage-then-start
        pair executed without an intervening yield is race-free.  The
        :class:`~repro.core.stream.Stream` pump uses this to parent the
        front-end's op span under its frame span without threading a
        context argument through every ``ac*`` signature.
        """
        if self.enabled:
            self._adopted = ctx

    def clear_adopted(self) -> None:
        """Drop a staged parent that was never consumed (error paths)."""
        self._adopted = None

    # -- queries ----------------------------------------------------------
    @property
    def open_spans(self) -> list[Span]:
        return sorted(self._open, key=lambda s: s.span_id)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def by_trace(self, trace_id: int) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans
                if s.trace_id == span.trace_id and s.parent_id == span.span_id]

    # -- lifecycle --------------------------------------------------------
    def abort_open(self, reason: str) -> int:
        """Close every open span, marking it aborted; returns the count.

        Called when a request path is torn down abnormally (a
        ``run_parallel`` branch died, a sync call was interrupted) so the
        export never contains dangling spans.
        """
        aborted = list(self._open)
        for span in aborted:
            span.attrs.setdefault("aborted", reason)
            span.finish()
        self.clear_adopted()
        return len(aborted)

    def clear(self) -> None:
        self.spans.clear()
        self._open.clear()
        self._adopted = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return (f"<TraceCollector {state} spans={len(self.spans)} "
                f"open={len(self._open)}>")


#: engine -> collector.  Weak keys: a collector must not outlive (or pin)
#: its simulation.
_collectors: "weakref.WeakKeyDictionary[Engine, TraceCollector]" = (
    weakref.WeakKeyDictionary())

#: When True (inside a :func:`trace_session`), collectors are born enabled.
_default_enabled = False

#: The active session accumulating strong references to collectors of
#: engines created while it is open (engines are transient per experiment).
_active_session: "TraceSession | None" = None


def collector_for(engine: "Engine") -> TraceCollector:
    """The engine's span collector (created disabled on first use)."""
    col = _collectors.get(engine)
    if col is None:
        col = TraceCollector(engine, enabled=_default_enabled)
        _collectors[engine] = col
        if _active_session is not None:
            _active_session.collectors.append(col)
    return col


def enable_tracing(engine: "Engine") -> TraceCollector:
    """Turn span collection on for one engine; returns its collector."""
    col = collector_for(engine)
    col.enabled = True
    return col


class TraceSession:
    """Collects spans from every engine created while the session is open.

    Experiments build clusters (and therefore engines) internally; the
    session flips the global default so those engines' collectors are
    born enabled, and keeps strong references so their spans survive the
    engines themselves.  Collectors are exported as separate Chrome-trace
    processes (each engine has its own virtual clock).
    """

    def __init__(self) -> None:
        self.collectors: list[TraceCollector] = []

    def span_count(self) -> int:
        return sum(len(c.spans) for c in self.collectors)

    def to_chrome_trace(self) -> dict:
        from .export import chrome_trace
        return chrome_trace(self.collectors)

    def render_timeline(self, width: int = 100) -> str:
        from .export import render_timeline
        return "\n\n".join(
            render_timeline(col, width=width)
            for col in self.collectors if col.spans) or "(no spans recorded)"


@contextlib.contextmanager
def trace_session() -> _t.Iterator[TraceSession]:
    """Enable tracing for every engine created inside the block."""
    global _default_enabled, _active_session
    session = TraceSession()
    prev_enabled, prev_session = _default_enabled, _active_session
    _default_enabled, _active_session = True, session
    try:
        yield session
    finally:
        _default_enabled, _active_session = prev_enabled, prev_session
