"""Histogram/counter/gauge registry for cluster observability.

The registry is the quantitative half of :mod:`repro.obs`: where spans
answer "where did this request's time go", metrics answer "what are the
p50/p95/p99 latencies, per-op request mixes, and resource peaks across
the whole run".  :func:`instrument_cluster` snapshots every component
counter a :class:`~repro.cluster.builder.Cluster` keeps — daemon request
and byte counters, GPU busy time, fabric volume, ARM pool state — into
one registry, and distills per-operation latency histograms from the
engine's span collector when tracing was on.
:func:`repro.analysis.metrics.collect` builds its ``ClusterReport`` from
this registry rather than scraping component fields directly.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import typing as _t

from .spans import collector_for

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster

Labels = _t.Tuple[_t.Tuple[str, str], ...]


def _label_key(labels: dict[str, _t.Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count (requests, bytes, retries)."""

    name: str
    labels: Labels = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A point-in-time level (queue depth, staging bytes, utilization)."""

    name: str
    labels: Labels = ()
    value: float = 0.0
    #: High-water mark across every ``set`` call.
    peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class Histogram:
    """Sample distribution with exact quantiles.

    Samples are kept sorted (insertion via ``bisect``); the simulated
    request volumes are far below the point where a sketch would be
    needed, and exact quantiles keep the report deterministic.
    """

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._sorted: list[float] = []
        self.sum = 0.0

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        return self.sum / len(self._sorted) if self._sorted else 0.0

    @property
    def min(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def observe(self, value: float) -> None:
        bisect.insort(self._sorted, value)
        self.sum += value

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank), ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        if not self._sorted:
            return 0.0
        rank = max(math.ceil(p / 100.0 * len(self._sorted)) - 1, 0)
        return self._sorted[min(rank, len(self._sorted) - 1)]

    def summary(self) -> dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99), "max": self.max}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, Labels],
                            Counter | Gauge | Histogram] = {}

    def _get(self, kind: str, factory, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory(name, key[2])
        return metric

    def counter(self, name: str, **labels: _t.Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: _t.Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: _t.Any) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    # -- queries ----------------------------------------------------------
    def value(self, name: str, **labels: _t.Any) -> float:
        """The value of a counter/gauge (0.0 when absent)."""
        key = _label_key(labels)
        for kind in ("counter", "gauge"):
            metric = self._metrics.get((kind, name, key))
            if metric is not None:
                return metric.value
        return 0.0

    def histograms(self, name: str) -> list[Histogram]:
        return [m for (kind, n, _), m in sorted(self._metrics.items())
                if kind == "histogram" and n == name]

    def collect(self) -> dict[str, _t.Any]:
        """Flat snapshot: ``name{k=v,...}`` -> value / histogram summary."""
        out: dict[str, _t.Any] = {}
        for (kind, name, labels), metric in sorted(self._metrics.items()):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            full = f"{name}{{{label_str}}}" if label_str else name
            out[full] = (metric.summary() if isinstance(metric, Histogram)
                         else metric.value)
        return out

    def render(self) -> str:
        """Human-readable dump, one metric per line."""
        lines = []
        for full, value in self.collect().items():
            if isinstance(value, dict):
                lines.append(
                    f"{full}: n={value['count']} mean={value['mean']:.3g} "
                    f"p50={value['p50']:.3g} p95={value['p95']:.3g} "
                    f"p99={value['p99']:.3g}")
            else:
                lines.append(f"{full}: {value:g}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._metrics)


def instrument_cluster(cluster: "Cluster") -> MetricsRegistry:
    """Snapshot a cluster's component counters into a fresh registry.

    Populates, per accelerator: ``daemon.requests`` / ``.transfer_requests``
    / ``.batches`` / ``.batched_ops`` / ``.mbatches`` / ``.mbatched_subs``
    / ``.mbatched_ops`` / ``.dedup_hits``, ``bytes.h2d`` /
    ``bytes.d2h``, ``staging.peak_bytes`` (gauge), ``gpu.busy_seconds``,
    ``gpu.kernels``, ``dma.bytes`` / ``dma.busy_seconds``; cluster-wide:
    ``fabric.bytes`` / ``fabric.messages``, ``pool.utilization``, and ARM
    assignment seconds.  When the engine's span collector holds client
    spans, per-op ``request.latency_s`` histograms are distilled from
    them (p50/p95/p99 come straight out of these).
    """
    reg = MetricsRegistry()
    snap = cluster.arm.snapshot()
    for node, daemon in zip(cluster.accelerator_nodes, cluster.daemons):
        ac = f"ac{node.ac_id}"
        info = snap.get(node.ac_id, {})
        stats = daemon.stats
        reg.counter("daemon.requests", ac=ac).inc(stats.requests)
        reg.counter("daemon.transfer_requests", ac=ac).inc(
            stats.transfer_requests)
        reg.counter("daemon.batches", ac=ac).inc(stats.batches)
        reg.counter("daemon.batched_ops", ac=ac).inc(stats.batched_ops)
        reg.counter("daemon.mbatches", ac=ac).inc(stats.mbatches)
        reg.counter("daemon.mbatched_subs", ac=ac).inc(stats.mbatched_subs)
        reg.counter("daemon.mbatched_ops", ac=ac).inc(stats.mbatched_ops)
        reg.counter("daemon.dedup_hits", ac=ac).inc(stats.dedup_hits)
        reg.counter("bytes.h2d", ac=ac).inc(stats.bytes_h2d)
        reg.counter("bytes.d2h", ac=ac).inc(stats.bytes_d2h)
        staging = reg.gauge("staging.bytes", ac=ac)
        staging.set(stats.staging_peak)     # record the component's peak
        staging.set(stats.staging_now)      # then the current level
        reg.counter("gpu.kernels", ac=ac).inc(node.gpu.kernels_launched)
        reg.gauge("gpu.busy_seconds", ac=ac).set(node.gpu.busy_time)
        reg.counter("dma.bytes", ac=ac).inc(node.gpu.dma.bytes_copied)
        reg.counter("dma.transfers", ac=ac).inc(node.gpu.dma.transfers)
        reg.gauge("dma.busy_seconds", ac=ac).set(node.gpu.dma.busy_time)
        reg.gauge("arm.assigned_seconds", ac=ac).set(
            info.get("assigned_seconds", 0.0))
    reg.counter("fabric.bytes").inc(cluster.fabric.bytes_moved)
    reg.counter("fabric.messages").inc(cluster.fabric.messages_sent)
    reg.gauge("pool.utilization").set(cluster.arm.utilization())
    collector = collector_for(cluster.engine)
    for span in collector.spans:
        if span.open:
            continue
        if span.name.startswith("client."):
            op = span.name.split(".", 1)[1]
            reg.histogram("request.latency_s", op=op).observe(span.duration)
            reg.histogram("request.latency_s", op="all").observe(span.duration)
        elif span.name == "stream.frame":
            reg.histogram("stream.frame_latency_s").observe(span.duration)
        elif span.name == "dma.copy":
            reg.histogram("dma.copy_s").observe(span.duration)
        depth = span.attrs.get("queue_depth")
        if depth is not None:
            reg.gauge("stream.queue_depth",
                      stream=span.actor).set(float(depth))
    return reg


def latency_summary(reg: MetricsRegistry) -> dict[str, dict[str, float]]:
    """Per-op request-latency summaries, keyed by op name."""
    out: dict[str, dict[str, float]] = {}
    for hist in reg.histograms("request.latency_s"):
        labels = dict(hist.labels)
        out[labels.get("op", "?")] = hist.summary()
    return out
