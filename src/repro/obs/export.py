"""Trace export: Chrome trace-event JSON and an ASCII timeline.

The JSON follows the Trace Event Format consumed by ``chrome://tracing``
and Perfetto: one complete-duration event (``"ph": "X"``) per span with
microsecond virtual timestamps, one instant event (``"ph": "i"``) per
span event, and metadata events naming the processes (one per engine)
and threads (one per actor).  Span identity (trace id, span id, parent
id) travels in ``args`` so external tools can rebuild the request tree.

:func:`validate_chrome_trace` is the schema check the golden tests and
the CI trace step share — it verifies structure, types, and that every
``parent_id`` resolves to a span on the same trace.
"""

from __future__ import annotations

import json
import typing as _t

from .spans import Span, TraceCollector

#: Factor from virtual seconds to trace-event microseconds.
_US = 1e6


def _span_event(span: Span, pid: int, tid: int) -> dict:
    end = span.end if span.end is not None else span.collector.now
    args: dict[str, _t.Any] = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
    }
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    if span.shard:
        # Only tagged when nonzero, so single-engine traces (and their
        # goldens) are byte-for-byte what they always were.
        args["shard"] = span.shard
    if span.open:
        args["open"] = True
    for key, value in span.attrs.items():
        args[key] = value if isinstance(value, (int, float, str, bool,
                                                type(None))) else repr(value)
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start * _US,
        "dur": (end - span.start) * _US,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def chrome_trace(collectors: "TraceCollector | _t.Sequence[TraceCollector]",
                 ) -> dict:
    """Build a Chrome trace-event dict from one or more collectors.

    Each collector (engine) becomes one trace process; each actor one
    thread of that process.  Deterministic: pids follow collector order,
    tids follow first-appearance order of actors.
    """
    if isinstance(collectors, TraceCollector):
        collectors = [collectors]
    events: list[dict] = []
    total_spans = 0
    for pid, col in enumerate(collectors, start=1):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "ts": 0.0,
                       "args": {"name": f"engine{pid}"}})
        tids: dict[str, int] = {}
        for span in col.spans:
            tid = tids.get(span.actor)
            if tid is None:
                tid = tids[span.actor] = len(tids) + 1
                events.append({"name": "thread_name", "ph": "M", "pid": pid,
                               "tid": tid, "ts": 0.0,
                               "args": {"name": span.actor}})
            events.append(_span_event(span, pid, tid))
            for ev in span.events:
                events.append({
                    "name": f"{span.name}:{ev.name}",
                    "cat": span.category,
                    "ph": "i",
                    "s": "t",
                    "ts": ev.time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(ev.attrs, span_id=span.span_id,
                                 trace_id=span.trace_id),
                })
        total_spans += len(col.spans)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "virtual",
            "span_count": total_spans,
        },
    }


def write_chrome_trace(collectors, path: str) -> dict:
    """Export to ``path`` (validated first); returns the trace dict."""
    trace = chrome_trace(collectors)
    validate_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
    return trace


class TraceSchemaError(ValueError):
    """The exported object violates the trace-event schema."""


def validate_chrome_trace(obj: _t.Any) -> None:
    """Assert ``obj`` is well-formed trace-event JSON; raise otherwise.

    Checks the container shape, per-event required fields and types, and
    referential integrity: every ``parent_id`` must name a span exported
    on the same pid with the same trace id.
    """
    if not isinstance(obj, dict):
        raise TraceSchemaError(f"trace must be a dict, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise TraceSchemaError("traceEvents must be a list")
    spans: dict[tuple[int, int], int] = {}  # (pid, span_id) -> trace_id
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TraceSchemaError(f"event {i} is not a dict")
        for field, types in (("name", str), ("ph", str),
                             ("ts", (int, float)), ("pid", int), ("tid", int)):
            if not isinstance(ev.get(field), types):
                raise TraceSchemaError(
                    f"event {i} ({ev.get('name')!r}): bad {field!r} field")
        if ev["ph"] not in ("X", "i", "I", "M", "B", "E"):
            raise TraceSchemaError(f"event {i}: unknown phase {ev['ph']!r}")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                raise TraceSchemaError(
                    f"event {i} ({ev['name']!r}): X events need dur >= 0")
            if ev["ts"] < 0:
                raise TraceSchemaError(f"event {i}: negative timestamp")
            args = ev.get("args")
            if not isinstance(args, dict):
                raise TraceSchemaError(f"event {i}: X events need args")
            if not isinstance(args.get("trace_id"), int) or \
                    not isinstance(args.get("span_id"), int):
                raise TraceSchemaError(
                    f"event {i} ({ev['name']!r}): span events must carry "
                    f"integer trace_id/span_id")
            spans[(ev["pid"], args["span_id"])] = args["trace_id"]
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue
        parent = ev["args"].get("parent_id")
        if parent is None:
            continue
        key = (ev["pid"], parent)
        if key not in spans:
            raise TraceSchemaError(
                f"event {i} ({ev['name']!r}): parent_id {parent} does not "
                f"resolve to an exported span")
        if spans[key] != ev["args"]["trace_id"]:
            raise TraceSchemaError(
                f"event {i} ({ev['name']!r}): parent span is on a "
                f"different trace")


# -- ASCII timeline -------------------------------------------------------

def render_timeline(collector: TraceCollector, width: int = 100,
                    max_rows: int = 60) -> str:
    """Render the collector's spans as a per-actor ASCII Gantt chart.

    One row per span, grouped by actor in first-appearance order, bars
    scaled to the collector's full time range.  Reading guide: bars that
    nest under a longer bar on another actor are the phases the longer
    operation decomposed into; gaps between child bars are wait time.
    """
    spans = sorted(collector.spans, key=lambda s: (s.start, s.span_id))
    if not spans:
        return "(no spans recorded)"
    t0 = min(s.start for s in spans)
    t1 = max((s.end if s.end is not None else collector.now) for s in spans)
    extent = max(t1 - t0, 1e-12)
    label_w = min(max(len(f"{s.actor} {s.name}") for s in spans) + 2, 44)
    bar_w = max(width - label_w - 14, 20)
    lines = [f"timeline: {len(spans)} spans over "
             f"{extent * 1e3:.3f} ms (virtual)",
             f"{'actor / span':<{label_w}}|{'':<{bar_w}}| duration"]
    by_actor: dict[str, list[Span]] = {}
    for s in spans:
        by_actor.setdefault(s.actor, []).append(s)
    rows = 0
    for actor, group in by_actor.items():
        for s in group:
            if rows >= max_rows:
                lines.append(f"... {len(spans) - rows} more spans elided")
                return "\n".join(lines)
            end = s.end if s.end is not None else collector.now
            lo = int((s.start - t0) / extent * bar_w)
            hi = max(int((end - t0) / extent * bar_w), lo + 1)
            bar = " " * lo + "=" * (hi - lo) + " " * (bar_w - hi)
            label = f"{actor} {s.name}"
            if len(label) > label_w - 1:
                label = label[:label_w - 2] + "…"
            lines.append(f"{label:<{label_w}}|{bar}| "
                         f"{(end - s.start) * 1e6:9.2f} us")
            rows += 1
    return "\n".join(lines)
