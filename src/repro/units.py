"""Unit constants and helpers.

The whole library works in **bytes** for sizes and **seconds** for time.
Bandwidths are bytes per second.  The paper reports bandwidth in MiB/s and
message sizes in KiB, so conversion helpers are provided for the benchmark
harness and tables.
"""

from __future__ import annotations

#: One kibibyte in bytes.
KiB = 1024
#: One mebibyte in bytes.
MiB = 1024 * 1024
#: One gibibyte in bytes.
GiB = 1024 * 1024 * 1024

#: One microsecond in seconds.
USEC = 1e-6
#: One millisecond in seconds.
MSEC = 1e-3

#: One gigaflop (10^9 floating point operations).
GFLOP = 1e9


def mib_per_s(bytes_per_s: float) -> float:
    """Convert a bandwidth from bytes/s to MiB/s."""
    return bytes_per_s / MiB


def bytes_per_s(mib_s: float) -> float:
    """Convert a bandwidth from MiB/s to bytes/s."""
    return mib_s * MiB


def gflops(flops: float, seconds: float) -> float:
    """Achieved GFlop/s for ``flops`` operations in ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"non-positive duration: {seconds!r}")
    return flops / seconds / GFLOP


def fmt_size(nbytes: int) -> str:
    """Human-readable size (``64 MiB``, ``128 KiB``, ``17 B``)."""
    if nbytes % MiB == 0 and nbytes >= MiB:
        return f"{nbytes // MiB} MiB"
    if nbytes % KiB == 0 and nbytes >= KiB:
        return f"{nbytes // KiB} KiB"
    return f"{nbytes} B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration with an appropriate unit."""
    if seconds >= 60.0:
        return f"{seconds / 60.0:.2f} min"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.2f} us"
