"""The MP2C driver: MD streaming + migration + GPU-offloaded SRD.

One simulation process per MPI rank, each owning one accelerator (local
or network-attached) — the configuration of the paper's Sect. V-C runs
(two processes on separate nodes, one GPU each).  Per MD step:

1. CPU work: stream/integrate the local particles (charged to the
   calibrated per-particle cost; real mode also moves them numerically);
2. migrate boundary-crossing particles to the neighbouring ranks;
3. every ``srd_every``-th step, offload the SRD collision: upload
   positions + velocities, run the collision kernel, download the new
   velocities.

In timed mode the particle arrays are phantoms of the true sizes, so the
transfer schedule — the thing the dynamic architecture changes — is
exercised exactly.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from . import kernels as _kernels  # noqa: F401  (publishes srd_collide)
from ...cluster.specs import CPUSpec
from ...core.api import run_parallel
from ...errors import WorkloadError
from ...mpisim import Phantom, RankHandle
from ...sim import Engine
from ..linalg.hostmem import as_matrix
from .config import MP2CConfig
from .domain import SlabDecomposition
from .md import lj_forces_on_local, stream, wrap_periodic

_MIG_TAG = 900
#: Tag slots used per MD step: solvent migration (0,1), solute migration
#: (2,3), solute halo exchange (4,5).
_TAGS_PER_STEP = 6
#: Tag block for the pre-loop halo exchange that seeds the solute forces.
_PRELOOP_TAG = 800


def _neighbour_exchange(rank, left: int, right: int, base_tag: int,
                        to_left: _t.Any, to_right: _t.Any):
    """Symmetric exchange with both slab neighbours (generator).

    Returns the two received payloads.  With two ranks the single
    neighbour plays both roles, so two distinct tags keep the streams
    apart.
    """
    if left == right:
        m1 = yield from rank.sendrecv(left, base_tag, to_left,
                                      source=left, recv_tag=base_tag)
        m2 = yield from rank.sendrecv(left, base_tag + 1, to_right,
                                      source=left, recv_tag=base_tag + 1)
    else:
        m1 = yield from rank.sendrecv(left, base_tag, to_left,
                                      source=right, recv_tag=base_tag)
        m2 = yield from rank.sendrecv(right, base_tag + 1, to_right,
                                      source=left, recv_tag=base_tag + 1)
    return m1.payload, m2.payload


def _gather_arrays(arrivals) -> np.ndarray:
    """Stack the non-empty (n, 6) migration bundles."""
    incoming = [a for a in arrivals if isinstance(a, np.ndarray) and a.size]
    if not incoming:
        return np.empty((0, 6))
    return np.concatenate(incoming, axis=0)


@dataclasses.dataclass
class MP2CResult:
    """Outcome of one parallel MP2C run."""

    config: MP2CConfig
    n_ranks: int
    seconds: float
    real: bool
    #: Final per-rank particle states (real mode only).
    final: list[tuple[np.ndarray, np.ndarray]] | None = None

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0


def _migrate(rank, decomp, me: int, left: int, right: int, base_tag: int,
             pos: np.ndarray, vel: np.ndarray):
    """Exchange boundary-crossing particles; returns updated arrays."""
    pos, vel, leaving = decomp.split_leavers(me, pos, vel)
    payloads = {dest: np.concatenate([p, v], axis=1)
                for dest, (p, v) in leaving.items()}
    empty = np.empty((0, 6))
    to_left = payloads.get(left, empty)
    # With two ranks the single neighbour is both left and right;
    # everything goes in the "left" exchange.
    to_right = empty if left == right else payloads.get(right, empty)
    arrivals = yield from _neighbour_exchange(rank, left, right, base_tag,
                                              to_left, to_right)
    joined = _gather_arrays(arrivals)
    if joined.size:
        pos = np.concatenate([pos, joined[:, :3]], axis=0)
        vel = np.concatenate([vel, joined[:, 3:]], axis=0)
    return pos, vel


def _solute_halos(rank, decomp, me: int, left: int, right: int,
                  base_tag: int, spos: np.ndarray):
    """Exchange solute positions within the cutoff of the slab faces."""
    lo, hi = decomp.bounds(me)
    rcut = decomp.cell_size * 2.5  # LJ cutoff in cell units
    if left == right:
        # Two ranks: both faces border the same neighbour.  Send the
        # union of the two bands once so overlapping bands (narrow slabs)
        # cannot double-count any particle.
        band = spos[(spos[:, 0] < lo + rcut) | (spos[:, 0] >= hi - rcut)]
        halos = yield from _neighbour_exchange(rank, left, right, base_tag,
                                               band, np.empty((0, 3)))
    else:
        near_left = spos[spos[:, 0] < lo + rcut]
        near_right = spos[spos[:, 0] >= hi - rcut]
        halos = yield from _neighbour_exchange(rank, left, right, base_tag,
                                               near_left, near_right)
    return [h for h in halos if isinstance(h, np.ndarray) and h.size]


def _solute_forces(spos: np.ndarray, halos: list[np.ndarray],
                   box: np.ndarray, rcut: float) -> np.ndarray:
    """Forces on local solutes from local and halo solutes."""
    f = lj_forces_on_local(spos, spos, box, rcut, skip_self=True)
    for h in halos:
        f += lj_forces_on_local(spos, h, box, rcut)
    return f


def _rank_body(engine: Engine, cpu: CPUSpec, rank: RankHandle, ac: _t.Any,
               cfg: MP2CConfig, decomp: SlabDecomposition,
               pos: np.ndarray | None, vel: np.ndarray | None,
               spos: np.ndarray | None, svel: np.ndarray | None,
               out: list, streams: bool = False):
    """The per-rank simulation loop (generator)."""
    real = pos is not None
    me = rank.index
    box = np.array([decomp.box[0], decomp.box[1], decomp.box[2]])
    rcut = decomp.cell_size * 2.5
    n_local = (pos.shape[0] if real
               else cfg.n_particles // decomp.n_ranks)
    has_solutes = real and spos is not None and spos.shape[0] >= 0
    n_sol = spos.shape[0] if has_solutes else 0
    vec_bytes = cfg.particle_bytes(int((n_local + n_sol) * 1.25) + 16)

    if streams:
        st = ac.stream(name=f"mp2c-rank{me}")
        st.kernel_create("srd_collide")
        pos_fut = st.mem_alloc(vec_bytes)
        vel_fut = st.mem_alloc(vec_bytes)
        yield from st.synchronize()
        gpu_pos, gpu_vel = pos_fut.result(), vel_fut.result()
    else:
        st = None
        yield from ac.kernel_create("srd_collide")
        gpu_pos = yield from ac.mem_alloc(vec_bytes)
        gpu_vel = yield from ac.mem_alloc(vec_bytes)

    left, right = decomp.neighbors(me)

    # Seed the solute forces F(t=0) with one halo exchange.
    sforce = None
    if has_solutes:
        if decomp.n_ranks > 1:
            halos = yield from _solute_halos(rank, decomp, me, left, right,
                                             _PRELOOP_TAG, spos)
        else:
            halos = []
        sforce = _solute_forces(spos, halos, box, rcut)

    for step in range(cfg.steps):
        tags = _MIG_TAG + _TAGS_PER_STEP * step
        # 1. CPU: streaming / MD / coupling work on local particles.
        count = pos.shape[0] if real else n_local
        yield engine.timeout(count * cfg.md_cost_per_particle_s)
        if real:
            stream(pos, vel, cfg.dt)
            wrap_periodic(pos, box)
            if has_solutes:
                # Velocity Verlet: half kick, drift (second half kick
                # after forces are recomputed below).
                svel += 0.5 * cfg.dt * sforce
                stream(spos, svel, cfg.dt)
                wrap_periodic(spos, box)

        # 2. Migration with both neighbours (combined send+recv so the
        #    exchange cannot deadlock).
        if decomp.n_ranks > 1:
            if real:
                pos, vel = yield from _migrate(rank, decomp, me, left, right,
                                               tags, pos, vel)
                if has_solutes:
                    spos, svel = yield from _migrate(rank, decomp, me, left,
                                                     right, tags + 2,
                                                     spos, svel)
            else:
                mig = int(n_local * cfg.migration_fraction / 2)
                yield from _neighbour_exchange(rank, left, right, tags,
                                               Phantom(mig * 48),
                                               Phantom(mig * 48))

        # 2b. Solute forces for the second Verlet half kick.
        if has_solutes:
            if decomp.n_ranks > 1:
                halos = yield from _solute_halos(rank, decomp, me, left,
                                                 right, tags + 4, spos)
            else:
                halos = []
            sforce = _solute_forces(spos, halos, box, rcut)
            svel += 0.5 * cfg.dt * sforce

        # 3. SRD collision on the accelerator every srd_every-th step.
        #    Solutes participate in the collision cells — the MPC way of
        #    coupling the molecular and mesoscopic scales.
        if (step + 1) % cfg.srd_every == 0:
            if real and has_solutes:
                all_pos = np.concatenate([pos, spos], axis=0)
                all_vel = np.concatenate([vel, svel], axis=0)
            elif real:
                all_pos, all_vel = pos, vel
            count = all_pos.shape[0] if real else n_local
            nbytes = cfg.particle_bytes(int(count))
            pos_payload: _t.Any = (np.ascontiguousarray(all_pos) if real
                                   else Phantom(nbytes))
            vel_payload: _t.Any = (np.ascontiguousarray(all_vel) if real
                                   else Phantom(nbytes))
            shift_axes = (0, 1, 2) if decomp.n_ranks == 1 else (1, 2)
            srd_params = {"pos": gpu_pos, "vel": gpu_vel, "n": int(count),
                          "box": tuple(box), "a": cfg.cell_size,
                          "alpha": cfg.alpha_rad,
                          "seed": 10_000 + step,  # same on all ranks per step
                          "shift_axes": shift_axes}
            if streams:
                # Queue the whole offload; the stream keeps it ordered and
                # overlaps it with the other ranks' loops.
                st.memcpy_h2d(gpu_pos, pos_payload)
                st.memcpy_h2d(gpu_vel, vel_payload)
                st.kernel_run("srd_collide", srd_params, real=real)
                vel_back = st.memcpy_d2h(gpu_vel, nbytes)
                yield from st.synchronize()
                new_vel = vel_back.result()
            else:
                yield from ac.memcpy_h2d(gpu_pos, pos_payload)
                yield from ac.memcpy_h2d(gpu_vel, vel_payload)
                yield from ac.kernel_run("srd_collide", srd_params, real=real)
                new_vel = yield from ac.memcpy_d2h(gpu_vel, nbytes)
            if real:
                all_new = as_matrix(new_vel, int(count), 3).copy()
                if has_solutes:
                    vel = all_new[:pos.shape[0]]
                    svel = all_new[pos.shape[0]:]
                else:
                    vel = all_new

    if streams:
        st.mem_free(gpu_pos)
        st.mem_free(gpu_vel)
        yield from st.synchronize()
    else:
        yield from ac.mem_free(gpu_pos)
        yield from ac.mem_free(gpu_vel)
    if real:
        out[me] = ((pos, vel, spos, svel) if has_solutes else (pos, vel))
    else:
        out[me] = None


def run_mp2c(engine: Engine, cpu: CPUSpec, ranks: _t.Sequence[RankHandle],
             accelerators: _t.Sequence[_t.Any], cfg: MP2CConfig,
             initial: _t.Sequence[tuple[np.ndarray, np.ndarray]] | None = None,
             solutes: _t.Sequence[tuple[np.ndarray, np.ndarray]] | None = None,
             streams: bool = False):
    """Run MP2C across ``ranks`` (generator). Returns :class:`MP2CResult`.

    ``initial`` supplies per-rank solvent (pos, vel) arrays for real mode;
    omit it for timing-only runs at paper scale.  ``solutes`` optionally
    adds per-rank Lennard-Jones solute particles (real mode only): they
    integrate with velocity Verlet under pairwise LJ forces — computed
    across rank boundaries through halo exchanges — and join the SRD
    collision cells, which is how MPC couples the molecular scale to the
    mesoscopic solvent.  With solutes, ``final`` holds per-rank
    ``(pos, vel, solute_pos, solute_vel)`` tuples.  ``streams=True``
    drives each rank's accelerator through an asynchronous command
    stream (setup/teardown control ops coalesce into BATCH frames).
    """
    n_ranks = len(ranks)
    if len(accelerators) != n_ranks:
        raise WorkloadError("need exactly one accelerator per rank")
    real = initial is not None
    if solutes is not None and not real:
        raise WorkloadError("solutes require real mode (pass `initial`)")
    if solutes is not None and len(solutes) != n_ranks:
        raise WorkloadError("need one solute bundle per rank")
    edge = cfg.box_edge_cells() * cfg.cell_size
    # Round the x edge up so it splits evenly over the ranks.
    cells_x = cfg.box_edge_cells()
    if cells_x % n_ranks:
        cells_x += n_ranks - cells_x % n_ranks
    decomp = SlabDecomposition(box=(cells_x * cfg.cell_size, edge, edge),
                               n_ranks=n_ranks, cell_size=cfg.cell_size)
    if (solutes is not None and n_ranks > 1
            and decomp.slab_width < 2.5 * cfg.cell_size):
        raise WorkloadError(
            "slab width is below the LJ cutoff; one-neighbour halo "
            "exchange would miss interactions")
    out: list = [None] * n_ranks
    t0 = engine.now
    bodies = []
    for i, (rank, ac) in enumerate(zip(ranks, accelerators)):
        pos, vel = (initial[i] if real else (None, None))
        spos, svel = (solutes[i] if solutes is not None else (None, None))
        bodies.append(_rank_body(engine, cpu, rank, ac, cfg, decomp,
                                 pos, vel, spos, svel, out, streams=streams))
    yield from run_parallel(engine, bodies)
    seconds = engine.now - t0
    return MP2CResult(config=cfg, n_ranks=n_ranks, seconds=seconds,
                      real=real, final=out if real else None)
