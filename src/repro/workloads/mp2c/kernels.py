"""The SRD collision kernel offloaded to the GPU.

Published to the extension catalog; ``kernel_create`` installs it.  The
numerics are exactly :func:`repro.workloads.mp2c.srd.srd_collision` (same
seed -> same result as the host reference), and the cost model is a
memory-bound streaming estimate over the particle arrays.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ...gpusim.kernels import provide
from .srd import srd_collision

if _t.TYPE_CHECKING:  # pragma: no cover
    from ...gpusim.device import GPUDevice, GPUSpec

#: Effective GPU memory passes over pos+vel for binning, reduction,
#: rotation, and scatter.
_PASSES = 6


def _srd_fn(dev: "GPUDevice", p: dict):
    n = p["n"]
    pos = dev.memory.view(p["pos"], dtype="float64", shape=(n, 3))
    vel = dev.memory.view(p["vel"], dtype="float64", shape=(n, 3))
    new_vel = srd_collision(pos, vel, np.asarray(p["box"]), p["a"],
                            p["alpha"], p["seed"],
                            shift_axes=tuple(p.get("shift_axes", (0, 1, 2))))
    vel[:] = new_vel
    return 0


def _srd_cost(p: dict, spec: "GPUSpec") -> float:
    n = p["n"]
    bytes_touched = _PASSES * 2 * n * 3 * 8
    return bytes_touched / spec.mem_bw_Bps


provide("srd_collide", _srd_fn, _srd_cost)
