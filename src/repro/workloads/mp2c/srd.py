"""Stochastic rotation dynamics (SRD): the multi-particle collision step.

Particles are binned into cubic collision cells of edge ``a``; in each
cell the velocities are rotated around a random unit axis by a fixed angle
``alpha`` relative to the cell's centre-of-mass velocity:

    v_i' = v_cm + R(axis, alpha) @ (v_i - v_cm)

This conserves momentum per cell exactly and kinetic energy exactly (the
rotation is orthogonal) — the invariants the property tests check.  A
random grid shift restores Galilean invariance; in the domain-decomposed
parallel runs the shift is restricted to the y/z axes so collision cells
never straddle rank boundaries (slabs are cell-aligned in x).

The same routine backs both the host reference and the GPU kernel, seeded
identically, so the offloaded simulation is bit-reproducible against the
CPU path.
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError


def rotation_matrices(axes: np.ndarray, alpha: float) -> np.ndarray:
    """Rodrigues rotation matrices (k, 3, 3) for unit ``axes`` (k, 3)."""
    k = axes.shape[0]
    c, s = np.cos(alpha), np.sin(alpha)
    R = np.empty((k, 3, 3))
    x, y, z = axes[:, 0], axes[:, 1], axes[:, 2]
    R[:, 0, 0] = c + x * x * (1 - c)
    R[:, 0, 1] = x * y * (1 - c) - z * s
    R[:, 0, 2] = x * z * (1 - c) + y * s
    R[:, 1, 0] = y * x * (1 - c) + z * s
    R[:, 1, 1] = c + y * y * (1 - c)
    R[:, 1, 2] = y * z * (1 - c) - x * s
    R[:, 2, 0] = z * x * (1 - c) - y * s
    R[:, 2, 1] = z * y * (1 - c) + x * s
    R[:, 2, 2] = c + z * z * (1 - c)
    return R


def random_axes(rng: np.random.Generator, k: int) -> np.ndarray:
    """k uniformly distributed unit vectors."""
    phi = rng.uniform(0, 2 * np.pi, k)
    costheta = rng.uniform(-1, 1, k)
    sintheta = np.sqrt(1 - costheta ** 2)
    return np.stack([sintheta * np.cos(phi), sintheta * np.sin(phi),
                     costheta], axis=1)


def cell_index(pos: np.ndarray, box: np.ndarray, a: float,
               shift: np.ndarray) -> np.ndarray:
    """Collision-cell id of each particle under a grid shift."""
    coords = np.floor((pos + shift) / a).astype(np.int64)
    dims = np.maximum(np.ceil(box / a).astype(np.int64) + 1, 1)
    coords = np.clip(coords, 0, dims - 1)
    return (coords[:, 0] * dims[1] + coords[:, 1]) * dims[2] + coords[:, 2]


def srd_collision(pos: np.ndarray, vel: np.ndarray, box: np.ndarray,
                  a: float, alpha: float, seed: int,
                  shift_axes: tuple[int, ...] = (0, 1, 2)) -> np.ndarray:
    """One SRD collision step; returns the post-collision velocities.

    Deterministic given ``seed``.  ``shift_axes`` selects which axes the
    random grid shift applies to (parallel runs exclude the decomposition
    axis).
    """
    if pos.shape != vel.shape or pos.ndim != 2 or pos.shape[1] != 3:
        raise WorkloadError(f"bad particle arrays: {pos.shape} / {vel.shape}")
    n = pos.shape[0]
    if n == 0:
        return vel.copy()
    rng = np.random.default_rng(seed)
    shift = np.zeros(3)
    for ax in shift_axes:
        shift[ax] = rng.uniform(0, a)
    cells = cell_index(pos, np.asarray(box, dtype=np.float64), a, shift)
    # Compact cell ids so per-cell reductions are dense.
    uniq, inv = np.unique(cells, return_inverse=True)
    k = len(uniq)
    counts = np.bincount(inv, minlength=k).astype(np.float64)
    vcm = np.empty((k, 3))
    for d in range(3):
        vcm[:, d] = np.bincount(inv, weights=vel[:, d], minlength=k) / counts
    axes = random_axes(rng, k)
    R = rotation_matrices(axes, alpha)
    rel = vel - vcm[inv]
    rotated = np.einsum("kij,kj->ki", R[inv], rel)
    return vcm[inv] + rotated


def kinetic_energy(vel: np.ndarray) -> float:
    """Total kinetic energy (unit masses)."""
    return 0.5 * float(np.sum(vel * vel))


def momentum(vel: np.ndarray) -> np.ndarray:
    """Total momentum (unit masses)."""
    return vel.sum(axis=0)


def thermal_velocities(rng: np.random.Generator, n: int,
                       temperature: float = 1.0) -> np.ndarray:
    """Maxwell-Boltzmann velocities with zero net momentum."""
    if n == 0:
        return np.zeros((0, 3))
    v = rng.normal(0.0, np.sqrt(temperature), (n, 3))
    return v - v.mean(axis=0)
