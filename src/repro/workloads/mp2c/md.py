"""Molecular-dynamics pieces: streaming, periodic wrap, LJ solute forces.

The SRD solvent is an ideal gas between collisions: particles stream
ballistically.  Solute particles (when present) interact through a
truncated Lennard-Jones potential evaluated with a cell list, integrated
with velocity Verlet — the "molecular dynamics part" MP2C couples to the
mesoscopic solvent.
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError


def stream(pos: np.ndarray, vel: np.ndarray, dt: float) -> None:
    """Ballistic streaming, in place."""
    pos += vel * dt


def wrap_periodic(pos: np.ndarray, box: np.ndarray) -> None:
    """Fold positions into [0, box) per axis, in place."""
    np.mod(pos, box, out=pos)


def lj_forces(pos: np.ndarray, box: np.ndarray, rcut: float = 2.5,
              epsilon: float = 1.0, sigma: float = 1.0) -> tuple[np.ndarray, float]:
    """Truncated LJ forces and potential energy with a cell list.

    Suitable for the (thousands of) solute particles; the solvent never
    enters here.  Periodic minimum-image convention.
    """
    n = pos.shape[0]
    box = np.asarray(box, dtype=np.float64)
    if np.any(box < 2 * rcut):
        raise WorkloadError(f"box {box} too small for cutoff {rcut}")
    forces = np.zeros_like(pos)
    energy = 0.0
    if n < 2:
        return forces, energy
    # Cell list with cell edge >= rcut.
    dims = np.maximum((box / rcut).astype(int), 1)
    cell_of = (pos / (box / dims)).astype(int)
    cell_of = np.minimum(cell_of, dims - 1)
    flat = (cell_of[:, 0] * dims[1] + cell_of[:, 1]) * dims[2] + cell_of[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    starts = np.searchsorted(sorted_flat, np.arange(dims.prod() + 1))

    def members(cx, cy, cz):
        c = (cx % dims[0] * dims[1] + cy % dims[1]) * dims[2] + cz % dims[2]
        return order[starts[c]:starts[c + 1]]

    rcut2 = rcut * rcut
    seen_pairs = set()
    for cx in range(dims[0]):
        for cy in range(dims[1]):
            for cz in range(dims[2]):
                home = members(cx, cy, cz)
                if home.size == 0:
                    continue
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            ox, oy, oz = (cx + dx) % dims[0], (cy + dy) % dims[1], (cz + dz) % dims[2]
                            key = ((cx, cy, cz), (ox, oy, oz))
                            rkey = (key[1], key[0])
                            if rkey in seen_pairs:
                                continue
                            seen_pairs.add(key)
                            other = members(ox, oy, oz)
                            if other.size == 0:
                                continue
                            same = (ox, oy, oz) == (cx, cy, cz)
                            d = pos[home][:, None, :] - pos[other][None, :, :]
                            d -= box * np.round(d / box)
                            r2 = np.sum(d * d, axis=2)
                            if same:
                                iu = np.triu_indices(home.size, k=1)
                                mask = np.zeros_like(r2, dtype=bool)
                                mask[iu] = True
                            else:
                                mask = np.ones_like(r2, dtype=bool)
                            mask &= (r2 < rcut2) & (r2 > 0)
                            ii, jj = np.nonzero(mask)
                            if ii.size == 0:
                                continue
                            r2s = r2[ii, jj]
                            sr6 = (sigma * sigma / r2s) ** 3
                            fmag = 24 * epsilon * (2 * sr6 * sr6 - sr6) / r2s
                            fvec = d[ii, jj] * fmag[:, None]
                            np.add.at(forces, home[ii], fvec)
                            np.add.at(forces, other[jj], -fvec)
                            energy += float(np.sum(4 * epsilon * (sr6 * sr6 - sr6)))
    return forces, energy


def velocity_verlet(pos: np.ndarray, vel: np.ndarray, forces: np.ndarray,
                    box: np.ndarray, dt: float, rcut: float = 2.5
                    ) -> tuple[np.ndarray, float]:
    """One velocity-Verlet step, in place; returns (new_forces, energy)."""
    vel += 0.5 * dt * forces
    pos += dt * vel
    wrap_periodic(pos, box)
    new_forces, energy = lj_forces(pos, box, rcut)
    vel += 0.5 * dt * new_forces
    return new_forces, energy


def lj_forces_on_local(local_pos: np.ndarray, other_pos: np.ndarray,
                       box: np.ndarray, rcut: float = 2.5,
                       epsilon: float = 1.0, sigma: float = 1.0,
                       skip_self: bool = False) -> np.ndarray:
    """LJ forces exerted on ``local_pos`` by ``other_pos`` (minimum image).

    The domain-decomposed solute dynamics computes forces on each rank's
    own solutes from its locals plus the halo particles received from the
    neighbouring ranks; with ``skip_self=True`` the (identical) arrays'
    self-pairs are excluded.  Brute-force pairwise — solute counts are
    small relative to the solvent.
    """
    nl = local_pos.shape[0]
    forces = np.zeros_like(local_pos)
    if nl == 0 or other_pos.shape[0] == 0:
        return forces
    box = np.asarray(box, dtype=np.float64)
    d = local_pos[:, None, :] - other_pos[None, :, :]
    d -= box * np.round(d / box)
    r2 = np.sum(d * d, axis=2)
    mask = (r2 < rcut * rcut) & (r2 > 0)
    if skip_self:
        n = min(nl, other_pos.shape[0])
        mask[np.arange(n), np.arange(n)] = False
    ii, jj = np.nonzero(mask)
    if ii.size:
        r2s = r2[ii, jj]
        sr6 = (sigma * sigma / r2s) ** 3
        fmag = 24 * epsilon * (2 * sr6 * sr6 - sr6) / r2s
        np.add.at(forces, ii, d[ii, jj] * fmag[:, None])
    return forces
