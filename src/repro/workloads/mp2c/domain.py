"""Geometric domain decomposition for the parallel MP2C runs.

The box is split into equal slabs along x, one per MPI rank (MP2C uses a
full 3-D decomposition; with the paper's two ranks a slab split is the
same thing).  Slab boundaries are aligned to the collision-cell grid so
no SRD cell ever spans two ranks.  After each streaming step particles
that crossed a slab boundary migrate to the neighbouring rank.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...errors import WorkloadError


@dataclasses.dataclass(frozen=True)
class SlabDecomposition:
    """Cell-aligned slab decomposition along x."""

    box: tuple[float, float, float]
    n_ranks: int
    cell_size: float = 1.0

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise WorkloadError("need at least one rank")
        cells_x = self.box[0] / self.cell_size
        if abs(cells_x - round(cells_x)) > 1e-9:
            raise WorkloadError("box x-edge must be a whole number of cells")
        if round(cells_x) % self.n_ranks != 0:
            raise WorkloadError(
                f"{round(cells_x)} cell columns do not split evenly over "
                f"{self.n_ranks} ranks")

    @property
    def slab_width(self) -> float:
        return self.box[0] / self.n_ranks

    def bounds(self, rank: int) -> tuple[float, float]:
        """[x_lo, x_hi) of one rank's slab."""
        self._check(rank)
        return rank * self.slab_width, (rank + 1) * self.slab_width

    def owner_of(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank of each particle (positions already wrapped)."""
        ranks = (pos[:, 0] / self.slab_width).astype(np.int64)
        return np.clip(ranks, 0, self.n_ranks - 1)

    def neighbors(self, rank: int) -> tuple[int, int]:
        """(left, right) periodic neighbours."""
        self._check(rank)
        return ((rank - 1) % self.n_ranks, (rank + 1) % self.n_ranks)

    def split_leavers(self, rank: int, pos: np.ndarray, vel: np.ndarray):
        """Partition local particles into (stay, to_left, to_right).

        Returns ``(pos_stay, vel_stay, out)`` where ``out`` maps the
        destination rank to its ``(pos, vel)`` bundle.  With periodic
        wrapping a particle moves at most one slab per step (CFL-style
        assumption, asserted).
        """
        owners = self.owner_of(pos)
        stay = owners == rank
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        left, right = self.neighbors(rank)
        for dest in np.unique(owners[~stay]):
            dest = int(dest)
            if dest not in (left, right):
                raise WorkloadError(
                    f"particle jumped from rank {rank} to non-neighbour {dest} "
                    "(time step too large for the slab width)")
            mask = owners == dest
            out[dest] = (pos[mask].copy(), vel[mask].copy())
        return pos[stay], vel[stay], out

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise WorkloadError(f"rank {rank} out of range")
