"""MP2C-like multi-scale particle dynamics (the workload of Figure 11)."""

from . import kernels  # publishes the srd_collide kernel
from .config import MP2CConfig, PAPER_RUNS
from .coupling import MP2CResult, run_mp2c
from .domain import SlabDecomposition
from .md import lj_forces, stream, velocity_verlet, wrap_periodic
from .srd import (
    kinetic_energy,
    momentum,
    srd_collision,
    thermal_velocities,
)

__all__ = [
    "MP2CConfig",
    "PAPER_RUNS",
    "run_mp2c",
    "MP2CResult",
    "SlabDecomposition",
    "srd_collision",
    "kinetic_energy",
    "momentum",
    "thermal_velocities",
    "stream",
    "wrap_periodic",
    "lj_forces",
    "velocity_verlet",
    "kernels",
]
