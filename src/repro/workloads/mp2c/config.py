"""Configuration of the MP2C-like multi-scale particle simulation.

MP2C couples molecular dynamics with the stochastic rotation dynamics
(SRD) variant of multi-particle collision dynamics (Gompper et al. 2009):
solvent particles stream freely and undergo momentum-conserving cell-wise
collisions every few MD steps.  The paper's runs (Sect. V-C) use 10
particles per collision cell, the SRD step every 5th of 300 steps, and
5.12 M / 7.29 M / 10 M particles on 2 ranks.

The cost constants are calibrated so that the absolute runtimes land in
the paper's Figure 11 range (~12-23 minutes): the per-particle MD cost
covers force evaluation, coupling, and sorting work of the full MP2C code
that the model does not simulate in detail.
"""

from __future__ import annotations

import dataclasses
import math

from ...errors import WorkloadError


@dataclasses.dataclass(frozen=True)
class MP2CConfig:
    """One MP2C run: physics, decomposition, and cost calibration."""

    n_particles: int
    steps: int = 300
    srd_every: int = 5
    particles_per_cell: int = 10
    cell_size: float = 1.0
    alpha_deg: float = 130.0          # SRD rotation angle
    dt: float = 0.02
    temperature: float = 1.0
    #: Calibrated per-particle CPU cost of one MD step (force evaluation,
    #: coupling, sorting) — reproduces the paper's absolute runtimes.
    md_cost_per_particle_s: float = 0.92e-6
    #: Per-particle GPU cost of the SRD collision kernel.
    srd_gpu_cost_per_particle_s: float = 5.0e-9
    #: Fraction of local particles crossing a rank boundary per step
    #: (timed-mode migration volume).
    migration_fraction: float = 0.004

    def __post_init__(self) -> None:
        if self.n_particles <= 0:
            raise WorkloadError("n_particles must be positive")
        if self.steps <= 0 or self.srd_every <= 0:
            raise WorkloadError("steps and srd_every must be positive")
        if self.particles_per_cell <= 0:
            raise WorkloadError("particles_per_cell must be positive")
        if not 0 < self.alpha_deg < 360:
            raise WorkloadError("alpha must be in (0, 360) degrees")

    @property
    def n_cells(self) -> int:
        return max(1, self.n_particles // self.particles_per_cell)

    def box_edge_cells(self) -> int:
        """Cells per box edge for a cubic box."""
        return max(1, round(self.n_cells ** (1.0 / 3.0)))

    def box_length(self) -> float:
        return self.box_edge_cells() * self.cell_size

    @property
    def alpha_rad(self) -> float:
        return math.radians(self.alpha_deg)

    @property
    def n_srd_steps(self) -> int:
        return self.steps // self.srd_every

    def particle_bytes(self, n_local: int) -> int:
        """Bytes of one 3-vector array for ``n_local`` particles."""
        return n_local * 3 * 8


#: The three configurations of Figure 11.
PAPER_RUNS = [
    MP2CConfig(n_particles=5_120_000),
    MP2CConfig(n_particles=7_290_000),
    MP2CConfig(n_particles=10_000_000),
]
