"""Collective workload: ring allreduce / broadcast over the P2P data plane.

Runs the same seeded collective twice — once over the direct
accelerator↔accelerator path (``mode="p2p"``) and once over the
historical staged path through the driving compute node
(``mode="staged"``) — on a multi-switch topology, and reports:

* bit-identity (the two modes' result digests, plus an exact numpy
  oracle reproducing the ring's accumulation order);
* virtual wall-clock per mode and the resulting speedup;
* bytes through the compute node's endpoint per mode (the ≥2× reduction
  the P2P plane exists to deliver) and bytes on inter-switch trunks;
* ring hop counts, showing what topology-aware placement buys.

Deterministic: same :class:`CollectiveConfig` ⇒ same digest (request ids
are reset per run, inputs come from a seeded generator, and the ring
schedule fixes the accumulation order independent of transport timing).
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

import numpy as np

from ..cluster import Cluster, ClusterSpec
from ..core.collectives import ring_allreduce, ring_broadcast
from ..core.protocol import reset_request_ids
from ..errors import MiddlewareError
from ..netsim import TopologySpec

#: Transport modes compared by :func:`run`.
MODES = ("p2p", "staged")


@dataclasses.dataclass(frozen=True)
class CollectiveConfig:
    """Shape of one collective comparison run."""

    devices: int = 8
    #: float64 elements per chunk; each device owns ``devices`` chunks.
    chunk_elements: int = 65536
    op: str = "allreduce"
    topology: str = "torus2d"
    dims: tuple[int, ...] = (2, 2)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.devices < 2:
            raise MiddlewareError("collective needs >= 2 devices")
        if self.chunk_elements < 1:
            raise MiddlewareError("chunk_elements must be >= 1")
        if self.op not in ("allreduce", "broadcast"):
            raise MiddlewareError(f"unknown collective op {self.op!r}")

    def chunk_nbytes(self) -> int:
        return self.chunk_elements * 8

    def topology_spec(self) -> TopologySpec:
        return TopologySpec(kind=self.topology, dims=self.dims)


@dataclasses.dataclass
class ModeResult:
    """Measurements for one transport mode."""

    mode: str
    duration_s: float
    #: Bulk+control bytes through the driving compute node's endpoint.
    cn_bytes: int
    #: Total bytes that crossed inter-switch trunk segments.
    trunk_bytes: int
    bytes_moved: int
    digest: str
    exact: bool


@dataclasses.dataclass
class CollectiveReport:
    """Outcome of :func:`run`."""

    config: CollectiveConfig
    results: dict[str, ModeResult]
    #: P2P and staged produced bit-identical device contents.
    identical: bool
    #: staged duration / p2p duration (virtual time).
    speedup: float
    #: staged cn-endpoint bytes / p2p cn-endpoint bytes.
    cn_ratio: float
    #: Trunk hops between consecutive ring neighbours (placement view).
    ring_hops: list[int]
    digest: str

    def to_doc(self) -> dict:
        """JSON-serializable document (the CLI/CI contract)."""
        return {
            "schema": "repro-collective/1",
            "op": self.config.op,
            "devices": self.config.devices,
            "chunk_elements": self.config.chunk_elements,
            "topology": self.config.topology,
            "dims": list(self.config.dims),
            "seed": self.config.seed,
            "identical": self.identical,
            "speedup": self.speedup,
            "cn_bytes_p2p": self.results["p2p"].cn_bytes,
            "cn_bytes_staged": self.results["staged"].cn_bytes,
            "trunk_bytes_p2p": self.results["p2p"].trunk_bytes,
            "trunk_bytes_staged": self.results["staged"].trunk_bytes,
            "duration_p2p_s": self.results["p2p"].duration_s,
            "duration_staged_s": self.results["staged"].duration_s,
            "exact": all(r.exact for r in self.results.values()),
            "ring_hops": self.ring_hops,
            "max_ring_hops": max(self.ring_hops, default=0),
            "digest": self.digest,
        }


def _oracle(cfg: CollectiveConfig,
            inputs: list[list[np.ndarray]]) -> list[np.ndarray]:
    """Expected chunk values, reproducing the exact accumulation order.

    Reduce-scatter sums chunk ``c`` sequentially along the ring starting
    at device ``c``; reproducing that order makes the oracle *bit*-exact
    in float64, not merely allclose.
    """
    n = cfg.devices
    if cfg.op == "broadcast":
        return [inputs[0][c].copy() for c in range(n)]
    out = []
    for c in range(n):
        acc = inputs[c][c].copy()
        for k in range(1, n):
            acc = acc + inputs[(c + k) % n][c]
        out.append(acc)
    return out


def run_once(cfg: CollectiveConfig, mode: str) -> ModeResult:
    """One collective on a fresh cluster over the given transport."""
    if mode not in MODES:
        raise MiddlewareError(f"unknown collective mode {mode!r}")
    reset_request_ids()
    n = cfg.devices
    cluster = Cluster(ClusterSpec(n_compute=1, n_accelerators=n,
                                  topology=cfg.topology_spec()))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=n))
    acs = [cluster.remote(0, h) for h in handles]

    rng = np.random.default_rng(cfg.seed)
    inputs = [[rng.standard_normal(cfg.chunk_elements)
               for _ in range(n)] for _ in range(n)]
    nbytes = cfg.chunk_nbytes()
    chunks = [[sess.call(ac.mem_alloc(nbytes)) for _ in range(n)]
              for ac in acs]
    scratch = [sess.call(ac.mem_alloc(nbytes)) for ac in acs]
    for i, ac in enumerate(acs):
        for c in range(n):
            sess.call(ac.memcpy_h2d(chunks[i][c], inputs[i][c]))

    fabric = cluster.fabric
    cn = fabric.endpoints["cn0"]
    cn_before = cn.tx_bytes + cn.rx_bytes
    trunks_before = sum(fabric.trunk_bytes.values())
    moved_before = fabric.bytes_moved
    t0 = sess.now
    if cfg.op == "allreduce":
        sess.call(ring_allreduce(cluster.engine, acs, chunks, scratch,
                                 nbytes, cfg.chunk_elements, mode=mode))
    else:
        sess.call(ring_broadcast(cluster.engine, acs, chunks, nbytes,
                                 root=0, mode=mode))
    duration = sess.now - t0
    cn_bytes = cn.tx_bytes + cn.rx_bytes - cn_before
    trunk_bytes = sum(fabric.trunk_bytes.values()) - trunks_before
    moved = fabric.bytes_moved - moved_before

    expected = _oracle(cfg, inputs)
    digest = hashlib.sha256()
    exact = True
    for i, ac in enumerate(acs):
        for c in range(n):
            out = sess.call(ac.memcpy_d2h(chunks[i][c], nbytes))
            arr = np.asarray(out).view(np.float64).reshape(-1)
            digest.update(arr.tobytes())
            exact = exact and bool(np.array_equal(arr, expected[c]))
    return ModeResult(mode=mode, duration_s=duration, cn_bytes=cn_bytes,
                      trunk_bytes=trunk_bytes, bytes_moved=moved,
                      digest=digest.hexdigest(), exact=exact)


def ring_hop_counts(cfg: CollectiveConfig) -> list[int]:
    """Trunk hops between consecutive ring devices under the placement."""
    cluster = Cluster(ClusterSpec(n_compute=1, n_accelerators=cfg.devices,
                                  topology=cfg.topology_spec()))
    return [cluster.fabric.hop_count(f"ac{i}", f"ac{(i + 1) % cfg.devices}")
            for i in range(cfg.devices)]


def run(cfg: CollectiveConfig) -> CollectiveReport:
    """Compare the P2P and staged transports on one seeded collective."""
    results = {mode: run_once(cfg, mode) for mode in MODES}
    p2p, staged = results["p2p"], results["staged"]
    return CollectiveReport(
        config=cfg,
        results=results,
        identical=p2p.digest == staged.digest,
        speedup=(staged.duration_s / p2p.duration_s
                 if p2p.duration_s > 0 else float("inf")),
        cn_ratio=(staged.cn_bytes / p2p.cn_bytes
                  if p2p.cn_bytes > 0 else float("inf")),
        ring_hops=ring_hop_counts(cfg),
        digest=hashlib.sha256(
            (p2p.digest + staged.digest).encode()).hexdigest(),
    )


def format_report(report: CollectiveReport) -> str:
    """Human-readable summary for the CLI."""
    cfg = report.config
    lines = [
        f"collective {cfg.op}: {cfg.devices} devices x "
        f"{cfg.devices} chunks x {cfg.chunk_elements} f64 "
        f"on {cfg.topology}{cfg.dims} (seed {cfg.seed})",
        f"  ring hops: {report.ring_hops} "
        f"(max {max(report.ring_hops, default=0)})",
    ]
    for mode in MODES:
        r = report.results[mode]
        lines.append(
            f"  {mode:>6}: {r.duration_s * 1e3:9.3f} ms   "
            f"cn bytes {r.cn_bytes:>12,}   trunk bytes {r.trunk_bytes:>12,}")
    lines.append(
        f"  p2p vs staged: speedup {report.speedup:.2f}x, "
        f"{report.cn_ratio:.1f}x fewer compute-node bytes, "
        f"bit-identical={report.identical}")
    return "\n".join(lines)
