"""Open-loop multi-tenant workload generator for the virtualized ARM.

Simulates thousands of tenants sharing a handful of physical accelerators
through the ARM's admission control (``valloc`` / virtual-accelerator
leases).  Arrivals are *open loop*: every request's submission time is
drawn up front from a seeded RNG, independent of completions, so the
offered load does not adapt to congestion — queueing delay shows up in
the measured latencies instead of being hidden by back-pressure.

Each request leases a virtual accelerator
(:func:`~repro.core.reliability.tenant_accelerator`), runs a small
alloc / h2d / kernel / d2h session with phantom payloads, and releases
the lease.  Tenants preempted by higher-priority admissions recover
transparently through :class:`~repro.core.reliability.TenantAccelerator`
replay; the report counts both preemptions and survived recoveries.

The run is fully deterministic: the same :class:`TenantWorkloadConfig`
(including ``seed``) produces a bit-identical event trace, captured in
:attr:`TenantWorkloadReport.digest`.  Results land in an
:class:`~repro.obs.metrics.MetricsRegistry` — per-tenant latency
histograms (``tenant.latency_s``), per-tenant weighted service gauges
(``tenant.service_s``), and aggregate counters — from which the report
derives per-tenant p50/p99 and a Jain fairness index.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import typing as _t

from ..cluster import Cluster, paper_testbed
from ..core.protocol import reset_request_ids
from ..core.reliability import FailoverConfig, tenant_accelerator
from ..core.scheduler import TenantSpec, jain_fairness
from ..errors import AllocationError, MiddlewareError
from ..mpisim import Phantom
from ..obs import MetricsRegistry

#: (name, priority, WFQ weight, fraction of tenants) — drawn per tenant.
DEFAULT_CLASSES: tuple[tuple[str, int, float, float], ...] = (
    ("gold", 2, 4.0, 0.10),
    ("silver", 1, 2.0, 0.30),
    ("bronze", 0, 1.0, 0.60),
)


@dataclasses.dataclass(frozen=True)
class TenantWorkloadConfig:
    """Shape of one open-loop multi-tenant run."""

    n_tenants: int = 1000
    n_accelerators: int = 8
    #: Gateway compute nodes the tenant population is multiplexed over.
    n_gateways: int = 4
    #: Virtual-accelerator slots per physical device (admission capacity).
    slots_per_device: int = 4
    requests_per_tenant: int = 1
    #: Arrivals are uniform over ``[0, window_s)`` of virtual time.  The
    #: default squeezes the population into 10 ms so admission queueing
    #: and preemption actually happen; widen it for an uncontended run.
    window_s: float = 0.01
    payload_bytes: int = 64 * 1024
    seed: int = 0
    classes: tuple[tuple[str, int, float, float], ...] = DEFAULT_CLASSES
    #: Partition the engine into this many shards (None = plain engine).
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise MiddlewareError("n_tenants must be >= 1")
        if not 1 <= self.n_accelerators <= 8:
            raise MiddlewareError("n_accelerators must be in 1..8")
        if self.n_gateways < 1:
            raise MiddlewareError("n_gateways must be >= 1")
        if self.requests_per_tenant < 1:
            raise MiddlewareError("requests_per_tenant must be >= 1")
        if self.window_s <= 0:
            raise MiddlewareError("window_s must be positive")
        if self.payload_bytes < 8:
            raise MiddlewareError("payload_bytes must be >= 8")


@dataclasses.dataclass
class TenantWorkloadReport:
    """Outcome of :func:`run` (latencies in virtual seconds)."""

    config: TenantWorkloadConfig
    duration_s: float
    submitted: int
    completed: int
    rejected: int
    #: Sessions whose post-preemption reacquire lost the tenant's quota
    #: slot to another of the tenant's own requests.
    aborted: int
    preemptions: int
    recoveries: int
    latency_p50_s: float
    latency_p99_s: float
    #: tenant id -> ``{"count", "p50_s", "p99_s"}`` (completed requests).
    per_tenant: dict[str, dict[str, float]]
    #: Jain fairness index over per-tenant weighted service (1.0 = fair).
    fairness: float
    #: SHA-256 over the ordered completion trace; same seed -> same digest.
    digest: str
    registry: MetricsRegistry = dataclasses.field(repr=False, default=None)

    def worst_tenants(self, n: int = 5) -> list[tuple[str, dict[str, float]]]:
        """The ``n`` tenants with the highest p99 latency."""
        ranked = sorted(self.per_tenant.items(),
                        key=lambda kv: (-kv[1]["p99_s"], kv[0]))
        return ranked[:n]


def draw_spec(rng: random.Random, tenant_id: str,
              classes: tuple[tuple[str, int, float, float], ...] = DEFAULT_CLASSES,
              ) -> TenantSpec:
    """Draw one tenant's scheduling class from a seeded RNG.

    Shared by the tenant workload and the chaos scenario runner so both
    populations are drawn identically for a given seed.
    """
    roll = rng.random()
    acc = 0.0
    name, priority, weight = classes[-1][:3]
    for cname, cprio, cweight, frac in classes:
        acc += frac
        if roll < acc:
            name, priority, weight = cname, cprio, cweight
            break
    # max_vaccels=1: overlapping requests from one tenant exercise the
    # quota path (immediate DENIED, counted as rejected).
    return TenantSpec(tenant_id=tenant_id, weight=weight, priority=priority)


def _one_request(cluster: Cluster, arm, make_remote, tenant_id: str,
                 req_idx: int, arrival_s: float, cfg: TenantWorkloadConfig,
                 reg: MetricsRegistry, tally: dict, trace: list):
    engine = cluster.engine
    yield engine.timeout(arrival_s)
    t0 = engine.now
    try:
        # Preempted tenants queue (WFQ) for a replacement lease instead of
        # surfacing AllocationError mid-session.
        ac = yield from tenant_accelerator(
            arm, make_remote, tenant_id,
            config=FailoverConfig(wait_for_replacement=True))
    except AllocationError:
        tally["rejected"] += 1
        reg.counter("tenant.rejected").inc()
        trace.append((tenant_id, req_idx, arrival_s, engine.now, "rejected"))
        return
    n = cfg.payload_bytes // 8
    try:
        addr = yield from ac.mem_alloc(cfg.payload_bytes)
        yield from ac.memcpy_h2d(addr, Phantom(cfg.payload_bytes))
        yield from ac.kernel_create("dscal")
        yield from ac.kernel_run("dscal", {"x": addr, "n": n, "alpha": 1.0},
                                 real=False)
        yield from ac.memcpy_d2h(addr, cfg.payload_bytes)
        yield from ac.release_lease()
    except AllocationError:
        # Preempted mid-session and the reacquire hit the tenant's own
        # max_vaccels quota (another of its requests took the slot).  The
        # old lease is already torn down; the session just ends early.
        tally["aborted"] += 1
        tally["recoveries"] += ac.preemptions_survived
        reg.counter("tenant.aborted").inc()
        trace.append((tenant_id, req_idx, arrival_s, engine.now, "aborted"))
        return
    done = engine.now
    latency = done - t0
    tally["completed"] += 1
    tally["recoveries"] += ac.preemptions_survived
    reg.histogram("tenant.latency_s", tenant=tenant_id).observe(latency)
    reg.histogram("workload.latency_s").observe(latency)
    trace.append((tenant_id, req_idx, arrival_s, done, "ok"))


def run(cfg: TenantWorkloadConfig | None = None) -> TenantWorkloadReport:
    """Build a cluster, drive the open-loop tenant population, report."""
    cfg = cfg or TenantWorkloadConfig()
    reset_request_ids()
    rng = random.Random(cfg.seed)
    cluster = Cluster(paper_testbed(n_compute=cfg.n_gateways,
                                    n_accelerators=cfg.n_accelerators),
                      shards=cfg.shards)
    cluster.arm.admission.slots_per_device = cfg.slots_per_device
    reg = MetricsRegistry()
    tally = {"completed": 0, "rejected": 0, "aborted": 0, "recoveries": 0}
    trace: list[tuple] = []

    # Register the population directly with the admission controller (an
    # in-process policy object) rather than via n_tenants RPC round trips.
    tenants = [f"t{i:04d}" for i in range(cfg.n_tenants)]
    specs = {t: draw_spec(rng, t, cfg.classes) for t in tenants}
    for spec in specs.values():
        cluster.arm.admission.register(spec)

    # One ARM client / remote factory per gateway; tenants multiplex over
    # gateways round-robin.  Reply tags are request-scoped, so concurrent
    # processes share a gateway rank safely.
    arms = [cluster.arm_client(g) for g in range(cfg.n_gateways)]
    makers = [
        (lambda g: (lambda h: cluster.remote(g, h)))(g)
        for g in range(cfg.n_gateways)
    ]

    submitted = 0
    for i, tenant_id in enumerate(tenants):
        g = i % cfg.n_gateways
        for r in range(cfg.requests_per_tenant):
            arrival = rng.uniform(0.0, cfg.window_s)
            cluster.engine.process(
                _one_request(cluster, arms[g], makers[g], tenant_id, r,
                             arrival, cfg, reg, tally, trace),
                name=f"{tenant_id}.r{r}")
            submitted += 1

    cluster.run()  # drain every pre-scheduled arrival to completion

    # Per-tenant weighted service (lease seconds / weight) -> fairness.
    service = dict(cluster.arm.admission.service_s)
    for tenant_id, s in sorted(service.items()):
        reg.gauge("tenant.service_s", tenant=tenant_id).set(s)
    fairness = jain_fairness([service[t] for t in sorted(service)])
    reg.gauge("tenant.fairness_jain").set(fairness)
    reg.counter("tenant.preemptions").inc(cluster.arm.preemptions)

    per_tenant: dict[str, dict[str, float]] = {}
    for hist in reg.histograms("tenant.latency_s"):
        labels = dict(hist.labels)
        per_tenant[labels["tenant"]] = {
            "count": float(hist.count),
            "p50_s": hist.percentile(50.0),
            "p99_s": hist.percentile(99.0),
        }
    agg = reg.histogram("workload.latency_s")

    sha = hashlib.sha256()
    for row in sorted(trace):
        sha.update(repr(row).encode())

    return TenantWorkloadReport(
        config=cfg,
        duration_s=cluster.engine.now,
        submitted=submitted,
        completed=tally["completed"],
        rejected=tally["rejected"],
        aborted=tally["aborted"],
        preemptions=cluster.arm.preemptions,
        recoveries=tally["recoveries"],
        latency_p50_s=agg.percentile(50.0) if agg.count else 0.0,
        latency_p99_s=agg.percentile(99.0) if agg.count else 0.0,
        per_tenant=per_tenant,
        fairness=fairness,
        digest=sha.hexdigest(),
        registry=reg,
    )


def format_report(report: TenantWorkloadReport, top: int = 5) -> str:
    """Human-readable summary (the CLI's output)."""
    cfg = report.config
    lines = [
        f"tenants {cfg.n_tenants}  accelerators {cfg.n_accelerators}  "
        f"slots/dev {cfg.slots_per_device}  gateways {cfg.n_gateways}  "
        f"seed {cfg.seed}",
        f"submitted {report.submitted}  completed {report.completed}  "
        f"rejected {report.rejected}  aborted {report.aborted}  "
        f"preemptions {report.preemptions}  "
        f"recoveries {report.recoveries}",
        f"virtual duration {report.duration_s * 1e3:.3f} ms",
        f"latency p50 {report.latency_p50_s * 1e3:.3f} ms  "
        f"p99 {report.latency_p99_s * 1e3:.3f} ms",
        f"fairness (Jain, weighted service) {report.fairness:.4f}",
        f"trace digest {report.digest[:16]}",
    ]
    worst = report.worst_tenants(top)
    if worst:
        lines.append(f"worst {len(worst)} tenants by p99:")
        for tenant_id, row in worst:
            lines.append(
                f"  {tenant_id}  count {int(row['count'])}  "
                f"p50 {row['p50_s'] * 1e3:.3f} ms  "
                f"p99 {row['p99_s'] * 1e3:.3f} ms")
    return "\n".join(lines)
