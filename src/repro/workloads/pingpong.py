"""Port of the Intel MPI Benchmarks (IMB) PingPong.

Measures pure MPI point-to-point bandwidth between two ranks — the upper
bound the paper compares its copy protocols against ("MPI Infiniband (IMB
PingPong)" in Figures 5-8).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..mpisim import Communicator, Phantom
from ..sim import Engine
from ..units import mib_per_s

_TAG = 77


@dataclasses.dataclass(frozen=True)
class PingPongPoint:
    """One PingPong measurement: half round-trip time, IMB-style."""

    nbytes: int
    half_rtt: float

    @property
    def bytes_per_s(self) -> float:
        return self.nbytes / self.half_rtt

    @property
    def mib_per_s(self) -> float:
        return mib_per_s(self.bytes_per_s)


def run_pingpong(engine: Engine, comm: Communicator, rank_a: int, rank_b: int,
                 sizes: _t.Sequence[int], repeats: int = 1) -> list[PingPongPoint]:
    """Run PingPong between two ranks; returns the bandwidth curve.

    Spawns both rank processes and drives the engine (call from plain
    code, not from inside a simulation process).
    """
    results: list[PingPongPoint] = []

    def ponger():
        ra = comm.rank(rank_b)
        for _ in sizes:
            for _ in range(repeats):
                msg = yield from ra.recv(source=rank_a, tag=_TAG)
                yield from ra.send(rank_a, _TAG, msg.payload)

    def pinger():
        ra = comm.rank(rank_a)
        for nbytes in sizes:
            payload = Phantom(nbytes)
            total = 0.0
            for _ in range(repeats):
                t0 = engine.now
                yield from ra.send(rank_b, _TAG, payload)
                yield from ra.recv(source=rank_b, tag=_TAG)
                total += engine.now - t0
            results.append(PingPongPoint(nbytes, total / (2 * repeats)))

    p1 = engine.process(ponger(), name="pingpong-b")
    p0 = engine.process(pinger(), name="pingpong-a")
    engine.run(until=engine.all_of([p0, p1]))
    return results
