"""Port of the CUDA SDK ``bandwidthTest`` to the accelerator API.

Measures host<->device copy bandwidth over a sweep of message sizes on any
accelerator-like front-end (remote or local), in virtual time.  This is the
workload behind Figures 5-8.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..mpisim import Phantom
from ..sim import Engine
from ..units import mib_per_s


@dataclasses.dataclass(frozen=True)
class BandwidthPoint:
    """One measured point of the sweep."""

    nbytes: int
    seconds: float

    @property
    def bytes_per_s(self) -> float:
        return self.nbytes / self.seconds

    @property
    def mib_per_s(self) -> float:
        return mib_per_s(self.bytes_per_s)


def sweep(engine: Engine, accelerator: _t.Any, sizes: _t.Sequence[int],
          direction: str = "h2d", transfer: _t.Any = None,
          repeats: int = 1) -> list[BandwidthPoint]:
    """Run the bandwidth test (generator; drive inside a process).

    ``accelerator`` is any object with the ``mem_alloc`` / ``memcpy_h2d`` /
    ``memcpy_d2h`` / ``mem_free`` generator interface.  Payloads are
    phantoms: the protocol path and all timing are exercised without
    materializing gigabytes.  The simulation is deterministic, so
    ``repeats=1`` measures exactly; more repeats average over protocol
    warm-up effects if desired.
    """
    if direction not in ("h2d", "d2h"):
        raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
    points: list[BandwidthPoint] = []
    for nbytes in sizes:
        ptr = yield from accelerator.mem_alloc(nbytes)
        if direction == "d2h":
            # Populate the buffer (timing-only) so d2h has a source.
            yield from accelerator.memcpy_h2d(ptr, Phantom(nbytes),
                                              transfer=transfer)
        total = 0.0
        for _ in range(repeats):
            t0 = engine.now
            if direction == "h2d":
                yield from accelerator.memcpy_h2d(ptr, Phantom(nbytes),
                                                  transfer=transfer)
            else:
                yield from accelerator.memcpy_d2h(ptr, nbytes,
                                                  transfer=transfer)
            total += engine.now - t0
        points.append(BandwidthPoint(nbytes, total / repeats))
        yield from accelerator.mem_free(ptr)
    return points


#: The message sizes of the paper's Figures 5-8 (1 KiB ... 64 MiB, x4).
def paper_sizes(max_kib: int = 65536, step: int = 4) -> list[int]:
    sizes = []
    k = 1
    while k <= max_kib:
        sizes.append(k * 1024)
        k *= step
    return sizes
