"""Workloads: bandwidth, linear algebra, MP2C, tenants, collectives."""

from . import bandwidth, collective, linalg, mp2c, pingpong, tenants

__all__ = ["bandwidth", "pingpong", "linalg", "mp2c", "tenants", "collective"]
