"""Workloads: bandwidth micro-benchmarks, linear algebra, MP2C."""

from . import bandwidth, linalg, mp2c, pingpong

__all__ = ["bandwidth", "pingpong", "linalg", "mp2c"]
