"""Workloads: bandwidth micro-benchmarks, linear algebra, MP2C, tenants."""

from . import bandwidth, linalg, mp2c, pingpong, tenants

__all__ = ["bandwidth", "pingpong", "linalg", "mp2c", "tenants"]
