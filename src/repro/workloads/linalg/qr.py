"""Multi-GPU blocked QR factorization (``magma_dgeqrf2_mgpu`` analogue).

Hybrid CPU/GPU algorithm with 1-D block-cyclic column distribution:

1. download the current panel column from its owning GPU;
2. Householder-factor the panel on the host CPU (``dgeqrf`` + ``dlarft``);
3. broadcast the reflector block V and the T factor to every GPU that owns
   trailing columns;
4. each GPU applies the block reflector (``dlarfb``) to its local trailing
   panels in parallel.

Every panel round-trips through the host, which is why QR is the
bandwidth-sensitive kernel of the paper's Figure 9: with network-attached
GPUs each step's D2H + broadcast travels at ~2.6 GiB/s instead of
~5.7 GiB/s.  The same driver runs on local and remote accelerators, in
real (verified numerics) or timed (paper-scale) mode.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from . import kernels as _kernels  # noqa: F401  (publishes device kernels)
from ...core.api import run_parallel
from ...cluster.specs import CPUSpec
from ...errors import WorkloadError
from ...mpisim import Phantom
from ...sim import Engine
from ...units import gflops
from .distribution import BlockCyclic
from .hostmem import as_matrix
from .panel import householder_panel, panel_qr_flops


def qr_flops(n: int) -> float:
    """dgeqrf flop count for an n x n matrix."""
    return 4.0 * n ** 3 / 3.0


@dataclasses.dataclass
class QRResult:
    """Outcome of one factorization run."""

    n: int
    nb: int
    n_gpus: int
    seconds: float          # virtual time of the factorization loop
    real: bool
    lookahead: bool = False
    R: np.ndarray | None = None
    #: (k0, V, T) per panel step, for reconstructing Q in tests.
    reflectors: list[tuple[int, np.ndarray, np.ndarray]] = dataclasses.field(
        default_factory=list)

    @property
    def gflops(self) -> float:
        return gflops(qr_flops(self.n), self.seconds)


def qr_factorize(engine: Engine, cpu: CPUSpec, accelerators: _t.Sequence[_t.Any],
                 n: int, nb: int = 128, A: np.ndarray | None = None,
                 lookahead: bool = False, streams: bool = False):
    """Factor an n x n matrix on the given accelerators (generator).

    ``accelerators`` are Remote- or LocalAccelerator front-ends.  Passing a
    real matrix ``A`` enables full numerics; otherwise the run is
    timing-only with phantom payloads.  The timed region is the
    factorization loop; the initial panel distribution is excluded, like
    MAGMA's testing harness.

    With ``lookahead=True`` the driver applies MAGMA's key optimization:
    at step k the next panel (k+1) is updated *first*, then downloaded and
    factored on the CPU **while** the GPUs update the remaining trailing
    panels — hiding the panel factorization and its transfers behind the
    bulk dlarfb work.

    With ``streams=True`` the control sequences (setup allocations, the
    per-GPU dlarfb launch chains, teardown frees) go through asynchronous
    command streams, coalescing consecutive control ops into BATCH frames
    — identical numerics, fewer request round trips.
    """
    real = A is not None
    if real and A.shape != (n, n):
        raise WorkloadError(f"matrix shape {A.shape} does not match n={n}")
    g = len(accelerators)
    if g == 0:
        raise WorkloadError("need at least one accelerator")
    dist = BlockCyclic(n, nb, g)

    # -- setup: kernels, workspaces, panel distribution (untimed) --------
    def panel_payload(j: int, w: int) -> _t.Any:
        return (np.ascontiguousarray(A[:, dist.cols(j)]) if real
                else Phantom(n * w * 8))

    panel_ptr: dict[int, int] = {}
    if streams:
        st = [ac.stream(name=f"qr-ac{i}")
              for i, ac in enumerate(accelerators)]
        for s in st:
            s.kernel_create("qr_larfb")
        v_fut = [s.mem_alloc(n * nb * 8) for s in st]
        t_fut = [s.mem_alloc(nb * nb * 8) for s in st]
        panel_fut = {}
        for j in range(dist.n_panels):
            w = dist.width(j)
            i = dist.owner(j)
            ptr = st[i].mem_alloc(n * w * 8)
            st[i].memcpy_h2d(ptr, panel_payload(j, w))
            panel_fut[j] = ptr
        for s in st:
            yield from s.synchronize()
        v_buf = [f.result() for f in v_fut]
        t_buf = [f.result() for f in t_fut]
        panel_ptr = {j: f.result() for j, f in panel_fut.items()}
    else:
        st = None
        for ac in accelerators:
            yield from ac.kernel_create("qr_larfb")
        v_buf = []
        t_buf = []
        for ac in accelerators:
            v_buf.append((yield from ac.mem_alloc(n * nb * 8)))
            t_buf.append((yield from ac.mem_alloc(nb * nb * 8)))
        for j in range(dist.n_panels):
            w = dist.width(j)
            ac = accelerators[dist.owner(j)]
            ptr = yield from ac.mem_alloc(n * w * 8)
            yield from ac.memcpy_h2d(ptr, panel_payload(j, w))
            panel_ptr[j] = ptr

    R = np.zeros((n, n)) if real else None
    reflectors: list[tuple[int, np.ndarray, np.ndarray]] = []

    def larfb_params(i: int, j: int, k0: int, w: int) -> dict:
        return {"V": v_buf[i], "T": t_buf[i], "panel": panel_ptr[j],
                "n": n, "wk": w, "wj": dist.width(j), "k0": k0}

    def larfb(i: int, j: int, k0: int, w: int):
        """Apply the current block reflector to trailing panel j on GPU i."""
        yield from accelerators[i].kernel_run(
            "qr_larfb", larfb_params(i, j, k0, w), real=real)

    def streamed_updates(k: int, k0: int, w: int,
                         targets: _t.Sequence[int], skip: int | None = None):
        """Queue every trailing dlarfb on per-GPU streams, then wait.

        Consecutive launches on one GPU coalesce into BATCH frames; the
        per-GPU streams run concurrently, like ``run_parallel`` does for
        the sync path.
        """
        for i in targets:
            for j in dist.trailing_panels_of(i, k):
                if j == skip:
                    continue
                st[i].kernel_run("qr_larfb", larfb_params(i, j, k0, w),
                                 real=real)
        for i in targets:
            yield from st[i].synchronize()

    # -- the factorization loop (timed) ----------------------------------
    t0 = engine.now
    #: Lookahead state: (panel index, downloaded raw panel) factored early.
    pending: tuple[int, _t.Any] | None = None
    for k in range(dist.n_panels):
        k0 = dist.col0(k)
        w = dist.width(k)
        h = n - k0
        owner_ac = accelerators[dist.owner(k)]

        # 1./2. Download the panel column and factor it on the host — or
        # consume the result the lookahead path produced during step k-1
        # (its download and CPU time were already charged there).
        if pending is not None and pending[0] == k:
            raw = pending[1]
            pending = None
        else:
            raw = yield from owner_ac.memcpy_d2h(panel_ptr[k], n * w * 8)
            yield engine.timeout(cpu.flops_time(panel_qr_flops(h, w)))
        if real:
            col = as_matrix(raw, n, w)
            V, T, Rkk = householder_panel(col[k0:, :])
            R[:k0, dist.cols(k)] = col[:k0, :]
            R[k0:k0 + w, dist.cols(k)] = Rkk
            reflectors.append((k0, V, T))
            v_payload: _t.Any = V
            t_payload: _t.Any = T
        else:
            v_payload = Phantom(h * w * 8)
            t_payload = Phantom(w * w * 8)

        # 3. Write the reflector panel back into the owner's matrix storage
        #    (the factored V occupies the sub-diagonal part of the panel),
        #    and broadcast V and T to the GPUs with trailing work.
        yield from owner_ac.memcpy_h2d(panel_ptr[k], v_payload,
                                       offset=k0 * w * 8)
        targets = sorted({dist.owner(j) for j in range(k + 1, dist.n_panels)})
        if not targets:
            continue

        def send_vt(i):
            ac = accelerators[i]
            yield from ac.memcpy_h2d(v_buf[i], v_payload)
            yield from ac.memcpy_h2d(t_buf[i], t_payload)

        yield from run_parallel(engine, [send_vt(i) for i in targets])

        # 4. Apply the block reflector to every trailing panel.
        if lookahead and k + 1 < dist.n_panels:
            # Update panel k+1 first on its owner, then factor it on the
            # CPU while everything else updates.
            nxt = k + 1
            nxt_owner = dist.owner(nxt)
            w1 = dist.width(nxt)
            h1 = n - dist.col0(nxt)
            yield from larfb(nxt_owner, nxt, k0, w)

            def panel_path():
                r = yield from accelerators[nxt_owner].memcpy_d2h(
                    panel_ptr[nxt], n * w1 * 8)
                yield engine.timeout(cpu.flops_time(panel_qr_flops(h1, w1)))
                return r

            def update_rest(i):
                for j in dist.trailing_panels_of(i, k):
                    if j == nxt:
                        continue
                    yield from larfb(i, j, k0, w)

            rest = ([streamed_updates(k, k0, w, targets, skip=nxt)] if streams
                    else [update_rest(i) for i in targets])
            results = yield from run_parallel(
                engine, [panel_path()] + rest)
            pending = (nxt, results[0])
        elif streams:
            yield from streamed_updates(k, k0, w, targets)
        else:
            def update(i):
                for j in dist.trailing_panels_of(i, k):
                    yield from larfb(i, j, k0, w)

            yield from run_parallel(engine, [update(i) for i in targets])
    seconds = engine.now - t0

    # -- teardown (untimed) ----------------------------------------------
    if streams:
        for j, ptr in panel_ptr.items():
            st[dist.owner(j)].mem_free(ptr)
        for i in range(g):
            st[i].mem_free(v_buf[i])
            st[i].mem_free(t_buf[i])
        for s in st:
            yield from s.synchronize()
    else:
        for j, ptr in panel_ptr.items():
            yield from accelerators[dist.owner(j)].mem_free(ptr)
        for i, ac in enumerate(accelerators):
            yield from ac.mem_free(v_buf[i])
            yield from ac.mem_free(t_buf[i])

    return QRResult(n=n, nb=nb, n_gpus=g, seconds=seconds, real=real,
                    lookahead=lookahead, R=R, reflectors=reflectors)


def reconstruct_q(n: int, reflectors: list[tuple[int, np.ndarray, np.ndarray]]) -> np.ndarray:
    """Rebuild Q from the per-panel (k0, V, T) factors (for verification)."""
    Q = np.eye(n)
    for k0, V, T in reversed(reflectors):
        block = Q[k0:, :]
        block -= V @ (T @ (V.T @ block))
    return Q
