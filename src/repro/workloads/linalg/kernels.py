"""Device kernels of the multi-GPU factorizations.

Published to the GPU extension catalog at import time; ``kernel_create``
installs them onto a device on first use (module upload).  All kernels
take their dimensions from parameters so costs work in timing-only mode,
and operate on explicit row windows of full-height column-panel buffers.
"""

from __future__ import annotations

import typing as _t

import numpy as np
import scipy.linalg as sla

from ...gpusim.kernels import provide
from ...gpusim.timing import gemm_time, trsm_time

if _t.TYPE_CHECKING:  # pragma: no cover
    from ...gpusim.device import GPUDevice, GPUSpec


def _panel_view(dev: "GPUDevice", addr: int, n: int, w: int) -> np.ndarray:
    """A full-height (n x w) view of a column-panel buffer."""
    return dev.memory.view(addr, dtype="float64", shape=(n, w))


# -- QR: apply the block reflector to one trailing panel --------------------

def _qr_larfb_fn(dev: "GPUDevice", p: dict):
    """panel[k0:n, :] <- (I - V T V^T)^T @ panel[k0:n, :].

    ``V`` is (h x wk) with h = n - k0; ``T`` is (wk x wk).
    """
    n, wk, wj, k0 = p["n"], p["wk"], p["wj"], p["k0"]
    h = n - k0
    V = dev.memory.view(p["V"], dtype="float64", shape=(h, wk))
    T = dev.memory.view(p["T"], dtype="float64", shape=(wk, wk))
    C = _panel_view(dev, p["panel"], n, wj)[k0:, :]
    W = V.T @ C
    W = T.T @ W
    C -= V @ W
    return 0


def _qr_larfb_cost(p: dict, spec: "GPUSpec") -> float:
    n, wk, wj, k0 = p["n"], p["wk"], p["wj"], p["k0"]
    h = n - k0
    # Three gemms: (wk x h)(h x wj), (wk x wk)(wk x wj), (h x wk)(wk x wj).
    return (gemm_time(spec, wk, wj, h)
            + gemm_time(spec, wk, wj, wk)
            + gemm_time(spec, h, wj, wk))


# -- Cholesky: triangular solve of the sub-diagonal panel -------------------

def _chol_trsm_fn(dev: "GPUDevice", p: dict):
    """panel[k1:n, :] <- panel[k1:n, :] @ inv(Lkk)^T (right, lower, trans).

    ``Lkk`` is the factored diagonal block, read in place from rows
    [k0:k1) of the same panel buffer.
    """
    n, w, k0, k1 = p["n"], p["w"], p["k0"], p["k1"]
    P = _panel_view(dev, p["panel"], n, w)
    Lkk = P[k0:k1, :]
    B = P[k1:, :]
    if B.shape[0]:
        X = sla.solve_triangular(Lkk, B.T, lower=True)
        B[:] = X.T
    return 0


def _chol_trsm_cost(p: dict, spec: "GPUSpec") -> float:
    n, w, k1 = p["n"], p["w"], p["k1"]
    return trsm_time(spec, max(n - k1, 1), w)


# -- Cholesky: rank-wk update of one trailing panel --------------------------

def _chol_update_fn(dev: "GPUDevice", p: dict):
    """panel[j0:n, :] -= L[rows j0..n] @ L[rows j0..j0+wj]^T.

    ``L`` holds the factored sub-diagonal panel L21 (rows k1..n of step k)
    starting at row offset ``l_off`` of its buffer: the owner passes its
    own column panel (l_off = k1), other GPUs a received scratch copy
    (l_off = 0).
    """
    n, wk, wj, k1, j0, l_off = (p["n"], p["wk"], p["wj"], p["k1"], p["j0"],
                                p["l_off"])
    rows = n - k1  # height of L21
    Lbuf = dev.memory.view(p["L"], dtype="float64",
                           shape=(l_off + rows, wk))[l_off:, :]
    C = _panel_view(dev, p["panel"], n, wj)[j0:, :]
    left = Lbuf[j0 - k1:, :]              # rows j0..n of L21
    right = Lbuf[j0 - k1:j0 - k1 + wj, :]  # rows j0..j0+wj
    C -= left @ right.T
    return 0


def _chol_update_cost(p: dict, spec: "GPUSpec") -> float:
    n, wk, wj, j0 = p["n"], p["wk"], p["wj"], p["j0"]
    return gemm_time(spec, n - j0, wj, wk)


provide("qr_larfb", _qr_larfb_fn, _qr_larfb_cost)
provide("chol_trsm", _chol_trsm_fn, _chol_trsm_cost)
provide("chol_update", _chol_update_fn, _chol_update_cost)
