"""1-D block-cyclic column distribution, as used by MAGMA's mgpu routines.

The matrix is split into column panels of width ``nb``; panel *j* is owned
by GPU ``j mod g``.  Each GPU stores its panels as full-height column
blocks in device memory.
"""

from __future__ import annotations

import dataclasses

from ...errors import WorkloadError


@dataclasses.dataclass(frozen=True)
class BlockCyclic:
    """Panel layout of an n x n matrix over g GPUs."""

    n: int
    nb: int
    n_gpus: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise WorkloadError(f"matrix size must be positive: {self.n!r}")
        if self.nb <= 0:
            raise WorkloadError(f"panel width must be positive: {self.nb!r}")
        if self.n_gpus <= 0:
            raise WorkloadError(f"need at least one GPU: {self.n_gpus!r}")

    @property
    def n_panels(self) -> int:
        return (self.n + self.nb - 1) // self.nb

    def owner(self, panel: int) -> int:
        """The GPU that stores panel ``panel``."""
        self._check(panel)
        return panel % self.n_gpus

    def panels_of(self, gpu: int) -> list[int]:
        """All panels owned by one GPU, ascending."""
        if not 0 <= gpu < self.n_gpus:
            raise WorkloadError(f"gpu {gpu} out of range")
        return list(range(gpu, self.n_panels, self.n_gpus))

    def col0(self, panel: int) -> int:
        """First column of a panel."""
        self._check(panel)
        return panel * self.nb

    def width(self, panel: int) -> int:
        """Width of a panel (the last one may be narrower)."""
        self._check(panel)
        return min(self.nb, self.n - panel * self.nb)

    def cols(self, panel: int) -> slice:
        """Column slice of a panel."""
        c0 = self.col0(panel)
        return slice(c0, c0 + self.width(panel))

    def trailing_panels_of(self, gpu: int, after: int) -> list[int]:
        """Panels owned by ``gpu`` strictly right of panel ``after``."""
        return [j for j in self.panels_of(gpu) if j > after]

    def _check(self, panel: int) -> None:
        if not 0 <= panel < self.n_panels:
            raise WorkloadError(
                f"panel {panel} out of range (n_panels={self.n_panels})")
