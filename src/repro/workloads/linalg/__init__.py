"""Multi-GPU dense linear algebra (the MAGMA workloads of Figures 9/10)."""

from . import kernels  # publishes device kernels to the extension catalog
from .cholesky import CholeskyResult, cholesky_factorize, cholesky_flops
from .distribution import BlockCyclic
from .panel import householder_panel, potf2
from .qr import QRResult, qr_factorize, qr_flops, reconstruct_q

__all__ = [
    "BlockCyclic",
    "householder_panel",
    "potf2",
    "qr_factorize",
    "qr_flops",
    "QRResult",
    "reconstruct_q",
    "cholesky_factorize",
    "cholesky_flops",
    "CholeskyResult",
    "kernels",
]
