"""Host-side payload coercion shared by the linalg drivers."""

from __future__ import annotations

import typing as _t

import numpy as np

from ...errors import WorkloadError


def as_matrix(raw: _t.Any, rows: int, cols: int) -> np.ndarray:
    """Coerce a downloaded payload to a (rows x cols) float64 matrix.

    Downloads may come back typed (full-buffer reads with recorded meta)
    or as flat uint8 (partial reads); both are handled.
    """
    a = np.asarray(raw)
    if a.dtype != np.float64:
        a = np.ascontiguousarray(a).view(np.float64)
    if a.size != rows * cols:
        raise WorkloadError(
            f"downloaded {a.size} doubles, expected {rows}x{cols}")
    return a.reshape(rows, cols)
