"""CPU-side panel factorizations (the LAPACK parts of the hybrid algorithms).

MAGMA's multi-GPU factorizations keep the skinny, latency-bound panel work
on the host CPU: Householder panel QR with the compact-WY T factor
(``dgeqrf`` + ``dlarft``) and the small Cholesky of the diagonal block
(``dpotf2``).  These run with real numerics in ``real`` mode and are
charged to the host CPU's panel flop rate in both modes.
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError


def householder_panel(panel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Factor an (h x w) panel: returns (V, T, R).

    ``V`` is unit lower trapezoidal (h x w), ``T`` upper triangular (w x w)
    such that ``Q = I - V @ T @ V.T`` is the product of the w Householder
    reflections, and ``R`` is the w x w upper-triangular factor.  Applying
    ``Q.T`` to the panel reproduces ``[[R], [0]]``.
    """
    h, w = panel.shape
    if h < w:
        raise WorkloadError(f"panel must be tall: got {h}x{w}")
    A = np.array(panel, dtype=np.float64)
    V = np.zeros((h, w))
    betas = np.zeros(w)
    for j in range(w):
        x = A[j:, j].copy()
        normx = np.linalg.norm(x)
        if normx == 0.0:
            beta = 0.0
            v = np.zeros_like(x)
            v[0] = 1.0
        else:
            alpha = -np.sign(x[0]) * normx if x[0] != 0 else -normx
            v = x.copy()
            v[0] -= alpha
            vnorm2 = v @ v
            if vnorm2 == 0.0:
                beta = 0.0
                v = np.zeros_like(x)
                v[0] = 1.0
            else:
                beta = 2.0 / vnorm2
        V[j:, j] = v
        # Apply H_j = I - beta v v^T to the trailing columns of the panel.
        if beta != 0.0:
            tail = A[j:, j:]
            tail -= beta * np.outer(v, v @ tail)
        betas[j] = beta
    # Normalize V to unit diagonal (LAPACK convention): v_j <- v_j / v_j[0],
    # folding the scale into beta.
    for j in range(w):
        pivot = V[j, j]
        if pivot != 0.0:
            V[j:, j] /= pivot
            betas[j] *= pivot * pivot
        else:
            V[j, j] = 1.0
    T = form_t(V, betas)
    R = np.triu(A[:w, :])
    return V, T, R


def form_t(V: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """Build the compact-WY T factor (``dlarft`` forward/columnwise)."""
    w = V.shape[1]
    T = np.zeros((w, w))
    for i in range(w):
        T[i, i] = betas[i]
        if i > 0 and betas[i] != 0.0:
            T[:i, i] = -betas[i] * (T[:i, :i] @ (V[:, :i].T @ V[:, i]))
    return T


def apply_block_reflector(V: np.ndarray, T: np.ndarray, C: np.ndarray) -> None:
    """C <- Q^T C with Q = I - V T V^T (``dlarfb``, left, transpose).

    This is the host-side reference used to verify the device kernel and
    reconstruct Q in the tests.
    """
    W = V.T @ C
    W = T.T @ W
    C -= V @ W


def panel_qr_flops(h: int, w: int) -> float:
    """dgeqrf + dlarft flop count for an h x w panel."""
    return 2.0 * h * w * w + h * w * w / 3.0


def potf2(block: np.ndarray) -> np.ndarray:
    """Cholesky of the diagonal block (lower). Raises on non-SPD input."""
    try:
        return np.linalg.cholesky(block)
    except np.linalg.LinAlgError as exc:
        raise WorkloadError(f"diagonal block not positive definite: {exc}") from exc


def potf2_flops(w: int) -> float:
    """dpotf2 flop count for a w x w block."""
    return w ** 3 / 3.0
