"""Multi-GPU blocked Cholesky factorization (``magma_dpotrf_mgpu`` analogue).

Right-looking hybrid algorithm over the same 1-D block-cyclic layout as
the QR driver:

1. download the nb x nb diagonal block from its owner;
2. ``dpotf2`` on the host CPU, upload the factored block back;
3. the owner GPU triangular-solves its sub-diagonal panel (``dtrsm``);
4. the factored panel L21 is broadcast to the *other* GPUs (the owner
   already has it on device!), and every GPU rank-nb-updates its local
   trailing panels.

With a single GPU steps 1-3 move only nb^2-sized blocks per step — which
is why Cholesky is far less bandwidth-sensitive than QR in the paper's
Figure 10: the bulk panel traffic only appears when the update must be
shared between multiple GPUs.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from . import kernels as _kernels  # noqa: F401  (publishes device kernels)
from ...core.api import run_parallel
from ...cluster.specs import CPUSpec
from ...errors import WorkloadError
from ...mpisim import Phantom
from ...sim import Engine
from ...units import gflops
from .distribution import BlockCyclic
from .hostmem import as_matrix
from .panel import potf2, potf2_flops


def cholesky_flops(n: int) -> float:
    """dpotrf flop count for an n x n matrix."""
    return n ** 3 / 3.0


@dataclasses.dataclass
class CholeskyResult:
    """Outcome of one factorization run."""

    n: int
    nb: int
    n_gpus: int
    seconds: float
    real: bool
    L: np.ndarray | None = None

    @property
    def gflops(self) -> float:
        return gflops(cholesky_flops(self.n), self.seconds)


def cholesky_factorize(engine: Engine, cpu: CPUSpec,
                       accelerators: _t.Sequence[_t.Any],
                       n: int, nb: int = 128, A: np.ndarray | None = None,
                       streams: bool = False):
    """Factor an SPD n x n matrix on the given accelerators (generator).

    Same conventions as :func:`repro.workloads.linalg.qr.qr_factorize`:
    real numerics when ``A`` is given, timing-only otherwise; the timed
    region is the factorization loop.  ``streams=True`` routes the control
    sequences (setup, trailing-update launch chains, teardown) through
    asynchronous command streams with BATCH coalescing.
    """
    real = A is not None
    if real and A.shape != (n, n):
        raise WorkloadError(f"matrix shape {A.shape} does not match n={n}")
    g = len(accelerators)
    if g == 0:
        raise WorkloadError("need at least one accelerator")
    dist = BlockCyclic(n, nb, g)

    # -- setup (untimed) --------------------------------------------------
    def panel_payload(j: int, w: int) -> _t.Any:
        return (np.ascontiguousarray(A[:, dist.cols(j)]) if real
                else Phantom(n * w * 8))

    panel_ptr: dict[int, int] = {}
    if streams:
        st = [ac.stream(name=f"chol-ac{i}")
              for i, ac in enumerate(accelerators)]
        for s in st:
            s.kernel_create("chol_trsm")
            s.kernel_create("chol_update")
        l_fut = [s.mem_alloc(n * nb * 8) for s in st]
        panel_fut = {}
        for j in range(dist.n_panels):
            w = dist.width(j)
            i = dist.owner(j)
            ptr = st[i].mem_alloc(n * w * 8)
            st[i].memcpy_h2d(ptr, panel_payload(j, w))
            panel_fut[j] = ptr
        for s in st:
            yield from s.synchronize()
        l_scratch = [f.result() for f in l_fut]
        panel_ptr = {j: f.result() for j, f in panel_fut.items()}
    else:
        st = None
        for ac in accelerators:
            yield from ac.kernel_create("chol_trsm")
            yield from ac.kernel_create("chol_update")
        l_scratch = []
        for ac in accelerators:
            l_scratch.append((yield from ac.mem_alloc(n * nb * 8)))
        for j in range(dist.n_panels):
            w = dist.width(j)
            ac = accelerators[dist.owner(j)]
            ptr = yield from ac.mem_alloc(n * w * 8)
            yield from ac.memcpy_h2d(ptr, panel_payload(j, w))
            panel_ptr[j] = ptr

    # -- the factorization loop (timed) ------------------------------------
    t0 = engine.now
    for k in range(dist.n_panels):
        k0 = dist.col0(k)
        w = dist.width(k)
        k1 = k0 + w
        owner = dist.owner(k)
        owner_ac = accelerators[owner]

        # 1. Download the diagonal block (rows k0..k1 of a width-w panel
        #    are contiguous at byte offset k0*w*8).
        raw = yield from owner_ac.memcpy_d2h(panel_ptr[k], w * w * 8,
                                             offset=k0 * w * 8)

        # 2. Host dpotf2, then upload the factored block in place.
        yield engine.timeout(cpu.flops_time(potf2_flops(w)))
        if real:
            blk = as_matrix(raw, w, w)
            Lkk = potf2(blk)
            up_payload: _t.Any = np.ascontiguousarray(Lkk)
        else:
            up_payload = Phantom(w * w * 8)
        yield from owner_ac.memcpy_h2d(panel_ptr[k], up_payload,
                                       offset=k0 * w * 8)

        if k1 >= n:
            continue

        # 3. Triangular solve of the sub-diagonal panel on the owner.
        yield from owner_ac.kernel_run(
            "chol_trsm",
            {"panel": panel_ptr[k], "n": n, "w": w, "k0": k0, "k1": k1},
            real=real)

        # 4. Share L21 with the other GPUs that have trailing work.
        targets = sorted({dist.owner(j) for j in range(k + 1, dist.n_panels)})
        others = [i for i in targets if i != owner]
        if others:
            l21_bytes = (n - k1) * w * 8
            raw_l21 = yield from owner_ac.memcpy_d2h(panel_ptr[k], l21_bytes,
                                                     offset=k1 * w * 8)
            if real:
                l21_payload: _t.Any = as_matrix(raw_l21, n - k1, w).copy()
            else:
                l21_payload = Phantom(l21_bytes)

            def send_l21(i):
                yield from accelerators[i].memcpy_h2d(l_scratch[i], l21_payload)

            yield from run_parallel(engine, [send_l21(i) for i in others])

        # 5. Rank-w update of every trailing panel, all GPUs in parallel.
        def update_params(i, j):
            l_ptr = panel_ptr[k] if i == owner else l_scratch[i]
            l_off = k1 if i == owner else 0
            return {"L": l_ptr, "l_off": l_off, "panel": panel_ptr[j],
                    "n": n, "wk": w, "wj": dist.width(j),
                    "k1": k1, "j0": dist.col0(j)}

        if streams:
            for i in targets:
                for j in dist.trailing_panels_of(i, k):
                    st[i].kernel_run("chol_update", update_params(i, j),
                                     real=real)
            for i in targets:
                yield from st[i].synchronize()
        else:
            def update(i):
                for j in dist.trailing_panels_of(i, k):
                    yield from accelerators[i].kernel_run(
                        "chol_update", update_params(i, j), real=real)

            yield from run_parallel(engine, [update(i) for i in targets])
    seconds = engine.now - t0

    # -- gather the result (untimed) ---------------------------------------
    L = None
    if real:
        L = np.zeros((n, n))
        for j in range(dist.n_panels):
            w = dist.width(j)
            raw = yield from accelerators[dist.owner(j)].memcpy_d2h(
                panel_ptr[j], n * w * 8)
            L[:, dist.cols(j)] = as_matrix(raw, n, w)
        L = np.tril(L)

    if streams:
        for j, ptr in panel_ptr.items():
            st[dist.owner(j)].mem_free(ptr)
        for i in range(g):
            st[i].mem_free(l_scratch[i])
        for s in st:
            yield from s.synchronize()
    else:
        for j, ptr in panel_ptr.items():
            yield from accelerators[dist.owner(j)].mem_free(ptr)
        for i, ac in enumerate(accelerators):
            yield from ac.mem_free(l_scratch[i])

    return CholeskyResult(n=n, nb=nb, n_gpus=g, seconds=seconds, real=real, L=L)
