"""Open-loop ensemble workload for the job-service front door.

Generates a Pegasus-style ensemble — many small jobs with priorities,
tenants, and DAG dependencies — and drives it through
:class:`~repro.jobs.JobService` over one simulated cluster.  Arrivals are
open loop (drawn up front from the seeded RNG, independent of
completions), job bodies run real numerics on device buffers (GEMM panel
updates, Cholesky trailing updates, MP2C-style vector pipelines, memcpy
round trips) and every body verifies its result against numpy before
hashing it.

The run is deterministic end to end: the same
:class:`EnsembleConfig` (including ``seed``) produces the same jobs, the
same buffers, and the same :attr:`EnsembleReport.digest` — and because
the digest covers only timing-independent outcomes (job name, tenant,
terminal state, result hash), it is *identical with the warm paths on or
off*.  Throughput (virtual jobs/s) is what changes; that ratio is the
``jobs_throughput`` benchmark's speedup.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import typing as _t

import numpy as np

from ..cluster import Cluster, paper_testbed
from ..core.api import run_parallel
from ..core.protocol import reset_request_ids
from ..errors import WorkloadError
from ..jobs import JobService, JobSpec, JobState
from ..obs import MetricsRegistry

#: (name, priority, WFQ weight, fraction of jobs) — drawn per job group.
DEFAULT_CLASSES: tuple[tuple[str, int, float, float], ...] = (
    ("gold", 1, 4.0, 0.20),
    ("silver", 0, 2.0, 0.30),
    ("bronze", 0, 1.0, 0.50),
)


@dataclasses.dataclass(frozen=True)
class EnsembleConfig:
    """Shape of one ensemble run."""

    n_jobs: int = 96
    n_accelerators: int = 4
    n_gateways: int = 2
    slots_per_device: int = 4
    #: Arrivals are uniform over ``[0, window_s)`` of virtual time.
    window_s: float = 0.5e-3
    seed: int = 0
    classes: tuple[tuple[str, int, float, float], ...] = DEFAULT_CLASSES
    #: Warm-path switches (the benchmark's independent variable).
    coalescing: bool = True
    caching: bool = True
    coalesce_window_s: float = 0.0
    lease_ttl_s: float = 50e-3

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise WorkloadError("n_jobs must be >= 1")
        if not 1 <= self.n_accelerators <= 8:
            raise WorkloadError("n_accelerators must be in 1..8")
        if self.n_gateways < 1:
            raise WorkloadError("n_gateways must be >= 1")
        if self.slots_per_device < 1:
            raise WorkloadError("slots_per_device must be >= 1")
        if self.window_s < 0:
            raise WorkloadError("window_s must be >= 0")


@dataclasses.dataclass
class EnsembleReport:
    """Outcome of :func:`run` (times in virtual seconds)."""

    config: EnsembleConfig
    submitted: int
    done: int
    failed: int
    cancelled: int
    #: Virtual time of the last job's completion (excludes the warm-pool
    #: drain — the service stays warm between ensembles).
    duration_s: float
    jobs_per_s: float
    #: Mean compute-busy fraction across devices over ``duration_s``.
    utilization: float
    latency_p50_s: float
    latency_p99_s: float
    #: tenant -> {"count", "p50_s", "p99_s"} over completed jobs.
    per_tenant: dict[str, dict[str, float]]
    #: Cross-stream coalescing accounting (zeros when coalescing is off).
    coalesce: dict[str, float]
    #: Kernel-cache and lease-pool accounting (zeros when caching is off).
    kernel_cache_hits: int
    kernel_cache_misses: int
    kernel_cache_hit_rate: float
    leases_reused: int
    leases_cold: int
    leases_evicted: int
    leases_expired: int
    alloc_cache_hits: int
    alloc_cache_misses: int
    alloc_cache_hit_rate: float
    #: SHA-256 over sorted (job, tenant, state, result-hash) rows — the
    #: timing-independent outcome trace.  Identical across warm-path
    #: on/off and across replays of the same seed.
    digest: str
    registry: MetricsRegistry = dataclasses.field(repr=False, default=None)


# -- job bodies ------------------------------------------------------------
#
# Each body is a closure over its RNG-drawn problem; it uploads real
# payloads, launches registered kernels, reads results back, verifies
# against numpy, and returns the SHA-256 of the result bytes.

def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _check(ok: bool, what: str) -> None:
    if not ok:
        raise WorkloadError(f"ensemble numerics check failed: {what}")


def make_gemm_body(rng: random.Random, seed: int):
    """One blocked panel update: C = A @ B (the QR/LU workhorse)."""
    m = rng.choice((16, 24, 32))
    nrng = np.random.default_rng(seed)
    a = nrng.standard_normal((m, m))
    b = nrng.standard_normal((m, m))

    def body(ctx):
        ac = ctx.accelerators[0]
        yield from ac.kernel_create("dgemm")
        da = yield from ac.mem_alloc(a.nbytes)
        db = yield from ac.mem_alloc(b.nbytes)
        dc = yield from ac.mem_alloc(a.nbytes)
        yield from ac.memcpy_h2d(da, a)
        yield from ac.memcpy_h2d(db, b)
        yield from ac.kernel_run("dgemm", {
            "m": m, "n": m, "k": m, "A": da, "B": db, "C": dc,
            "alpha": 1.0, "beta": 0.0})
        out = yield from ac.memcpy_d2h(dc, a.nbytes)
        c = np.frombuffer(out, dtype=np.float64).reshape(m, m)
        _check(np.allclose(c, a @ b), "dgemm panel")
        return _sha(c)

    return body


def make_cholesky_body(rng: random.Random, seed: int):
    """One Cholesky step: panel solve (dtrsm) + trailing update (dsyrk)."""
    nb = rng.choice((8, 16))
    m = 2 * nb
    nrng = np.random.default_rng(seed)
    t = np.tril(nrng.standard_normal((nb, nb))) + nb * np.eye(nb)
    panel = nrng.standard_normal((m, nb))
    trail = nrng.standard_normal((m, m))
    trail = trail + trail.T + 2 * m * np.eye(m)

    def body(ctx):
        ac = ctx.accelerators[0]
        yield from ac.kernel_create("dtrsm")
        yield from ac.kernel_create("dsyrk")
        dt = yield from ac.mem_alloc(t.nbytes)
        dp = yield from ac.mem_alloc(panel.nbytes)
        dc = yield from ac.mem_alloc(trail.nbytes)
        yield from ac.memcpy_h2d(dt, t)
        yield from ac.memcpy_h2d(dp, panel)
        yield from ac.memcpy_h2d(dc, trail)
        yield from ac.kernel_run("dtrsm", {"m": m, "nb": nb,
                                           "T": dt, "B": dp})
        yield from ac.kernel_run("dsyrk", {"n": m, "k": nb,
                                           "A": dp, "C": dc,
                                           "alpha": -1.0, "beta": 1.0})
        out = yield from ac.memcpy_d2h(dc, trail.nbytes)
        got = np.frombuffer(out, dtype=np.float64).reshape(m, m)
        solved = np.linalg.solve(t, panel.T).T
        _check(np.allclose(got, trail - solved @ solved.T), "cholesky step")
        return _sha(got)

    return body


def make_mp2c_body(rng: random.Random, seed: int):
    """An MP2C-style vector pipeline: fill, daxpy, dscal, ddot."""
    n = rng.choice((256, 512, 1024))
    nrng = np.random.default_rng(seed)
    x = nrng.standard_normal(n)
    alpha = float(nrng.uniform(0.5, 2.0))

    def body(ctx):
        ac = ctx.accelerators[0]
        yield from ac.kernel_create("fill")
        yield from ac.kernel_create("daxpy")
        yield from ac.kernel_create("dscal")
        yield from ac.kernel_create("ddot")
        dx = yield from ac.mem_alloc(8 * n)
        dy = yield from ac.mem_alloc(8 * n)
        dout = yield from ac.mem_alloc(8)
        yield from ac.memcpy_h2d(dx, x)
        yield from ac.kernel_run("fill", {"dst": dy, "n": n, "value": 1.0})
        yield from ac.kernel_run("daxpy", {"x": dx, "y": dy, "n": n,
                                           "alpha": alpha})
        yield from ac.kernel_run("dscal", {"x": dy, "n": n, "alpha": 0.5})
        yield from ac.kernel_run("ddot", {"x": dy, "y": dy, "out": dout,
                                          "n": n})
        out = yield from ac.memcpy_d2h(dout, 8)
        got = float(np.frombuffer(out, dtype=np.float64)[0])
        y = 0.5 * (1.0 + alpha * x)
        _check(np.isclose(got, float(y @ y)), "mp2c pipeline")
        return _sha(np.array([got]))

    return body


def make_memcpy_body(rng: random.Random, seed: int):
    """A two-accelerator staging round trip (h2d + d2h, verified)."""
    n = rng.choice((2048, 4096))
    nrng = np.random.default_rng(seed)
    payload = nrng.standard_normal(n)

    def body(ctx):
        halves = np.split(payload, len(ctx.accelerators))

        def one(ac, part):
            addr = yield from ac.mem_alloc(part.nbytes)
            yield from ac.memcpy_h2d(addr, part)
            out = yield from ac.memcpy_d2h(addr, part.nbytes)
            got = np.frombuffer(out, dtype=np.float64)
            _check(np.array_equal(got, part), "memcpy round trip")
            return _sha(got)

        digests = yield from run_parallel(
            ctx.engine, [one(ac, part)
                         for ac, part in zip(ctx.accelerators, halves)])
        return hashlib.sha256("".join(digests).encode()).hexdigest()

    return body


_BODY_MAKERS = (make_gemm_body, make_cholesky_body, make_mp2c_body,
                make_memcpy_body)


def generate_specs(cfg: EnsembleConfig) -> list[JobSpec]:
    """Draw the ensemble: bodies, classes, arrivals, and DAG shapes.

    Jobs come in groups of four sharing a tenant class; each group's
    dependency shape is drawn from the RNG — independent, a chain
    (a -> b -> c -> d), or a diamond (b and c fan out from a, d joins
    them).  Everything is a pure function of ``cfg.seed``, so the warm
    and cold runs of the benchmark execute the identical ensemble.
    """
    rng = random.Random(cfg.seed)
    specs: list[JobSpec] = []
    group = 0
    while len(specs) < cfg.n_jobs:
        roll = rng.random()
        acc = 0.0
        tenant, priority = cfg.classes[-1][:2]
        for cname, cprio, _w, frac in cfg.classes:
            acc += frac
            if roll < acc:
                tenant, priority = cname, cprio
                break
        shape = rng.choice(("independent", "chain", "diamond"))
        arrival = rng.uniform(0.0, cfg.window_s)
        names = [f"g{group:03d}.{i}" for i in range(4)]
        deps_by_shape = {
            "independent": [(), (), (), ()],
            "chain": [(), (names[0],), (names[1],), (names[2],)],
            "diamond": [(), (names[0],), (names[0],),
                        (names[1], names[2])],
        }
        for i, (name, deps) in enumerate(zip(names, deps_by_shape[shape])):
            maker = _BODY_MAKERS[(group + i) % len(_BODY_MAKERS)]
            body_seed = cfg.seed * 1_000_003 + group * 101 + i
            body = maker(rng, body_seed)
            n_acs = 2 if maker is make_memcpy_body else 1
            specs.append(JobSpec(
                name=name, tenant=tenant, body=body,
                n_accelerators=min(n_acs, cfg.n_accelerators),
                priority=priority, deps=deps, arrival_s=arrival))
            if len(specs) == cfg.n_jobs:
                break
        group += 1
    return specs


def run(cfg: EnsembleConfig | None = None) -> EnsembleReport:
    """Build a cluster + job service, drive the ensemble, report."""
    cfg = cfg or EnsembleConfig()
    reset_request_ids()
    cluster = Cluster(paper_testbed(n_compute=cfg.n_gateways,
                                    n_accelerators=cfg.n_accelerators))
    cluster.arm.admission.slots_per_device = cfg.slots_per_device
    service = JobService(cluster,
                         coalescing=cfg.coalescing,
                         caching=cfg.caching,
                         window_s=cfg.coalesce_window_s,
                         lease_ttl_s=cfg.lease_ttl_s)
    for cname, _cprio, weight, _frac in cfg.classes:
        service.ensure_tenant(cname, weight=weight)
    specs = generate_specs(cfg)
    records = service.run_all(specs)

    duration = max((r.end_s for r in records if r.end_s is not None),
                   default=0.0)
    busy = sum(node.gpu.busy_time for node in cluster.accelerator_nodes)
    util = (busy / (duration * len(cluster.accelerator_nodes))
            if duration > 0 else 0.0)

    reg = service.metrics
    agg = reg.histogram("jobs.latency_s")
    per_tenant: dict[str, dict[str, float]] = {}
    for hist in reg.histograms("job.latency_s"):
        labels = dict(hist.labels)
        per_tenant[labels["tenant"]] = {
            "count": float(hist.count),
            "p50_s": hist.percentile(50.0),
            "p99_s": hist.percentile(99.0),
        }

    sha = hashlib.sha256()
    for rec in sorted(records, key=lambda r: r.spec.name):
        outcome = (rec.result if rec.state is JobState.DONE
                   else type(rec.error).__name__ if rec.error else "")
        sha.update(repr((rec.spec.name, rec.spec.tenant, rec.state.value,
                         outcome)).encode())

    kc = service.kernel_cache
    lp = service.lease_pool
    return EnsembleReport(
        config=cfg,
        submitted=len(records),
        done=service.jobs_done,
        failed=service.jobs_failed,
        cancelled=service.jobs_cancelled,
        duration_s=duration,
        jobs_per_s=service.jobs_done / duration if duration > 0 else 0.0,
        utilization=util,
        latency_p50_s=agg.percentile(50.0) if agg.count else 0.0,
        latency_p99_s=agg.percentile(99.0) if agg.count else 0.0,
        per_tenant=per_tenant,
        coalesce=service.coalesce_stats(),
        kernel_cache_hits=kc.hits if kc is not None else 0,
        kernel_cache_misses=kc.misses if kc is not None else 0,
        kernel_cache_hit_rate=kc.hit_rate if kc is not None else 0.0,
        leases_reused=lp.reused if lp is not None else 0,
        leases_cold=service.leases_cold,
        leases_evicted=lp.evicted if lp is not None else 0,
        leases_expired=lp.expired if lp is not None else 0,
        alloc_cache_hits=lp.alloc_hits if lp is not None else 0,
        alloc_cache_misses=lp.alloc_misses if lp is not None else 0,
        alloc_cache_hit_rate=lp.alloc_hit_rate if lp is not None else 0.0,
        digest=sha.hexdigest(),
        registry=reg,
    )


def format_report(report: EnsembleReport) -> str:
    """Human-readable summary (the CLI's output)."""
    cfg = report.config
    c = report.coalesce
    lines = [
        f"jobs {report.submitted}  accelerators {cfg.n_accelerators}  "
        f"gateways {cfg.n_gateways}  slots/dev {cfg.slots_per_device}  "
        f"seed {cfg.seed}",
        f"coalescing {'on' if cfg.coalescing else 'off'}  "
        f"caching {'on' if cfg.caching else 'off'}",
        f"done {report.done}  failed {report.failed}  "
        f"cancelled {report.cancelled}",
        f"virtual duration {report.duration_s * 1e3:.3f} ms  "
        f"throughput {report.jobs_per_s:.0f} jobs/s  "
        f"utilization {report.utilization * 100:.1f}%",
        f"latency p50 {report.latency_p50_s * 1e6:.1f} us  "
        f"p99 {report.latency_p99_s * 1e6:.1f} us",
        f"coalesced frames {c['frames_out']:.0f} from {c['subs_in']:.0f} "
        f"sub-frames  merged ratio {c['merged_ratio'] * 100:.0f}%  "
        f"round trips saved {c['roundtrips_saved']:.0f}",
        f"kernel cache hits {report.kernel_cache_hits} / "
        f"{report.kernel_cache_hits + report.kernel_cache_misses} "
        f"({report.kernel_cache_hit_rate * 100:.0f}%)",
        f"alloc cache hits {report.alloc_cache_hits} / "
        f"{report.alloc_cache_hits + report.alloc_cache_misses} "
        f"({report.alloc_cache_hit_rate * 100:.0f}%)",
        f"leases reused {report.leases_reused}  cold {report.leases_cold}  "
        f"evicted {report.leases_evicted}  expired {report.leases_expired}",
        f"outcome digest {report.digest[:16]}",
    ]
    for tenant in sorted(report.per_tenant):
        row = report.per_tenant[tenant]
        lines.append(
            f"  {tenant:8s} count {int(row['count']):3d}  "
            f"p50 {row['p50_s'] * 1e6:8.1f} us  "
            f"p99 {row['p99_s'] * 1e6:8.1f} us")
    return "\n".join(lines)
