"""``python -m repro`` — figure-regeneration CLI (see repro.analysis.cli)."""

import sys

from .analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
