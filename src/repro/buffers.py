"""Zero-copy payload plumbing: chunk views, copy accounting, and the
global zero-copy switch.

The paper's pipelined transfer path is *copy-lean by construction*
(GPUDirect v1 shares one pinned buffer between the NIC and the DMA
engine), and the simulation should be too: a payload that travels
front-end -> MPI -> daemon -> device backing store must touch host
memory once — the final write into device memory — not three or four
times.  This module provides the pieces every layer shares:

* :class:`ChunkView` — an immutable (offset, length) window over one
  shared uint8 backing buffer.  Chunks of one payload are views over the
  *same* buffer, so reassembly of a contiguous sequence is a slice, not
  a gather.  A ChunkView is a loan: the bytes are owned by whoever
  created the backing buffer, and consumers that need private mutable
  bytes must call :meth:`ChunkView.writable` (which is the single
  copy-on-write point).
* :class:`CopyStats` / :data:`copy_stats` — process-wide accounting of
  physical payload copies, used by the instrumented tests that assert
  the happy path really is zero-copy.
* :func:`zero_copy_enabled` / :func:`set_zero_copy` /
  :func:`zero_copy` — the global switch.  With zero-copy off, every
  layer falls back to the historical snapshot-everything behaviour; the
  deterministic harness runs both modes and asserts bit-identical
  buffers and span timelines (only *host* time may differ, never
  simulated time).

Ownership rules (see DESIGN.md §10):

1. A buffer handed to ``memcpy_h2d`` is loaned to the middleware until
   the operation completes; the caller must not mutate it in between.
2. Arrays returned by zero-copy downloads are read-only snapshot views;
   callers that need to mutate call ``.copy()`` (exactly the copy the
   old code always paid).
3. Device backing stores honour snapshot semantics through allocation-
   level copy-on-write: mutating device memory while downloaded views
   are outstanding repoints the allocation at a fresh buffer and leaves
   the old bytes to the views.
"""

from __future__ import annotations

import contextlib
import typing as _t

import numpy as np


class CopyStats:
    """Counters of physical payload-byte copies (host wall-time cost).

    ``payload_copies``/``payload_bytes`` count *avoidable* copies: send
    snapshots, staging gathers, read-out copies.  ``device_writes``/
    ``device_write_bytes`` count the one copy the architecture requires:
    the final write into the device backing store.  ``cow_copies`` count
    allocation-level copy-on-write snapshots — correct but worth
    watching, since a hot loop that mutates freshly-downloaded buffers
    pays one per mutation.
    """

    __slots__ = ("payload_copies", "payload_bytes",
                 "device_writes", "device_write_bytes",
                 "cow_copies", "cow_bytes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.payload_copies = 0
        self.payload_bytes = 0
        self.device_writes = 0
        self.device_write_bytes = 0
        self.cow_copies = 0
        self.cow_bytes = 0

    def count_payload_copy(self, nbytes: int) -> None:
        self.payload_copies += 1
        self.payload_bytes += int(nbytes)

    def count_device_write(self, nbytes: int) -> None:
        self.device_writes += 1
        self.device_write_bytes += int(nbytes)

    def count_cow(self, nbytes: int) -> None:
        self.cow_copies += 1
        self.cow_bytes += int(nbytes)

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CopyStats payload={self.payload_copies}x/"
                f"{self.payload_bytes}B device={self.device_writes}x/"
                f"{self.device_write_bytes}B cow={self.cow_copies}x>")


#: Process-wide copy accounting.  Tests reset it around a scenario and
#: assert on the delta; production code only ever increments.
copy_stats = CopyStats()

_zero_copy = True


def zero_copy_enabled() -> bool:
    """Is the zero-copy data plane on? (Default: yes.)"""
    return _zero_copy


def set_zero_copy(enabled: bool) -> None:
    """Globally enable/disable the zero-copy data plane.

    Off means every layer snapshots like the pre-zero-copy code did —
    bit-identical results and simulated times, more host time.  Used by
    the A/B identity harness; not meant for production toggling.
    """
    global _zero_copy
    _zero_copy = bool(enabled)


@contextlib.contextmanager
def zero_copy(enabled: bool) -> _t.Iterator[None]:
    """Context manager form of :func:`set_zero_copy` (restores on exit)."""
    prev = _zero_copy
    set_zero_copy(enabled)
    try:
        yield
    finally:
        set_zero_copy(prev)


def _as_uint8(buf: np.ndarray) -> np.ndarray:
    """Flat uint8 alias of a contiguous array (no copy).

    A buffer that already is flat uint8 is returned *as the same object*:
    chunk contiguity is detected by backing-buffer identity, so all views
    over one payload must share one base array.
    """
    arr = np.asarray(buf)
    if arr.dtype == np.uint8 and arr.ndim == 1:
        return arr
    if not arr.flags.c_contiguous:
        raise ValueError("ChunkView backing must be C-contiguous")
    return arr.view(np.uint8).reshape(-1)


class ChunkView:
    """An immutable (offset, length) window over a shared backing buffer.

    The payload currency of the zero-copy data plane: the MPI layer
    passes it through ``copy_for_send`` untouched (an ownership
    transfer, not a physical copy), the daemon writes it straight into
    device backing memory, and ``assemble_chunks`` recognises runs of
    contiguous views over one buffer and reassembles them with a slice.

    Consumers never mutate a ChunkView's bytes in place; they either
    read through :attr:`array` (a read-only numpy view) or take a
    private copy with :meth:`writable` — the single copy-on-write point.
    """

    __slots__ = ("_base", "offset", "nbytes")

    def __init__(self, base: np.ndarray, offset: int = 0,
                 nbytes: int | None = None):
        base = _as_uint8(base)
        if nbytes is None:
            nbytes = base.nbytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > base.nbytes:
            raise ValueError(
                f"view of {nbytes}B at offset {offset} exceeds "
                f"backing of {base.nbytes}B")
        self._base = base
        self.offset = int(offset)
        self.nbytes = int(nbytes)

    # -- zero-copy access ------------------------------------------------
    @property
    def base(self) -> np.ndarray:
        """The shared backing buffer (flat uint8)."""
        return self._base

    @property
    def array(self) -> np.ndarray:
        """Read-only uint8 view of this chunk's bytes (no copy)."""
        view = self._base[self.offset:self.offset + self.nbytes]
        view.flags.writeable = False
        return view

    def subview(self, offset: int, nbytes: int) -> "ChunkView":
        """A narrower window over the same backing buffer (no copy)."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"subview of {nbytes}B at offset {offset} exceeds "
                f"chunk of {self.nbytes}B")
        return ChunkView(self._base, self.offset + offset, nbytes)

    def follows(self, other: "ChunkView") -> bool:
        """True if this chunk starts where ``other`` ends in one buffer."""
        return (self._base is other._base
                and self.offset == other.offset + other.nbytes)

    # -- the copy points -------------------------------------------------
    def writable(self) -> np.ndarray:
        """A private mutable copy of the bytes (copy-on-write point)."""
        copy_stats.count_payload_copy(self.nbytes)
        return self._base[self.offset:self.offset + self.nbytes].copy()

    def tobytes(self) -> bytes:
        """Materialize as ``bytes`` (a physical copy; counted)."""
        copy_stats.count_payload_copy(self.nbytes)
        return self._base[self.offset:self.offset + self.nbytes].tobytes()

    # -- misc ------------------------------------------------------------
    def __len__(self) -> int:
        return self.nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkView):
            return NotImplemented
        return bool(np.array_equal(self.array, other.array))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ChunkView({self.nbytes}B @+{self.offset} of "
                f"{self._base.nbytes}B buffer)")


def chunk_payload(payload: _t.Any) -> np.ndarray:
    """Flat uint8 array of a chunk payload (ChunkView or array-like).

    Zero-copy for ChunkViews and uint8 arrays; the result must only be
    *read* (it may alias shared memory).
    """
    if isinstance(payload, ChunkView):
        return payload.array
    arr = np.asarray(payload)
    if arr.dtype != np.uint8:
        arr = np.ascontiguousarray(arr, dtype=np.uint8)
    return arr.reshape(-1)
