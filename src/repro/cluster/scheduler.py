"""Batch-scheduling model: static vs dynamic accelerator clusters.

The paper motivates the dynamic architecture with utilization economics
(Sect. I/III): under a static N-to-1 mapping, a single-node job that wants
g > N GPUs must spread over g nodes (premature MPI hybridization), and a
CPU-only job parks its node's GPU idle.  With a network-attached pool, a
job takes exactly the nodes it needs plus exactly the accelerators it
needs.

This module runs the same job mix through both policies with a FIFO
scheduler on the DES clock and reports makespan, waiting times, and GPU /
node utilization — the extension study the paper's conclusion announces
as future work (dynamic assignment strategy, Fig. 3b).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..errors import ClusterConfigError
from ..sim import Engine, Event


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One batch job: when it arrives and what it needs."""

    name: str
    arrival_s: float
    duration_s: float
    n_nodes: int = 1
    n_gpus: int = 0  # total GPUs wanted by the job

    def __post_init__(self) -> None:
        if self.arrival_s < 0 or self.duration_s <= 0:
            raise ClusterConfigError("bad job timing")
        if self.n_nodes < 1 or self.n_gpus < 0:
            raise ClusterConfigError("bad job resources")


@dataclasses.dataclass
class JobRecord:
    """Scheduling outcome of one job."""

    spec: JobSpec
    start_s: float
    end_s: float
    nodes_used: int
    gpus_used: int

    @property
    def wait_s(self) -> float:
        return self.start_s - self.spec.arrival_s


@dataclasses.dataclass
class ScheduleResult:
    """Aggregate metrics of one policy run."""

    policy: str
    records: list[JobRecord]
    n_nodes: int
    n_gpus: int

    @property
    def makespan(self) -> float:
        return max(r.end_s for r in self.records) if self.records else 0.0

    @property
    def mean_wait(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.wait_s for r in self.records) / len(self.records)

    def gpu_utilization(self) -> float:
        """Busy GPU-seconds over available GPU-seconds until makespan."""
        total = self.makespan * self.n_gpus
        if total <= 0:
            return 0.0
        busy = sum(r.spec.n_gpus * (r.end_s - r.start_s) for r in self.records)
        return busy / total

    def node_utilization(self) -> float:
        total = self.makespan * self.n_nodes
        if total <= 0:
            return 0.0
        busy = sum(r.nodes_used * (r.end_s - r.start_s) for r in self.records)
        return busy / total


def _footprint_static(job: JobSpec, gpus_per_node: int) -> tuple[int, int]:
    """(nodes, gpus) a job occupies on a static cluster.

    GPUs come only with nodes: a job wanting g GPUs must hold
    ceil(g / gpus_per_node) nodes (premature hybridization), and every
    held node's GPUs are unavailable to others.
    """
    if gpus_per_node > 0:
        nodes_for_gpus = -(-job.n_gpus // gpus_per_node)
    else:
        nodes_for_gpus = 0 if job.n_gpus == 0 else 10**9
    nodes = max(job.n_nodes, nodes_for_gpus)
    return nodes, nodes * gpus_per_node


def _footprint_dynamic(job: JobSpec, gpus_per_node: int) -> tuple[int, int]:
    """(nodes, gpus) on a dynamic cluster: exactly what the job asks for."""
    return job.n_nodes, job.n_gpus


class FifoScheduler:
    """Strict-FIFO admission over counted node and GPU resources."""

    def __init__(self, engine: Engine, n_nodes: int, n_gpus: int,
                 footprint: _t.Callable[[JobSpec, int], tuple[int, int]],
                 gpus_per_node: int, policy: str):
        if n_nodes < 1 or n_gpus < 0:
            raise ClusterConfigError("bad cluster size")
        self.engine = engine
        self.n_nodes = n_nodes
        self.n_gpus = n_gpus
        self.free_nodes = n_nodes
        self.free_gpus = n_gpus
        self.footprint = footprint
        self.gpus_per_node = gpus_per_node
        self.policy = policy
        self.records: list[JobRecord] = []
        self._queue: list[tuple[JobSpec, int, int, Event]] = []

    def submit(self, job: JobSpec) -> Event:
        """Schedule a job's arrival; returns its completion event."""
        done = self.engine.event()

        def arrive():
            if self.engine.now < job.arrival_s:
                yield self.engine.timeout(job.arrival_s - self.engine.now)
            nodes, gpus = self.footprint(job, self.gpus_per_node)
            if nodes > self.n_nodes or gpus > self.n_gpus:
                raise ClusterConfigError(
                    f"job {job.name} needs {nodes} nodes / {gpus} GPUs, "
                    f"cluster has {self.n_nodes}/{self.n_gpus}")
            self._queue.append((job, nodes, gpus, done))
            self._admit()
            if False:
                yield  # pragma: no cover

        self.engine.process(arrive(), name=f"arrive:{job.name}")
        return done

    def _admit(self) -> None:
        # Strict FIFO: the head of the queue blocks everyone behind it.
        while self._queue:
            job, nodes, gpus, done = self._queue[0]
            if nodes > self.free_nodes or gpus > self.free_gpus:
                return
            self._queue.pop(0)
            self.free_nodes -= nodes
            self.free_gpus -= gpus
            self.engine.process(self._run(job, nodes, gpus, done),
                                name=f"run:{job.name}")

    def _run(self, job: JobSpec, nodes: int, gpus: int, done: Event):
        start = self.engine.now
        yield self.engine.timeout(job.duration_s)
        self.records.append(JobRecord(job, start, self.engine.now, nodes, gpus))
        self.free_nodes += nodes
        self.free_gpus += gpus
        done.succeed(None)
        self._admit()


def run_job_mix(jobs: _t.Sequence[JobSpec], n_nodes: int, n_gpus: int,
                policy: str, gpus_per_node: int = 1) -> ScheduleResult:
    """Run a job mix to completion under one policy.

    ``policy`` is ``"static"`` (GPUs hard-wired, ``gpus_per_node`` each) or
    ``"dynamic"`` (network-attached pool of ``n_gpus``).
    """
    if policy == "static":
        footprint = _footprint_static
        total_gpus = n_nodes * gpus_per_node
    elif policy == "dynamic":
        footprint = _footprint_dynamic
        total_gpus = n_gpus
    else:
        raise ClusterConfigError(f"unknown policy {policy!r}")
    engine = Engine()
    sched = FifoScheduler(engine, n_nodes, total_gpus, footprint,
                          gpus_per_node, policy)
    dones = [sched.submit(j) for j in jobs]
    engine.run(until=engine.all_of(dones))
    return ScheduleResult(policy=policy, records=sched.records,
                          n_nodes=n_nodes, n_gpus=total_gpus)
