"""Cluster composition: hardware specs, nodes, and the cluster builder."""

from .builder import Cluster, build
from .node import AcceleratorNode, ComputeNode
from .specs import (
    AcceleratorNodeSpec,
    CPUSpec,
    ClusterSpec,
    ComputeNodeSpec,
    EFFICIENT_ACCEL_CPU,
    XEON_X5670_DUAL,
    paper_testbed,
)

__all__ = [
    "Cluster",
    "build",
    "ComputeNode",
    "AcceleratorNode",
    "ClusterSpec",
    "ComputeNodeSpec",
    "AcceleratorNodeSpec",
    "CPUSpec",
    "XEON_X5670_DUAL",
    "EFFICIENT_ACCEL_CPU",
    "paper_testbed",
]
