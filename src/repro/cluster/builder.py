"""Cluster assembly: engine + fabric + nodes + MPI world + middleware.

:class:`Cluster` wires a complete simulated installation from a
:class:`~repro.cluster.specs.ClusterSpec`:

* one fabric endpoint per compute node, per accelerator node, and for the
  ARM;
* one global communicator whose ranks are laid out as
  ``[compute 0..C-1, daemons C..C+A-1, ARM C+A]``;
* a running back-end daemon on every accelerator node and the ARM service.

Application code then obtains handles through :meth:`arm_client` and drives
accelerators through :meth:`remote`.
"""

from __future__ import annotations

import typing as _t

from ..core.arm import ArmClient, ResourceManager
from ..core.api import RemoteAccelerator
from ..core.blocksize import TransferConfig
from ..core.daemon import Daemon
from ..core.protocol import AcceleratorHandle
from ..core.reliability import (
    FailoverConfig,
    ResilientAccelerator,
    RetryPolicy,
    tenant_accelerator,
)
from ..core.session import SyncSession
from ..errors import ClusterConfigError
from ..mpisim import World
from ..netsim import Fabric
from ..sim import Engine, ShardedEngine, Tracer, NULL_TRACER
from .node import AcceleratorNode, ComputeNode
from .specs import ClusterSpec


class Cluster:
    """A fully assembled simulated accelerator cluster.

    With ``discovery=True`` the ARM starts with an *empty* pool and
    builds membership from the daemons' discovery feed instead of the
    static roster: every accelerator node gets a
    :class:`~repro.core.discovery.DiscoveryAgent` (in ``self.agents``,
    keyed by ac id), and the agents of ``initial_accelerators`` (default:
    all) start publishing immediately with staggered phases.  Remaining
    agents stay dormant until started — the autoscaler's headroom.
    """

    def __init__(self, spec: ClusterSpec, tracer: Tracer = NULL_TRACER,
                 discovery: bool = False,
                 initial_accelerators: int | None = None,
                 report_period_s: float = 5e-4,
                 shards: int | None = None):
        self.spec = spec
        self.tracer = tracer
        if shards is None:
            self.engine = Engine()
        else:
            if shards < 1:
                raise ClusterConfigError(f"shards must be >= 1, got {shards}")
            # The fabric's base latency is the conservative lookahead:
            # nothing crosses a partition boundary faster than one
            # fabric message (declared here for diagnostics; the merge
            # oracle mode does not depend on it).
            self.engine = ShardedEngine(shards,
                                        lookahead_s=spec.network.latency_s)
        topo = spec.topology.build() if spec.topology is not None else None
        self.topology = topo
        self.fabric = Fabric(self.engine, spec.network, tracer, topology=topo)
        self.fabric.set_core_capacity(spec.core_capacity_Bps())
        self.world = World(self.engine, self.fabric, tracer)

        # Endpoints.  On a multi-switch fabric, compute and accelerator
        # nodes spread round-robin across the switches (independently, so
        # every switch gets both kinds) and the ARM sits on the first.
        def _sw(i: int) -> str | None:
            if topo is None:
                return None
            return topo.switches[i % len(topo.switches)]

        cn_eps = [self.fabric.add_endpoint(f"cn{i}", _sw(i))
                  for i in range(spec.n_compute)]
        ac_eps = [self.fabric.add_endpoint(f"ac{j}", _sw(j))
                  for j in range(spec.n_accelerators)]
        arm_ep = self.fabric.add_endpoint("arm", _sw(0))

        # Global communicator: [compute..., daemons..., arm].
        self.comm = self.world.create_comm(cn_eps + ac_eps + [arm_ep],
                                           name="cluster")
        self.arm_rank_index = spec.n_compute + spec.n_accelerators

        # Nodes.
        self.compute_nodes: list[ComputeNode] = []
        for i, ep in enumerate(cn_eps):
            node = ComputeNode(self.engine, f"cn{i}", spec.compute, ep)
            node.rank = self.comm.rank(i)
            self.compute_nodes.append(node)

        # Partition map: shard 0 is the control shard (ARM, compute
        # nodes, session drivers); accelerator nodes spread over shards
        # 1..N-1, grouped by topology switch when there is one so that
        # same-switch accelerators co-locate and cross-shard traffic
        # always pays at least the fabric latency (the lookahead).
        n_shards = self.engine.n_shards if isinstance(self.engine,
                                                      ShardedEngine) else 1
        self.shard_of_accelerator: dict[int, int] = {}
        for j in range(spec.n_accelerators):
            if n_shards <= 1:
                self.shard_of_accelerator[j] = 0
            else:
                group = (j % len(topo.switches)) if topo is not None else j
                self.shard_of_accelerator[j] = 1 + group % (n_shards - 1)

        self.accelerator_nodes: list[AcceleratorNode] = []
        self.daemons: list[Daemon] = []
        for j, ep in enumerate(ac_eps):
            with self.engine.shard_scope(self.shard_of_accelerator[j]):
                node = AcceleratorNode(self.engine, j, f"ac{j}",
                                       spec.accelerator, ep)
                node.rank = self.comm.rank(spec.n_compute + j)
                node.rank.pinned_shard = self.shard_of_accelerator[j]
                self.accelerator_nodes.append(node)
                self.daemons.append(Daemon(node, node.rank))

        # The ARM service (topology-aware placement when multi-switch).
        roster = ([] if discovery else
                  [(node.ac_id, node.rank.index)
                   for node in self.accelerator_nodes])
        switches = {node.ac_id: node.endpoint.switch
                    for node in self.accelerator_nodes}
        self.arm = ResourceManager(self.comm.rank(self.arm_rank_index), roster,
                                   topology=topo, switches=switches)

        #: Discovery agents by ac id (empty in static-roster mode).
        self.agents: dict[int, "DiscoveryAgent"] = {}
        if discovery:
            from ..core.discovery import DiscoveryAgent
            n = spec.n_accelerators
            initial = n if initial_accelerators is None else initial_accelerators
            if not 0 <= initial <= n:
                raise ClusterConfigError(
                    f"initial_accelerators {initial} out of range 0..{n}")
            for j, daemon in enumerate(self.daemons):
                # Staggered phases: reports spread over one period instead
                # of the whole fleet publishing at the same instant.  Each
                # agent lives on its daemon's shard.
                with self.engine.shard_scope(self.shard_of_accelerator[j]):
                    self.agents[j] = DiscoveryAgent(
                        daemon, j, self.arm_rank_index,
                        period_s=report_period_s,
                        phase_s=(j * report_period_s) / max(n, 1))
            for j in range(initial):
                with self.engine.shard_scope(self.shard_of_accelerator[j]):
                    self.agents[j].start()

    # -- application-facing helpers --------------------------------------
    def compute_rank(self, cn_index: int):
        """The MPI rank handle of compute node ``cn_index``."""
        return self.compute_nodes[cn_index].rank

    def arm_client(self, cn_index: int,
                   retry: RetryPolicy | None = None) -> ArmClient:
        """A resource-management API client for one compute node."""
        return ArmClient(self.compute_rank(cn_index), self.arm_rank_index,
                         retry=retry)

    def remote(self, cn_index: int, handle: AcceleratorHandle,
               transfer: TransferConfig | None = None,
               retry: RetryPolicy | None = None) -> RemoteAccelerator:
        """A computation-API front-end for one assigned accelerator."""
        if transfer is None:
            return RemoteAccelerator(self.compute_rank(cn_index), handle,
                                     retry=retry)
        return RemoteAccelerator(self.compute_rank(cn_index), handle,
                                 transfer=transfer, retry=retry)

    def resilient(self, cn_index: int, handle: AcceleratorHandle,
                  config: FailoverConfig | None = None,
                  transfer: TransferConfig | None = None,
                  retry: RetryPolicy | None = None) -> ResilientAccelerator:
        """A failover-capable front-end for one assigned accelerator.

        Wraps :meth:`remote` with the robustness layer: per-request
        deadlines/retries from ``retry`` and ARM-mediated failover per
        ``config`` (see :class:`~repro.core.reliability.FailoverPolicy`).
        """
        return ResilientAccelerator(
            self.arm_client(cn_index, retry=retry),
            lambda h: self.remote(cn_index, h, transfer=transfer, retry=retry),
            handle, config=config)

    def tenant(self, cn_index: int, tenant_id: str,
               config: FailoverConfig | None = None,
               transfer: TransferConfig | None = None,
               retry: RetryPolicy | None = None, wait: bool = True,
               job: str | None = None):
        """Lease a virtual accelerator for ``tenant_id`` (generator).

        Runs the valloc + attach handshake against the ARM and the
        hosting daemon and returns a ready
        :class:`~repro.core.reliability.TenantAccelerator`.  The tenant
        must have been registered first
        (:meth:`~repro.core.arm.ArmClient.register_tenant`).
        """
        ac = yield from tenant_accelerator(
            self.arm_client(cn_index, retry=retry),
            lambda h: self.remote(cn_index, h, transfer=transfer, retry=retry),
            tenant_id, config=config, wait=wait, job=job)
        return ac

    def accelerator_for_handle(self, handle: AcceleratorHandle) -> AcceleratorNode:
        """The accelerator node behind a handle (for inspection in tests)."""
        node = self.accelerator_nodes[handle.ac_id]
        if node.rank.index != handle.daemon_rank:
            raise ClusterConfigError("stale accelerator handle")
        return node

    def session(self) -> SyncSession:
        """A synchronous driver over this cluster's engine."""
        return SyncSession(self.engine)

    def run(self, until: _t.Any = None):
        """Advance the simulation (see :meth:`repro.sim.Engine.run`)."""
        return self.engine.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cluster {self.spec.n_compute}CN + "
                f"{self.spec.n_accelerators}AC on {self.spec.network.name}>")


def build(spec: ClusterSpec, tracer: Tracer = NULL_TRACER) -> Cluster:
    """Convenience constructor."""
    return Cluster(spec, tracer)
