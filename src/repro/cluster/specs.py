"""Hardware specifications for nodes and whole clusters.

The presets model the paper's testbed (Sect. V): four nodes with two Intel
Xeon X5670 processors (2.93 GHz, 12 cores total) and 48 GiB RAM each, one
NVIDIA Tesla C1060 per node, QDR InfiniBand, Open MPI 1.4.3.  In the
dynamic-architecture emulation a node's local GPU is ignored and remote
"accelerator nodes" (CPU + RAM + NIC + GPU, the paper's Figure 2) are used
instead.
"""

from __future__ import annotations

import dataclasses

from ..errors import ClusterConfigError
from ..gpusim import GPUSpec, TESLA_C1060
from ..netsim import IB_QDR_MPI, LinkModel, TopologySpec
from ..units import GiB, USEC


@dataclasses.dataclass(frozen=True)
class CPUSpec:
    """Host-processor performance envelope.

    ``panel_gflops`` is the multicore rate for skinny LAPACK panel kernels
    (dgeqrf/dpotf2 panels are memory-bound and far below dgemm peak);
    ``request_handling_s`` is the per-request software cost of the
    accelerator daemon (message dispatch + CUDA driver call issue);
    ``memcpy_bw_Bps`` is the host-memory copy bandwidth used when GPUDirect
    is disabled and payloads must be staged into pinned buffers.
    """

    name: str
    cores: int
    ghz: float
    dgemm_gflops: float
    panel_gflops: float
    memcpy_bw_Bps: float
    request_handling_s: float
    malloc_s: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.ghz <= 0:
            raise ClusterConfigError("CPU cores and clock must be positive")
        if self.dgemm_gflops <= 0 or self.panel_gflops <= 0:
            raise ClusterConfigError("CPU flop rates must be positive")
        if self.memcpy_bw_Bps <= 0:
            raise ClusterConfigError("CPU memcpy bandwidth must be positive")
        if self.request_handling_s < 0 or self.malloc_s < 0:
            raise ClusterConfigError("CPU overheads cannot be negative")

    def flops_time(self, flops: float, rate_gflops: float | None = None) -> float:
        """Seconds for ``flops`` at the given rate (default: panel rate)."""
        rate = self.panel_gflops if rate_gflops is None else rate_gflops
        return flops / (rate * 1e9)


#: Dual-socket Xeon X5670 as in the paper's compute nodes.
XEON_X5670_DUAL = CPUSpec(
    name="2x Xeon X5670",
    cores=12,
    ghz=2.93,
    dgemm_gflops=110.0,
    panel_gflops=11.0,
    memcpy_bw_Bps=6.0e9,
    request_handling_s=1.3 * USEC,
    malloc_s=10.0 * USEC,
)

#: The energy-efficient CPU the paper proposes for accelerator nodes
#: (Sect. III-B1): only triggers NIC and GPU operations, so a weak core
#: with slightly higher per-request software cost suffices.
EFFICIENT_ACCEL_CPU = CPUSpec(
    name="low-power accel CPU",
    cores=2,
    ghz=1.6,
    dgemm_gflops=6.0,
    panel_gflops=1.5,
    memcpy_bw_Bps=4.0e9,
    request_handling_s=1.3 * USEC,
    malloc_s=12.0 * USEC,
)


@dataclasses.dataclass(frozen=True)
class ComputeNodeSpec:
    """One general-purpose compute node."""

    cpu: CPUSpec = XEON_X5670_DUAL
    ram_bytes: int = 48 * GiB
    local_gpu: GPUSpec | None = None  # set for the static-architecture baseline

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0:
            raise ClusterConfigError("RAM must be positive")


@dataclasses.dataclass(frozen=True)
class AcceleratorNodeSpec:
    """One network-attached accelerator node (Fig. 2: CPU+RAM+NIC+GPU)."""

    cpu: CPUSpec = XEON_X5670_DUAL  # the paper's emulation reuses Xeon nodes
    ram_bytes: int = 48 * GiB
    gpu: GPUSpec = TESLA_C1060

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0:
            raise ClusterConfigError("RAM must be positive")


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Topology + hardware of a whole simulated cluster.

    ``switch_oversubscription`` = 1.0 models a non-blocking crossbar (the
    paper's small testbed); larger values cap the switch core at
    ``ports * bandwidth / (2 * factor)`` — the regime where the paper's
    accelerator-to-node-ratio guidance starts to bind.
    """

    n_compute: int
    n_accelerators: int
    network: LinkModel = IB_QDR_MPI
    compute: ComputeNodeSpec = ComputeNodeSpec()
    accelerator: AcceleratorNodeSpec = AcceleratorNodeSpec()
    switch_oversubscription: float = 1.0
    #: None keeps the historical single non-blocking switch; a spec
    #: builds a multi-switch fabric (ring / torus) with nodes spread
    #: round-robin across switches (see ``Cluster``).
    topology: TopologySpec | None = None

    def __post_init__(self) -> None:
        if self.n_compute < 1:
            raise ClusterConfigError("need at least one compute node")
        if self.n_accelerators < 0:
            raise ClusterConfigError("negative accelerator count")
        if self.switch_oversubscription < 1.0:
            raise ClusterConfigError(
                f"oversubscription factor must be >= 1: "
                f"{self.switch_oversubscription!r}")

    def core_capacity_Bps(self) -> float | None:
        """Switch-core capacity, or None for a non-blocking crossbar."""
        if self.switch_oversubscription <= 1.0:
            return None
        ports = self.n_compute + self.n_accelerators + 1  # + ARM
        return ports * self.network.bandwidth_Bps / (
            2.0 * self.switch_oversubscription)


def paper_testbed(n_compute: int = 4, n_accelerators: int = 3,
                  local_gpus: bool = False,
                  network: LinkModel = IB_QDR_MPI) -> ClusterSpec:
    """The paper's 4-node testbed in dynamic-architecture emulation.

    One node acts as compute node with its local GPU ignored; the other
    nodes' GPUs serve as up to three network-attached accelerators.  Set
    ``local_gpus=True`` to give every compute node a node-attached C1060
    (the static-architecture baseline).
    """
    return ClusterSpec(
        n_compute=n_compute,
        n_accelerators=n_accelerators,
        network=network,
        compute=ComputeNodeSpec(local_gpu=TESLA_C1060 if local_gpus else None),
        accelerator=AcceleratorNodeSpec(),
    )
