"""Node objects: compute nodes and accelerator nodes.

A :class:`ComputeNode` is where application processes run; it may carry a
node-attached GPU for the static-architecture baseline.  An
:class:`AcceleratorNode` is the paper's network-attached accelerator
(Figure 2): an energy-efficient CPU, RAM, a NIC on the cluster fabric, and
a GPU — controlled by the middleware's back-end daemon.
"""

from __future__ import annotations

import typing as _t

from ..gpusim import GPUDevice
from ..netsim import Endpoint
from ..sim import Engine
from .specs import AcceleratorNodeSpec, ComputeNodeSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..mpisim import RankHandle


class ComputeNode:
    """A general-purpose node of the cluster."""

    def __init__(self, engine: Engine, name: str, spec: ComputeNodeSpec,
                 endpoint: Endpoint):
        self.engine = engine
        self.name = name
        self.spec = spec
        self.endpoint = endpoint
        #: Node-attached GPU (static baseline); None in the dynamic setup.
        self.local_gpu: GPUDevice | None = (
            GPUDevice(engine, spec.local_gpu, name=f"{name}.gpu")
            if spec.local_gpu is not None else None
        )
        #: MPI rank of the application process on this node (set by builder).
        self.rank: "RankHandle | None" = None

    @property
    def cpu(self):
        return self.spec.cpu

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ComputeNode {self.name}>"


class AcceleratorNode:
    """A network-attached accelerator: CPU + RAM + NIC + GPU."""

    def __init__(self, engine: Engine, ac_id: int, name: str,
                 spec: AcceleratorNodeSpec, endpoint: Endpoint):
        self.engine = engine
        self.ac_id = ac_id
        self.name = name
        self.spec = spec
        self.endpoint = endpoint
        self.gpu = GPUDevice(engine, spec.gpu, name=f"{name}.gpu")
        #: MPI rank of the daemon on this node (set by builder).
        self.rank: "RankHandle | None" = None

    @property
    def cpu(self):
        return self.spec.cpu

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AcceleratorNode {self.name} (ac{self.ac_id})>"
