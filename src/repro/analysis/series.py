"""Result containers for the experiment harness.

Each paper figure is regenerated as a :class:`FigureResult`: a set of named
series over a common x-axis, with enough metadata to print the same
rows/curves the paper plots and to record paper-vs-measured comparisons in
EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass
class Series:
    """One labeled curve."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values but "
                f"{len(self.y)} y values")

    def at(self, x: float) -> float:
        """The y value at an exact x (raises if absent)."""
        try:
            return self.y[self.x.index(x)]
        except ValueError:
            raise KeyError(f"series {self.label!r} has no point at x={x}") from None

    def peak(self) -> float:
        return max(self.y)

    def __len__(self) -> int:
        return len(self.x)


@dataclasses.dataclass
class FigureResult:
    """A regenerated figure: several series plus axis metadata."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = dataclasses.field(default_factory=list)
    notes: str = ""

    def add(self, label: str, x: _t.Sequence[float], y: _t.Sequence[float]) -> Series:
        s = Series(label, list(x), list(y))
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"{self.fig_id} has no series {label!r}; "
            f"available: {[s.label for s in self.series]}")

    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def to_dict(self) -> dict:
        """JSON-serializable form (for EXPERIMENTS.md bookkeeping)."""
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "notes": self.notes,
            "series": [
                {"label": s.label, "x": s.x, "y": s.y} for s in self.series
            ],
        }

    def render(self, fmt: str = "{:>10.1f}") -> str:
        """ASCII table: one row per x value, one column per series."""
        from .tables import render_figure
        return render_figure(self, fmt)
