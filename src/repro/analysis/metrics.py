"""Cluster-wide metric collection and reporting.

Aggregates the counters every component keeps (GPU busy time, DMA traffic,
daemon request/byte/staging statistics, fabric volume, ARM assignment
time) into one :class:`ClusterReport` — the observability a site operator
of the dynamic architecture would want, and the data source for the
utilization arguments in the paper's Sect. III.

:func:`collect` builds the report from a
:class:`~repro.obs.MetricsRegistry` snapshot
(:func:`~repro.obs.instrument_cluster`) rather than scraping component
fields directly, so everything the report says is also available to
external consumers through the registry — including the request-latency
percentiles distilled from trace spans when tracing was on.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..obs.metrics import MetricsRegistry, instrument_cluster, latency_summary
from ..units import fmt_size, fmt_time, mib_per_s

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster


@dataclasses.dataclass
class AcceleratorMetrics:
    """Per-accelerator utilization and traffic."""

    ac_id: int
    name: str
    state: str
    assigned_seconds: float
    gpu_busy_seconds: float
    kernels_launched: int
    dma_bytes: int
    daemon_requests: int
    bytes_h2d: int
    bytes_d2h: int
    staging_peak: int

    def gpu_utilization(self, elapsed: float) -> float:
        return self.gpu_busy_seconds / elapsed if elapsed > 0 else 0.0

    def assignment_fraction(self, elapsed: float) -> float:
        return self.assigned_seconds / elapsed if elapsed > 0 else 0.0


@dataclasses.dataclass
class ClusterReport:
    """Snapshot of a cluster's cumulative activity."""

    elapsed: float
    accelerators: list[AcceleratorMetrics]
    fabric_bytes: int
    fabric_messages: int
    pool_utilization: float
    #: The registry the report was built from; carries everything above
    #: plus request-latency histograms when tracing was on.
    registry: MetricsRegistry | None = None

    @property
    def total_offload_bytes(self) -> int:
        return sum(a.bytes_h2d + a.bytes_d2h for a in self.accelerators)

    @property
    def mean_gpu_utilization(self) -> float:
        if not self.accelerators or self.elapsed <= 0:
            return 0.0
        return sum(a.gpu_busy_seconds for a in self.accelerators) / (
            self.elapsed * len(self.accelerators))

    def fabric_mean_bandwidth(self) -> float:
        """Average offered load on the fabric (bytes/s)."""
        return self.fabric_bytes / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            f"cluster report @ t={fmt_time(self.elapsed)}",
            f"  fabric: {fmt_size(self.fabric_bytes)} in "
            f"{self.fabric_messages} messages "
            f"({mib_per_s(self.fabric_mean_bandwidth()):.1f} MiB/s mean load)",
            f"  accelerator pool: {self.pool_utilization * 100:.1f}% assigned, "
            f"{self.mean_gpu_utilization * 100:.1f}% GPU-busy",
        ]
        for a in self.accelerators:
            lines.append(
                f"  {a.name} [{a.state}]: "
                f"assigned {a.assignment_fraction(self.elapsed) * 100:.0f}%, "
                f"busy {a.gpu_utilization(self.elapsed) * 100:.0f}%, "
                f"{a.kernels_launched} kernels, "
                f"h2d {fmt_size(a.bytes_h2d)}, d2h {fmt_size(a.bytes_d2h)}, "
                f"staging peak {fmt_size(a.staging_peak)}")
        for op, summary in self.latency_percentiles().items():
            lines.append(
                f"  latency {op}: n={summary['count']:.0f} "
                f"p50={fmt_time(summary['p50'])} "
                f"p95={fmt_time(summary['p95'])} "
                f"p99={fmt_time(summary['p99'])}")
        return "\n".join(lines)

    def latency_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-op request-latency summaries (empty without tracing)."""
        if self.registry is None:
            return {}
        return latency_summary(self.registry)


def collect(cluster: "Cluster",
            registry: MetricsRegistry | None = None) -> ClusterReport:
    """Build a :class:`ClusterReport` from a cluster's current state.

    The numbers come out of a :class:`~repro.obs.MetricsRegistry`
    populated by :func:`~repro.obs.instrument_cluster` (pass ``registry``
    to reuse an existing snapshot), not from the components directly —
    the registry is the single source the report, the CLI, and the tests
    all read.
    """
    if registry is None:
        registry = instrument_cluster(cluster)
    elapsed = cluster.engine.now
    snap = cluster.arm.snapshot()
    accelerators = []
    for node in cluster.accelerator_nodes:
        ac = f"ac{node.ac_id}"
        info = snap.get(node.ac_id, {})
        accelerators.append(AcceleratorMetrics(
            ac_id=node.ac_id,
            name=node.name,
            state=info.get("state", "unknown"),
            assigned_seconds=registry.value("arm.assigned_seconds", ac=ac),
            gpu_busy_seconds=registry.value("gpu.busy_seconds", ac=ac),
            kernels_launched=int(registry.value("gpu.kernels", ac=ac)),
            dma_bytes=int(registry.value("dma.bytes", ac=ac)),
            daemon_requests=int(registry.value("daemon.requests", ac=ac)),
            bytes_h2d=int(registry.value("bytes.h2d", ac=ac)),
            bytes_d2h=int(registry.value("bytes.d2h", ac=ac)),
            staging_peak=int(registry.gauge("staging.bytes", ac=ac).peak),
        ))
    return ClusterReport(
        elapsed=elapsed,
        accelerators=accelerators,
        fabric_bytes=int(registry.value("fabric.bytes")),
        fabric_messages=int(registry.value("fabric.messages")),
        pool_utilization=registry.value("pool.utilization"),
        registry=registry,
    )
