"""Cluster-wide metric collection and reporting.

Aggregates the counters every component keeps (GPU busy time, DMA traffic,
daemon request/byte/staging statistics, fabric volume, ARM assignment
time) into one :class:`ClusterReport` — the observability a site operator
of the dynamic architecture would want, and the data source for the
utilization arguments in the paper's Sect. III.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..units import fmt_size, fmt_time, mib_per_s

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster


@dataclasses.dataclass
class AcceleratorMetrics:
    """Per-accelerator utilization and traffic."""

    ac_id: int
    name: str
    state: str
    assigned_seconds: float
    gpu_busy_seconds: float
    kernels_launched: int
    dma_bytes: int
    daemon_requests: int
    bytes_h2d: int
    bytes_d2h: int
    staging_peak: int

    def gpu_utilization(self, elapsed: float) -> float:
        return self.gpu_busy_seconds / elapsed if elapsed > 0 else 0.0

    def assignment_fraction(self, elapsed: float) -> float:
        return self.assigned_seconds / elapsed if elapsed > 0 else 0.0


@dataclasses.dataclass
class ClusterReport:
    """Snapshot of a cluster's cumulative activity."""

    elapsed: float
    accelerators: list[AcceleratorMetrics]
    fabric_bytes: int
    fabric_messages: int
    pool_utilization: float

    @property
    def total_offload_bytes(self) -> int:
        return sum(a.bytes_h2d + a.bytes_d2h for a in self.accelerators)

    @property
    def mean_gpu_utilization(self) -> float:
        if not self.accelerators or self.elapsed <= 0:
            return 0.0
        return sum(a.gpu_busy_seconds for a in self.accelerators) / (
            self.elapsed * len(self.accelerators))

    def fabric_mean_bandwidth(self) -> float:
        """Average offered load on the fabric (bytes/s)."""
        return self.fabric_bytes / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            f"cluster report @ t={fmt_time(self.elapsed)}",
            f"  fabric: {fmt_size(self.fabric_bytes)} in "
            f"{self.fabric_messages} messages "
            f"({mib_per_s(self.fabric_mean_bandwidth()):.1f} MiB/s mean load)",
            f"  accelerator pool: {self.pool_utilization * 100:.1f}% assigned, "
            f"{self.mean_gpu_utilization * 100:.1f}% GPU-busy",
        ]
        for a in self.accelerators:
            lines.append(
                f"  {a.name} [{a.state}]: "
                f"assigned {a.assignment_fraction(self.elapsed) * 100:.0f}%, "
                f"busy {a.gpu_utilization(self.elapsed) * 100:.0f}%, "
                f"{a.kernels_launched} kernels, "
                f"h2d {fmt_size(a.bytes_h2d)}, d2h {fmt_size(a.bytes_d2h)}, "
                f"staging peak {fmt_size(a.staging_peak)}")
        return "\n".join(lines)


def collect(cluster: "Cluster") -> ClusterReport:
    """Build a :class:`ClusterReport` from a cluster's current state."""
    elapsed = cluster.engine.now
    snap = cluster.arm.snapshot()
    accelerators = []
    for node, daemon in zip(cluster.accelerator_nodes, cluster.daemons):
        info = snap.get(node.ac_id, {})
        accelerators.append(AcceleratorMetrics(
            ac_id=node.ac_id,
            name=node.name,
            state=info.get("state", "unknown"),
            assigned_seconds=info.get("assigned_seconds", 0.0),
            gpu_busy_seconds=node.gpu.busy_time,
            kernels_launched=node.gpu.kernels_launched,
            dma_bytes=node.gpu.dma.bytes_copied,
            daemon_requests=daemon.stats.requests,
            bytes_h2d=daemon.stats.bytes_h2d,
            bytes_d2h=daemon.stats.bytes_d2h,
            staging_peak=daemon.stats.staging_peak,
        ))
    return ClusterReport(
        elapsed=elapsed,
        accelerators=accelerators,
        fabric_bytes=cluster.fabric.bytes_moved,
        fabric_messages=cluster.fabric.messages_sent,
        pool_utilization=cluster.arm.utilization(),
    )
