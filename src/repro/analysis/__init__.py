"""Analysis and experiment harness: figure series, tables, per-figure drivers."""

from .series import FigureResult, Series
from .tables import render_figure

__all__ = ["FigureResult", "Series", "render_figure"]
