"""ASCII rendering of figure results.

The benchmark harness prints these tables; they contain the same series the
paper's figures plot, one row per x value.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from .series import FigureResult


def _fmt_x(x: float) -> str:
    if float(x).is_integer():
        return f"{int(x)}"
    return f"{x:g}"


def render_figure(fig: "FigureResult", fmt: str = "{:>10.1f}") -> str:
    """Render a FigureResult as a fixed-width ASCII table."""
    xs: list[float] = []
    for s in fig.series:
        for x in s.x:
            if x not in xs:
                xs.append(x)
    xs.sort()

    x_width = max(len(fig.xlabel), max((len(_fmt_x(x)) for x in xs), default=1)) + 2
    col_width = max(12, max((len(s.label) for s in fig.series), default=8) + 2)

    lines = [f"{fig.fig_id}: {fig.title}", f"[{fig.ylabel}]"]
    header = fig.xlabel.rjust(x_width) + "".join(
        s.label.rjust(col_width) for s in fig.series)
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        row = _fmt_x(x).rjust(x_width)
        for s in fig.series:
            try:
                cell = fmt.format(s.at(x)).rjust(col_width)
            except KeyError:
                cell = "-".rjust(col_width)
            row += cell
        lines.append(row)
    if fig.notes:
        lines.append(f"note: {fig.notes}")
    return "\n".join(lines)
