"""Extension A: the MPI protocol vs rCUDA-style TCP remoting.

Related work (Sect. II) notes that rCUDA v3.2 / MGP run over TCP/IP,
"which may introduce higher overhead in comparison to our MPI-based
solution".  This study quantifies the claim: the same middleware carried
over TCP/IPoIB without GPUDirect (the socket-stack deployment) against
the paper's MPI/InfiniBand configuration.
"""

from __future__ import annotations

from ...baselines import RCUDA_TRANSFER, mpi_cluster, rcuda_like_cluster
from ...core.blocksize import AdaptiveBlockPolicy, TransferConfig
from ...units import KiB
from ...workloads.bandwidth import sweep
from ..series import FigureResult
from .common import quick_or_full_sizes


def _measure(cluster, transfer, sizes, direction="h2d"):
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    ac = cluster.remote(0, handles[0], transfer=transfer)
    points = sess.call(sweep(cluster.engine, ac, sizes, direction=direction))
    return [p.mib_per_s for p in points]


def run(quick: bool = False) -> FigureResult:
    sizes = quick_or_full_sizes(quick)
    xs = [n / KiB for n in sizes]
    fig = FigureResult(
        fig_id="ext-tcp",
        title="H2D bandwidth: MPI/InfiniBand middleware vs TCP remoting",
        xlabel="KiB", ylabel="Bandwidth [MiB/s]",
        notes="rCUDA-style: TCP/IPoIB transport, no GPUDirect",
    )
    fig.add("mpi-infiniband", xs,
            _measure(mpi_cluster(), TransferConfig(policy=AdaptiveBlockPolicy()),
                     sizes))
    fig.add("tcp-rcuda-style", xs,
            _measure(rcuda_like_cluster(), RCUDA_TRANSFER, sizes))
    return fig


def check(fig: FigureResult) -> None:
    mpi = fig.get("mpi-infiniband")
    tcp = fig.get("tcp-rcuda-style")
    # MPI wins at every size.
    for x in mpi.x:
        assert mpi.at(x) > tcp.at(x), (x, mpi.at(x), tcp.at(x))
    # At 64 MiB the gap is at least the transport-bandwidth ratio (~2.3x).
    big = 65536.0
    assert mpi.at(big) / tcp.at(big) > 2.0
    # Small messages suffer even more from TCP latency.
    small = min(mpi.x)
    assert mpi.at(small) / tcp.at(small) > 3.0
