"""One driver per paper figure (fig05 ... fig11) plus extension studies.

Every module exposes ``run(quick=False) -> FigureResult`` regenerating the
corresponding figure's series, and a ``check(result)`` helper asserting the
qualitative shape the paper reports (who wins, crossovers, ratios).
"""

from . import (
    ext_async,
    ext_batch,
    ext_blocksize,
    ext_contention,
    ext_faults,
    ext_gpudirect,
    ext_lookahead,
    ext_tcp,
    ext_utilization,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
)

__all__ = [
    "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "ext_tcp", "ext_blocksize", "ext_utilization", "ext_contention",
    "ext_faults", "ext_gpudirect", "ext_lookahead", "ext_batch",
    "ext_async",
]
