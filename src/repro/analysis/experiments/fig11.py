"""Figure 11: MP2C wall time, node-attached vs network-attached GPUs.

The paper runs the hybrid MPI/CUDA MP2C code with two processes on
separate nodes — each using its local GPU ("CUDA local") or its own
dedicated remote GPU ("Dynamic cluster architecture") — for 5.12 M,
7.29 M, and 10 M particles (10 per collision cell, SRD every 5th of 300
steps).  Finding: the dynamic architecture prolongs execution by **at
most 4 %**.
"""

from __future__ import annotations

import typing as _t

from ...baselines import LocalAccelerator
from ...cluster import Cluster, paper_testbed
from ...workloads.mp2c import MP2CConfig, run_mp2c
from ..series import FigureResult

PAPER_COUNTS = [5_120_000, 7_290_000, 10_000_000]
QUICK_COUNTS = [512_000, 1_000_000]
N_RANKS = 2


def _run(cfg: MP2CConfig, local: bool) -> float:
    """One timed MP2C run; returns virtual seconds."""
    if local:
        cluster = Cluster(paper_testbed(n_compute=N_RANKS, n_accelerators=0,
                                        local_gpus=True))
        sess = cluster.session()
        acs = [LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
               for node in cluster.compute_nodes]
    else:
        cluster = Cluster(paper_testbed(n_compute=N_RANKS,
                                        n_accelerators=N_RANKS))
        sess = cluster.session()
        acs = []
        for i in range(N_RANKS):
            handles = sess.call(cluster.arm_client(i).alloc(count=1))
            acs.append(cluster.remote(i, handles[0]))
    ranks = [cluster.compute_rank(i) for i in range(N_RANKS)]
    res = sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                             ranks, acs, cfg))
    return res.seconds


def run(quick: bool = False,
        counts: _t.Sequence[int] | None = None,
        steps: int | None = None) -> FigureResult:
    if counts is None:
        counts = QUICK_COUNTS if quick else PAPER_COUNTS
    if steps is None:
        steps = 100 if quick else 300
    fig = FigureResult(
        fig_id="fig11",
        title="MP2C wall time: CUDA local vs dynamic cluster architecture",
        xlabel="particles", ylabel="Time [min]",
        notes=f"{N_RANKS} ranks, SRD every 5th of {steps} steps, "
              "timing-only mode",
    )
    local_y, dyn_y = [], []
    for n in counts:
        cfg = MP2CConfig(n_particles=n, steps=steps)
        local_y.append(_run(cfg, local=True) / 60.0)
        dyn_y.append(_run(cfg, local=False) / 60.0)
    fig.add("cuda-local", list(counts), local_y)
    fig.add("dynamic-architecture", list(counts), dyn_y)
    return fig


def check(fig: FigureResult) -> None:
    local = fig.get("cuda-local")
    dyn = fig.get("dynamic-architecture")
    for x in local.x:
        slowdown = dyn.at(x) / local.at(x) - 1.0
        # The dynamic architecture costs something, but at most ~4%.
        assert slowdown > 0.0, (x, slowdown)
        assert slowdown <= 0.04 + 1e-9, (x, slowdown)
    # Runtime grows with the particle count.
    assert local.y == sorted(local.y)
    assert dyn.y == sorted(dyn.y)
    # Full-scale runs land in the paper's 10-25 minute range.
    if max(local.x) >= 10_000_000:
        assert 15 <= local.at(10_000_000) <= 30, local.at(10_000_000)
        assert 8 <= local.at(5_120_000) <= 16, local.at(5_120_000)
