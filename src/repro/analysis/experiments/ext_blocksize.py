"""Extension B: pipeline block-size ablation.

Sweeps the pipeline block size over a wide range at several message sizes
and verifies the design rule behind the paper's tuned adaptive policy:
the optimal block size grows with the message size (small blocks fill the
pipeline faster; large blocks amortize per-block posting costs), and the
shipped adaptive policy stays within a few percent of the per-size
optimum.
"""

from __future__ import annotations

from ...core.blocksize import AdaptiveBlockPolicy, TransferConfig, pipeline
from ...units import KiB, MiB
from ..series import FigureResult
from .common import measure_protocol

BLOCKS = [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
          1024 * KiB, 2048 * KiB]
MESSAGES = [MiB, 8 * MiB, 64 * MiB]
QUICK_MESSAGES = [MiB, 64 * MiB]


def run(quick: bool = False) -> FigureResult:
    messages = QUICK_MESSAGES if quick else MESSAGES
    fig = FigureResult(
        fig_id="ext-blocksize",
        title="H2D pipeline block-size ablation",
        xlabel="block KiB", ylabel="Bandwidth [MiB/s]",
        notes="one curve per message size; adaptive policy as reference",
    )
    xs = [b / KiB for b in BLOCKS]
    for msg in messages:
        ys = []
        for b in BLOCKS:
            ys.append(measure_protocol("h2d", pipeline(b), [msg])[0])
        fig.add(f"msg-{msg // MiB}MiB", xs, ys)
        adaptive = measure_protocol(
            "h2d", TransferConfig(policy=AdaptiveBlockPolicy()), [msg])[0]
        fig.add(f"adaptive@{msg // MiB}MiB", [xs[0]], [adaptive])
    return fig


def check(fig: FigureResult) -> None:
    from ...units import KiB as _K

    def best_block(label):
        s = fig.get(label)
        return s.x[s.y.index(max(s.y))]

    labels = [l for l in fig.labels() if l.startswith("msg-")]
    bests = [best_block(l) for l in labels]
    # The optimum never shrinks as messages grow.
    assert bests == sorted(bests), bests
    # Small messages prefer small blocks; huge messages prefer large ones.
    assert bests[0] <= 128.0
    assert bests[-1] >= 256.0
    # The adaptive policy is near the optimum everywhere.
    for label in labels:
        msg = label.split("-")[1]
        adaptive = fig.get(f"adaptive@{msg}").y[0]
        best = max(fig.get(label).y)
        assert adaptive >= 0.95 * best, (label, adaptive, best)
