"""Figure 6: device-to-host bandwidth of the copy protocols.

Paper findings the shape check asserts:

* pipelines beat naive for large messages;
* unlike H2D, a single block size (128 KiB) is best at all sizes — the
  front-end pre-posts its receives, so small blocks carry no per-block
  posting penalty on the critical path;
* typical sizes approach the MPI PingPong bound.
"""

from __future__ import annotations

from ..series import FigureResult
from .common import bandwidth_figure


def run(quick: bool = False) -> FigureResult:
    """Regenerate Figure 6."""
    return bandwidth_figure(
        "fig06", "Device-to-host bandwidth, pipeline protocol + GPUDirect",
        direction="d2h", quick=quick)


def check(fig: FigureResult) -> None:
    """Assert the qualitative shape of Figure 6."""
    big = 65536.0
    naive = fig.get("dyn-naive")
    p64 = fig.get("dyn-pipeline-64K")
    p128 = fig.get("dyn-pipeline-128K")
    p512 = fig.get("dyn-pipeline-512K")
    mpi = fig.get("mpi-pingpong")

    # Pipelines beat naive for large messages; MPI bounds everything.
    for s in (p64, p128, p512):
        assert s.at(big) > naive.at(big) * 1.2
        assert s.at(big) <= mpi.at(big) * 1.001

    # 128K is at least as good as larger blocks at every size (the paper's
    # D2H finding), and close to the MPI bound at the top end.
    for x in p128.x:
        assert p128.at(x) >= p512.at(x) * 0.999, (x, p128.at(x), p512.at(x))
    assert p128.at(big) > 0.9 * mpi.at(big)
