"""Extension I: asynchronous command streams and RPC batching.

Every control operation on a network-attached GPU — allocation, kernel
creation, launch — costs a full request round trip through the daemon.
The stream API queues those ops, coalesces consecutive ones into a single
``BATCH`` frame, and resolves the results through futures, so the QR
driver's control sequence crosses the network in a handful of frames
instead of one RPC per op.

This study runs the *same* QR factorization (same seed, real numerics)
through the synchronous API and through streams, on 1-3 network-attached
GPUs, and reports:

* control round trips (daemon requests minus bulk-data transfers) for
  each path — the batching win;
* total requests and virtual wall time — batching must not slow the
  factorization down;
* a bit-identity check of the resulting R factors — batching must not
  change the numerics.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ...cluster import Cluster, paper_testbed
from ...workloads.linalg import qr_factorize
from ..series import FigureResult

SIZES = [512, 768, 1024]
QUICK_SIZES = [512]
NB = 128
SEED = 20120910  # the paper's publication date; any fixed seed works


def _run_qr(n: int, g: int, streams: bool):
    """One factorization on a fresh cluster; returns (R, stats)."""
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=g))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=g))
    acs = [cluster.remote(0, h) for h in handles]
    A = np.random.default_rng(SEED).standard_normal((n, n))
    res = sess.call(qr_factorize(cluster.engine, cluster.compute_nodes[0].cpu,
                                 acs, n, NB, A=A, streams=streams))
    control = sum(d.stats.control_requests for d in cluster.daemons)
    total = sum(d.stats.requests for d in cluster.daemons)
    return res.R, {"control": control, "total": total,
                   "seconds": res.seconds}


def run(quick: bool = False) -> FigureResult:
    sizes = QUICK_SIZES if quick else SIZES
    fig = FigureResult(
        fig_id="ext-async",
        title="QR control round trips: synchronous API vs command streams",
        xlabel="N", ylabel="requests",
        notes=f"1 compute node, nb={NB}, real numerics, seed={SEED}; "
              "control = daemon requests minus bulk H2D/D2H/peer copies",
    )
    for g in (1, 2, 3):
        sync_ctrl, stream_ctrl = [], []
        sync_total, stream_total = [], []
        sync_s, stream_s = [], []
        identical = []
        for n in sizes:
            r_sync, s_sync = _run_qr(n, g, streams=False)
            r_stream, s_stream = _run_qr(n, g, streams=True)
            sync_ctrl.append(s_sync["control"])
            stream_ctrl.append(s_stream["control"])
            sync_total.append(s_sync["total"])
            stream_total.append(s_stream["total"])
            sync_s.append(s_sync["seconds"])
            stream_s.append(s_stream["seconds"])
            identical.append(1.0 if (r_sync == r_stream).all() else 0.0)
        xs = list(sizes)
        fig.add(f"{g}gpu-sync-control", xs, sync_ctrl)
        fig.add(f"{g}gpu-stream-control", xs, stream_ctrl)
        fig.add(f"{g}gpu-sync-total", xs, sync_total)
        fig.add(f"{g}gpu-stream-total", xs, stream_total)
        fig.add(f"{g}gpu-sync-seconds", xs, sync_s)
        fig.add(f"{g}gpu-stream-seconds", xs, stream_s)
        fig.add(f"{g}gpu-bit-identical", xs, identical)
    return fig


def check(fig: FigureResult) -> None:
    for g in (1, 2, 3):
        sync_c = fig.get(f"{g}gpu-sync-control")
        stream_c = fig.get(f"{g}gpu-stream-control")
        for x in sync_c.x:
            # The headline claim: batching at least halves the control
            # round trips of the QR driver...
            assert stream_c.at(x) * 2 <= sync_c.at(x), (g, x)
            # ...without changing a single bit of the result...
            assert fig.get(f"{g}gpu-bit-identical").at(x) == 1.0, (g, x)
            # ...or moving any extra data.
            assert (fig.get(f"{g}gpu-stream-total").at(x)
                    < fig.get(f"{g}gpu-sync-total").at(x)), (g, x)
            # Fewer round trips must not make the run slower.
            assert (fig.get(f"{g}gpu-stream-seconds").at(x)
                    <= fig.get(f"{g}gpu-sync-seconds").at(x) * 1.001), (g, x)
