"""Extension H: end-to-end batch execution on the live dynamic cluster.

Where Ext-C compares scheduling *policies* on an abstract model, this
study runs a real mixed workload — multi-GPU QR factorizations, bandwidth
sweeps, and GPU-burn jobs with different accelerator demands — through
:class:`~repro.core.batch.BatchRunner` on a fully simulated cluster
(Sect. V-B's batch-script flow), and reports what the operator would see:
job waits, makespan, and the ARM's measured pool utilization, cross-checked
against per-device counters from :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

import typing as _t

from ...cluster import Cluster, paper_testbed
from ...core import BatchJobSpec, BatchRunner
from ...mpisim import Phantom
from ...units import MiB
from ...workloads.linalg import qr_factorize
from ..metrics import collect
from ..series import FigureResult


def _qr_job(n: int, n_gpus: int):
    def body(ctx):
        res = yield from qr_factorize(ctx.engine, ctx.cpu,
                                      ctx.accelerators, n, nb=128)
        return res.gflops

    return BatchJobSpec(f"qr{n}x{n_gpus}g", body, n_accelerators=n_gpus)


def _burn_job(name: str, items: int, n_gpus: int, arrival: float = 0.0):
    def body(ctx):
        ptrs = []
        for ac in ctx.accelerators:
            ptrs.append((yield from ac.mem_alloc(8 * MiB)))
        for _ in range(items):
            for ac, p in zip(ctx.accelerators, ptrs):
                yield from ac.memcpy_h2d(p, Phantom(8 * MiB))
                yield from ac.kernel_run(
                    "dgemm", {"A": 0, "B": 0, "C": 0,
                              "m": 1024, "n": 1024, "k": 1024}, real=False)
        for ac, p in zip(ctx.accelerators, ptrs):
            yield from ac.mem_free(p)
        return items

    return BatchJobSpec(name, body, n_accelerators=n_gpus,
                        arrival_s=arrival)


def _cpu_job(name: str, seconds: float):
    def body(ctx):
        yield ctx.engine.timeout(seconds)
        return seconds

    return BatchJobSpec(name, body, n_accelerators=0)


def run(quick: bool = False) -> FigureResult:
    cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=3))
    runner = BatchRunner(cluster)
    qr_n = 1024 if quick else 2048
    jobs = [
        _qr_job(qr_n, 3),
        _burn_job("burn-1g", 4 if quick else 20, 1),
        _cpu_job("cpu-only", 0.2),
        _burn_job("burn-2g", 4 if quick else 15, 2, arrival=0.01),
        _qr_job(qr_n // 2, 1),
    ]
    records = runner.run_all(jobs)
    report = collect(cluster)

    fig = FigureResult(
        fig_id="ext-batch",
        title="Mixed batch workload on the live dynamic cluster",
        xlabel="job", ylabel="seconds",
        notes="2 compute nodes + 3 pooled accelerators; FIFO nodes, "
              "FIFO ARM queue",
    )
    xs = list(range(len(records)))
    fig.add("wait", xs, [r.wait_s for r in records])
    fig.add("runtime", xs, [r.end_s - r.start_s for r in records])
    fig.add("ok", xs, [1.0 if r.ok else 0.0 for r in records])
    fig.notes += ("; jobs=" + ",".join(r.spec.name for r in records)
                  + f"; pool_utilization={report.pool_utilization:.3f}"
                  + f"; offload_bytes={report.total_offload_bytes}")
    # Carry the aggregates as a tiny series for the check.
    fig.add("aggregates", [0, 1, 2],
            [report.pool_utilization,
             report.mean_gpu_utilization,
             float(report.total_offload_bytes)])
    return fig


def check(fig: FigureResult) -> None:
    assert all(v == 1.0 for v in fig.get("ok").y), "a batch job failed"
    pool_util, gpu_util, offload = fig.get("aggregates").y
    # The pool did real, measurable work.
    assert 0.05 < pool_util <= 1.0, pool_util
    assert 0.0 < gpu_util <= 1.0, gpu_util
    assert offload > 100 * MiB
    # Competition for the 3-GPU pool forced someone to queue.
    assert max(fig.get("wait").y) > 0.0
