"""Extension C: cluster utilization — static vs dynamic assignment.

The economics behind the paper (Sect. I/III): a mixed workload in which
jobs want 0-3 GPUs per node is run through a FIFO batch scheduler on

* a **static** cluster (one GPU hard-wired per node, so a 3-GPU job must
  occupy 3 nodes and CPU-only jobs park their GPU idle), and
* a **dynamic** cluster (same node count, same number of GPUs, but pooled
  and network-attached per Fig. 3b).

Reported: makespan, mean job wait, and GPU utilization for both policies.
"""

from __future__ import annotations

import random
import typing as _t

from ...cluster.scheduler import JobSpec, run_job_mix
from ..series import FigureResult

N_NODES = 4
N_GPUS = 4


def make_job_mix(n_jobs: int = 40, seed: int = 2012) -> list[JobSpec]:
    """A varied single-node job mix (the paper's motivating workload).

    Mix: ~25% CPU-only, the rest wanting 1-3 GPUs on one node; bursty
    arrivals; minute-scale durations.
    """
    rng = random.Random(seed)
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        t += rng.expovariate(1 / 30.0)
        gpus = rng.choice([0, 0, 1, 1, 2, 2, 3, 3])
        duration = rng.uniform(60.0, 600.0)
        jobs.append(JobSpec(name=f"job{i}", arrival_s=t,
                            duration_s=duration, n_nodes=1, n_gpus=gpus))
    return jobs


def run(quick: bool = False, n_jobs: int | None = None,
        seed: int = 2012) -> FigureResult:
    jobs = make_job_mix(n_jobs or (15 if quick else 40), seed=seed)
    static = run_job_mix(jobs, N_NODES, N_GPUS, "static", gpus_per_node=1)
    dynamic = run_job_mix(jobs, N_NODES, N_GPUS, "dynamic")
    fig = FigureResult(
        fig_id="ext-utilization",
        title="Job-mix scheduling: static vs dynamic accelerator cluster",
        xlabel="metric", ylabel="value",
        notes=f"{len(jobs)} single-node jobs wanting 0-3 GPUs, FIFO, "
              f"{N_NODES} nodes / {N_GPUS} GPUs",
    )
    metrics = ["makespan_min", "mean_wait_min", "gpu_util_pct", "node_util_pct"]
    xs = list(range(len(metrics)))
    fig.add("metric-names", xs, xs)  # axis legend carried in notes
    fig.notes += f"; metrics={metrics}"
    for res in (static, dynamic):
        fig.add(res.policy, xs, [
            res.makespan / 60.0,
            res.mean_wait / 60.0,
            res.gpu_utilization() * 100.0,
            res.node_utilization() * 100.0,
        ])
    return fig


def check(fig: FigureResult) -> None:
    static = fig.get("static")
    dynamic = fig.get("dynamic")
    makespan_s, wait_s, gpu_s, _ = static.y
    makespan_d, wait_d, gpu_d, _ = dynamic.y
    # The dynamic pool finishes the mix no later and with shorter queues.
    assert makespan_d <= makespan_s * 1.0001, (makespan_d, makespan_s)
    assert wait_d <= wait_s * 1.0001, (wait_d, wait_s)
    # And it keeps its GPUs busier.
    assert gpu_d >= gpu_s, (gpu_d, gpu_s)
