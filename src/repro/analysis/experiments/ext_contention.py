"""Extension D: fabric contention vs the accelerator-to-node ratio.

Sect. III warns that "host-device traffic and traffic between compute
nodes share the same network bandwidth" and recommends keeping the number
of accelerators smaller than the number of compute nodes.  This study
measures the MPI bandwidth available to an application (PingPong between
two compute nodes) while 0..3 other compute nodes simultaneously stream
to their remote GPUs — the degradation grows with the number of active
accelerator streams through the shared switch.
"""

from __future__ import annotations

from ...cluster import Cluster, paper_testbed
from ...mpisim import Phantom
from ...units import MiB, mib_per_s
from ..series import FigureResult

_TAG = 321


def _pingpong_under_load(n_streams: int, msg_bytes: int = 4 * MiB,
                         rounds: int = 8,
                         oversubscription: float = 1.0) -> float:
    """App-visible PingPong bandwidth (MiB/s) with n_streams GPU streams.

    Topology: cn0<->cn1 run the app PingPong; cn2..cn(1+n) each stream
    continuously to their own accelerator.  The streams share only the
    switch, not the app's endpoints — contention appears once flows to
    and from the accelerator pool squeeze the fabric's per-port shares of
    the accelerator endpoints... and, crucially for the paper's argument,
    when streams originate at the *app's own* nodes.  To model the shared
    environment, half the streams originate from cn0 itself (an app rank
    feeding its accelerator while also communicating).
    """
    n_compute = 2 + n_streams
    spec = paper_testbed(n_compute=n_compute,
                         n_accelerators=max(n_streams, 0))
    if oversubscription > 1.0:
        import dataclasses
        spec = dataclasses.replace(
            spec, switch_oversubscription=oversubscription)
    cluster = Cluster(spec)
    engine = cluster.engine
    sess = cluster.session()

    stop = {"flag": False}

    def streamer(cn_index, ac):
        ptr = yield from ac.mem_alloc(8 * MiB)
        while not stop["flag"]:
            yield from ac.memcpy_h2d(ptr, Phantom(8 * MiB))

    # Start background streams; stream i drives accelerator i.  Stream 0
    # originates from cn0 (the app node) to expose endpoint contention.
    for i in range(n_streams):
        cn = 0 if i == 0 else 2 + i
        handles = sess.call(cluster.arm_client(cn).alloc(count=1))
        ac = cluster.remote(cn, handles[0])
        engine.process(streamer(cn, ac), name=f"stream{i}")

    result = {}

    def ponger():
        r = cluster.compute_rank(1)
        for _ in range(rounds):
            msg = yield from r.recv(source=0, tag=_TAG)
            yield from r.send(0, _TAG, msg.payload)

    def pinger():
        r = cluster.compute_rank(0)
        payload = Phantom(msg_bytes)
        t0 = engine.now
        for _ in range(rounds):
            yield from r.send(1, _TAG, payload)
            yield from r.recv(source=1, tag=_TAG)
        half_rtt = (engine.now - t0) / (2 * rounds)
        result["bw"] = mib_per_s(msg_bytes / half_rtt)
        stop["flag"] = True

    p1 = engine.process(ponger())
    p0 = engine.process(pinger())
    engine.run(until=engine.all_of([p0, p1]))
    return result["bw"]


def run(quick: bool = False) -> FigureResult:
    max_streams = 2 if quick else 3
    xs = list(range(max_streams + 1))
    fig = FigureResult(
        fig_id="ext-contention",
        title="App MPI bandwidth vs concurrent accelerator streams",
        xlabel="active GPU streams", ylabel="PingPong bandwidth [MiB/s]",
        notes="4 MiB PingPong between two compute nodes; first stream "
              "shares the app's own node; oversub-2 = switch core at "
              "half bisection bandwidth",
    )
    fig.add("crossbar", xs, [_pingpong_under_load(s) for s in xs])
    fig.add("oversub-2", xs,
            [_pingpong_under_load(s, oversubscription=2.0) for s in xs])
    return fig


def check(fig: FigureResult) -> None:
    xbar = fig.get("crossbar")
    over = fig.get("oversub-2")
    for s in (xbar, over):
        # Bandwidth degrades monotonically as accelerator traffic grows...
        for y0, y1 in zip(s.y, s.y[1:]):
            assert y1 <= y0 * 1.001, s.y
        # ...and the first co-located stream alone costs a noticeable share.
        assert s.y[1] < 0.9 * s.y[0], s.y
    # On the non-blocking crossbar only the co-located stream matters; an
    # oversubscribed core makes every additional accelerator stream hurt
    # the app — the regime behind the paper's low-ratio recommendation.
    assert over.y[-1] < xbar.y[-1] * 0.98, (over.y, xbar.y)
