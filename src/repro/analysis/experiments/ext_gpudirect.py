"""Extension F: the contribution of GPUDirect pinned-buffer sharing.

The middleware's pipeline relies on GPUDirect v1 (Sect. IV): the NIC and
the GPU share pinned pages, so a received block can be DMA'd to the GPU
without an intermediate host copy.  This ablation disables the sharing —
every block pays a CPU staging copy (MPI receive buffer -> pinned DMA
buffer) — and measures what the technology buys across message sizes.
"""

from __future__ import annotations

import dataclasses

from ...core.blocksize import AdaptiveBlockPolicy, TransferConfig
from ...units import KiB
from ..series import FigureResult
from .common import measure_protocol, quick_or_full_sizes


def run(quick: bool = False) -> FigureResult:
    sizes = quick_or_full_sizes(quick)
    xs = [n / KiB for n in sizes]
    on = TransferConfig(policy=AdaptiveBlockPolicy(), gpudirect=True)
    off = TransferConfig(policy=AdaptiveBlockPolicy(), gpudirect=False)
    fig = FigureResult(
        fig_id="ext-gpudirect",
        title="H2D pipeline bandwidth with and without GPUDirect",
        xlabel="KiB", ylabel="Bandwidth [MiB/s]",
        notes="GPUDirect off = per-block host staging copy on the "
              "accelerator CPU",
    )
    fig.add("gpudirect-on", xs, measure_protocol("h2d", on, sizes))
    fig.add("gpudirect-off", xs, measure_protocol("h2d", off, sizes))
    return fig


def check(fig: FigureResult) -> None:
    on = fig.get("gpudirect-on")
    off = fig.get("gpudirect-off")
    # GPUDirect never hurts, and visibly helps somewhere.
    gains = []
    for x in on.x:
        assert on.at(x) >= off.at(x) * 0.999, (x, on.at(x), off.at(x))
        gains.append(on.at(x) / off.at(x))
    assert max(gains) > 1.03, max(gains)
