"""Figure 7: H2D — node-attached vs network-attached GPU.

Series: CUDA local pinned (~5700 MiB/s peak), CUDA local pageable
(~4700 MiB/s), MPI PingPong (~2660 MiB/s), and the dynamic architecture
with the tuned adaptive pipeline.  The check asserts the strict ordering
``local pinned > local pageable > MPI >= dynamic`` at large sizes and that
the dynamic curve stays close to the MPI bound.
"""

from __future__ import annotations

from ...core.blocksize import AdaptiveBlockPolicy, TransferConfig
from ...units import KiB
from ..series import FigureResult
from .common import (
    measure_local,
    measure_mpi_pingpong,
    measure_protocol,
    quick_or_full_sizes,
)


def run(quick: bool = False) -> FigureResult:
    sizes = quick_or_full_sizes(quick)
    xs = [n / KiB for n in sizes]
    fig = FigureResult(
        fig_id="fig07",
        title="H2D bandwidth: node-attached vs network-attached GPU",
        xlabel="KiB", ylabel="Bandwidth [MiB/s]",
    )
    fig.add("cuda-local-pinned", xs, measure_local("h2d", True, sizes))
    fig.add("cuda-local-pageable", xs, measure_local("h2d", False, sizes))
    fig.add("mpi-pingpong", xs, measure_mpi_pingpong(sizes))
    fig.add("dyn-pipeline-128-512K", xs,
            measure_protocol("h2d", TransferConfig(policy=AdaptiveBlockPolicy()),
                             sizes))
    return fig


def check(fig: FigureResult) -> None:
    big = 65536.0
    pinned = fig.get("cuda-local-pinned")
    pageable = fig.get("cuda-local-pageable")
    mpi = fig.get("mpi-pingpong")
    dyn = fig.get("dyn-pipeline-128-512K")

    # Peaks match the paper's testbed numbers.
    assert abs(pinned.at(big) - 5700) / 5700 < 0.05, pinned.at(big)
    assert abs(pageable.at(big) - 4700) / 4700 < 0.05, pageable.at(big)
    assert abs(mpi.at(big) - 2660) / 2660 < 0.05, mpi.at(big)

    # Ordering at large sizes: local wins clearly; dynamic below MPI bound.
    assert pinned.at(big) > pageable.at(big) > mpi.at(big) >= dyn.at(big) * 0.999
    # The dynamic protocol stays close to its MPI upper bound.
    assert dyn.at(big) > 0.9 * mpi.at(big)
