"""Extension E: fault tolerance — broken accelerators don't kill nodes.

The paper claims (Sect. III-A) that in the dynamic architecture "broken
accelerators or compute nodes no longer affect the availability of
operational compute nodes or accelerators".  This study breaks an
accelerator in the middle of a compute job and measures what the paper
only asserts: the compute node survives (it sees an error, not a crash),
healthy accelerators keep working, and the ARM hands out a replacement —
with the recovery latency reported.
"""

from __future__ import annotations

from ...cluster import Cluster, paper_testbed
from ...core import FaultInjector
from ...errors import AcceleratorFault
from ...mpisim import Phantom
from ...units import MiB
from ..series import FigureResult


def run(quick: bool = False) -> FigureResult:
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    engine = cluster.engine
    sess = cluster.session()
    client = cluster.arm_client(0)
    injector = FaultInjector(cluster)

    handles = sess.call(client.alloc(count=2, job="victim-job"))
    acs = [cluster.remote(0, h) for h in handles]
    victim_id = handles[0].ac_id
    injector.break_at(victim_id, at_time=engine.now + 0.005)

    stats = {"iterations_before": 0, "iterations_after": 0,
             "fault_seen_at": None, "recovered_at": None,
             "healthy_ok": False, "replacement_id": None}

    def job():
        ptr0 = yield from acs[0].mem_alloc(MiB)
        ptr1 = yield from acs[1].mem_alloc(MiB)
        active0 = acs[0]
        p0 = ptr0
        for i in range(200):
            try:
                yield from active0.memcpy_h2d(p0, Phantom(MiB))
                if stats["fault_seen_at"] is None:
                    stats["iterations_before"] += 1
                else:
                    stats["iterations_after"] += 1
            except AcceleratorFault:
                stats["fault_seen_at"] = engine.now
                # The node survives: report the failure and ask the ARM
                # for a replacement (dynamic re-assignment).
                yield from client.report_break(victim_id)
                new = yield from client.alloc(count=1, job="victim-job")
                stats["replacement_id"] = new[0].ac_id
                active0 = cluster.remote(0, new[0])
                p0 = yield from active0.mem_alloc(MiB)
                stats["recovered_at"] = engine.now
            # The healthy accelerator keeps serving throughout.
            yield from acs[1].memcpy_h2d(ptr1, Phantom(MiB))
        stats["healthy_ok"] = True
        return stats

    result = sess.call(job())
    recovery_ms = (result["recovered_at"] - result["fault_seen_at"]) * 1e3

    fig = FigureResult(
        fig_id="ext-faults",
        title="Accelerator failure mid-job: node survival and recovery",
        xlabel="metric", ylabel="value",
        notes=f"victim=ac{victim_id}, replacement=ac{result['replacement_id']}",
    )
    fig.add("values", [0, 1, 2, 3], [
        result["iterations_before"],
        result["iterations_after"],
        recovery_ms,
        1.0 if result["healthy_ok"] else 0.0,
    ])
    fig.notes += ("; metrics=[iters_before_fault, iters_after_recovery, "
                  "recovery_ms, healthy_accelerator_ok]")
    return fig


def check(fig: FigureResult) -> None:
    before, after, recovery_ms, healthy_ok = fig.get("values").y
    # The job observed the fault mid-run and kept computing afterwards.
    assert before > 0
    assert after > before  # most iterations happen after recovery
    assert healthy_ok == 1.0
    # ARM re-assignment is a control-plane operation: well under a second.
    assert 0 < recovery_ms < 100.0, recovery_ms
