"""Extension E: fault tolerance — broken accelerators don't kill nodes.

The paper claims (Sect. III-A) that in the dynamic architecture "broken
accelerators or compute nodes no longer affect the availability of
operational compute nodes or accelerators".  This study breaks an
accelerator in the middle of a compute job and measures what the paper
only asserts — for **both** failure modes the middleware distinguishes:

* ``broken`` — the GPU dies but its daemon host survives and answers
  ``Status.BROKEN`` (fast, error-reply detection);
* ``crashed`` — the daemon host itself goes silent, so the failure is
  only detectable through the front-end's per-request deadline
  (:class:`~repro.errors.RequestTimeout`).

The job runs on real float64 data through a
:class:`~repro.core.ResilientAccelerator` with REALLOCATE failover: on
the fault, the front-end reports the break to the ARM, allocates a
replacement, replays its tracked buffer, re-runs the interrupted
iteration, and finishes.  The final array is checked for exact equality
with the host-side reference, so the replay correctness of the failover
path — not just survival — is what the numbers certify.  A sweep over
fault times (a crude MTBF axis) reports recovery latency per mode.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, paper_testbed
from ...core import FailoverConfig, FailoverPolicy, FaultInjector, RetryPolicy
from ..series import FigureResult

#: Per-request deadline: comfortably above one healthy control-RPC round
#: trip, small enough that crash detection stays a control-plane latency.
TIMEOUT_S = 2e-3


def _run_job(mode: str, fault_time: float, iterations: int,
             n_elems: int = 65536) -> dict:
    """One mid-job failure scenario; returns recovery metrics."""
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    engine = cluster.engine
    sess = cluster.session()
    client = cluster.arm_client(0)
    injector = FaultInjector(cluster)

    handles = sess.call(client.alloc(count=2, job="victim-job"))
    victim_id = handles[0].ac_id
    retry = RetryPolicy(timeout_s=TIMEOUT_S)
    ra = cluster.resilient(0, handles[0],
                           config=FailoverConfig(
                               policy=FailoverPolicy.REALLOCATE,
                               job="victim-job"),
                           retry=retry)
    healthy = cluster.remote(0, handles[1], retry=retry)

    if mode == "broken":
        injector.break_at(victim_id, at_time=fault_time)
    else:
        injector.crash_at(victim_id, at_time=fault_time)

    rng = np.random.default_rng(42)
    data = rng.standard_normal(n_elems)
    expected = data * (1.25 ** iterations)

    stats = {"healthy_iters": 0, "correct": False}

    def job():
        ptr = yield from ra.mem_alloc(data.nbytes)
        hptr = yield from healthy.mem_alloc(data.nbytes)
        yield from ra.memcpy_h2d(ptr, data)
        yield from ra.kernel_create("dscal")
        for _ in range(iterations):
            # One transactional iteration: if a fault interrupts it, the
            # failover layer restores the last-uploaded state on a
            # replacement and the whole unit re-runs there.
            def iteration():
                yield from ra.kernel_run(
                    "dscal", {"x": ptr, "n": len(data), "alpha": 1.25})
                out = yield from ra.memcpy_d2h(ptr, data.nbytes)
                yield from ra.memcpy_h2d(ptr, out)  # checkpoint the result
                return out

            yield from ra.run_guarded(iteration)
            # The healthy accelerator keeps serving throughout.
            yield from healthy.memcpy_h2d(hptr, data)
            stats["healthy_iters"] += 1
        final = yield from ra.memcpy_d2h(ptr, data.nbytes)
        stats["correct"] = bool(np.allclose(final, expected))
        return stats

    sess.call(job())
    return {
        "mode": mode,
        "fault_time": fault_time,
        "failovers": ra.failovers,
        "recovery_ms": ((ra.recovered_at[0] - fault_time) * 1e3
                        if ra.recovered_at else 0.0),
        "replacement_id": ra.handle.ac_id,
        "victim_id": victim_id,
        "healthy_iters": stats["healthy_iters"],
        "correct": stats["correct"],
        "finished_at": engine.now,
    }


def run(quick: bool = False) -> FigureResult:
    iterations = 12 if quick else 40
    fault_times = [0.002] if quick else [0.002, 0.005, 0.010]

    fig = FigureResult(
        fig_id="ext-faults",
        title="Accelerator failure mid-job: recovery latency by failure mode",
        xlabel="fault injection time [s]",
        ylabel="recovery latency [ms]",
    )
    notes = []
    for mode in ("broken", "crashed"):
        xs, ys = [], []
        for t in fault_times:
            r = _run_job(mode, t, iterations)
            assert r["failovers"] >= 1, f"{mode}@{t}: fault never surfaced"
            assert r["correct"], f"{mode}@{t}: wrong data after failover"
            assert r["healthy_iters"] == iterations
            xs.append(t)
            ys.append(r["recovery_ms"])
            notes.append(f"{mode}@{t * 1e3:g}ms: ac{r['victim_id']}->"
                         f"ac{r['replacement_id']} in {r['recovery_ms']:.3f}ms")
        fig.add(mode, xs, ys)
    fig.notes = "; ".join(notes)
    return fig


def check(fig: FigureResult) -> None:
    broken = fig.get("broken")
    crashed = fig.get("crashed")
    # Every scenario recovered (latency is positive and control-plane fast).
    for s in (broken, crashed):
        assert all(0 < y < 100.0 for y in s.y), s.y
    # Crash detection must pay at least one request deadline on top of the
    # reallocation itself; broken-mode detection is a fast error reply.
    assert min(crashed.y) >= TIMEOUT_S * 1e3
    assert max(broken.y) < min(crashed.y)
