"""Figure 5: host-to-device bandwidth of the copy protocols.

Paper findings the shape check asserts:

* all pipeline variants beat the naive protocol for large messages;
* the 128 KiB pipeline wins between ~512 KiB and ~8 MiB;
* larger blocks (512 KiB) win above ~9 MiB;
* the adaptive 128-512K policy tracks the best fixed policy;
* at 64 MiB the best pipeline approaches the MPI PingPong bound
  (~2660 MiB/s), while naive plateaus near the harmonic mean of network
  and PCIe bandwidth (~1800 MiB/s).
"""

from __future__ import annotations

from ...units import KiB, MiB
from ..series import FigureResult
from .common import bandwidth_figure

PAPER_MPI_PEAK_MIBS = 2660.0
PAPER_NAIVE_PLATEAU_MIBS = 1815.0  # harmonic mean of 2660 and 5700


def run(quick: bool = False) -> FigureResult:
    """Regenerate Figure 5."""
    return bandwidth_figure(
        "fig05", "Host-to-device bandwidth, pipeline protocol + GPUDirect",
        direction="h2d", quick=quick)


def check(fig: FigureResult) -> None:
    """Assert the qualitative shape of Figure 5."""
    big = 65536.0  # 64 MiB in KiB
    naive = fig.get("dyn-naive")
    p128 = fig.get("dyn-pipeline-128K")
    p512 = fig.get("dyn-pipeline-512K")
    adaptive = fig.get("dyn-pipeline-128-512K")
    mpi = fig.get("mpi-pingpong")

    # MPI is the upper bound and approaches the paper's peak.
    assert 2500 < mpi.at(big) <= 2700, mpi.at(big)
    for s in (naive, p128, p512, adaptive):
        assert s.at(big) <= mpi.at(big) * 1.001

    # Pipelines beat naive for large messages.
    for s in (p128, p512, adaptive):
        assert s.at(big) > naive.at(big) * 1.2

    # Naive plateaus near the serialization bound.
    assert abs(naive.at(big) - PAPER_NAIVE_PLATEAU_MIBS) / PAPER_NAIVE_PLATEAU_MIBS < 0.15

    # 128K wins in the medium range (paper: 500 KiB .. 8 MiB).
    for x in (1024.0, 4096.0):
        if x in p128.x:
            assert p128.at(x) >= p512.at(x) * 0.999, (x, p128.at(x), p512.at(x))

    # 512K wins for very large messages (paper: > 9 MiB).
    assert p512.at(big) > p128.at(big)

    # The adaptive policy tracks the best fixed policy everywhere.
    for x in p128.x:
        best = max(p128.at(x), p512.at(x))
        assert adaptive.at(x) >= best * 0.97, (x, adaptive.at(x), best)

    # Best pipeline approaches the MPI bound at 64 MiB.
    assert adaptive.at(big) > 0.9 * mpi.at(big)
