"""Figure 10: MAGMA-style Cholesky factorization, local vs network GPUs.

Same sweep as Figure 9 for ``dpotrf``.  Paper findings the check asserts:

* Cholesky also gains from extra network-attached GPUs at large N;
* Cholesky is *less* bandwidth-sensitive than QR: the relative gap between
  one local and one network-attached GPU is smaller than QR's (with a
  single GPU only nb x nb diagonal blocks cross the network per step).
"""

from __future__ import annotations

import typing as _t

from ...workloads.linalg import cholesky_factorize
from ..series import FigureResult
from .fig09 import DEFAULT_SIZES, NB, QUICK_SIZES, measure


def run(quick: bool = False, sizes: _t.Sequence[int] | None = None) -> FigureResult:
    if sizes is None:
        sizes = QUICK_SIZES if quick else DEFAULT_SIZES
    fig = FigureResult(
        fig_id="fig10",
        title="Cholesky factorization: node-local GPU vs network-attached GPUs",
        xlabel="N", ylabel="GFlop/s",
        notes=f"blocked right-looking dpotrf, nb={NB}, timing-only mode",
    )
    fig.add("cuda-local", list(sizes),
            measure(cholesky_factorize, sizes, 1, local=True))
    for g in (1, 2, 3):
        fig.add(f"{g}-network-gpu", list(sizes),
                measure(cholesky_factorize, sizes, g))
    return fig


def check(fig: FigureResult, qr_fig: FigureResult | None = None) -> None:
    local = fig.get("cuda-local")
    net1 = fig.get("1-network-gpu")
    net3 = fig.get("3-network-gpu")
    top = max(local.x)

    for x in local.x:
        assert net1.at(x) <= local.at(x) * 1.005

    # Multi-GPU still wins at scale.
    if top >= 8064:
        assert net3.at(top) / local.at(top) > 1.5

    # Less bandwidth-sensitive than QR (compare relative 1-GPU gaps).
    if qr_fig is not None:
        qx = max(qr_fig.get("cuda-local").x)
        qr_gap = 1.0 - (qr_fig.get("1-network-gpu").at(qx)
                        / qr_fig.get("cuda-local").at(qx))
        chol_gap = 1.0 - net1.at(top) / local.at(top)
        assert chol_gap <= qr_gap + 1e-9, (chol_gap, qr_gap)
