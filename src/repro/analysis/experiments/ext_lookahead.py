"""Extension G: lookahead ablation for the multi-GPU QR driver.

MAGMA hides the CPU panel factorization behind the GPUs' trailing updates
(lookahead).  For the *dynamic* architecture this matters even more: the
panel's download + broadcast crosses the network, so hiding it also hides
the remoting bandwidth penalty.  This study measures QR throughput with
and without lookahead on 1-3 network-attached GPUs.
"""

from __future__ import annotations

import functools
import typing as _t

from ...workloads.linalg import qr_factorize
from ..series import FigureResult
from .fig09 import measure

SIZES = [2048, 4032, 6048, 8064]
QUICK_SIZES = [2048, 4032]


def run(quick: bool = False) -> FigureResult:
    sizes = QUICK_SIZES if quick else SIZES
    fig = FigureResult(
        fig_id="ext-lookahead",
        title="QR with and without panel lookahead (network GPUs)",
        xlabel="N", ylabel="GFlop/s",
        notes="lookahead factors panel k+1 on the CPU while the GPUs "
              "apply reflector k",
    )
    qr_la = functools.partial(qr_factorize, lookahead=True)
    for g in (1, 2, 3):
        fig.add(f"{g}gpu-plain", list(sizes), measure(qr_factorize, sizes, g))
        fig.add(f"{g}gpu-lookahead", list(sizes), measure(qr_la, sizes, g))
    return fig


def check(fig: FigureResult) -> None:
    for g in (1, 2, 3):
        plain = fig.get(f"{g}gpu-plain")
        la = fig.get(f"{g}gpu-lookahead")
        for x in plain.x:
            # Lookahead never hurts...
            assert la.at(x) >= plain.at(x) * 0.99, (g, x)
        # ...and buys a measurable gain at the largest size.
        top = max(plain.x)
        assert la.at(top) > plain.at(top) * 1.02, (g, la.at(top), plain.at(top))
