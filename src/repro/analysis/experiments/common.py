"""Shared pieces of the bandwidth experiments (Figures 5-8)."""

from __future__ import annotations

import typing as _t

from ...cluster import Cluster, paper_testbed
from ...core.blocksize import TransferConfig, pipeline, NAIVE_TRANSFER, AdaptiveBlockPolicy
from ...units import KiB
from ...workloads.bandwidth import paper_sizes, sweep
from ...workloads.pingpong import run_pingpong
from ..series import FigureResult


def quick_or_full_sizes(quick: bool) -> list[int]:
    """The figure x-axis: 1 KiB ... 64 MiB (coarser when quick)."""
    return paper_sizes(step=16) if quick else paper_sizes(step=4)


def measure_protocol(direction: str, transfer: TransferConfig,
                     sizes: _t.Sequence[int]) -> list[float]:
    """Bandwidth curve (MiB/s) of one middleware transfer protocol.

    Builds a fresh paper-testbed cluster (1 CN + 1 AC), allocates the
    accelerator, and sweeps the copy sizes.
    """
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=1))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    ac = cluster.remote(0, handles[0], transfer=transfer)
    points = sess.call(sweep(cluster.engine, ac, sizes, direction=direction))
    return [p.mib_per_s for p in points]


def measure_mpi_pingpong(sizes: _t.Sequence[int]) -> list[float]:
    """The IMB PingPong upper bound on the same fabric (MiB/s)."""
    cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=0))
    points = run_pingpong(cluster.engine, cluster.comm, 0, 1, sizes)
    return [p.mib_per_s for p in points]


def measure_local(direction: str, pinned: bool,
                  sizes: _t.Sequence[int]) -> list[float]:
    """CUDA-local (node-attached GPU) bandwidth curve (MiB/s)."""
    from ...baselines import LocalAccelerator

    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                    local_gpus=True))
    node = cluster.compute_nodes[0]
    local = LocalAccelerator(cluster.engine, node.local_gpu, node.cpu,
                             pinned=pinned)
    sess = cluster.session()
    points = sess.call(sweep(cluster.engine, local, sizes, direction=direction))
    return [p.mib_per_s for p in points]


def protocol_set(direction: str) -> list[tuple[str, TransferConfig]]:
    """The protocol curves of Fig. 5 (h2d) / Fig. 6 (d2h)."""
    if direction == "h2d":
        return [
            ("naive", NAIVE_TRANSFER),
            ("pipeline-128K", pipeline(128 * KiB)),
            ("pipeline-256K", pipeline(256 * KiB)),
            ("pipeline-512K", pipeline(512 * KiB)),
            ("pipeline-128-512K", TransferConfig(policy=AdaptiveBlockPolicy())),
        ]
    return [
        ("naive", NAIVE_TRANSFER),
        ("pipeline-64K", pipeline(64 * KiB)),
        ("pipeline-128K", pipeline(128 * KiB)),
        ("pipeline-256K", pipeline(256 * KiB)),
        ("pipeline-512K", pipeline(512 * KiB)),
    ]


def bandwidth_figure(fig_id: str, title: str, direction: str,
                     quick: bool) -> FigureResult:
    """Build the protocol-comparison figure for one direction."""
    sizes = quick_or_full_sizes(quick)
    xs = [n / KiB for n in sizes]
    fig = FigureResult(
        fig_id=fig_id, title=title,
        xlabel="KiB", ylabel="Bandwidth [MiB/s]",
        notes="dynamic architecture protocols vs the MPI upper bound",
    )
    for label, cfg in protocol_set(direction):
        fig.add(f"dyn-{label}", xs, measure_protocol(direction, cfg, sizes))
    fig.add("mpi-pingpong", xs, measure_mpi_pingpong(sizes))
    return fig
