"""Figure 8: D2H — node-attached vs network-attached GPU.

Same comparison as Figure 7 in the device-to-host direction, with the
128 KiB pipeline (the best D2H configuration per Figure 6).
"""

from __future__ import annotations

from ...core.blocksize import pipeline
from ...units import KiB
from ..series import FigureResult
from .common import (
    measure_local,
    measure_mpi_pingpong,
    measure_protocol,
    quick_or_full_sizes,
)


def run(quick: bool = False) -> FigureResult:
    sizes = quick_or_full_sizes(quick)
    xs = [n / KiB for n in sizes]
    fig = FigureResult(
        fig_id="fig08",
        title="D2H bandwidth: node-attached vs network-attached GPU",
        xlabel="KiB", ylabel="Bandwidth [MiB/s]",
    )
    fig.add("cuda-local-pinned", xs, measure_local("d2h", True, sizes))
    fig.add("cuda-local-pageable", xs, measure_local("d2h", False, sizes))
    fig.add("mpi-pingpong", xs, measure_mpi_pingpong(sizes))
    fig.add("dyn-pipeline-128K", xs,
            measure_protocol("d2h", pipeline(128 * KiB), sizes))
    return fig


def check(fig: FigureResult) -> None:
    big = 65536.0
    pinned = fig.get("cuda-local-pinned")
    pageable = fig.get("cuda-local-pageable")
    mpi = fig.get("mpi-pingpong")
    dyn = fig.get("dyn-pipeline-128K")

    assert abs(pinned.at(big) - 5700) / 5700 < 0.05
    assert abs(pageable.at(big) - 4700) / 4700 < 0.05
    assert pinned.at(big) > pageable.at(big) > mpi.at(big) >= dyn.at(big) * 0.999
    assert dyn.at(big) > 0.9 * mpi.at(big)
