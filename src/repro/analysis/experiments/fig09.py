"""Figure 9: MAGMA-style QR factorization, local vs network-attached GPUs.

Series: GFlop/s over matrix size N for a node-attached GPU ("CUDA local")
and for 1/2/3 network-attached GPUs driven by one compute node.  Paper
findings the check asserts:

* one network-attached GPU never beats the local GPU (QR pays the
  bandwidth penalty on every panel round trip);
* with three network-attached GPUs and N = 10240 the speedup over one
  local GPU is about 2.2x (we accept 1.7-2.7);
* throughput grows with N for every configuration.
"""

from __future__ import annotations

import typing as _t

from ...baselines import LocalAccelerator
from ...cluster import Cluster, paper_testbed
from ...workloads.linalg import qr_factorize
from ..series import FigureResult

#: The paper's x axis.
PAPER_SIZES = [1024, 2048, 3072, 4032, 5184, 6048, 7200, 8064, 8928, 10240]
#: Subset used by default to keep the harness fast; the extremes and the
#: middle preserve every shape assertion.
DEFAULT_SIZES = [1024, 2048, 4032, 6048, 8064, 10240]
QUICK_SIZES = [1024, 3072, 5184]

NB = 128


def _remote_setup(g: int):
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=g))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=g))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


def _local_setup():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                    local_gpus=True))
    node = cluster.compute_nodes[0]
    acs = [LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)]
    return cluster, cluster.session(), acs


def measure(factorize: _t.Callable, sizes: _t.Sequence[int], g: int,
            local: bool = False, nb: int = NB) -> list[float]:
    """GFlop/s curve for one configuration (timing-only runs)."""
    out = []
    for n in sizes:
        cluster, sess, acs = _local_setup() if local else _remote_setup(g)
        res = sess.call(factorize(cluster.engine, cluster.compute_nodes[0].cpu,
                                  acs, n, nb))
        out.append(res.gflops)
    return out


def run(quick: bool = False, sizes: _t.Sequence[int] | None = None) -> FigureResult:
    if sizes is None:
        sizes = QUICK_SIZES if quick else DEFAULT_SIZES
    fig = FigureResult(
        fig_id="fig09",
        title="QR factorization: node-local GPU vs network-attached GPUs",
        xlabel="N", ylabel="GFlop/s",
        notes=f"blocked Householder QR, nb={NB}, timing-only mode",
    )
    fig.add("cuda-local", list(sizes), measure(qr_factorize, sizes, 1, local=True))
    for g in (1, 2, 3):
        fig.add(f"{g}-network-gpu", list(sizes),
                measure(qr_factorize, sizes, g))
    return fig


def check(fig: FigureResult) -> None:
    local = fig.get("cuda-local")
    net1 = fig.get("1-network-gpu")
    net3 = fig.get("3-network-gpu")
    top = max(local.x)

    # One remote GPU never beats the local one (bandwidth penalty).
    for x in local.x:
        assert net1.at(x) <= local.at(x) * 1.005, (x, net1.at(x), local.at(x))

    # The headline: ~2.2x with three network GPUs at the largest size.
    if top >= 8064:
        speedup = net3.at(top) / local.at(top)
        assert 1.7 < speedup < 2.7, speedup

    # Throughput grows with problem size for every configuration.
    for s in fig.series:
        assert s.y == sorted(s.y), s.label
