"""Command-line entry point: regenerate paper figures from the shell.

Usage::

    python -m repro list
    python -m repro run fig05 [--quick] [--json out.json] [--no-check]
    python -m repro run all --quick
    python -m repro trace fig05 [--quick] [--out trace.json] [--timeline]
                                [--check-identity]
    python -m repro tenants [--tenants N] [--accelerators M] [--seed S]
                            [--quick] [--json out.json] [--check-determinism]
    python -m repro jobs [--jobs N] [--accelerators M] [--gateways G]
                         [--seed S] [--compare] [--no-coalesce] [--no-cache]
                         [--quick] [--json out.json] [--check-determinism]
    python -m repro chaos <scenario|all|list> [--quick] [--seed S]
                          [--json out.json] [--check-determinism]
                          [--check EXPECTATIONS.json]
    python -m repro collective [--devices N] [--elements E] [--op OP]
                               [--topology T] [--dims A B [C]] [--seed S]
                               [--quick] [--json out.json]
                               [--check-determinism]
    python -m repro perf [--quick] [--json BENCH.json] [--against OLD.json]
                         [--check BASELINE.json]

``trace`` runs one experiment with span tracing enabled and exports the
result as Chrome trace-event JSON (load it in ``chrome://tracing`` or
https://ui.perfetto.dev) and/or an ASCII timeline.  ``--check-identity``
re-runs the experiment untraced and asserts both produce identical
numbers — tracing must never perturb virtual time.

``chaos`` replays one (or every) scenario from the chaos library
(:mod:`repro.chaos`) against the discovery-driven cluster and prints the
recovery-latency / SLO-violation scores.  ``--check-determinism`` runs
each scenario twice and asserts bit-identical trace digests;
``--check`` gates the scores against checked-in expectation bounds
(``benchmarks/chaos_expectations.json``; generated with ``--quick``,
seed 0) — the CI chaos-smoke job runs exactly that.

``jobs`` drives a seeded Pegasus-style ensemble (priorities, tenants,
DAG dependencies, verified numerics) through the job-service front door
(:mod:`repro.jobs`) and prints virtual jobs/s, warm-path cache rates,
and the outcome digest.  ``--compare`` also runs the cold baseline
(coalescing and caching off) on the same seed, reports the warm-path
speedup, and asserts the two runs' outcome digests are identical — the
CI jobs-smoke job runs exactly that and gates on the ≥1.5× speedup.

``collective`` runs one seeded ring collective (allreduce or broadcast)
twice — over the P2P device-direct data plane and over the historical
staged path through the compute node — on a multi-switch topology, and
prints per-mode virtual wall-clock, compute-node endpoint bytes, trunk
bytes, and the bit-identity verdict.  ``--check-determinism`` reruns the
comparison and asserts the same digest — the CI p2p-smoke job runs
exactly that and gates on the ≥2× compute-node byte reduction.

``perf`` measures *host* wall-clock performance of the simulator itself
(see :mod:`repro.perf`): ``--json`` writes a ``BENCH_*.json`` document,
``--against`` embeds an older document as the baseline (with speedups),
and ``--check`` exits non-zero if a gated benchmark regressed beyond its
tolerance — the CI perf-smoke job runs exactly that.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import typing as _t

from . import experiments as _exp

#: Experiment name -> module with run()/check().
EXPERIMENTS: dict[str, _t.Any] = {
    name: getattr(_exp, name) for name in _exp.__all__
}

DESCRIPTIONS = {
    "fig05": "H2D bandwidth of the copy protocols",
    "fig06": "D2H bandwidth of the copy protocols",
    "fig07": "H2D: node-attached vs network-attached GPU",
    "fig08": "D2H: node-attached vs network-attached GPU",
    "fig09": "multi-GPU QR factorization GFlop/s",
    "fig10": "multi-GPU Cholesky factorization GFlop/s",
    "fig11": "MP2C wall time, local vs dynamic",
    "ext_tcp": "MPI vs rCUDA-style TCP remoting",
    "ext_blocksize": "pipeline block-size ablation",
    "ext_utilization": "static vs dynamic cluster job scheduling",
    "ext_contention": "fabric contention vs accelerator streams",
    "ext_faults": "accelerator failure and recovery",
    "ext_gpudirect": "GPUDirect on/off ablation",
    "ext_lookahead": "QR panel-lookahead ablation",
    "ext_batch": "mixed batch workload on the live cluster",
    "ext_async": "async command streams vs per-op RPC round trips",
}


def list_experiments(out: _t.TextIO | None = None) -> None:
    out = out if out is not None else sys.stdout
    for name in sorted(EXPERIMENTS):
        out.write(f"{name:<18} {DESCRIPTIONS.get(name, '')}\n")


def run_experiment(name: str, quick: bool = False, check: bool = True,
                   json_path: str | None = None,
                   out: _t.TextIO | None = None) -> None:
    out = out if out is not None else sys.stdout
    mod = EXPERIMENTS.get(name)
    if mod is None:
        raise SystemExit(
            f"unknown experiment {name!r}; try: {', '.join(sorted(EXPERIMENTS))}")
    fig = mod.run(quick=quick)
    out.write(fig.render() + "\n")
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(fig.to_dict(), fh, indent=1)
        out.write(f"series written to {json_path}\n")
    if check:
        mod.check(fig)
        out.write(f"{fig.fig_id}: shape check passed\n")


def trace_experiment(name: str, quick: bool = False,
                     out_path: str | None = None, timeline: bool = False,
                     check_identity: bool = False,
                     out: _t.TextIO | None = None) -> None:
    """Run one experiment traced; export and validate the Chrome trace."""
    from ..obs import trace_session, validate_chrome_trace
    out = out if out is not None else sys.stdout
    mod = EXPERIMENTS.get(name)
    if mod is None:
        raise SystemExit(
            f"unknown experiment {name!r}; try: {', '.join(sorted(EXPERIMENTS))}")
    with trace_session() as session:
        fig = mod.run(quick=quick)
    out.write(fig.render() + "\n")
    out.write(f"traced {session.span_count()} spans across "
              f"{len(session.collectors)} engine(s)\n")
    trace = session.to_chrome_trace()
    validate_chrome_trace(trace)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(trace, fh, indent=1)
        out.write(f"chrome trace written to {out_path} "
                  f"({len(trace['traceEvents'])} events; open in "
                  f"chrome://tracing or ui.perfetto.dev)\n")
    if timeline:
        out.write(session.render_timeline() + "\n")
    if check_identity:
        untraced = mod.run(quick=quick)
        if fig.to_dict() != untraced.to_dict():
            raise SystemExit(
                f"{name}: traced and untraced runs diverged — tracing "
                f"perturbed the virtual timeline")
        out.write("identity check passed: traced run is bit-identical "
                  "to the untraced run\n")


def run_tenants(args: argparse.Namespace,
                out: _t.TextIO | None = None) -> int:
    """The ``tenants`` subcommand: open-loop multi-tenant workload."""
    from ..workloads import tenants as _tenants
    out = out if out is not None else sys.stdout
    if args.quick:
        cfg = _tenants.TenantWorkloadConfig(
            n_tenants=min(args.tenants, 48), n_accelerators=2, n_gateways=2,
            slots_per_device=2, requests_per_tenant=2, window_s=2e-3,
            payload_bytes=args.payload_kib * 1024, seed=args.seed)
    else:
        cfg = _tenants.TenantWorkloadConfig(
            n_tenants=args.tenants, n_accelerators=args.accelerators,
            n_gateways=args.gateways, slots_per_device=args.slots,
            requests_per_tenant=args.requests,
            window_s=args.window_ms * 1e-3,
            payload_bytes=args.payload_kib * 1024, seed=args.seed)
    report = _tenants.run(cfg)
    out.write(_tenants.format_report(report) + "\n")
    if args.check_determinism:
        again = _tenants.run(cfg)
        if again.digest != report.digest:
            raise SystemExit("tenants: same seed produced a different "
                             "trace digest — run is not deterministic")
        out.write("determinism check passed: same seed, same digest\n")
    if args.json_path:
        doc = {
            "config": dataclasses.asdict(cfg),
            "duration_s": report.duration_s,
            "submitted": report.submitted,
            "completed": report.completed,
            "rejected": report.rejected,
            "aborted": report.aborted,
            "preemptions": report.preemptions,
            "recoveries": report.recoveries,
            "latency_p50_s": report.latency_p50_s,
            "latency_p99_s": report.latency_p99_s,
            "fairness": report.fairness,
            "digest": report.digest,
            "per_tenant": report.per_tenant,
        }
        with open(args.json_path, "w") as fh:
            json.dump(doc, fh, indent=1)
        out.write(f"report written to {args.json_path}\n")
    return 0


def run_jobs(args: argparse.Namespace,
             out: _t.TextIO | None = None) -> int:
    """The ``jobs`` subcommand: the ensemble job-service front door."""
    from ..workloads import ensemble as _ensemble
    out = out if out is not None else sys.stdout
    if args.quick:
        cfg = _ensemble.EnsembleConfig(
            n_jobs=min(args.jobs, 64), n_accelerators=4, n_gateways=2,
            slots_per_device=4, seed=args.seed,
            coalescing=not args.no_coalesce, caching=not args.no_cache)
    else:
        cfg = _ensemble.EnsembleConfig(
            n_jobs=args.jobs, n_accelerators=args.accelerators,
            n_gateways=args.gateways, slots_per_device=args.slots,
            window_s=args.window_ms * 1e-3, seed=args.seed,
            coalescing=not args.no_coalesce, caching=not args.no_cache,
            lease_ttl_s=args.ttl_ms * 1e-3)
    report = _ensemble.run(cfg)
    out.write(_ensemble.format_report(report) + "\n")
    if args.check_determinism:
        again = _ensemble.run(cfg)
        if again.digest != report.digest:
            raise SystemExit("jobs: same seed produced a different outcome "
                             "digest — run is not deterministic")
        out.write("determinism check passed: same seed, same digest\n")
    baseline = None
    if args.compare:
        baseline = _ensemble.run(dataclasses.replace(
            cfg, coalescing=False, caching=False))
        speedup = (report.jobs_per_s / baseline.jobs_per_s
                   if baseline.jobs_per_s else 0.0)
        out.write(f"baseline (no coalescing, no caching): "
                  f"{baseline.jobs_per_s:.0f} jobs/s  "
                  f"warm-path speedup {speedup:.2f}x\n")
        if baseline.digest != report.digest:
            raise SystemExit("jobs: warm paths changed job outcomes — "
                             "on/off digests differ")
        out.write("identity check passed: warm paths on/off produce "
                  "bit-identical outcomes\n")
    if args.json_path:
        doc = {
            "config": dataclasses.asdict(cfg),
            "submitted": report.submitted,
            "done": report.done,
            "failed": report.failed,
            "cancelled": report.cancelled,
            "duration_s": report.duration_s,
            "jobs_per_s": report.jobs_per_s,
            "utilization": report.utilization,
            "latency_p50_s": report.latency_p50_s,
            "latency_p99_s": report.latency_p99_s,
            "per_tenant": report.per_tenant,
            "coalesce": report.coalesce,
            "kernel_cache_hits": report.kernel_cache_hits,
            "kernel_cache_misses": report.kernel_cache_misses,
            "kernel_cache_hit_rate": report.kernel_cache_hit_rate,
            "alloc_cache_hits": report.alloc_cache_hits,
            "alloc_cache_misses": report.alloc_cache_misses,
            "alloc_cache_hit_rate": report.alloc_cache_hit_rate,
            "leases_reused": report.leases_reused,
            "leases_cold": report.leases_cold,
            "leases_evicted": report.leases_evicted,
            "leases_expired": report.leases_expired,
            "digest": report.digest,
        }
        if baseline is not None:
            doc["baseline_jobs_per_s"] = baseline.jobs_per_s
            doc["speedup"] = (report.jobs_per_s / baseline.jobs_per_s
                              if baseline.jobs_per_s else 0.0)
            doc["digests_match"] = baseline.digest == report.digest
        with open(args.json_path, "w") as fh:
            json.dump(doc, fh, indent=1)
        out.write(f"report written to {args.json_path}\n")
    return 0


def run_chaos(args: argparse.Namespace,
              out: _t.TextIO | None = None) -> int:
    """The ``chaos`` subcommand: seeded elasticity/failure scenarios."""
    from .. import chaos as _chaos
    out = out if out is not None else sys.stdout
    if args.scenario == "list":
        for name, sc in _chaos.SCENARIOS.items():
            out.write(f"{name:<18} {sc.description}\n")
        return 0
    names = (list(_chaos.SCENARIOS) if args.scenario == "all"
             else [args.scenario])
    for name in names:
        if name not in _chaos.SCENARIOS:
            raise SystemExit(
                f"unknown scenario {name!r}; "
                f"try: {', '.join(_chaos.SCENARIOS)}, all, list")
    if args.quick:
        cfg = _chaos.ChaosConfig(n_tenants=24, window_s=10e-3,
                                 seed=args.seed)
    else:
        cfg = _chaos.ChaosConfig(seed=args.seed)
    bounds = None
    if args.check_path:
        with open(args.check_path) as fh:
            bounds = json.load(fh)
    problems: list[str] = []
    docs: dict[str, dict] = {}
    for name in names:
        report = _chaos.run(name, cfg)
        out.write(_chaos.format_report(report) + "\n")
        if args.check_determinism:
            again = _chaos.run(name, cfg)
            if (again.digest != report.digest
                    or again.buffer_digests != report.buffer_digests):
                raise SystemExit(
                    f"chaos {name}: same seed produced a different trace "
                    f"digest — run is not deterministic")
            out.write("determinism check passed: same seed, same digest\n")
        if bounds is not None:
            problems.extend(
                _chaos.check_expectations(report, bounds.get(name, {})))
        docs[name] = report.to_dict()
        out.write("\n")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(docs if len(names) > 1 else docs[names[0]], fh,
                      indent=1)
        out.write(f"report written to {args.json_path}\n")
    if problems:
        for problem in problems:
            out.write(problem + "\n")
        raise SystemExit(
            f"chaos: {len(problems)} expectation bound(s) violated")
    if bounds is not None:
        out.write("expectation bounds check passed\n")
    return 0


def run_collective(args: argparse.Namespace,
                   out: _t.TextIO | None = None) -> int:
    """The ``collective`` subcommand: P2P vs staged ring collectives."""
    from ..workloads import collective as _coll
    out = out if out is not None else sys.stdout
    dims = tuple(args.dims) if args.dims else (2, 2)
    if args.quick:
        cfg = _coll.CollectiveConfig(
            devices=min(args.devices, 8), chunk_elements=2048, op=args.op,
            topology="torus2d", dims=(2, 2), seed=args.seed)
    else:
        cfg = _coll.CollectiveConfig(
            devices=args.devices, chunk_elements=args.elements, op=args.op,
            topology=args.topology, dims=dims, seed=args.seed)
    report = _coll.run(cfg)
    out.write(_coll.format_report(report) + "\n")
    if args.check_determinism:
        again = _coll.run(cfg)
        if again.digest != report.digest:
            raise SystemExit("collective: same seed produced a different "
                             "digest — run is not deterministic")
        out.write("determinism check passed: same seed, same digest\n")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report.to_doc(), fh, indent=1)
        out.write(f"report written to {args.json_path}\n")
    if not report.identical:
        raise SystemExit("collective: P2P and staged transports produced "
                         "different device contents")
    return 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures of 'A Dynamic Accelerator-Cluster "
                    "Architecture' (ICPP 2012) on the simulated cluster.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="fig05..fig11, ext_*, or 'all'")
    runp.add_argument("--quick", action="store_true",
                      help="coarser sweeps for a fast look")
    runp.add_argument("--json", dest="json_path", default=None,
                      help="also write the series as JSON")
    runp.add_argument("--no-check", action="store_true",
                      help="skip the qualitative shape assertions")
    tracep = sub.add_parser(
        "trace", help="run one experiment with span tracing on")
    tracep.add_argument("experiment", help="fig05..fig11 or ext_*")
    tracep.add_argument("--quick", action="store_true",
                        help="coarser sweeps for a fast look")
    tracep.add_argument("--out", dest="out_path", default=None,
                        help="write Chrome trace-event JSON here")
    tracep.add_argument("--timeline", action="store_true",
                        help="print an ASCII span timeline")
    tracep.add_argument("--check-identity", action="store_true",
                        help="re-run untraced and assert identical results")
    tenp = sub.add_parser(
        "tenants", help="run the open-loop multi-tenant workload")
    tenp.add_argument("--tenants", type=int, default=1000,
                      help="tenant population size (default 1000)")
    tenp.add_argument("--accelerators", type=int, default=8,
                      help="physical accelerators, 1..8 (default 8)")
    tenp.add_argument("--gateways", type=int, default=4,
                      help="gateway compute nodes (default 4)")
    tenp.add_argument("--slots", type=int, default=4,
                      help="virtual-accelerator slots per device (default 4)")
    tenp.add_argument("--requests", type=int, default=1,
                      help="requests per tenant (default 1)")
    tenp.add_argument("--window-ms", type=float, default=10.0,
                      help="arrival window in virtual ms (default 10)")
    tenp.add_argument("--payload-kib", type=int, default=64,
                      help="per-request payload in KiB (default 64)")
    tenp.add_argument("--seed", type=int, default=0,
                      help="RNG seed (default 0)")
    tenp.add_argument("--quick", action="store_true",
                      help="small population for a fast look (CI smoke)")
    tenp.add_argument("--json", dest="json_path", default=None,
                      help="also write the report as JSON")
    tenp.add_argument("--check-determinism", action="store_true",
                      help="run twice and assert bit-identical digests")
    jobsp = sub.add_parser(
        "jobs", help="run the ensemble job-service front door")
    jobsp.add_argument("--jobs", type=int, default=96,
                       help="ensemble size (default 96)")
    jobsp.add_argument("--accelerators", type=int, default=4,
                       help="physical accelerators, 1..8 (default 4)")
    jobsp.add_argument("--gateways", type=int, default=2,
                       help="gateway compute nodes (default 2)")
    jobsp.add_argument("--slots", type=int, default=4,
                       help="virtual-accelerator slots per device (default 4)")
    jobsp.add_argument("--window-ms", type=float, default=0.5,
                       help="arrival window in virtual ms (default 0.5)")
    jobsp.add_argument("--ttl-ms", type=float, default=50.0,
                       help="warm-lease TTL in virtual ms (default 50)")
    jobsp.add_argument("--seed", type=int, default=0,
                       help="RNG seed (default 0)")
    jobsp.add_argument("--no-coalesce", action="store_true",
                       help="disable cross-tenant request coalescing")
    jobsp.add_argument("--no-cache", action="store_true",
                       help="disable kernel/allocation caching + warm leases")
    jobsp.add_argument("--compare", action="store_true",
                       help="also run the cold baseline and report the "
                            "warm-path speedup (asserts identical outcomes)")
    jobsp.add_argument("--quick", action="store_true",
                       help="smaller ensemble for a fast look (CI smoke)")
    jobsp.add_argument("--json", dest="json_path", default=None,
                       help="also write the report as JSON")
    jobsp.add_argument("--check-determinism", action="store_true",
                       help="run twice and assert bit-identical digests")
    chaosp = sub.add_parser(
        "chaos", help="run a chaos scenario on the discovered pool")
    chaosp.add_argument("scenario",
                        help="scenario name, 'all', or 'list'")
    chaosp.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default 0)")
    chaosp.add_argument("--quick", action="store_true",
                        help="smaller population for a fast look (CI smoke)")
    chaosp.add_argument("--json", dest="json_path", default=None,
                        help="also write the report(s) as JSON")
    chaosp.add_argument("--check-determinism", action="store_true",
                        help="run each scenario twice and assert "
                             "bit-identical digests")
    chaosp.add_argument("--check", dest="check_path", default=None,
                        help="expectation-bounds JSON to gate scores "
                             "against (CI smoke)")
    collp = sub.add_parser(
        "collective", help="ring collective: P2P vs staged transport")
    collp.add_argument("--devices", type=int, default=8,
                       help="devices in the ring (default 8)")
    collp.add_argument("--elements", type=int, default=65536,
                       help="float64 elements per chunk (default 65536)")
    collp.add_argument("--op", choices=("allreduce", "broadcast"),
                       default="allreduce",
                       help="collective operation (default allreduce)")
    collp.add_argument("--topology", default="torus2d",
                       choices=("single", "ring", "torus2d", "torus3d"),
                       help="fabric topology kind (default torus2d)")
    collp.add_argument("--dims", type=int, nargs="+", default=None,
                       help="topology dimensions, e.g. --dims 2 2")
    collp.add_argument("--seed", type=int, default=0,
                       help="RNG seed (default 0)")
    collp.add_argument("--quick", action="store_true",
                       help="small chunks on a 2x2 torus (CI smoke)")
    collp.add_argument("--json", dest="json_path", default=None,
                       help="also write the report as JSON")
    collp.add_argument("--check-determinism", action="store_true",
                       help="run twice and assert bit-identical digests")
    perfp = sub.add_parser(
        "perf", help="run the wall-clock benchmark suite")
    perfp.add_argument("--quick", action="store_true",
                       help="smaller sizes / fewer reps (CI smoke)")
    perfp.add_argument("--json", dest="json_path", default=None,
                       help="write the BENCH_*.json document here")
    perfp.add_argument("--against", default=None,
                       help="older BENCH_*.json to embed as baseline")
    perfp.add_argument("--check", default=None,
                       help="baseline BENCH_*.json for the regression gate")
    perfp.add_argument("--shards", type=int, default=4,
                       help="partition count for the sharded_* benchmarks "
                            "(default 4)")
    args = parser.parse_args(argv)

    if args.cmd == "list":
        list_experiments()
        return 0
    if args.cmd == "perf":
        from ..perf.suite import main_run
        return main_run(args.quick, args.json_path, args.against, args.check,
                        shards=args.shards)
    if args.cmd == "tenants":
        return run_tenants(args)
    if args.cmd == "jobs":
        return run_jobs(args)
    if args.cmd == "chaos":
        return run_chaos(args)
    if args.cmd == "collective":
        return run_collective(args)
    if args.cmd == "trace":
        trace_experiment(args.experiment, quick=args.quick,
                         out_path=args.out_path, timeline=args.timeline,
                         check_identity=args.check_identity)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_experiment(name, quick=args.quick, check=not args.no_check,
                       json_path=args.json_path if len(names) == 1 else None)
    return 0
