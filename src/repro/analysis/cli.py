"""Command-line entry point: regenerate paper figures from the shell.

Usage::

    python -m repro list
    python -m repro run fig05 [--quick] [--json out.json] [--no-check]
    python -m repro run all --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import typing as _t

from . import experiments as _exp

#: Experiment name -> module with run()/check().
EXPERIMENTS: dict[str, _t.Any] = {
    name: getattr(_exp, name) for name in _exp.__all__
}

DESCRIPTIONS = {
    "fig05": "H2D bandwidth of the copy protocols",
    "fig06": "D2H bandwidth of the copy protocols",
    "fig07": "H2D: node-attached vs network-attached GPU",
    "fig08": "D2H: node-attached vs network-attached GPU",
    "fig09": "multi-GPU QR factorization GFlop/s",
    "fig10": "multi-GPU Cholesky factorization GFlop/s",
    "fig11": "MP2C wall time, local vs dynamic",
    "ext_tcp": "MPI vs rCUDA-style TCP remoting",
    "ext_blocksize": "pipeline block-size ablation",
    "ext_utilization": "static vs dynamic cluster job scheduling",
    "ext_contention": "fabric contention vs accelerator streams",
    "ext_faults": "accelerator failure and recovery",
    "ext_gpudirect": "GPUDirect on/off ablation",
    "ext_lookahead": "QR panel-lookahead ablation",
    "ext_batch": "mixed batch workload on the live cluster",
    "ext_async": "async command streams vs per-op RPC round trips",
}


def list_experiments(out: _t.TextIO | None = None) -> None:
    out = out if out is not None else sys.stdout
    for name in sorted(EXPERIMENTS):
        out.write(f"{name:<18} {DESCRIPTIONS.get(name, '')}\n")


def run_experiment(name: str, quick: bool = False, check: bool = True,
                   json_path: str | None = None,
                   out: _t.TextIO | None = None) -> None:
    out = out if out is not None else sys.stdout
    mod = EXPERIMENTS.get(name)
    if mod is None:
        raise SystemExit(
            f"unknown experiment {name!r}; try: {', '.join(sorted(EXPERIMENTS))}")
    fig = mod.run(quick=quick)
    out.write(fig.render() + "\n")
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(fig.to_dict(), fh, indent=1)
        out.write(f"series written to {json_path}\n")
    if check:
        mod.check(fig)
        out.write(f"{fig.fig_id}: shape check passed\n")


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures of 'A Dynamic Accelerator-Cluster "
                    "Architecture' (ICPP 2012) on the simulated cluster.")
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="fig05..fig11, ext_*, or 'all'")
    runp.add_argument("--quick", action="store_true",
                      help="coarser sweeps for a fast look")
    runp.add_argument("--json", dest="json_path", default=None,
                      help="also write the series as JSON")
    runp.add_argument("--no-check", action="store_true",
                      help="skip the qualitative shape assertions")
    args = parser.parse_args(argv)

    if args.cmd == "list":
        list_experiments()
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_experiment(name, quick=args.quick, check=not args.no_check,
                       json_path=args.json_path if len(names) == 1 else None)
    return 0
