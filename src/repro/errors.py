"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class ProcessInterrupt(ReproError):
    """Thrown into a simulation process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class NetworkError(ReproError):
    """Errors raised by the network substrate."""


class MPIError(ReproError):
    """Errors raised by the simulated MPI layer."""


class GPUError(ReproError):
    """Errors raised by the virtual GPU substrate."""


class DeviceMemoryError(GPUError):
    """Device-memory allocation failures (out of memory, bad pointer)."""


class KernelError(GPUError):
    """Kernel registration / launch failures."""


class MiddlewareError(ReproError):
    """Errors raised by the accelerator middleware (front-end / daemon)."""


class ProtocolError(MiddlewareError):
    """Malformed or unexpected middleware wire messages."""


class UnsupportedOp(MiddlewareError):
    """The operation is not available on this accelerator backend.

    Raised by backends that implement the common
    :class:`~repro.core.interface.AcceleratorAPI` surface but lack an
    optional capability — e.g. ``peer_put`` on a node-attached GPU, which
    has no fabric to copy over.  Carries the op and backend names so
    callers can degrade gracefully (fall back to a D2H+H2D bounce).
    """

    def __init__(self, op: str, backend: str):
        super().__init__(f"op {op!r} is not supported by {backend}")
        self.op = op
        self.backend = backend


class RequestTimeout(MiddlewareError, TimeoutError):
    """A middleware request missed its (virtual-time) deadline.

    Raised by the front-end and the ARM client when a reply does not arrive
    within the configured per-request timeout, after any automatic retries
    have been exhausted.  Subclasses :class:`TimeoutError` so generic
    timeout handling also catches it.
    """


class AllocationError(ReproError):
    """Accelerator-resource-manager allocation failures."""


class AcceleratorFault(ReproError):
    """Raised when an operation targets an accelerator that has failed."""


class ClusterConfigError(ReproError):
    """Invalid cluster topology or hardware specification."""


class WorkloadError(ReproError):
    """Errors raised by the workload implementations."""
