"""Comparison baselines: node-attached GPUs and TCP-based remoting."""

from .local import LocalAccelerator
from .rcuda import RCUDA_TRANSFER, mpi_cluster, rcuda_like_cluster

__all__ = [
    "LocalAccelerator",
    "RCUDA_TRANSFER",
    "rcuda_like_cluster",
    "mpi_cluster",
]
