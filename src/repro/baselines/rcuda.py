"""rCUDA-style TCP/IP remoting baseline.

Related work (Sect. II) runs CUDA remoting over socket transports: rCUDA
v3.2 over TCP/IP, MGP over TCP/IP, vCUDA over XML-RPC.  The paper argues
its MPI protocol "may introduce [less] overhead in comparison" — this
baseline makes that claim measurable.

The model: the same middleware request/response structure, but carried
over a TCP transport (higher latency, per-message protocol overhead, lower
sustained bandwidth — see :data:`repro.netsim.TCP_IPOIB`) and **without**
GPUDirect pinned-buffer sharing, so every block pays an extra host staging
copy on the accelerator node (socket receive buffer -> pinned DMA buffer).
The easiest faithful construction is a cluster whose fabric uses the TCP
link model and whose transfers disable GPUDirect.
"""

from __future__ import annotations

from ..core.blocksize import FixedBlockPolicy, TransferConfig
from ..cluster import Cluster, ClusterSpec, paper_testbed
from ..netsim import TCP_IPOIB, LinkModel
from ..units import KiB


#: Transfer configuration matching a socket remoting stack: blocked
#: streaming (sockets chunk anyway) but no GPUDirect, so each block is
#: staged through host memory by the CPU.
RCUDA_TRANSFER = TransferConfig(
    protocol="pipeline",
    policy=FixedBlockPolicy(256 * KiB),
    pinned=True,
    gpudirect=False,
)


def rcuda_like_cluster(n_compute: int = 1, n_accelerators: int = 1,
                       network: LinkModel = TCP_IPOIB) -> Cluster:
    """A cluster emulating an rCUDA-style deployment over TCP/IPoIB."""
    return Cluster(paper_testbed(n_compute=n_compute,
                                 n_accelerators=n_accelerators,
                                 network=network))


def mpi_cluster(n_compute: int = 1, n_accelerators: int = 1) -> Cluster:
    """The paper's MPI/InfiniBand deployment, for side-by-side comparison."""
    return Cluster(paper_testbed(n_compute=n_compute,
                                 n_accelerators=n_accelerators))
