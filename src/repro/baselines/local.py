"""The static-architecture baseline: a node-attached ("CUDA local") GPU.

:class:`LocalAccelerator` conforms to the unified
:class:`~repro.core.interface.AcceleratorAPI` but drives the compute
node's own PCIe-attached GPU directly — no network, no daemon, exactly
the "CUDA local" configuration of Figures 7-11.  Workloads written
against the common interface can therefore be measured on either
architecture unchanged.

``cudaMemcpy`` semantics follow the paper's measurement setup: *pinned*
host memory moves via the GPU's DMA engine, *pageable* memory via CPU
programmed I/O at lower bandwidth (Fig. 7/8 distinguish both).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..buffers import zero_copy_enabled
from ..errors import MiddlewareError
from ..gpusim import GPUDevice
from ..mpisim import Phantom, payload_nbytes
from ..obs.spans import collector_for
from ..sim import Engine
from ..cluster.specs import CPUSpec
from ..core.interface import (
    AcceleratorLifecycle,
    CapabilitySet,
    reinterpret_legacy_peer_transfer,
    reinterpret_legacy_pinned,
    release_all,
    unsupported,
)
from ..core.transfer import as_flat_bytes, payload_meta


class LocalAccelerator(AcceleratorLifecycle):
    """Front-end-compatible driver for a node-attached GPU."""

    def __init__(self, engine: Engine, gpu: GPUDevice, cpu: CPUSpec,
                 pinned: bool = True):
        self.engine = engine
        self.gpu = gpu
        self.cpu = cpu
        self.pinned = pinned
        self._kernels: dict[str, dict] = {}
        self._live: dict[int, int] = {}
        self._obs = collector_for(engine)
        self._actor = f"local-{gpu.name}"
        self.bytes_h2d = 0
        self.bytes_d2h = 0

    def _lifecycle_engine(self):
        return self.engine

    # -- memory management ----------------------------------------------
    def mem_alloc(self, nbytes: int):
        """cudaMalloc: returns the device address (generator)."""
        with self._obs.start("client.mem_alloc", self._actor,
                             nbytes=int(nbytes)):
            yield self.engine.timeout(self.cpu.malloc_s)
            addr = self.gpu.memory.malloc(int(nbytes))
            self._live[addr] = int(nbytes)
            return addr

    def mem_free(self, addr: int):
        """cudaFree (generator)."""
        with self._obs.start("client.mem_free", self._actor, addr=addr):
            yield self.engine.timeout(self.cpu.malloc_s)
            self.gpu.memory.free(addr)
            self._live.pop(addr, None)

    def release(self):
        """Free every live allocation this front-end made (generator)."""
        yield from release_all(self, self._live)

    # -- data movement ----------------------------------------------------
    def memcpy_h2d(self, dst: int, payload: _t.Any, transfer: _t.Any = None,
                   offset: int = 0, pinned: bool | None = None):
        """cudaMemcpy host-to-device (generator).

        ``transfer`` is accepted for interface compatibility and ignored —
        a local copy has no network protocol.
        """
        transfer, pinned = reinterpret_legacy_pinned(
            transfer, pinned, "memcpy_h2d")
        nbytes = payload_nbytes(payload)
        with self._obs.start("client.memcpy_h2d", self._actor,
                             nbytes=nbytes) as span:
            alloc = self.gpu.memory.allocation(dst)
            if offset + nbytes > alloc.nbytes:
                raise MiddlewareError(
                    f"copy of {nbytes}B at offset {offset} exceeds "
                    f"allocation of {alloc.nbytes}B")
            yield self.gpu.dma.copy(
                nbytes, pinned=self.pinned if pinned is None else pinned,
                ctx=span.context)
            flat = as_flat_bytes(payload)
            if flat is not None:
                self.gpu.memory.write(dst, offset, flat)
                meta = payload_meta(payload)
                if meta is not None and offset == 0 and nbytes == alloc.nbytes:
                    self.gpu.memory.set_array_meta(dst, meta[0], meta[1])
            self.bytes_h2d += nbytes

    def memcpy_d2h(self, src: int, nbytes: int, transfer: _t.Any = None,
                   offset: int = 0, pinned: bool | None = None):
        """cudaMemcpy device-to-host (generator)."""
        transfer, pinned = reinterpret_legacy_pinned(
            transfer, pinned, "memcpy_d2h")
        nbytes = int(nbytes)
        with self._obs.start("client.memcpy_d2h", self._actor,
                             nbytes=nbytes) as span:
            alloc = self.gpu.memory.allocation(src)
            if offset + nbytes > alloc.nbytes:
                raise MiddlewareError(
                    f"copy of {nbytes}B at offset {offset} exceeds "
                    f"allocation of {alloc.nbytes}B")
            yield self.gpu.dma.copy(
                nbytes, pinned=self.pinned if pinned is None else pinned,
                ctx=span.context)
            self.bytes_d2h += nbytes
            if alloc.data is None:
                return Phantom(nbytes)
            # Zero-copy downloads return read-only loaned snapshot views
            # (allocation-level COW keeps them stable); callers that need
            # to mutate take the same .copy() the old code always paid.
            copy = not zero_copy_enabled()
            if (offset == 0 and alloc.dtype is not None and alloc.shape is not None
                    and nbytes == alloc.dtype.itemsize * int(np.prod(alloc.shape))):
                return self.gpu.memory.read_array(src, copy=copy)
            return self.gpu.memory.read(src, offset, nbytes, copy=copy)

    def capabilities(self) -> CapabilitySet:
        """What this front-end supports (see :class:`CapabilitySet`).

        ``peer_put=False``: there is no fabric, so peer transfers stage
        through host memory (D2H + H2D) instead of flowing device-direct.
        """
        return CapabilitySet(peer_put=False, streams=False,
                             zero_copy=zero_copy_enabled(), fabric=False)

    def peer_put(self, src: int, nbytes: int, peer: _t.Any, dst: int,
                 *legacy, transfer: _t.Any = None,
                 pinned: bool | None = None):
        """Staged peer copy: D2H into host memory, then H2D on ``peer``.

        A node-attached GPU has no fabric, so the bytes bounce through the
        host — same result, two PCIe crossings (``capabilities().peer_put``
        is False so callers can plan for the cost).  A peer that cannot
        receive (no ``memcpy_h2d``) raises the typed
        :class:`~repro.errors.UnsupportedOp`, matching the historical
        behaviour for unusable peers.
        """
        transfer = reinterpret_legacy_peer_transfer(legacy, transfer)
        if not hasattr(peer, "memcpy_h2d"):
            unsupported("peer_put", self)
        with self._obs.start("client.peer_put_staged", self._actor,
                             nbytes=int(nbytes)):
            data = yield from self.memcpy_d2h(src, int(nbytes),
                                              pinned=pinned)
            yield from peer.memcpy_h2d(dst, data, transfer=transfer,
                                       pinned=pinned)

    # -- kernels ----------------------------------------------------------
    def kernel_create(self, name: str):
        """cuModuleGetFunction analogue (generator).

        Installs the kernel from the extension catalog if the device does
        not have it yet (module upload).
        """
        from ..gpusim.kernels import resolve
        if not resolve(self.gpu.registry, name):
            raise MiddlewareError(f"unknown kernel {name!r}")
        self._kernels[name] = {}
        return
        yield  # pragma: no cover - makes this a generator

    def kernel_set_args(self, name: str, params: dict) -> None:
        if name not in self._kernels:
            raise MiddlewareError(f"kernel {name!r} was not created")
        self._kernels[name] = dict(params)

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True):
        """Launch and wait for completion (generator)."""
        if params is None:
            if name not in self._kernels:
                raise MiddlewareError(f"kernel {name!r} was not created")
            params = self._kernels[name]
        with self._obs.start("client.kernel_run", self._actor,
                             kernel=name) as span:
            result = yield self.gpu.launch(name, params, real=real,
                                           ctx=span.context)
            return result

    # -- misc --------------------------------------------------------------
    def ping(self):
        """Liveness probe; a local device answers in one dispatch delay."""
        with self._obs.start("client.ping", self._actor):
            yield self.engine.timeout(self.cpu.request_handling_s)
            return "pong"

    # -- streams ----------------------------------------------------------
    def stream(self, max_batch: int | None = None, name: str | None = None):
        """Create an asynchronous command stream over the local GPU.

        There is no RPC to batch, so the stream pumps ops one at a time —
        but the queue/future surface is identical to the remote one, which
        lets workloads and the deterministic harness run the same program
        against both backends.
        """
        from ..core.stream import DEFAULT_MAX_BATCH, Stream
        if max_batch is None:
            max_batch = DEFAULT_MAX_BATCH
        return Stream(self, self.engine, max_batch=max_batch, batching=False,
                      name=name or f"local-{self.gpu.name}-stream")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalAccelerator on {self.gpu.name}>"
