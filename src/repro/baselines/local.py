"""The static-architecture baseline: a node-attached ("CUDA local") GPU.

:class:`LocalAccelerator` exposes the same generator interface as
:class:`~repro.core.api.RemoteAccelerator` but drives the compute node's own
PCIe-attached GPU directly — no network, no daemon, exactly the "CUDA
local" configuration of Figures 7-11.  Workloads written against the common
interface can therefore be measured on either architecture unchanged.

``cudaMemcpy`` semantics follow the paper's measurement setup: *pinned*
host memory moves via the GPU's DMA engine, *pageable* memory via CPU
programmed I/O at lower bandwidth (Fig. 7/8 distinguish both).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import MiddlewareError
from ..gpusim import GPUDevice
from ..mpisim import Phantom, payload_nbytes
from ..sim import Engine
from ..cluster.specs import CPUSpec
from ..core.transfer import as_flat_bytes, payload_meta


class LocalAccelerator:
    """Front-end-compatible driver for a node-attached GPU."""

    def __init__(self, engine: Engine, gpu: GPUDevice, cpu: CPUSpec,
                 pinned: bool = True):
        self.engine = engine
        self.gpu = gpu
        self.cpu = cpu
        self.pinned = pinned
        self._kernels: dict[str, dict] = {}
        self.bytes_h2d = 0
        self.bytes_d2h = 0

    # -- memory management ----------------------------------------------
    def mem_alloc(self, nbytes: int):
        """cudaMalloc: returns the device address (generator)."""
        yield self.engine.timeout(self.cpu.malloc_s)
        return self.gpu.memory.malloc(int(nbytes))

    def mem_free(self, addr: int):
        """cudaFree (generator)."""
        yield self.engine.timeout(self.cpu.malloc_s)
        self.gpu.memory.free(addr)

    # -- data movement ----------------------------------------------------
    def memcpy_h2d(self, dst: int, payload: _t.Any, pinned: bool | None = None,
                   transfer: _t.Any = None, offset: int = 0):
        """cudaMemcpy host-to-device (generator).

        ``transfer`` is accepted for interface compatibility and ignored —
        a local copy has no network protocol.
        """
        nbytes = payload_nbytes(payload)
        alloc = self.gpu.memory.allocation(dst)
        if offset + nbytes > alloc.nbytes:
            raise MiddlewareError(
                f"copy of {nbytes}B at offset {offset} exceeds "
                f"allocation of {alloc.nbytes}B")
        yield self.gpu.dma.copy(nbytes, pinned=self.pinned if pinned is None else pinned)
        flat = as_flat_bytes(payload)
        if flat is not None:
            self.gpu.memory.write(dst, offset, flat)
            meta = payload_meta(payload)
            if meta is not None and offset == 0 and nbytes == alloc.nbytes:
                self.gpu.memory.set_array_meta(dst, meta[0], meta[1])
        self.bytes_h2d += nbytes

    def memcpy_d2h(self, src: int, nbytes: int, pinned: bool | None = None,
                   transfer: _t.Any = None, offset: int = 0):
        """cudaMemcpy device-to-host (generator)."""
        alloc = self.gpu.memory.allocation(src)
        nbytes = int(nbytes)
        if offset + nbytes > alloc.nbytes:
            raise MiddlewareError(
                f"copy of {nbytes}B at offset {offset} exceeds "
                f"allocation of {alloc.nbytes}B")
        yield self.gpu.dma.copy(nbytes, pinned=self.pinned if pinned is None else pinned)
        self.bytes_d2h += nbytes
        if alloc.data is None:
            return Phantom(nbytes)
        if (offset == 0 and alloc.dtype is not None and alloc.shape is not None
                and nbytes == alloc.dtype.itemsize * int(np.prod(alloc.shape))):
            return self.gpu.memory.read_array(src)
        return self.gpu.memory.read(src, offset, nbytes)

    # -- kernels ----------------------------------------------------------
    def kernel_create(self, name: str):
        """cuModuleGetFunction analogue (generator).

        Installs the kernel from the extension catalog if the device does
        not have it yet (module upload).
        """
        from ..gpusim.kernels import resolve
        if not resolve(self.gpu.registry, name):
            raise MiddlewareError(f"unknown kernel {name!r}")
        self._kernels[name] = {}
        return
        yield  # pragma: no cover - makes this a generator

    def kernel_set_args(self, name: str, params: dict) -> None:
        if name not in self._kernels:
            raise MiddlewareError(f"kernel {name!r} was not created")
        self._kernels[name] = dict(params)

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True):
        """Launch and wait for completion (generator)."""
        if params is None:
            if name not in self._kernels:
                raise MiddlewareError(f"kernel {name!r} was not created")
            params = self._kernels[name]
        result = yield self.gpu.launch(name, params, real=real)
        return result

    # -- streams ----------------------------------------------------------
    def stream(self, max_batch: int | None = None, name: str | None = None):
        """Create an asynchronous command stream over the local GPU.

        There is no RPC to batch, so the stream pumps ops one at a time —
        but the queue/future surface is identical to the remote one, which
        lets workloads and the deterministic harness run the same program
        against both backends.
        """
        from ..core.stream import DEFAULT_MAX_BATCH, Stream
        if max_batch is None:
            max_batch = DEFAULT_MAX_BATCH
        return Stream(self, self.engine, max_batch=max_batch, batching=False,
                      name=name or f"local-{self.gpu.name}-stream")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalAccelerator on {self.gpu.name}>"
