"""The ensemble/job service front door (Pegasus-style, Sect. V-B scaled up).

``repro.jobs`` turns one-python-process-drives-one-cluster into a serving
system: submit N :class:`JobSpec` jobs — priority, tenant, accelerator
count, DAG dependencies — and a :class:`JobService` schedules them through
the multi-tenant admission machinery, drives them concurrently over a
:class:`~repro.cluster.builder.Cluster`, and applies the warm paths that
make aggregation pay (cross-tenant request coalescing, per-tenant kernel
caching, allocation-lease reuse).
"""

from .service import (
    JobAccelerator,
    JobContext,
    JobRecord,
    JobService,
    JobSpec,
    JobState,
    KernelCache,
    LeasePool,
)

__all__ = [
    "JobAccelerator",
    "JobContext",
    "JobRecord",
    "JobService",
    "JobSpec",
    "JobState",
    "KernelCache",
    "LeasePool",
]
