"""Ensemble job service: DAG scheduling, warm leases, kernel caching.

The service sits in front of the middleware the way the Pegasus ensemble
manager sits in front of an MPI cluster: clients submit :class:`JobSpec`
ensembles (priority, tenant, accelerator count, dependencies) and the
service runs them concurrently over one simulated cluster, multiplexing
all jobs' control traffic through shared gateway ranks.

Scheduling reuses the multi-tenant machinery end to end:

* ready jobs queue in per-priority
  :class:`~repro.core.scheduler.WeightedFairQueue` instances (weight =
  the tenant's registered WFQ weight, cost = accelerator count), so a
  backlogged tenant's admission share tracks its weight;
* in-flight leases are capped by the
  :class:`~repro.core.scheduler.AdmissionController` capacity
  (``devices x slots_per_device``), so the ARM's own admission path never
  has to reject or preempt — which keeps job *outcomes* independent of
  request timing, the property the coalescing on/off identity check
  relies on;
* each granted job leases virtual accelerators through the ARM
  (``valloc`` + ``VAC_ATTACH``) and runs its body against
  :class:`JobAccelerator` front-ends.

Warm paths (both deterministic, both outcome-neutral):

* :class:`LeasePool` — a returned lease is kept attached for
  ``lease_ttl_s`` of virtual time and handed to the next same-tenant job
  on the same gateway, skipping the ARM valloc/attach round trips; an
  expiry watcher detaches leases nobody reclaimed.
* :class:`KernelCache` — KERNEL_CREATE only validates a module against
  the device-global registry, so once one job of a tenant created kernel
  K on device D, later creates of (tenant, D, K) are answered from the
  cache with no wire traffic at all.
* allocation cache — a freed device buffer is parked on its lease
  (still allocated in the lease's partition) and handed to the next
  same-size ``mem_alloc`` with no wire traffic; daemon-side malloc/free
  is serial daemon CPU, so under load this is the largest warm-path
  saving.  VAC_DETACH frees parked buffers with the lease.

Terminal states are distinct: DONE, FAILED (the body raised), and
CANCELLED (a dependency did not finish DONE — failure cascades down the
DAG without running descendants).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import typing as _t

from ..core.coalesce import DEFAULT_MAX_MERGE, FrameCoalescer
from ..core.protocol import Op
from ..core.reliability import RetryPolicy
from ..core.scheduler import TenantSpec, WeightedFairQueue
from ..errors import AllocationError, MiddlewareError, WorkloadError
from ..obs.metrics import MetricsRegistry
from ..sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..cluster.builder import Cluster
    from ..core.api import RemoteAccelerator

#: Default coalescing window (virtual seconds).  Zero means flush-on-
#: drain: the pump merges whatever accumulated while the previous frame
#: was in flight, which captures most of the round-trip savings under
#: load without adding any latency on an idle path.  A positive window
#: (a fraction of the ~4 us control round trip) buys denser frames at
#: the cost of that much added latency per frame.
DEFAULT_WINDOW_S = 0.0

#: Default time a returned lease stays warm before the pool detaches it.
DEFAULT_LEASE_TTL_S = 50e-3


class JobState(enum.Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"        # submitted; waiting on arrival/deps/slots
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"          # the body raised
    CANCELLED = "cancelled"    # a dependency ended FAILED or CANCELLED


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One job of an ensemble.

    ``deps`` names jobs this one must wait for; a job only runs when every
    dependency finished ``DONE`` (anything else cancels it).  ``priority``
    orders dispatch strictly (higher first); within a priority level the
    weighted fair queue interleaves tenants by weight.
    """

    name: str
    tenant: str
    body: _t.Callable[["JobContext"], _t.Iterator]
    n_accelerators: int = 1
    priority: int = 0
    deps: tuple[str, ...] = ()
    arrival_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("job name must be non-empty")
        if not self.tenant:
            raise WorkloadError(f"job {self.name!r} needs a tenant")
        if self.n_accelerators < 1:
            raise WorkloadError(
                f"job {self.name!r} needs at least one accelerator")
        if self.arrival_s < 0:
            raise WorkloadError(f"job {self.name!r}: negative arrival time")
        if self.name in self.deps:
            raise WorkloadError(
                f"dependency cycle: job {self.name!r} depends on itself")


@dataclasses.dataclass
class JobRecord:
    """Outcome and timeline of one submitted job."""

    spec: JobSpec
    state: JobState
    gateway: int
    submitted_s: float
    ready_s: float | None = None
    start_s: float | None = None
    end_s: float | None = None
    result: _t.Any = None
    error: BaseException | None = None
    #: Fires once the job reaches a terminal state (value: this record).
    done: Event = dataclasses.field(repr=False, default=None)
    #: Fires when the dispatcher grants the job its slots.
    _granted: Event = dataclasses.field(repr=False, default=None)
    _wfq_token: int | None = dataclasses.field(repr=False, default=None)

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED,
                              JobState.CANCELLED)

    @property
    def ok(self) -> bool:
        return self.state is JobState.DONE

    @property
    def latency_s(self) -> float | None:
        """Submission-to-terminal latency (arrival-adjusted)."""
        if self.end_s is None:
            return None
        return self.end_s - max(self.submitted_s, self.spec.arrival_s)


class KernelCache:
    """Per-tenant kernel-module residency cache.

    Keyed ``(tenant, device id, module hash)``: once a tenant's job
    created kernel K on device D, later jobs of the same tenant assigned
    to D skip the KERNEL_CREATE round trip entirely.  Safe because the
    daemon's KERNEL_CREATE only validates the name against the
    device-global registry — it holds no per-lease state — so a cached
    create has exactly the effect of a repeated one.  The module hash
    stands in for a binary hash in a real stack; here it is the SHA-256
    of the kernel name.
    """

    def __init__(self) -> None:
        self._resident: set[tuple[str, int, str]] = set()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def module_hash(name: str) -> str:
        return hashlib.sha256(name.encode()).hexdigest()

    def key(self, tenant: str, ac_id: int, name: str) -> tuple[str, int, str]:
        return (tenant, ac_id, self.module_hash(name))

    def lookup(self, tenant: str, ac_id: int, name: str) -> bool:
        """True (and counted as a hit) when the module is resident."""
        if self.key(tenant, ac_id, name) in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def record(self, tenant: str, ac_id: int, name: str) -> None:
        self._resident.add(self.key(tenant, ac_id, name))

    def invalidate_device(self, ac_id: int) -> None:
        """Drop every entry on one device (after a daemon restart)."""
        self._resident = {k for k in self._resident if k[1] != ac_id}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class JobAccelerator:
    """A job's accelerator front-end with the service's warm paths applied.

    Wraps a lease-scoped :class:`~repro.core.api.RemoteAccelerator`:
    batchable control ops are submitted as sub-frames to the gateway's
    :class:`~repro.core.coalesce.FrameCoalescer` (merging with concurrent
    jobs' traffic into MBATCH frames), KERNEL_CREATE consults the
    tenant's :class:`KernelCache` first, and ``mem_alloc``/``mem_free``
    go through the lease's allocation cache — a freed buffer is parked
    client-side and handed to the next same-size allocation with no wire
    traffic at all, which matters because every daemon-side malloc/free
    costs serial daemon CPU.  Bulk transfers keep their own frames,
    exactly as in per-stream batching.  Without a coalescer/lease every
    op delegates to the plain front-end — the uncoalesced baseline.
    """

    def __init__(self, remote: "RemoteAccelerator", tenant: str,
                 coalescer: FrameCoalescer | None = None,
                 kernel_cache: KernelCache | None = None,
                 lease: "_Lease | None" = None,
                 pool: "LeasePool | None" = None):
        self._ac = remote
        self.tenant = tenant
        self._coalescer = coalescer
        self._cache = kernel_cache
        self._lease = lease
        self._pool = pool

    @property
    def handle(self):
        return self._ac.handle

    @property
    def device_id(self) -> int:
        return self._ac.handle.ac_id

    def _one(self, op: Op, params: dict):
        """Issue one control op through the coalescer (generator)."""
        subs = yield from self._ac.coalesced_rpc(self._coalescer,
                                                 [(op, params)])
        resp = subs[0]
        resp.raise_for_status()
        return resp.value

    # -- the ac* surface -------------------------------------------------
    def mem_alloc(self, nbytes: int):
        nbytes = int(nbytes)
        if self._lease is not None:
            stack = self._lease.buffers.get(nbytes)
            if stack:
                # Warm hit: the buffer is still allocated in the lease's
                # partition from an earlier job — zero RPCs, zero daemon
                # time.  Contents are stale; bodies must fully write what
                # they read, which every kernel path here does.
                addr = stack.pop()
                self._lease.pooled_bytes -= nbytes
                self._ac._live[addr] = nbytes
                if self._pool is not None:
                    self._pool.alloc_hits += 1
                return addr
            if self._pool is not None:
                self._pool.alloc_misses += 1
        if self._coalescer is None:
            addr = yield from self._ac.mem_alloc(nbytes)
        else:
            addr = yield from self._one(Op.MEM_ALLOC,
                                        {"nbytes": nbytes})
        return addr

    def _park_buffer(self, addr: int) -> bool:
        """Park a freed buffer in the lease's allocation cache.

        Returns False (caller must really free) when pooling is off, the
        size is unknown, or parking would tie up more than half the
        lease's memory quota in idle buffers.
        """
        if self._lease is None:
            return False
        nbytes = self._ac._live.get(addr)
        if nbytes is None:
            return False
        quota = self._lease.grant.get("mem_quota")
        if quota is not None and (self._lease.pooled_bytes + nbytes) * 2 > quota:
            return False
        self._lease.buffers.setdefault(nbytes, []).append(addr)
        self._lease.pooled_bytes += nbytes
        self._ac._live.pop(addr, None)
        return True

    def mem_free(self, addr: int):
        if self._park_buffer(addr):
            return
        if self._coalescer is None:
            yield from self._ac.mem_free(addr)
            return
        yield from self._one(Op.MEM_FREE, {"addr": addr})

    def memcpy_h2d(self, dst: int, payload: _t.Any, **kw):
        yield from self._ac.memcpy_h2d(dst, payload, **kw)

    def memcpy_d2h(self, src: int, nbytes: int, **kw):
        out = yield from self._ac.memcpy_d2h(src, nbytes, **kw)
        return out

    def kernel_create(self, name: str):
        if self._cache is not None and self._cache.lookup(
                self.tenant, self.device_id, name):
            # Module already resident for this tenant+device: no wire
            # traffic, only the client-side staging bookkeeping.
            self._ac._kernels[name] = {}
            return
        if self._coalescer is None:
            yield from self._ac.kernel_create(name)
        else:
            yield from self._one(Op.KERNEL_CREATE, {"name": name})
            self._ac._kernels[name] = {}
        if self._cache is not None:
            self._cache.record(self.tenant, self.device_id, name)

    def kernel_set_args(self, name: str, params: dict) -> None:
        self._ac.kernel_set_args(name, params)

    def kernel_run(self, name: str, params: dict | None = None,
                   real: bool = True, timeout_s: float | None = None):
        if self._coalescer is None or timeout_s is not None:
            result = yield from self._ac.kernel_run(name, params, real=real,
                                                    timeout_s=timeout_s)
            return result
        if params is None:
            if name not in self._ac._kernels:
                raise MiddlewareError(
                    f"kernel {name!r} was not created on this accelerator")
            params = self._ac._kernels[name]
        result = yield from self._one(Op.KERNEL_RUN, {
            "name": name, "params": params, "real": real})
        return result

    def ping(self):
        if self._coalescer is None:
            value = yield from self._ac.ping()
            return value
        value = yield from self._one(Op.PING, {})
        return value

    def release(self):
        """Free every allocation this job still holds (generator)."""
        for addr in list(self._ac._live):
            yield from self.mem_free(addr)


@dataclasses.dataclass
class _Lease:
    """One attached virtual-accelerator lease held by the service."""

    tenant: str
    gateway: int
    grant: dict
    remote: "RemoteAccelerator"
    #: Set when a warm pool entry was claimed (watcher must not expire it).
    taken: bool = True
    #: Allocation cache: free device buffers by exact size (addr lists).
    #: Buffers parked here stay allocated inside the lease's memory
    #: partition and are handed back to a later same-size ``mem_alloc``
    #: with no wire traffic; VAC_DETACH frees them all server-side when
    #: the lease itself dies, so parking costs zero teardown RPCs too.
    buffers: dict[int, list[int]] = dataclasses.field(default_factory=dict)
    #: Bytes currently parked in ``buffers`` (bounded by the mem quota).
    pooled_bytes: int = 0


class LeasePool:
    """Warm allocation-lease reuse, keyed (tenant, gateway).

    A returned lease stays attached for ``ttl_s`` of virtual time; the
    next same-tenant job on the same gateway claims it LIFO (the most
    recently parked lease is the most likely to still be cached hot along
    the whole path) and skips the ARM valloc + VAC_ATTACH round trips.
    An expiry watcher per parked lease detaches it when the TTL passes
    unclaimed, so idle tenants do not pin device slots forever.
    """

    def __init__(self, service: "JobService", ttl_s: float):
        if ttl_s <= 0:
            raise WorkloadError(f"lease TTL must be positive: {ttl_s!r}")
        self.service = service
        self.ttl_s = ttl_s
        self._warm: dict[tuple[str, int], list[_Lease]] = {}
        #: Parked leases oldest-first (eviction order, across all keys).
        self._order: list[_Lease] = []
        self.reused = 0
        self.parked = 0
        self.expired = 0
        self.evicted = 0
        #: Allocation-cache accounting across every lease in the pool.
        self.alloc_hits = 0
        self.alloc_misses = 0

    @property
    def alloc_hit_rate(self) -> float:
        total = self.alloc_hits + self.alloc_misses
        return self.alloc_hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._order)

    def warm_count(self, tenant: str, gateway: int) -> int:
        """Parked leases currently claimable by (tenant, gateway)."""
        return len(self._warm.get((tenant, gateway), ()))

    def take(self, tenant: str, gateway: int) -> _Lease | None:
        stack = self._warm.get((tenant, gateway))
        if not stack:
            return None
        lease = stack.pop()
        lease.taken = True
        self._order.remove(lease)
        self.reused += 1
        return lease

    def park(self, lease: _Lease) -> None:
        lease.taken = False
        self._warm.setdefault((lease.tenant, lease.gateway), []).append(lease)
        self._order.append(lease)
        self.parked += 1
        engine = self.service.engine
        engine.process(self._expire(lease), name=f"lease-ttl:{lease.tenant}")

    def _unpark(self, lease: _Lease) -> None:
        self._warm[(lease.tenant, lease.gateway)].remove(lease)
        self._order.remove(lease)
        lease.taken = True

    def evict_one(self):
        """Tear down the oldest parked lease (generator).

        The make-room path: parked leases pin ARM device slots, so a cold
        allocation that finds the ARM full must reclaim one first or it
        would block until a TTL expiry — warm-path head-of-line blocking
        across tenants.  Oldest-first keeps the order deterministic.
        """
        if not self._order:
            return False
        lease = self._order[0]
        self._unpark(lease)
        self.evicted += 1
        yield from self.service._teardown_lease(lease)
        return True

    def _expire(self, lease: _Lease):
        yield self.service.engine.timeout(self.ttl_s)
        if lease.taken or lease not in self._order:
            return
        self._unpark(lease)
        self.expired += 1
        yield from self.service._teardown_lease(lease)

    def drain(self):
        """Detach every parked lease (generator; end-of-run cleanup)."""
        while self._order:
            lease = self._order[0]
            self._unpark(lease)
            yield from self.service._teardown_lease(lease)


class JobService:
    """The ensemble front door over one cluster (see module docstring)."""

    def __init__(self, cluster: "Cluster", *,
                 gateways: _t.Sequence[int] | None = None,
                 coalescing: bool = True,
                 window_s: float = DEFAULT_WINDOW_S,
                 max_merge: int = DEFAULT_MAX_MERGE,
                 caching: bool = True,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 max_in_flight: int | None = None,
                 retry: RetryPolicy | None = None,
                 metrics: MetricsRegistry | None = None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.admission = cluster.arm.admission
        self.gateways = list(gateways if gateways is not None
                             else range(len(cluster.compute_nodes)))
        if not self.gateways:
            raise WorkloadError("job service needs at least one gateway")
        self.coalescing = coalescing
        self.window_s = window_s
        self.max_merge = max_merge
        self.retry = retry
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        capacity = (len(cluster.accelerator_nodes)
                    * self.admission.slots_per_device)
        #: Concurrent-lease cap.  At most the admission capacity, so the
        #: ARM grants every valloc immediately — job outcomes then cannot
        #: depend on request timing (the on/off identity property).
        self.max_in_flight = min(max_in_flight or capacity, capacity)
        self._free = self.max_in_flight
        self._kick_scheduled = False
        self.kernel_cache = KernelCache() if caching else None
        self.lease_pool = (LeasePool(self, lease_ttl_s) if caching else None)
        self._arm_clients = {cn: cluster.arm_client(cn, retry=retry)
                             for cn in self.gateways}
        self._coalescers: dict[tuple[int, int], FrameCoalescer] = {}
        self._queues: dict[int, WeightedFairQueue] = {}
        self._records: dict[str, JobRecord] = {}
        self._tenant_gateway: dict[str, int] = {}
        self._n_submitted = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.leases_cold = 0
        #: Leases currently held at the ARM (active + parked) — the
        #: make-room path keeps this below capacity before a cold valloc.
        self._arm_held = 0

    # -- tenants ---------------------------------------------------------
    def ensure_tenant(self, tenant_id: str, weight: float = 1.0,
                      mem_quota_bytes: int | None = None) -> None:
        """Register (or update) a tenant with the shared admission policy.

        ``max_vaccels`` is pinned to the full capacity and the ARM
        priority to 0 for every tenant: the service's own dispatcher is
        the real admission point (strict :attr:`JobSpec.priority` levels,
        WFQ within a level), and a tighter ARM quota or a non-zero ARM
        priority would let grant outcomes — preemption, DENIED — depend
        on request arrival timing, breaking the warm-path on/off
        bit-identity.
        """
        self.admission.register(TenantSpec(
            tenant_id=tenant_id, weight=weight, priority=0,
            max_vaccels=max(self.max_in_flight, 1),
            mem_quota_bytes=mem_quota_bytes))

    def _tenant_weight(self, tenant_id: str) -> float:
        spec = self.admission.tenants.get(tenant_id)
        return spec.weight if spec is not None else 1.0

    # -- submission ------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Submit one job; its dependencies must already be submitted."""
        if spec.name in self._records:
            raise WorkloadError(f"duplicate job name {spec.name!r}")
        for dep in spec.deps:
            if dep not in self._records:
                raise WorkloadError(
                    f"job {spec.name!r} depends on unknown job {dep!r}")
        if spec.tenant not in self.admission.tenants:
            self.ensure_tenant(spec.tenant)
        # Tenant-sticky gateway assignment (tenants spread round-robin in
        # first-seen order): a tenant's jobs share one gateway so its
        # parked leases and coalescer are actually reclaimable — random
        # spreading would strand warm state behind the (tenant, gateway)
        # pool key.
        gateway = self._tenant_gateway.setdefault(
            spec.tenant,
            self.gateways[len(self._tenant_gateway) % len(self.gateways)])
        self._n_submitted += 1
        rec = JobRecord(spec=spec, state=JobState.PENDING, gateway=gateway,
                        submitted_s=self.engine.now,
                        done=Event(self.engine),
                        _granted=Event(self.engine))
        self._records[spec.name] = rec
        self.engine.process(self._job(rec), name=f"job:{spec.name}")
        return rec

    def submit_many(self, specs: _t.Sequence[JobSpec]) -> list[JobRecord]:
        """Submit a whole ensemble; rejects dependency cycles up front."""
        order = self._toposort(specs)
        by_name = {s.name: s for s in specs}
        records = [self.submit(by_name[name]) for name in order]
        by_rec = {r.spec.name: r for r in records}
        return [by_rec[s.name] for s in specs]

    @staticmethod
    def _toposort(specs: _t.Sequence[JobSpec]) -> list[str]:
        """Kahn's algorithm; raises on cycles and unknown dependencies."""
        by_name: dict[str, JobSpec] = {}
        for s in specs:
            if s.name in by_name:
                raise WorkloadError(f"duplicate job name {s.name!r}")
            by_name[s.name] = s
        indeg = {s.name: 0 for s in specs}
        dependents: dict[str, list[str]] = {s.name: [] for s in specs}
        for s in specs:
            for dep in s.deps:
                if dep not in by_name:
                    raise WorkloadError(
                        f"job {s.name!r} depends on unknown job {dep!r}")
                indeg[s.name] += 1
                dependents[dep].append(s.name)
        frontier = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            for child in dependents[name]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    frontier.append(child)
        if len(order) != len(specs):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise WorkloadError(
                f"dependency cycle among jobs: {', '.join(stuck)}")
        return order

    def record(self, name: str) -> JobRecord:
        return self._records[name]

    @property
    def records(self) -> list[JobRecord]:
        return list(self._records.values())

    # -- plumbing --------------------------------------------------------
    def coalescer_for(self, gateway: int, daemon_rank: int) -> FrameCoalescer | None:
        """The merge point for one (gateway, daemon) pair (None when off)."""
        if not self.coalescing:
            return None
        key = (gateway, daemon_rank)
        co = self._coalescers.get(key)
        if co is None:
            co = FrameCoalescer(self.cluster.compute_rank(gateway),
                                daemon_rank, window_s=self.window_s,
                                max_merge=self.max_merge, retry=self.retry)
            self._coalescers[key] = co
        return co

    @property
    def coalescers(self) -> list[FrameCoalescer]:
        return [self._coalescers[k] for k in sorted(self._coalescers)]

    def coalesce_stats(self) -> dict[str, float]:
        """Aggregate merge accounting across every gateway/daemon pair."""
        subs = sum(c.subs_in for c in self._coalescers.values())
        frames = sum(c.frames_out for c in self._coalescers.values())
        merged = sum(c.merged_subs for c in self._coalescers.values())
        return {
            "subs_in": subs,
            "frames_out": frames,
            "merged_subs": merged,
            "merged_ratio": merged / subs if subs else 0.0,
            "roundtrips_saved": subs - frames,
        }

    # -- the scheduler ---------------------------------------------------
    #: How far past the WFQ head the dispatcher may reach to grant a job
    #: that its tenant's parked leases can serve warm.  Bounds the
    #: fairness distortion the warm-first preference can introduce.
    WARM_LOOKAHEAD = 8

    def _schedule_kick(self) -> None:
        """Dispatch at the end of the current timestep, not synchronously.

        A finishing job frees its slots before its ``done`` event has
        woken dependents; dispatching immediately would hand the freed
        (and freshly parked) leases to whoever else is queued, while the
        same-tenant child that could run warm is still one engine step
        from enqueueing.  A zero-delay timeout sorts after those wakeups
        at the same virtual instant, so the dispatcher sees every job
        made ready by this step — deterministically, and with no
        virtual-time cost.
        """
        if self._kick_scheduled:
            return
        self._kick_scheduled = True
        self.engine.process(self._deferred_kick(), name="jobs:dispatch")

    def _deferred_kick(self):
        yield self.engine.timeout(0.0)
        self._kick_scheduled = False
        self._kick()

    def _kick(self) -> None:
        """Grant free slots to ready jobs (synchronous, deterministic).

        Strict priority across levels; start-time weighted fair queueing
        within a level (weight = tenant weight, cost = accelerator
        count).  Within the top level the dispatcher prefers — up to
        :data:`WARM_LOOKAHEAD` entries past the head — a job whose
        tenant has enough parked leases to run entirely warm: without
        this, the WFQ's cross-tenant interleave hands every freed slot
        to a *different* tenant, which must evict the parked lease and
        re-allocate cold, churning away the pool's whole benefit.  When
        the head job of the top non-empty level does not fit, lower
        levels wait (no backfill) — simple and timing-stable.
        """
        while True:
            level = None
            for prio in sorted(self._queues, reverse=True):
                if len(self._queues[prio]):
                    level = prio
                    break
            if level is None:
                return
            q = self._queues[level]
            head: JobRecord = q.peek()
            if head.spec.n_accelerators > self._free:
                return
            pick = head
            if self.lease_pool is not None and not self._warm_ready(head):
                for rec in q.items()[:self.WARM_LOOKAHEAD]:
                    if (rec.spec.n_accelerators <= self._free
                            and self._warm_ready(rec)):
                        pick = rec
                        break
            if pick is head:
                q.pop()
            else:
                q.remove(pick._wfq_token)
            self._free -= pick.spec.n_accelerators
            pick._granted.succeed(None)

    def _warm_ready(self, rec: JobRecord) -> bool:
        """True when the pool can serve every lease of ``rec`` warm."""
        return (self.lease_pool.warm_count(rec.spec.tenant, rec.gateway)
                >= rec.spec.n_accelerators)

    def _finish(self, rec: JobRecord, state: JobState,
                result: _t.Any = None,
                error: BaseException | None = None) -> None:
        rec.state = state
        rec.result = result
        rec.error = error
        rec.end_s = self.engine.now
        if state is JobState.DONE:
            self.jobs_done += 1
        elif state is JobState.FAILED:
            self.jobs_failed += 1
        else:
            self.jobs_cancelled += 1
        if state is not JobState.CANCELLED:
            self.metrics.histogram("job.latency_s",
                                   tenant=rec.spec.tenant).observe(
                rec.latency_s)
            self.metrics.histogram("jobs.latency_s").observe(rec.latency_s)
        self.metrics.counter(f"jobs.{state.value}").inc()
        rec.done.succeed(rec)

    def _job(self, rec: JobRecord):
        spec = rec.spec
        if self.engine.now < spec.arrival_s:
            yield self.engine.timeout(spec.arrival_s - self.engine.now)
        # 1. Dependencies: every parent must finish DONE.
        for dep_name in spec.deps:
            dep = self._records[dep_name]
            if not dep.finished:
                yield dep.done
        bad = [d for d in spec.deps
               if self._records[d].state is not JobState.DONE]
        if bad:
            cause = self._records[bad[0]]
            self._finish(rec, JobState.CANCELLED, error=WorkloadError(
                f"job {spec.name!r} cancelled: dependency "
                f"{cause.spec.name!r} {cause.state.value}"))
            return
        # 2. Queue for slots (priority levels, WFQ within a level).
        rec.ready_s = self.engine.now
        q = self._queues.setdefault(spec.priority, WeightedFairQueue())
        rec._wfq_token = q.enqueue(spec.tenant,
                                   self._tenant_weight(spec.tenant), rec,
                                   cost=float(spec.n_accelerators))
        self._schedule_kick()
        yield rec._granted
        rec.state = JobState.RUNNING
        rec.start_s = self.engine.now
        # 3. Acquire leases (warm pool first), run the body, clean up.
        leases: list[_Lease] = []
        result, error = None, None
        try:
            for _ in range(spec.n_accelerators):
                lease = yield from self._acquire_lease(spec.tenant,
                                                       rec.gateway,
                                                       job=spec.name)
                leases.append(lease)
            acs = [JobAccelerator(
                lease.remote, spec.tenant,
                coalescer=self.coalescer_for(
                    rec.gateway, lease.remote.handle.daemon_rank),
                kernel_cache=self.kernel_cache,
                lease=lease if self.lease_pool is not None else None,
                pool=self.lease_pool) for lease in leases]
            ctx = JobContext(service=self, spec=spec, record=rec,
                             accelerators=acs)
            result = yield from spec.body(ctx)
            for ac in acs:
                yield from ac.release()
        except Exception as exc:
            error = exc
        for lease in leases:
            yield from self._return_lease(lease, dirty=error is not None)
        self._free += spec.n_accelerators
        self._schedule_kick()
        if error is None:
            self._finish(rec, JobState.DONE, result=result)
        else:
            self._finish(rec, JobState.FAILED, error=error)

    # -- leases ----------------------------------------------------------
    def _acquire_lease(self, tenant: str, gateway: int, job: str):
        if self.lease_pool is not None:
            lease = self.lease_pool.take(tenant, gateway)
            if lease is not None:
                return lease
            # Parked leases (any tenant, any gateway) pin ARM device
            # slots; reclaim until the valloc below cannot block.  The
            # dispatcher admits at most `capacity` jobs' worth of leases,
            # so active + parked <= capacity and this always terminates
            # with a free slot.
            while self._arm_held >= self.max_in_flight:
                freed = yield from self.lease_pool.evict_one()
                if not freed:
                    break
        self.leases_cold += 1
        arm = self._arm_clients[gateway]
        # Reserve the slot before the valloc: a concurrent cold acquire
        # must not count this still-in-flight grant as free room, or one
        # of the two queues at a full ARM until a TTL expiry.
        self._arm_held += 1
        try:
            grant = yield from arm.valloc(tenant, wait=True, job=job)
        except BaseException:
            self._arm_held -= 1
            raise
        remote = self.cluster.remote(gateway, grant["vac"], retry=self.retry)
        yield from remote.vac_attach(share=grant["share"],
                                     mem_quota=grant["mem_quota"])
        return _Lease(tenant=tenant, gateway=gateway, grant=grant,
                      remote=remote)

    def _return_lease(self, lease: _Lease, dirty: bool = False):
        """Park a clean lease warm; tear down a dirty (failed-job) one."""
        if self.lease_pool is not None and not dirty:
            self.lease_pool.park(lease)
            return
        yield from self._teardown_lease(lease)

    def _teardown_lease(self, lease: _Lease):
        self._arm_held -= 1
        try:
            yield from lease.remote.vac_detach()
        except Exception:
            pass  # revoked/broken mid-teardown: vrelease still settles it
        try:
            yield from self._arm_clients[lease.gateway].vrelease(
                lease.grant["vac"])
        except AllocationError:
            pass  # already released (idempotent teardown)

    def drain(self):
        """Detach every warm lease (generator; run after the ensemble)."""
        if self.lease_pool is not None:
            yield from self.lease_pool.drain()
        return None

    # -- driving ---------------------------------------------------------
    def run_all(self, specs: _t.Sequence[JobSpec]) -> list[JobRecord]:
        """Submit an ensemble, run to completion, drain the warm pool."""
        records = self.submit_many(specs)
        if records:
            self.engine.run(until=self.engine.all_of(
                [r.done for r in records]))
        proc = self.engine.process(self.drain(), name="jobs:drain")
        self.engine.run(until=proc)
        return records


@dataclasses.dataclass
class JobContext:
    """What a running job's body receives."""

    service: JobService
    spec: JobSpec
    record: JobRecord
    accelerators: list[JobAccelerator]

    @property
    def engine(self):
        return self.service.engine

    @property
    def cluster(self):
        return self.service.cluster
