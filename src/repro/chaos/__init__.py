"""Chaos scenario library over the dynamic resource-discovery layer.

Composable, seeded, replayable elasticity/failure scenarios for the
discovered accelerator pool: node join/leave waves, rolling daemon
upgrades, network partitions, stragglers, slow links, and heartbeat
flapping — each scored with recovery-latency and SLO-violation metrics
and verified by deterministic replay (same seed, same trace digest).
"""

from .scenarios import (
    ChaosConfig,
    ChaosReport,
    Injection,
    SCENARIOS,
    Scenario,
    check_expectations,
    format_report,
    run,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "Injection",
    "Scenario",
    "SCENARIOS",
    "check_expectations",
    "format_report",
    "run",
]
