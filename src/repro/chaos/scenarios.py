"""Seeded, replayable chaos scenarios for the dynamic accelerator pool.

Each :class:`Scenario` composes injections from
:class:`~repro.core.faults.FaultInjector` — discovery-driven join/leave
waves, rolling daemon upgrades, network partitions and slow links via the
fabric, stragglers, heartbeat flapping — against a cluster whose ARM pool
membership is built entirely from the discovery feed
(``Cluster(discovery=True)`` + :meth:`ResourceManager.enable_discovery`).

While the injections churn the pool, an open-loop multi-tenant workload
(same population model as :mod:`repro.workloads.tenants`) offers load
through the lease/failover machinery; sessions ride out evictions and
revocations via :class:`~repro.core.reliability.TenantAccelerator`.

Every run is scored from the ARM's membership log and the obs metrics
registry:

* **recovery latency** — for each non-policy down event (``break``,
  ``evict``, ``leave:*`` except ``leave:scale-down``), the virtual time
  until pool capacity returns to its pre-event level
  (``chaos.recovery_latency_s`` histogram; unrecovered events counted in
  ``chaos.unrecovered``);
* **SLO violations** — completed sessions over ``slo_s`` plus failed,
  aborted, and stuck sessions (``chaos.slo_violations`` counter).

Runs are fully deterministic: the same scenario + :class:`ChaosConfig`
(including ``seed``) produces a bit-identical trace, membership log, and
payload contents, captured in :attr:`ChaosReport.digest`.  Every
``real_payload_every``-th session carries a real (seeded) payload through
h2d/d2h and checks it byte-for-byte on return — across failovers, which
replay the buffer from its host shadow — so corruption is caught, not
just liveness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import typing as _t

import numpy as np

from ..cluster import Cluster, paper_testbed
from ..core.discovery import Autoscaler, AutoscalerPolicy
from ..core.faults import FaultInjector
from ..core.protocol import reset_request_ids
from ..core.reliability import FailoverConfig, RetryPolicy, tenant_accelerator
from ..errors import AllocationError, ReproError, WorkloadError
from ..mpisim import Phantom
from ..obs import MetricsRegistry
from ..workloads.tenants import draw_spec

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.arm import ResourceManager


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run (times in virtual seconds)."""

    n_tenants: int = 48
    requests_per_tenant: int = 2
    n_gateways: int = 2
    #: Accelerator nodes built (the discovered pool's ceiling).
    n_accelerators: int = 6
    #: Agents publishing from t=0; the rest are headroom (joins/autoscale).
    initial_accelerators: int = 4
    slots_per_device: int = 2
    #: Arrivals are uniform over ``[warmup_s, warmup_s + window_s)``.
    window_s: float = 20e-3
    payload_bytes: int = 4096
    #: Every k-th session carries a real seeded payload and verifies it
    #: byte-for-byte after d2h (0 disables; the rest use phantoms).
    real_payload_every: int = 4
    seed: int = 0
    #: A session slower than this end-to-end is an SLO violation.
    slo_s: float = 5e-3
    #: Discovery report cadence and the ARM's eviction TTL.
    report_period_s: float = 5e-4
    ttl_s: float = 2e-3
    sweep_period_s: float = 5e-4
    #: Per-RPC deadline on the data plane (fault detection latency).
    rpc_timeout_s: float = 1.5e-3
    max_failovers: int = 8
    #: Discovery reports must land before load arrives — an empty pool
    #: rejects valloc outright instead of queueing.
    warmup_s: float = 2e-3
    #: Wall on the drain phase; sessions still alive then are "stuck".
    drain_timeout_s: float = 0.5
    #: Daemon-side receive deadline for stalled h2d block streams.
    data_stall_s: float = 2e-3
    autoscale: bool = False
    #: Partition the engine into this many shards (None = plain engine).
    #: Sharded chaos runs are bit-identical to unsharded ones — the
    #: equivalence suite replays this family across shard counts.
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise WorkloadError("n_tenants must be >= 1")
        if not 1 <= self.n_accelerators <= 8:
            raise WorkloadError("n_accelerators must be in 1..8")
        if not 1 <= self.initial_accelerators <= self.n_accelerators:
            raise WorkloadError(
                "initial_accelerators must be in 1..n_accelerators")
        if self.window_s <= 0 or self.warmup_s < 0:
            raise WorkloadError("window_s/warmup_s must be positive")
        if self.payload_bytes < 8:
            raise WorkloadError("payload_bytes must be >= 8")


#: Injection kinds understood by :func:`_apply` (all times are relative
#: to the end of the warmup phase).
INJECTION_KINDS = frozenset({
    "join", "leave", "flap", "slow", "partition", "slow-link", "upgrade",
})


@dataclasses.dataclass(frozen=True)
class Injection:
    """One declarative chaos injection inside a scenario.

    ``kind`` selects the :class:`~repro.core.faults.FaultInjector` path:

    * ``join`` — start ``ac_id``'s discovery agent at ``at_s``;
    * ``leave`` — stop it; ``reason=None`` leaves silently (TTL evict),
      otherwise an ``ARM_LEAVE`` announces the departure;
    * ``flap`` — pause/resume reports every ``half_period_s`` until
      ``until_s`` (heartbeat flapping);
    * ``slow`` — multiply the daemon's software costs (and report
      cadence) by ``factor`` until ``until_s`` (straggler);
    * ``partition`` — cut the fabric between ``ac_id`` and every
      gateway plus the ARM until ``until_s``;
    * ``slow-link`` — add ``extra_s`` propagation latency between
      ``ac_id`` and every gateway until ``until_s``;
    * ``upgrade`` — graceful leave, ``downtime_s`` of unreachability,
      restart advertising ``version``, rejoin via discovery.
    """

    kind: str
    at_s: float
    ac_id: int
    until_s: float | None = None
    factor: float = 1.0
    extra_s: float = 0.0
    version: str | None = None
    reason: str | None = "departed"
    half_period_s: float | None = None
    downtime_s: float = 1.5e-3

    def __post_init__(self) -> None:
        if self.kind not in INJECTION_KINDS:
            raise WorkloadError(f"unknown injection kind {self.kind!r}; "
                                f"try one of {sorted(INJECTION_KINDS)}")


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, composable chaos scenario."""

    name: str
    description: str
    #: How the system is expected to recover (the catalog table).
    recovery_path: str
    #: ``cfg -> injections`` so timings can scale with the config.
    injections: _t.Callable[[ChaosConfig], list[Injection]]
    #: Close the loop with the Autoscaler during this scenario.
    autoscale: bool = False
    #: Override ``cfg.initial_accelerators`` (autoscale headroom).
    initial: int | None = None
    #: Reshape the run config (e.g. compress the arrival window into a
    #: burst).  Applied to the caller's config, so seed/size knobs pass
    #: through.
    tweak: _t.Callable[[ChaosConfig], ChaosConfig] | None = None


def _apply(injector: FaultInjector, cfg: ChaosConfig, inj: Injection,
           t0: float) -> None:
    """Schedule one injection, shifting times past the warmup phase."""
    at = t0 + inj.at_s
    until = None if inj.until_s is None else t0 + inj.until_s
    if inj.kind == "join":
        injector.join_at(inj.ac_id, at)
    elif inj.kind == "leave":
        injector.leave_at(inj.ac_id, at, reason=inj.reason)
    elif inj.kind == "flap":
        injector.flap_at(inj.ac_id, at, until, inj.half_period_s)
    elif inj.kind == "slow":
        injector.slow_at(inj.ac_id, at, inj.factor, until_time=until)
    elif inj.kind == "partition":
        me = [f"ac{inj.ac_id}"]
        others = [f"cn{g}" for g in range(cfg.n_gateways)] + ["arm"]
        injector.partition_at(me, others, at, until_time=until)
    elif inj.kind == "slow-link":
        for g in range(cfg.n_gateways):
            injector.slow_link_at(f"ac{inj.ac_id}", f"cn{g}", inj.extra_s,
                                  at, until_time=until)
    elif inj.kind == "upgrade":
        injector.upgrade_at(inj.ac_id, at, inj.version or "v2",
                            downtime_s=inj.downtime_s)


# -- the scenario catalog -------------------------------------------------

def _join_leave_waves(cfg: ChaosConfig) -> list[Injection]:
    w = cfg.window_s
    return [
        Injection("join", 0.10 * w, ac_id=4),
        Injection("join", 0.20 * w, ac_id=5),
        Injection("leave", 0.35 * w, ac_id=0, reason="departed"),
        Injection("leave", 0.50 * w, ac_id=1, reason=None),  # TTL evict
        Injection("join", 0.65 * w, ac_id=0),
        Injection("join", 0.75 * w, ac_id=1),
    ]


def _rolling_upgrade(cfg: ChaosConfig) -> list[Injection]:
    w = cfg.window_s
    return [
        Injection("upgrade", (0.10 + 0.20 * i) * w, ac_id=i, version="v2")
        for i in range(min(3, cfg.initial_accelerators))
    ]


def _partition(cfg: ChaosConfig) -> list[Injection]:
    w = cfg.window_s
    return [Injection("partition", 0.20 * w, ac_id=2, until_s=0.50 * w)]


def _straggler(cfg: ChaosConfig) -> list[Injection]:
    w = cfg.window_s
    return [Injection("slow", 0.15 * w, ac_id=1, factor=20.0,
                      until_s=0.60 * w)]


def _slow_link(cfg: ChaosConfig) -> list[Injection]:
    # Extra one-way latency below the RPC deadline: degradation without
    # eviction — pure SLO pressure.
    w = cfg.window_s
    return [Injection("slow-link", 0.15 * w, ac_id=0, extra_s=4e-4,
                      until_s=0.60 * w)]


def _heartbeat_flap(cfg: ChaosConfig) -> list[Injection]:
    # Half-period just over the TTL: each pause evicts, each resume
    # rejoins — maximal membership churn with a healthy daemon.
    w = cfg.window_s
    return [Injection("flap", 0.15 * w, ac_id=1, until_s=0.65 * w,
                      half_period_s=1.25 * cfg.ttl_s)]


def _autoscale_burst(cfg: ChaosConfig) -> list[Injection]:
    # The burst itself is the whole offered load; mid-run one pool
    # member silently dies so the scaler must also ride out a failure.
    w = cfg.window_s
    return [Injection("leave", 0.50 * w, ac_id=1, reason=None)]


def _burstify(cfg: ChaosConfig) -> ChaosConfig:
    # The whole population slams a 2-node, 1-slot pool in a fraction of
    # the window: backlog builds, the autoscaler must grow the pool.
    return dataclasses.replace(cfg, slots_per_device=1,
                               window_s=cfg.window_s * 0.15)


SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (
        Scenario(
            "join_leave_waves",
            "nodes join and leave (gracefully and silently) in waves",
            "ARM_LEAVE removes records now; silent leavers age out via "
            "TTL; joins wake queued waiters exactly once",
            _join_leave_waves),
        Scenario(
            "rolling_upgrade",
            "one node at a time: announce, restart upgraded, rejoin",
            "leases revoked at take-down fail over; the upgraded daemon "
            "rejoins through the discovery feed with its new version",
            _rolling_upgrade),
        Scenario(
            "partition",
            "one accelerator cut off from gateways and ARM, then healed",
            "reports stop crossing the cut, TTL evicts the node, "
            "in-flight sessions time out and fail over; heal rejoins",
            _partition),
        Scenario(
            "straggler",
            "one daemon 20x slower (gray failure), later restored",
            "late reports age out via the same TTL as a crash; the "
            "restored daemon's next report is a fresh join",
            _straggler),
        Scenario(
            "slow_link",
            "extra latency on one node's gateway links (no eviction)",
            "RPCs stay under their deadline, so no failover: the node "
            "keeps serving and the damage shows as SLO violations",
            _slow_link),
        Scenario(
            "heartbeat_flap",
            "one healthy daemon's reports flap on/off past the TTL",
            "repeated evict/rejoin churn; leases are revoked ARM-side "
            "while the untouched daemon keeps serving the slice",
            _heartbeat_flap),
        Scenario(
            "autoscale_burst",
            "burst load on a 2-node pool with autoscaling headroom",
            "backlog triggers scale-up through the discovery join path; "
            "idle rounds after the burst retire nodes (leave:scale-down)",
            _autoscale_burst, autoscale=True, initial=2, tweak=_burstify),
    )
}


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one :func:`run` (virtual seconds throughout)."""

    scenario: str
    config: ChaosConfig
    duration_s: float
    submitted: int
    completed: int
    rejected: int
    aborted: int
    failed: int
    #: Sessions still alive when the drain wall expired.
    stuck: int
    #: Real-payload sessions whose d2h bytes mismatched.
    corrupted: int
    #: Failovers + preemption recoveries survived across all sessions.
    recoveries: int
    #: Completed sessions slower than ``slo_s``.
    late: int
    #: late + failed + aborted + stuck.
    slo_violations: int
    latency_p50_s: float
    latency_p99_s: float
    #: Pool-membership churn (ARM counters).
    joins: int
    leaves: int
    ttl_evictions: int
    #: Per-down-event time until pool capacity recovered.
    recovery_latencies_s: list[float]
    #: Down events whose capacity never came back before the run ended.
    unrecovered: int
    scale_ups: int
    scale_downs: int
    #: SHA-256 over trace + membership log + payload digests.
    digest: str
    #: (tenant, request) -> sha256 of the returned payload bytes.
    buffer_digests: dict = dataclasses.field(repr=False, default_factory=dict)
    pool_events: list = dataclasses.field(repr=False, default_factory=list)
    registry: MetricsRegistry = dataclasses.field(repr=False, default=None)

    def recovery_p50_s(self) -> float:
        lat = sorted(self.recovery_latencies_s)
        return lat[len(lat) // 2] if lat else 0.0

    def recovery_max_s(self) -> float:
        return max(self.recovery_latencies_s, default=0.0)

    def to_dict(self) -> dict:
        doc = {f.name: getattr(self, f.name)
               for f in dataclasses.fields(self)
               if f.name not in ("config", "registry", "buffer_digests",
                                 "pool_events")}
        doc["config"] = dataclasses.asdict(self.config)
        doc["recovery_p50_s"] = self.recovery_p50_s()
        doc["recovery_max_s"] = self.recovery_max_s()
        return doc


def score_pool_events(events: _t.Sequence[tuple[float, str, int]],
                      ) -> tuple[list[float], int]:
    """Recovery latencies from the ARM's membership log.

    Walks ``arm.pool_events`` tracking usable pool capacity.  Every
    capacity-losing event that is not deliberate policy (``break``,
    ``evict``, any ``leave`` except ``leave:scale-down``) opens a
    recovery window; the window closes when capacity next returns to its
    pre-event level (whoever brings it back — the same node rejoining or
    a different one).  Returns the closed windows' latencies and the
    count never closed.
    """
    size = 0
    pending: list[tuple[float, int]] = []  # (down time, size to regain)
    latencies: list[float] = []
    for when, kind, _ac_id in events:
        if kind in ("join", "rejoin", "repair"):
            size += 1
            still = []
            for t_down, need in pending:
                if size >= need:
                    latencies.append(when - t_down)
                else:
                    still.append((t_down, need))
            pending = still
        elif kind == "break" or kind == "evict" or kind.startswith("leave"):
            size -= 1
            if kind != "leave:scale-down":
                pending.append((when, size + 1))
    return latencies, len(pending)


def _one_session(cluster: Cluster, arm, make_remote, tenant_id: str,
                 req_idx: int, arrival_s: float, payload,
                 cfg: ChaosConfig, reg: MetricsRegistry, tally: dict,
                 trace: list, buffers: dict):
    """One tenant session: lease, alloc, h2d, kernel, d2h, verify, release.

    ``payload`` is a seeded numpy array for verified sessions or a
    Phantom for timing-only ones.  The failover wrapper replays the
    buffer from its host shadow across lease losses, so the d2h bytes
    must match the h2d bytes no matter how much chaos hit in between.
    """
    engine = cluster.engine
    yield engine.timeout(arrival_s)
    t0 = engine.now
    real = not isinstance(payload, Phantom)
    try:
        ac = yield from tenant_accelerator(
            arm, make_remote, tenant_id,
            config=FailoverConfig(wait_for_replacement=True,
                                  max_failovers=cfg.max_failovers))
    except AllocationError:
        tally["rejected"] += 1
        reg.counter("chaos.rejected").inc()
        trace.append((tenant_id, req_idx, arrival_s, engine.now, "rejected"))
        return
    except ReproError as exc:
        # The lease was granted but the guarded first attach exhausted
        # its failover budget (e.g. every placement died under it).
        tally["failed"] += 1
        reg.counter("chaos.failed").inc()
        trace.append((tenant_id, req_idx, arrival_s, engine.now,
                      f"failed:{type(exc).__name__}"))
        return
    outcome = "ok"
    try:
        addr = yield from ac.mem_alloc(cfg.payload_bytes)
        yield from ac.memcpy_h2d(addr, payload)
        yield from ac.kernel_create("dscal")
        yield from ac.kernel_run(
            "dscal", {"x": addr, "n": cfg.payload_bytes // 8, "alpha": 1.0},
            real=False)
        out = yield from ac.memcpy_d2h(addr, cfg.payload_bytes)
        if real:
            got = out.tobytes() if isinstance(out, np.ndarray) else None
            if got != payload.tobytes():
                tally["corrupted"] += 1
                reg.counter("chaos.corrupted").inc()
            buffers[(tenant_id, req_idx)] = hashlib.sha256(
                got if got is not None else b"<phantom>").hexdigest()
        yield from ac.release_lease()
    except AllocationError:
        # Mid-session lease loss whose reacquire lost the quota race.
        outcome = "aborted"
        tally["aborted"] += 1
        reg.counter("chaos.aborted").inc()
    except ReproError as exc:
        outcome = f"failed:{type(exc).__name__}"
        tally["failed"] += 1
        reg.counter("chaos.failed").inc()
    finally:
        tally["recoveries"] += ac.failovers + ac.preemptions_survived
    done = engine.now
    if outcome == "ok":
        latency = done - t0
        tally["completed"] += 1
        reg.histogram("chaos.latency_s").observe(latency)
        if latency > cfg.slo_s:
            tally["late"] += 1
    trace.append((tenant_id, req_idx, arrival_s, done, outcome))


def run(scenario: Scenario | str, cfg: ChaosConfig | None = None,
        ) -> ChaosReport:
    """Run one chaos scenario against the offered tenant load and score it."""
    if isinstance(scenario, str):
        if scenario not in SCENARIOS:
            raise WorkloadError(f"unknown scenario {scenario!r}; "
                                f"try one of {sorted(SCENARIOS)}")
        scenario = SCENARIOS[scenario]
    cfg = cfg or ChaosConfig()
    if scenario.tweak is not None:
        cfg = scenario.tweak(cfg)
    if scenario.initial is not None:
        cfg = dataclasses.replace(cfg, initial_accelerators=scenario.initial)
    reset_request_ids()
    rng = random.Random(cfg.seed)
    reg = MetricsRegistry()

    cluster = Cluster(
        paper_testbed(n_compute=cfg.n_gateways,
                      n_accelerators=cfg.n_accelerators),
        discovery=True, initial_accelerators=cfg.initial_accelerators,
        report_period_s=cfg.report_period_s, shards=cfg.shards)
    cluster.arm.admission.slots_per_device = cfg.slots_per_device
    cluster.arm.enable_discovery(ttl_s=cfg.ttl_s,
                                 sweep_period_s=cfg.sweep_period_s)
    for daemon in cluster.daemons:
        daemon.data_stall_s = cfg.data_stall_s

    injector = FaultInjector(cluster)
    for inj in scenario.injections(cfg):
        _apply(injector, cfg, inj, cfg.warmup_s)

    autoscaler = None
    if scenario.autoscale or cfg.autoscale:
        autoscaler = Autoscaler(
            cluster.arm, list(cluster.agents.values()),
            policy=AutoscalerPolicy(min_nodes=1,
                                    max_nodes=cfg.n_accelerators),
            registry=reg)
        autoscaler.start()

    # Warmup: the first reports must land before load arrives (an empty
    # pool rejects valloc outright rather than queueing the tenant).
    cluster.run(until=cfg.warmup_s)

    tally = {"completed": 0, "rejected": 0, "aborted": 0, "failed": 0,
             "recoveries": 0, "late": 0, "corrupted": 0}
    trace: list[tuple] = []
    buffers: dict[tuple[str, int], str] = {}

    tenants = [f"t{i:04d}" for i in range(cfg.n_tenants)]
    for tenant_id in tenants:
        cluster.arm.admission.register(draw_spec(rng, tenant_id))

    retry = RetryPolicy(timeout_s=cfg.rpc_timeout_s)
    # ARM clients run without a deadline: the ARM itself is never the
    # injected fault, and queued valloc waits are legitimately unbounded.
    arms = [cluster.arm_client(g) for g in range(cfg.n_gateways)]
    makers = [
        (lambda g: (lambda h: cluster.remote(g, h, retry=retry)))(g)
        for g in range(cfg.n_gateways)
    ]

    procs = []
    submitted = 0
    for i, tenant_id in enumerate(tenants):
        g = i % cfg.n_gateways
        for r in range(cfg.requests_per_tenant):
            arrival = cfg.warmup_s + rng.uniform(0.0, cfg.window_s)
            real = (cfg.real_payload_every > 0
                    and submitted % cfg.real_payload_every == 0)
            # Drawn here (not inside the process) so RNG consumption is
            # independent of completion order.
            payload = (np.frombuffer(rng.randbytes(cfg.payload_bytes),
                                     dtype=np.uint8).copy()
                       if real else Phantom(cfg.payload_bytes))
            procs.append(cluster.engine.process(
                _one_session(cluster, arms[g], makers[g], tenant_id, r,
                             arrival, payload, cfg, reg, tally, trace,
                             buffers),
                name=f"{tenant_id}.r{r}"))
            submitted += 1

    # The discovery agents and TTL sweeper keep the event heap non-empty
    # forever, so the run is bounded: all sessions done, or the wall.
    done = cluster.engine.all_of(procs)
    cluster.run(until=cluster.engine.any_of(
        [done, cluster.engine.timeout(cfg.drain_timeout_s)]))
    stuck = sum(1 for p in procs if not p.triggered)
    cluster.arm.stop_discovery()
    if autoscaler is not None:
        autoscaler.stop()

    pool_events = list(cluster.arm.pool_events)
    latencies, unrecovered = score_pool_events(pool_events)
    hist = reg.histogram("chaos.recovery_latency_s")
    for lat in latencies:
        hist.observe(lat)
    if unrecovered:
        reg.counter("chaos.unrecovered").inc(unrecovered)
    slo_violations = tally["late"] + tally["failed"] + tally["aborted"] + stuck
    reg.counter("chaos.slo_violations").inc(slo_violations)
    reg.counter("chaos.stuck").inc(stuck)
    reg.gauge("chaos.pool_joins").set(cluster.arm.joins)
    reg.gauge("chaos.pool_leaves").set(cluster.arm.leaves)
    reg.gauge("chaos.ttl_evictions").set(cluster.arm.ttl_evictions)

    sha = hashlib.sha256()
    for row in sorted(trace):
        sha.update(repr(row).encode())
    for ev in pool_events:
        sha.update(repr(ev).encode())
    for key in sorted(buffers):
        sha.update(repr((key, buffers[key])).encode())
    if autoscaler is not None:
        for ev in autoscaler.events:
            sha.update(repr(ev).encode())

    agg = reg.histogram("chaos.latency_s")
    return ChaosReport(
        scenario=scenario.name,
        config=cfg,
        duration_s=cluster.engine.now,
        submitted=submitted,
        completed=tally["completed"],
        rejected=tally["rejected"],
        aborted=tally["aborted"],
        failed=tally["failed"],
        stuck=stuck,
        corrupted=tally["corrupted"],
        recoveries=tally["recoveries"],
        late=tally["late"],
        slo_violations=slo_violations,
        latency_p50_s=agg.percentile(50.0) if agg.count else 0.0,
        latency_p99_s=agg.percentile(99.0) if agg.count else 0.0,
        joins=cluster.arm.joins,
        leaves=cluster.arm.leaves,
        ttl_evictions=cluster.arm.ttl_evictions,
        recovery_latencies_s=latencies,
        unrecovered=unrecovered,
        scale_ups=autoscaler.scale_ups if autoscaler else 0,
        scale_downs=autoscaler.scale_downs if autoscaler else 0,
        digest=sha.hexdigest(),
        buffer_digests=buffers,
        pool_events=pool_events,
        registry=reg,
    )


def format_report(report: ChaosReport) -> str:
    """Human-readable summary (the CLI's output)."""
    cfg = report.config
    lines = [
        f"scenario {report.scenario}: "
        f"{SCENARIOS[report.scenario].description}",
        f"tenants {cfg.n_tenants}  accelerators {cfg.n_accelerators} "
        f"(initial {cfg.initial_accelerators})  "
        f"slots/dev {cfg.slots_per_device}  seed {cfg.seed}",
        f"submitted {report.submitted}  completed {report.completed}  "
        f"rejected {report.rejected}  aborted {report.aborted}  "
        f"failed {report.failed}  stuck {report.stuck}  "
        f"corrupted {report.corrupted}",
        f"pool churn: joins {report.joins}  leaves {report.leaves}  "
        f"ttl evictions {report.ttl_evictions}  "
        f"recoveries ridden out {report.recoveries}",
        f"recovery latency: events {len(report.recovery_latencies_s)}  "
        f"p50 {report.recovery_p50_s() * 1e3:.3f} ms  "
        f"max {report.recovery_max_s() * 1e3:.3f} ms  "
        f"unrecovered {report.unrecovered}",
        f"SLO ({cfg.slo_s * 1e3:.1f} ms): violations "
        f"{report.slo_violations} (late {report.late}  "
        f"failed {report.failed}  aborted {report.aborted}  "
        f"stuck {report.stuck})",
        f"session latency p50 {report.latency_p50_s * 1e3:.3f} ms  "
        f"p99 {report.latency_p99_s * 1e3:.3f} ms",
    ]
    if report.scale_ups or report.scale_downs:
        lines.append(f"autoscaler: scale-ups {report.scale_ups}  "
                     f"scale-downs {report.scale_downs}")
    lines.append(f"trace digest {report.digest[:16]}")
    return "\n".join(lines)


def check_expectations(report: ChaosReport, bounds: dict) -> list[str]:
    """Compare a report against checked-in expectation bounds.

    ``bounds`` is one scenario's entry from
    ``benchmarks/chaos_expectations.json``.  Returns human-readable
    violation strings (empty = within bounds).
    """
    problems: list[str] = []

    def gate(label: str, value, limit, ok) -> None:
        if limit is not None and not ok(value, limit):
            problems.append(f"{report.scenario}: {label} {value} "
                            f"violates bound {limit}")

    gate("completed", report.completed, bounds.get("min_completed"),
         lambda v, b: v >= b)
    gate("failed", report.failed, bounds.get("max_failed"),
         lambda v, b: v <= b)
    gate("stuck", report.stuck, bounds.get("max_stuck"), lambda v, b: v <= b)
    gate("corrupted", report.corrupted, bounds.get("max_corrupted"),
         lambda v, b: v <= b)
    gate("slo_violations", report.slo_violations,
         bounds.get("max_slo_violations"), lambda v, b: v <= b)
    gate("unrecovered", report.unrecovered, bounds.get("max_unrecovered"),
         lambda v, b: v <= b)
    gate("recovery events", len(report.recovery_latencies_s),
         bounds.get("min_recovery_events"), lambda v, b: v >= b)
    gate("recovery max (ms)", round(report.recovery_max_s() * 1e3, 3),
         bounds.get("max_recovery_latency_ms"), lambda v, b: v <= b)
    gate("scale_ups", report.scale_ups, bounds.get("min_scale_ups"),
         lambda v, b: v >= b)
    return problems
