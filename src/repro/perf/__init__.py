"""Wall-clock benchmark suite and its JSON schema.

``python -m repro perf`` runs :func:`repro.perf.suite.run_suite`;
``BENCH_*.json`` documents follow :mod:`repro.perf.schema`.
"""

from .schema import BenchSchemaError, SCHEMA, speedup, validate_bench
from .suite import (
    BENCHMARKS,
    REGRESSION_GATES,
    attach_baseline,
    check_regressions,
    load_json,
    render,
    run_suite,
    write_json,
)

__all__ = [
    "BENCHMARKS",
    "BenchSchemaError",
    "REGRESSION_GATES",
    "SCHEMA",
    "attach_baseline",
    "check_regressions",
    "load_json",
    "render",
    "run_suite",
    "speedup",
    "validate_bench",
    "write_json",
]
