"""Schema of the wall-clock benchmark JSON (``BENCH_*.json``).

One document records one suite run: host metadata, every benchmark's
headline value (with its unit and direction), and — when the run was
compared against an earlier document — the baseline values plus the
resulting speedups.  The validator is deliberately dependency-free (no
jsonschema): CI runs it on every artifact, and the checked-in baseline
is validated by the test suite.
"""

from __future__ import annotations

import typing as _t

from ..errors import MiddlewareError

#: Document format marker; bump on breaking layout changes.
SCHEMA = "repro-perf/1"

#: Allowed ``better`` orientations for a benchmark value.
BETTER = ("higher", "lower")


class BenchSchemaError(MiddlewareError):
    """A benchmark JSON document does not match the schema."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise BenchSchemaError(msg)


def validate_benchmark(name: str, bench: _t.Any) -> None:
    """Validate one entry of the ``benchmarks`` map."""
    _require(isinstance(bench, dict), f"{name}: benchmark must be an object")
    for key in ("value", "unit", "better", "wall_s"):
        _require(key in bench, f"{name}: missing field {key!r}")
    _require(isinstance(bench["value"], (int, float))
             and not isinstance(bench["value"], bool),
             f"{name}: value must be a number")
    _require(bench["value"] >= 0, f"{name}: value must be non-negative")
    _require(isinstance(bench["unit"], str) and bench["unit"],
             f"{name}: unit must be a non-empty string")
    _require(bench["better"] in BETTER,
             f"{name}: better must be one of {BETTER}")
    _require(isinstance(bench["wall_s"], (int, float))
             and bench["wall_s"] >= 0,
             f"{name}: wall_s must be a non-negative number")
    if "detail" in bench:
        _require(isinstance(bench["detail"], dict),
                 f"{name}: detail must be an object")


def validate_bench(doc: _t.Any) -> None:
    """Validate a full benchmark document; raises :class:`BenchSchemaError`.

    Checks structure only — it does not interpret values, so baseline
    documents from older commits validate as long as the layout matches.
    """
    _require(isinstance(doc, dict), "document must be a JSON object")
    _require(doc.get("schema") == SCHEMA,
             f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    _require(doc.get("mode") in ("quick", "full"),
             "mode must be 'quick' or 'full'")
    _require(isinstance(doc.get("created"), str) and doc["created"],
             "created must be a non-empty timestamp string")
    _require(isinstance(doc.get("host"), dict), "host must be an object")
    _require(isinstance(doc.get("zero_copy"), bool),
             "zero_copy must be a boolean")
    benches = doc.get("benchmarks")
    _require(isinstance(benches, dict) and benches,
             "benchmarks must be a non-empty object")
    for name, bench in benches.items():
        validate_benchmark(name, bench)
    if "baseline" in doc:
        base = doc["baseline"]
        _require(isinstance(base, dict), "baseline must be an object")
        _require(isinstance(base.get("benchmarks"), dict),
                 "baseline.benchmarks must be an object")
        for name, value in base["benchmarks"].items():
            _require(isinstance(value, (int, float))
                     and not isinstance(value, bool),
                     f"baseline.benchmarks[{name!r}] must be a number")
    if "speedups" in doc:
        _require(isinstance(doc["speedups"], dict),
                 "speedups must be an object")
        for name, value in doc["speedups"].items():
            _require(isinstance(value, (int, float))
                     and not isinstance(value, bool) and value > 0,
                     f"speedups[{name!r}] must be a positive number")


def speedup(better: str, new_value: float, old_value: float) -> float:
    """Improvement ratio oriented so that > 1.0 always means faster."""
    if new_value <= 0 or old_value <= 0:
        raise BenchSchemaError("speedup needs positive values")
    if better == "higher":
        return new_value / old_value
    return old_value / new_value
