"""Wall-clock (host-time) benchmark suite.

Everything else in this repository measures *virtual* seconds; this
module measures how fast the simulator itself runs on the host.  It is
the measurement harness behind ``python -m repro perf`` and the CI
``perf-smoke`` regression gate, and the producer of the ``BENCH_*.json``
documents described in :mod:`repro.perf.schema`.

Methodology:

* every benchmark reports the **best** of a few repetitions — wall-clock
  noise on shared machines is one-sided, so the minimum is the stable
  estimator;
* data-plane benchmarks reuse one rig and warm the buffers before
  timing, so they measure steady-state copy throughput rather than
  first-touch page faults;
* benchmark *values* are oriented ("higher" / "lower" is better) so a
  comparison against an older document can always express improvement
  as a ratio > 1.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import platform
import sys
import time
import typing as _t

from .schema import SCHEMA, speedup, validate_bench

MiB = 1024 * 1024


@dataclasses.dataclass(frozen=True)
class Benchmark:
    """One registered benchmark."""

    name: str
    unit: str
    better: str  # "higher" | "lower"
    description: str
    fn: _t.Callable[[bool], tuple[float, float, dict]]
    #: Included in ``--quick`` runs (CI smoke) as well as full runs.
    quick: bool = True


# -- engine microbenchmarks ---------------------------------------------

def _bench_engine_events(quick: bool) -> tuple[float, float, dict]:
    """Throughput of the event loop on its leanest cycle: one process
    repeatedly waiting on a fresh timer (allocate, schedule, pop, resume).
    """
    from ..sim import Engine
    from ..sim.events import Timeout

    n = 50_000 if quick else 200_000
    reps = 2 if quick else 3
    best = float("inf")
    for _ in range(reps):
        eng = Engine()

        def prog():
            for _ in range(n):
                yield Timeout(eng, 1e-6)

        proc = eng.process(prog())
        t0 = time.perf_counter()
        eng.run(until=proc)
        best = min(best, time.perf_counter() - t0)
    return n / best, best, {"timeouts": n, "reps": reps}


#: Shard count for the ``sharded_*`` benchmarks (``--shards`` on the CLI).
_SHARD_COUNT = 4


def _bench_sharded_events(quick: bool) -> tuple[float, float, dict]:
    """Aggregate event throughput of cooperative rounds execution.

    The same timer churn as ``engine_events``, split across
    ``_SHARD_COUNT`` shards with conservative lookahead: each shard
    batch-drains its safe window in the tight no-merge loop, so the
    aggregate events/s must beat the single engine's — that structural
    win is what the CI sharded-smoke gate (``SHARDED_SPEEDUP_MIN``)
    checks against the baseline ``engine_events``.
    """
    from ..sim import TimerChurnProgram, run_cooperative

    shards = _SHARD_COUNT
    total = 50_000 if quick else 200_000
    per = total // shards
    reps = 2 if quick else 3
    best = float("inf")
    processed = 0
    for _ in range(reps):
        programs = [TimerChurnProgram(per, spacing_s=1e-6)
                    for _ in range(shards)]
        t0 = time.perf_counter()
        engine, _, _ = run_cooperative(programs, lookahead_s=1e-3)
        best = min(best, time.perf_counter() - t0)
        processed = engine.total_processed
    return processed / best, best, {
        "shards": shards, "timeouts_per_shard": per, "reps": reps,
        "mode": "rounds"}


def _bench_sharded_merge_events(quick: bool) -> tuple[float, float, dict]:
    """The same churn under the global-merge oracle mode.

    Merge mode scans every shard head per event to reproduce the single
    engine's order bit for bit, so it is *expected* to be slower than
    both the single engine and rounds mode — recorded (not gated) to
    keep the oracle's cost visible.
    """
    from ..sim import ShardedEngine, TimerChurnProgram
    from ..sim.sharded import _make_contexts

    shards = _SHARD_COUNT
    total = 25_000 if quick else 100_000
    per = total // shards
    reps = 2 if quick else 3
    best = float("inf")
    processed = 0
    for _ in range(reps):
        engine = ShardedEngine(shards, lookahead_s=1e-3)
        contexts = _make_contexts(
            engine, lambda dst: engine.shards[dst].heap, lambda dst: dst,
            shards, engine.lookahead)
        programs = [TimerChurnProgram(per, spacing_s=1e-6)
                    for _ in range(shards)]
        for shard, program in enumerate(programs):
            with engine.shard_scope(shard):
                program.setup(contexts[shard])
        t0 = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - t0)
        processed = engine.total_processed
    return processed / best, best, {
        "shards": shards, "timeouts_per_shard": per, "reps": reps,
        "mode": "merge"}


def _bench_engine_race(quick: bool) -> tuple[float, float, dict]:
    """The RPC hot pattern: race a winning event against a deadline, then
    cancel the loser.  Exercises lazy deletion, heap compaction, and the
    deadline slot pool.
    """
    from ..sim import Engine
    from ..sim.events import Timeout

    n = 20_000 if quick else 100_000
    reps = 2 if quick else 3
    best = float("inf")
    for _ in range(reps):
        eng = Engine()

        def prog():
            for _ in range(n):
                reply = Timeout(eng, 1e-7)
                cond, dl = eng.race(reply, 1.0)
                yield cond
                dl.cancel()

        proc = eng.process(prog())
        t0 = time.perf_counter()
        eng.run(until=proc)
        best = min(best, time.perf_counter() - t0)
    return n / best, best, {"races": n, "reps": reps}


# -- data-plane benchmarks ----------------------------------------------

def _payload(nbytes: int):
    """Deterministic non-trivial payload, built fast (tiled random block)."""
    import numpy as np

    block = np.random.default_rng(0).integers(
        0, 255, min(nbytes, 64 * 1024), dtype=np.uint8)
    reps = -(-nbytes // block.size)
    return np.tile(block, reps)[:nbytes]


def _remote_rig():
    """A fresh 1 CN + 1 AC paper-testbed cluster with a remote front-end."""
    from ..cluster import Cluster, paper_testbed

    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=1))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    return cluster, sess, cluster.remote(0, handles[0])


def _bench_memcpy(direction: str, quick: bool) -> tuple[float, float, dict]:
    """Steady-state pipeline copy throughput for one direction (host MiB/s
    of wall time, not virtual bandwidth)."""
    nbytes = 16 * MiB if quick else 64 * MiB
    reps = 3 if quick else 5
    cluster, sess, ac = _remote_rig()
    payload = _payload(nbytes)
    ptr = sess.call(ac.mem_alloc(nbytes))

    def h2d():
        yield from ac.memcpy_h2d(ptr, payload)

    def d2h():
        out = yield from ac.memcpy_d2h(ptr, nbytes)
        return out

    prog = h2d if direction == "h2d" else d2h
    sess.call(prog())  # warm: fault in the device backing + payload pages
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        sess.call(prog())
        best = min(best, time.perf_counter() - t0)
    return (nbytes / MiB) / best, best, {
        "nbytes": nbytes, "reps": reps, "direction": direction}


def _bench_fig_large(direction: str, quick: bool) -> tuple[float, float, dict]:
    """Large-payload half of Fig. 5 (H2D) / Fig. 6 (D2H) with *real*
    payloads: a sweep over the top message sizes through the default
    adaptive pipeline, measured in host seconds (the figure experiments
    themselves move phantoms, so this is the copy path the figures time
    but with the bytes actually attached)."""
    sizes = [8 * MiB, 16 * MiB] if quick else [16 * MiB, 32 * MiB, 64 * MiB]
    reps = 1 if quick else 2
    cluster, sess, ac = _remote_rig()
    payloads = {n: _payload(n) for n in sizes}
    ptrs = {n: sess.call(ac.mem_alloc(n)) for n in sizes}

    def one_pass():
        for n in sizes:
            yield from ac.memcpy_h2d(ptrs[n], payloads[n])
            if direction == "d2h":
                yield from ac.memcpy_d2h(ptrs[n], n)

    sess.call(one_pass())  # warm
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        sess.call(one_pass())
        best = min(best, time.perf_counter() - t0)
    return best, best, {
        "sizes": sizes, "reps": reps, "direction": direction,
        "total_mib": sum(sizes) // MiB}


def _bench_qr(quick: bool) -> tuple[float, float, dict]:
    """Fig. 9 end to end: one timing-mode QR factorization on one
    network-attached GPU (the protocol- and event-bound workload)."""
    from ..cluster import Cluster, paper_testbed
    from ..workloads.linalg import qr_factorize

    n = 1536 if quick else 3072
    reps = 1 if quick else 2
    best = float("inf")
    for _ in range(reps + 1):  # +1 warm (module import, kernel registry)
        cluster, sess, ac = _remote_rig()
        t0 = time.perf_counter()
        sess.call(qr_factorize(cluster.engine, cluster.compute_nodes[0].cpu,
                               [ac], n, 128))
        best = min(best, time.perf_counter() - t0)
    return best, best, {"n": n, "nb": 128, "gpus": 1, "reps": reps}


def _bench_mp2c(quick: bool) -> tuple[float, float, dict]:
    """Fig. 11 end to end: a short 2-rank MP2C run on remote accelerators
    (timing mode: MPI halo traffic + SRD kernel launches + migrations)."""
    from ..baselines import LocalAccelerator  # noqa: F401 (import parity)
    from ..cluster import Cluster, paper_testbed
    from ..workloads.mp2c import MP2CConfig, run_mp2c

    n_particles = 128_000 if quick else 512_000
    steps = 20 if quick else 40
    cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=2))
    sess = cluster.session()
    acs = []
    for i in range(2):
        handles = sess.call(cluster.arm_client(i).alloc(count=1))
        acs.append(cluster.remote(i, handles[0]))
    ranks = [cluster.compute_rank(i) for i in range(2)]
    cfg = MP2CConfig(n_particles=n_particles, steps=steps)
    t0 = time.perf_counter()
    sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                       ranks, acs, cfg))
    wall = time.perf_counter() - t0
    return wall, wall, {"n_particles": n_particles, "steps": steps,
                        "ranks": 2}


def _bench_collective(quick: bool) -> tuple[float, float, dict]:
    """P2P ring allreduce end to end on a 2x2 torus: the daemon→daemon
    forwarding path, per-hop trunk contention, and the reduce kernels —
    the whole P2P data plane in one number.  Also records hop counts and
    the cn-endpoint byte ratio vs the staged path (reported as detail;
    the ≥2× gate itself lives in the CI p2p-smoke job)."""
    from ..workloads.collective import CollectiveConfig, run_once

    elements = 2048 if quick else 16384
    reps = 2 if quick else 3
    cfg = CollectiveConfig(devices=8, chunk_elements=elements,
                           topology="torus2d", dims=(2, 2))
    staged = run_once(cfg, "staged")  # warm + staged byte reference
    best = float("inf")
    p2p = None
    for _ in range(reps):
        t0 = time.perf_counter()
        p2p = run_once(cfg, "p2p")
        best = min(best, time.perf_counter() - t0)
    return best, best, {
        "devices": cfg.devices, "elements": elements, "reps": reps,
        "identical": p2p.digest == staged.digest,
        "cn_byte_ratio": round(staged.cn_bytes / max(p2p.cn_bytes, 1), 1),
        "virtual_speedup": round(staged.duration_s / p2p.duration_s, 2)}


def _bench_jobs_throughput(quick: bool) -> tuple[float, float, dict]:
    """Ensemble front door end to end: the warm-path run (coalescing +
    kernel/allocation caching + lease reuse) vs the cold baseline on the
    identical seeded ensemble.  Value is the warm run's *virtual* jobs/s;
    detail carries the cold baseline, the virtual speedup (the CI
    jobs-smoke gate requires >= JOBS_SPEEDUP_MIN), the cache hit rates,
    and the on/off outcome-digest match."""
    from ..workloads.ensemble import EnsembleConfig, run

    cfg = EnsembleConfig(n_jobs=64 if quick else 96, seed=0)
    t0 = time.perf_counter()
    warm = run(cfg)
    wall = time.perf_counter() - t0
    cold = run(dataclasses.replace(cfg, coalescing=False, caching=False))
    return warm.jobs_per_s, wall, {
        "n_jobs": cfg.n_jobs,
        "baseline_jobs_per_s": round(cold.jobs_per_s, 1),
        "speedup": (round(warm.jobs_per_s / cold.jobs_per_s, 2)
                    if cold.jobs_per_s else 0.0),
        "kernel_cache_hit_rate": round(warm.kernel_cache_hit_rate, 2),
        "alloc_cache_hit_rate": round(warm.alloc_cache_hit_rate, 2),
        "leases_reused": warm.leases_reused,
        "identical": warm.digest == cold.digest}


#: The registered suite, in execution order.
BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark("engine_events", "events/s", "higher",
              "event-loop throughput (timer churn)", _bench_engine_events),
    Benchmark("engine_race", "races/s", "higher",
              "race+cancel churn (lazy delete, slot pool)",
              _bench_engine_race),
    Benchmark("sharded_events", "events/s", "higher",
              "aggregate timer churn, cooperative rounds over shards",
              _bench_sharded_events),
    Benchmark("sharded_merge_events", "events/s", "higher",
              "aggregate timer churn, global-merge oracle mode",
              _bench_sharded_merge_events),
    Benchmark("memcpy_h2d", "MiB/s", "higher",
              "steady-state H2D pipeline, real payload",
              lambda q: _bench_memcpy("h2d", q)),
    Benchmark("memcpy_d2h", "MiB/s", "higher",
              "steady-state D2H pipeline, real payload",
              lambda q: _bench_memcpy("d2h", q)),
    Benchmark("fig05_large", "s", "lower",
              "fig05 large-payload H2D sweep, real payloads",
              lambda q: _bench_fig_large("h2d", q)),
    Benchmark("fig06_large", "s", "lower",
              "fig06 large-payload D2H sweep, real payloads",
              lambda q: _bench_fig_large("d2h", q)),
    Benchmark("fig09_qr", "s", "lower",
              "fig09 QR end to end, 1 network GPU",
              _bench_qr),
    Benchmark("fig11_mp2c", "s", "lower",
              "fig11 MP2C end to end, 2 ranks", _bench_mp2c,
              quick=False),
    Benchmark("collective_ring", "s", "lower",
              "P2P ring allreduce, 8 devices on a 2x2 torus",
              _bench_collective),
    Benchmark("jobs_throughput", "jobs/s", "higher",
              "ensemble front door, warm paths vs cold baseline",
              _bench_jobs_throughput),
)


def _fmt(value: float) -> str:
    """Value formatting that works for events/s and for sub-second walls."""
    return f"{value:,.1f}" if value >= 100 else f"{value:.3f}"


def run_suite(quick: bool = False, only: _t.Sequence[str] | None = None,
              out: _t.TextIO | None = None, shards: int = 4) -> dict:
    """Run the suite and return a schema-valid benchmark document.

    ``shards`` sets the partition count of the ``sharded_*`` benchmarks
    (the CLI's ``--shards``); everything else ignores it.
    """
    global _SHARD_COUNT
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    _SHARD_COUNT = shards
    try:
        from ..buffers import zero_copy_enabled
    except ImportError:
        # Pre-zero-copy tree: the suite is copied into the baseline
        # checkout to measure "before" numbers, where repro.buffers
        # does not exist yet.
        def zero_copy_enabled() -> bool:
            return False

    names = set(only) if only is not None else None
    doc: dict = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "created": datetime.datetime.now(datetime.timezone.utc)
                   .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "implementation": platform.python_implementation(),
        },
        "zero_copy": zero_copy_enabled(),
        "benchmarks": {},
    }
    for bench in BENCHMARKS:
        if names is not None and bench.name not in names:
            continue
        if quick and not bench.quick:
            continue
        if out is not None:
            out.write(f"{bench.name:<14} ...")
            out.flush()
        value, wall, detail = bench.fn(quick)
        doc["benchmarks"][bench.name] = {
            "value": value,
            "unit": bench.unit,
            "better": bench.better,
            "wall_s": wall,
            "detail": detail,
        }
        if out is not None:
            out.write(f"\r{bench.name:<14} {_fmt(value):>14} {bench.unit:<10} "
                      f"(wall {wall:.3f}s)\n")
    validate_bench(doc)
    return doc


def attach_baseline(doc: dict, old_doc: dict, path: str | None = None) -> dict:
    """Embed ``old_doc``'s values and the resulting speedups into ``doc``.

    Speedups are oriented so > 1.0 always means this run is faster than
    the baseline, whatever the benchmark's unit direction.
    """
    validate_bench(old_doc)
    base_values = {name: bench["value"]
                   for name, bench in old_doc["benchmarks"].items()}
    doc["baseline"] = {
        "created": old_doc.get("created"),
        "mode": old_doc.get("mode"),
        "benchmarks": base_values,
    }
    if path is not None:
        doc["baseline"]["path"] = path
    doc["speedups"] = {}
    for name, bench in doc["benchmarks"].items():
        if name in base_values and base_values[name] > 0 and bench["value"] > 0:
            doc["speedups"][name] = speedup(
                bench["better"], bench["value"], base_values[name])
    validate_bench(doc)
    return doc


#: CI regression gate: benchmarks checked and their allowed slowdown.
#: Only the engine microbenchmarks gate — they are the most wall-clock
#: stable metrics on shared runners; the data-plane numbers are reported
#: as artifacts but too noisy to fail a build on.
REGRESSION_GATES: dict[str, float] = {
    "engine_events": 0.30,
}

#: The sharded-smoke gate: cooperative rounds execution must deliver at
#: least this multiple of the *baseline* single-engine event throughput.
#: The baseline value is deliberately headroomed (see baseline.json), so
#: a healthy tree clears this with margin even on shared runners.
SHARDED_SPEEDUP_MIN = 1.8

#: The jobs-smoke gate: the warm-path ensemble run must deliver at least
#: this multiple of the cold baseline's *virtual* jobs/s, with a non-zero
#: cache hit rate and bit-identical outcomes.  Virtual-time ratios are
#: machine-independent, so no headroom is needed.
JOBS_SPEEDUP_MIN = 1.5


def check_regressions(doc: dict, baseline_doc: dict) -> list[str]:
    """Compare against a baseline document; returns failure messages."""
    validate_bench(doc)
    validate_bench(baseline_doc)
    failures = []
    for name, allowed in REGRESSION_GATES.items():
        new = doc["benchmarks"].get(name)
        old = baseline_doc["benchmarks"].get(name)
        if new is None or old is None:
            continue
        ratio = speedup(new["better"], new["value"], old["value"])
        if ratio < 1.0 - allowed:
            failures.append(
                f"{name}: {new['value']:,.0f} {new['unit']} is "
                f"{(1.0 - ratio) * 100:.0f}% below the baseline "
                f"{old['value']:,.0f} (allowed: {allowed * 100:.0f}%)")
    sharded = doc["benchmarks"].get("sharded_events")
    single = baseline_doc["benchmarks"].get("engine_events")
    if sharded is not None and single is not None and single["value"] > 0:
        ratio = sharded["value"] / single["value"]
        if ratio < SHARDED_SPEEDUP_MIN:
            failures.append(
                f"sharded_events: {sharded['value']:,.0f} events/s is only "
                f"{ratio:.2f}x the baseline single-engine "
                f"{single['value']:,.0f} (gate: >= {SHARDED_SPEEDUP_MIN}x)")
    jobs = doc["benchmarks"].get("jobs_throughput")
    if jobs is not None:
        # Self-contained gate: speedup and hit rates are virtual-time
        # ratios inside this run's own detail, not a host comparison.
        detail = jobs.get("detail", {})
        if detail.get("speedup", 0.0) < JOBS_SPEEDUP_MIN:
            failures.append(
                f"jobs_throughput: warm-path speedup "
                f"{detail.get('speedup', 0.0):.2f}x is below the gate "
                f"(>= {JOBS_SPEEDUP_MIN}x over the uncoalesced/uncached "
                f"baseline)")
        if (detail.get("kernel_cache_hit_rate", 0.0) <= 0.0
                or detail.get("alloc_cache_hit_rate", 0.0) <= 0.0):
            failures.append(
                "jobs_throughput: warm caches saw no hits "
                f"(kernel {detail.get('kernel_cache_hit_rate', 0.0)}, "
                f"alloc {detail.get('alloc_cache_hit_rate', 0.0)})")
        if not detail.get("identical", False):
            failures.append(
                "jobs_throughput: warm-path on/off outcome digests differ")
    return failures


def render(doc: dict) -> str:
    """Human-readable table of one benchmark document."""
    lines = [f"perf suite ({doc['mode']} mode, zero_copy="
             f"{'on' if doc['zero_copy'] else 'off'})"]
    speedups = doc.get("speedups", {})
    for name, bench in doc["benchmarks"].items():
        line = (f"  {name:<14} {_fmt(bench['value']):>14} {bench['unit']:<9}"
                f" wall {bench['wall_s']:8.3f}s")
        if name in speedups:
            line += f"  ({speedups[name]:.2f}x vs baseline)"
        lines.append(line)
    return "\n".join(lines)


def write_json(doc: dict, path: str) -> None:
    validate_bench(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")


def load_json(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    validate_bench(doc)
    return doc


def main_run(quick: bool, json_path: str | None, against: str | None,
             check: str | None, out: _t.TextIO | None = None,
             shards: int = 4) -> int:
    """Driver behind ``python -m repro perf`` (returns an exit code)."""
    out = out if out is not None else sys.stdout
    doc = run_suite(quick=quick, out=out, shards=shards)
    if against:
        attach_baseline(doc, load_json(against), path=against)
    out.write(render(doc) + "\n")
    if json_path:
        write_json(doc, json_path)
        out.write(f"benchmark document written to {json_path}\n")
    if check:
        failures = check_regressions(doc, load_json(check))
        if failures:
            for failure in failures:
                out.write(f"REGRESSION: {failure}\n")
            return 1
        out.write(f"regression gate passed vs {check}\n")
    return 0
