"""Virtual GPU substrate: device memory, PCIe DMA, kernels, devices."""

from .device import (
    GPUDevice,
    GPUSpec,
    GPUTimeSlicer,
    TESLA_C1060,
    VirtualGPU,
    XEON_PHI_KNC,
)
from .dma import DMAEngine, PCIeModel, PCIE_GEN2_X16
from .kernels import Kernel, KernelRegistry
from .memory import Allocation, DeviceMemory, MemoryPartition
from .stdkernels import default_registry, shared_default_registry
from .stream import Stream
from . import timing

__all__ = [
    "GPUDevice",
    "GPUSpec",
    "GPUTimeSlicer",
    "VirtualGPU",
    "TESLA_C1060",
    "XEON_PHI_KNC",
    "DMAEngine",
    "PCIeModel",
    "PCIE_GEN2_X16",
    "Kernel",
    "KernelRegistry",
    "DeviceMemory",
    "Allocation",
    "MemoryPartition",
    "Stream",
    "default_registry",
    "shared_default_registry",
    "timing",
]
