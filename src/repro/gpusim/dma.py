"""PCI Express transfer model and DMA engine.

The paper's Figures 7/8 distinguish two local-copy paths on the testbed's
Tesla C1060 (PCIe gen2 x16):

* **pinned memory** — the GPU's DMA engine pulls page-locked host memory at
  ~5700 MiB/s with a small per-transfer descriptor setup cost;
* **pageable memory** — the CPU stages data through programmed I/O (PIO) at
  ~4700 MiB/s with a higher per-transfer cost.

The accelerator daemon's pipeline protocol issues one DMA per block, so the
per-transfer setup cost is what penalizes small pipeline blocks for very
large messages (the Figure 5 crossover).
"""

from __future__ import annotations

import dataclasses
import heapq

from ..errors import GPUError
from ..obs.spans import collector_for
from ..sim import Engine, Event, Resource
from ..sim.events import Timeout
from ..units import MiB, USEC


@dataclasses.dataclass(frozen=True)
class PCIeModel:
    """Timing parameters of one host-GPU PCIe connection."""

    name: str
    pinned_bw_Bps: float
    pageable_bw_Bps: float
    dma_setup_s: float
    pio_setup_s: float

    def __post_init__(self) -> None:
        if self.pinned_bw_Bps <= 0 or self.pageable_bw_Bps <= 0:
            raise GPUError("PCIe bandwidths must be positive")
        if self.dma_setup_s < 0 or self.pio_setup_s < 0:
            raise GPUError("PCIe setup costs cannot be negative")

    def copy_time(self, nbytes: int, pinned: bool = True) -> float:
        """Uncontended duration of one host<->device copy."""
        if nbytes < 0:
            raise GPUError(f"negative copy size: {nbytes!r}")
        if pinned:
            return self.dma_setup_s + nbytes / self.pinned_bw_Bps
        return self.pio_setup_s + nbytes / self.pageable_bw_Bps

    def effective_bandwidth(self, nbytes: int, pinned: bool = True) -> float:
        """Observed bandwidth for a single copy of ``nbytes`` (bytes/s)."""
        if nbytes <= 0:
            raise GPUError(f"non-positive copy size: {nbytes!r}")
        return nbytes / self.copy_time(nbytes, pinned)


#: PCIe gen2 x16 as measured on the paper's Tesla C1060 testbed.
PCIE_GEN2_X16 = PCIeModel(
    name="pcie-gen2-x16",
    pinned_bw_Bps=5700 * MiB,
    pageable_bw_Bps=4700 * MiB,
    dma_setup_s=9.0 * USEC,
    pio_setup_s=16.0 * USEC,
)


class DMAEngine:
    """The GPU's copy engine: one transfer at a time, like the C1060.

    Copies are serialized on the engine but run concurrently with compute
    and with network receives — which is exactly the overlap the pipeline
    protocol exploits.
    """

    def __init__(self, engine: Engine, model: PCIeModel,
                 name: str = "dma"):
        self.engine = engine
        self.model = model
        self.name = name
        self._lock = Resource(engine, capacity=1)
        #: Total busy seconds, for utilization accounting.
        self.busy_time = 0.0
        self.transfers = 0
        self.bytes_copied = 0

    def copy(self, nbytes: int, pinned: bool = True, ctx=None) -> Event:
        """Start one host<->device copy; the event fires on completion.

        ``ctx`` is an optional parent :class:`~repro.obs.SpanContext`:
        when tracing is on, the copy records a ``dma.copy`` child span
        covering queueing-for-the-engine plus the transfer itself.
        """
        if nbytes < 0:
            raise GPUError(f"negative copy size: {nbytes!r}")
        if ctx is not None:
            done = self.engine.event()
            self.engine.process(self._run(nbytes, pinned, done, ctx),
                                name="dma")
            return done
        # Untraced fast path: the generator above costs a Process, a
        # kickoff event, and a completion Timeout *per pipeline block*.
        # This callback chain schedules the completion event directly.
        # Copy ordering cannot change: the engine's lock is private to
        # this GPU and its daemon issues copies strictly in handler
        # order either way.
        engine = self.engine
        done = Event(engine)
        duration = self.model.copy_time(nbytes, pinned)

        def _finish(_ev, duration=duration, nbytes=nbytes):
            # Registered at creation so it runs before caller callbacks,
            # like the generator's release-then-succeed ordering.
            self.busy_time += duration
            self.transfers += 1
            self.bytes_copied += nbytes
            self._lock.release()

        done.callbacks = [_finish]

        def _granted(_ev, done=done, duration=duration):
            done._ok = True
            done._value = None
            done._scheduled = True
            heapq.heappush(engine._heap,
                           (engine.now + duration, next(engine._seq), done))

        self._lock.acquire().add_callback(_granted)
        return done

    def copy_view(self, view, pinned: bool = True, ctx=None) -> Event:
        """Start a copy sized by a buffer view (zero-copy variant).

        ``view`` is anything with ``nbytes`` — a
        :class:`~repro.buffers.ChunkView`, numpy view, or Phantom.  The
        DMA engine only models *time*; passing the view instead of a
        materialized buffer means a per-block pipeline DMA allocates no
        staging bytes at all.
        """
        return self.copy(int(view.nbytes), pinned=pinned, ctx=ctx)

    def _run(self, nbytes: int, pinned: bool, done: Event, ctx=None):
        span = collector_for(self.engine).start(
            "dma.copy", self.name, parent=ctx,
            nbytes=nbytes, pinned=pinned) if ctx is not None else None
        yield self._lock.acquire()
        if span:
            span.event("engine_acquired")
        duration = self.model.copy_time(nbytes, pinned)
        yield Timeout(self.engine, duration)
        self.busy_time += duration
        self.transfers += 1
        self.bytes_copied += nbytes
        self._lock.release()
        if span:
            span.finish()
        done.succeed(None)
