"""Cost-model helpers shared by the built-in and workload kernels.

Costs are derived from a two-term roofline: a kernel takes
``max(flop time, memory time)`` with a saturation factor that degrades
efficiency for small working sets (launch-bound / partially-filled SMs).
Dimensions always come from kernel *parameters*, never from device data,
so costs are computable in timing-only mode.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from .device import GPUSpec

#: Matrix dimension at which gemm reaches half of its asymptotic efficiency.
GEMM_HALF_SAT_DIM = 32.0


def saturation(min_dim: float, half_sat: float = GEMM_HALF_SAT_DIM) -> float:
    """Efficiency factor in (0, 1): small problems underutilize the GPU."""
    if min_dim <= 0:
        return 1.0e-3
    return min_dim / (min_dim + half_sat)


def gemm_flops(m: int, n: int, k: int) -> float:
    """Flop count of C(m,n) += A(m,k) @ B(k,n)."""
    return 2.0 * m * n * k


def gemm_time(spec: "GPUSpec", m: int, n: int, k: int) -> float:
    """Modeled dgemm execution time with small-size degradation."""
    eff = spec.gemm_efficiency * saturation(min(m, n, k))
    return gemm_flops(m, n, k) / (spec.dp_gflops * 1e9 * eff)


def syrk_flops(n: int, k: int) -> float:
    """Flop count of C(n,n) += A(n,k) @ A(n,k)^T (triangular output)."""
    return float(n) * (n + 1) * k


def syrk_time(spec: "GPUSpec", n: int, k: int) -> float:
    eff = spec.gemm_efficiency * saturation(min(n, k))
    return syrk_flops(n, k) / (spec.dp_gflops * 1e9 * eff)


def trsm_flops(m: int, n: int) -> float:
    """Flop count of a triangular solve with m RHS rows, n x n triangle."""
    return float(m) * n * n


def trsm_time(spec: "GPUSpec", m: int, n: int) -> float:
    # trsm runs at lower efficiency than gemm on this generation of GPU.
    eff = 0.5 * spec.gemm_efficiency * saturation(min(m, n))
    return trsm_flops(m, n) / (spec.dp_gflops * 1e9 * eff)


def streaming_time(spec: "GPUSpec", nbytes: float, flops: float = 0.0) -> float:
    """Roofline time for a memory-bound elementwise kernel."""
    mem = spec.mem_time(nbytes)
    fl = flops / (spec.dp_gflops * 1e9)
    return max(mem, fl)
