"""CUDA-style streams: in-order operation queues on one device.

Operations submitted to the same stream execute in submission order;
operations in different streams may overlap (kernels still serialize on
the device's single compute engine, DMA on its copy engine — the C1060's
concurrency model).  The back-end daemon's pipeline achieves its overlap
with exactly this structure; :class:`Stream` exposes it for device-level
users such as the local baseline and future lookahead factorizations.
"""

from __future__ import annotations

import typing as _t

from ..errors import GPUError
from ..sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from .device import GPUDevice, VirtualGPU


class Stream:
    """An in-order queue of kernel launches and DMA copies.

    ``device`` may be a physical :class:`~repro.gpusim.device.GPUDevice`
    or a tenant's :class:`~repro.gpusim.device.VirtualGPU` — streams only
    rely on the shared ``launch`` / ``dma`` surface, so per-tenant
    streams time-slice through the owning slice's WFQ share.
    """

    _ids = 0

    def __init__(self, device: "GPUDevice | VirtualGPU", name: str | None = None):
        self.device = device
        self.engine = device.engine
        Stream._ids += 1
        self.name = name or f"{device.name}.stream{Stream._ids}"
        #: Completion event of the most recently enqueued operation.
        self._tail: Event | None = None
        self.ops_submitted = 0

    def _chain(self, start_op: _t.Callable[[], Event]) -> Event:
        """Enqueue an operation behind the current tail."""
        done = self.engine.event()
        prev = self._tail
        self._tail = done
        self.ops_submitted += 1

        def runner():
            if prev is not None and not prev.processed:
                yield prev
            op_done = start_op()
            if not op_done.processed:
                yield op_done
            done.succeed(op_done.value if op_done.triggered else None)

        self.engine.process(runner(), name=f"{self.name}:op")
        return done

    def launch(self, kernel_name: str, params: dict | None = None,
               real: bool = True) -> Event:
        """Enqueue a kernel launch; returns its completion event."""
        return self._chain(lambda: self.device.launch(kernel_name, params,
                                                      real=real))

    def copy(self, nbytes: int, pinned: bool = True) -> Event:
        """Enqueue a host<->device DMA; returns its completion event."""
        if nbytes < 0:
            raise GPUError(f"negative copy size: {nbytes!r}")
        return self._chain(lambda: self.device.dma.copy(nbytes, pinned=pinned))

    def synchronize(self) -> Event:
        """Event that fires when everything enqueued so far has finished.

        Immediately-successful when the stream is empty.
        """
        if self._tail is None:
            return Event(self.engine).succeed(None)
        return self._tail

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stream {self.name} ops={self.ops_submitted}>"
