"""The virtual GPU device.

Combines the device-memory allocator, the PCIe DMA engine, and the kernel
registry behind an execution interface that mirrors the CUDA driver API
surface the paper's middleware wraps: allocate, copy, launch.

Compute is serialized (one kernel at a time — the Tesla C1060 has no
concurrent kernels), but the DMA engine runs independently, which is the
overlap the pipeline copy protocol exploits.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools

from ..errors import GPUError
from ..obs.spans import NULL_SPAN, collector_for
from ..sim import Engine, Event, Resource, Tracer, NULL_TRACER
from ..units import GiB, USEC
from .dma import DMAEngine, PCIeModel, PCIE_GEN2_X16
from .kernels import KernelRegistry
from .memory import DeviceMemory, MemoryPartition


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Performance envelope of one GPU model."""

    name: str
    dp_gflops: float            # double-precision peak, GFlop/s
    gemm_efficiency: float      # fraction of peak achieved by large dgemm
    mem_bw_Bps: float           # device-memory bandwidth
    mem_bytes: int              # device-memory capacity
    launch_overhead_s: float    # per-kernel launch latency
    pcie: PCIeModel

    def __post_init__(self) -> None:
        if self.dp_gflops <= 0 or self.mem_bw_Bps <= 0 or self.mem_bytes <= 0:
            raise GPUError("GPU spec values must be positive")
        if not 0 < self.gemm_efficiency <= 1:
            raise GPUError(f"gemm efficiency must be in (0, 1]: {self.gemm_efficiency!r}")
        if self.launch_overhead_s < 0:
            raise GPUError("launch overhead cannot be negative")

    def flops_time(self, flops: float, efficiency: float | None = None) -> float:
        """Seconds to execute ``flops`` at the given fraction of peak."""
        eff = self.gemm_efficiency if efficiency is None else efficiency
        return flops / (self.dp_gflops * 1e9 * eff)

    def mem_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` through device memory."""
        return nbytes / self.mem_bw_Bps


#: NVIDIA Tesla C1060 as in the paper's testbed: 78 GFlop/s double
#: precision peak, ~102 GB/s GDDR3, 4 GiB, PCIe gen2 x16.
TESLA_C1060 = GPUSpec(
    name="tesla-c1060",
    dp_gflops=78.0,
    gemm_efficiency=0.80,
    mem_bw_Bps=102e9,
    mem_bytes=4 * GiB,
    launch_overhead_s=7.0 * USEC,
    pcie=PCIE_GEN2_X16,
)

#: Intel Xeon Phi (Knights Corner), the "emerging MIC architecture" the
#: paper's conclusion names as an easy extension target: ~1 TFlop/s double
#: precision, ~170 GB/s GDDR5, 8 GiB.  Offload launches cost more than a
#: CUDA kernel launch.  Used by the extensibility tests to show the
#: middleware is accelerator-agnostic.
XEON_PHI_KNC = GPUSpec(
    name="xeon-phi-knc",
    dp_gflops=1011.0,
    gemm_efficiency=0.75,
    mem_bw_Bps=170e9,
    mem_bytes=8 * GiB,
    launch_overhead_s=20.0 * USEC,
    pcie=PCIE_GEN2_X16,
)


class GPUDevice:
    """One virtual GPU: memory + DMA + serialized compute."""

    _ids = 0

    def __init__(self, engine: Engine, spec: GPUSpec = TESLA_C1060,
                 registry: KernelRegistry | None = None,
                 name: str | None = None, tracer: Tracer = NULL_TRACER):
        self.engine = engine
        self.spec = spec
        if registry is None:
            from .stdkernels import default_registry
            registry = default_registry().clone()
        self.registry = registry
        GPUDevice._ids += 1
        self.name = name or f"gpu{GPUDevice._ids}"
        self.tracer = tracer
        self.memory = DeviceMemory(spec.mem_bytes)
        self.dma = DMAEngine(engine, spec.pcie, name=f"{self.name}.dma")
        self._compute = Resource(engine, capacity=1)
        #: Cumulative compute-busy seconds (utilization accounting).
        self.busy_time = 0.0
        self.kernels_launched = 0
        #: Lazily created WFQ arbiter for virtual accelerators.
        self._slicer: GPUTimeSlicer | None = None

    def launch(self, kernel_name: str, params: dict | None = None,
               real: bool = True, ctx=None) -> Event:
        """Launch a kernel; the returned event fires at completion.

        ``real=False`` charges the kernel's modeled time without executing
        its numerics (timing-only mode for paper-scale problem sizes).
        The event's value is the kernel's return (error code or None).
        ``ctx`` optionally parents a ``gpu.kernel`` trace span under the
        requesting operation (see :mod:`repro.obs`).
        """
        kernel = self.registry.get(kernel_name)
        params = params or {}
        duration = kernel.cost(params, self.spec)
        done = self.engine.event()
        self.engine.process(self._run(kernel, params, duration, real, done, ctx),
                            name=f"{self.name}:{kernel_name}")
        return done

    def _run(self, kernel, params: dict, duration: float, real: bool,
             done: Event, ctx=None):
        span = collector_for(self.engine).start(
            "gpu.kernel", self.name, parent=ctx,
            kernel=kernel.name) if ctx is not None else NULL_SPAN
        with span:
            yield self._compute.acquire()
            span.event("compute_acquired")
            yield self.engine.timeout(self.spec.launch_overhead_s + duration)
            result = None
            try:
                if real:
                    result = kernel.fn(self, params)
            finally:
                self._compute.release()
            self.busy_time += duration
            self.kernels_launched += 1
            self.tracer.log(self.engine.now, "gpu.kernel", self.name,
                            (kernel.name, duration))
            span.set(modeled_s=duration)
        done.succeed(result)

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of wall time the compute engine was busy."""
        total = elapsed if elapsed is not None else self.engine.now
        return self.busy_time / total if total > 0 else 0.0

    # -- virtualization ---------------------------------------------------
    @property
    def slicer(self) -> "GPUTimeSlicer":
        """The WFQ kernel arbiter (created on first use)."""
        if self._slicer is None:
            self._slicer = GPUTimeSlicer(self)
        return self._slicer

    def virtualize(self, name: str, share: float = 1.0,
                   mem_quota: int | None = None) -> "VirtualGPU":
        """Create a virtual accelerator multiplexed onto this device.

        ``share`` is the WFQ weight of the virtual GPU's kernel launches
        against its siblings; ``mem_quota`` caps its device-memory bytes
        (default: the whole device — quota enforcement without
        partitioning).
        """
        quota = mem_quota if mem_quota is not None else self.spec.mem_bytes
        partition = MemoryPartition(self.memory, quota, name=name)
        return VirtualGPU(self, self.slicer, name, share=share,
                          partition=partition)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GPUDevice {self.name} ({self.spec.name})>"


class GPUTimeSlicer:
    """Weighted-fair-queueing arbiter for kernel launches on one device.

    Time-slicing at kernel granularity: each :class:`VirtualGPU` submits
    launches tagged with a *virtual finish time* — its own virtual clock
    advanced by ``duration / share`` — and the slicer dispatches queued
    launches to the physical device one at a time in tag order
    (start-time fair queueing).  Kernels are never interrupted mid-run
    (real GPUs cannot do that either); fairness emerges across launches.
    Ties break deterministically by submission order.
    """

    def __init__(self, device: "GPUDevice"):
        self.device = device
        self.engine = device.engine
        self._queue: list[tuple[float, int, tuple]] = []
        self._seq = itertools.count()
        self._busy = False
        #: System virtual time: the largest tag dispatched so far.  New
        #: arrivals start no earlier than this, so an idle virtual GPU
        #: cannot bank unbounded credit while others run.
        self._vtime = 0.0
        self._vgpu_vtime: dict[str, float] = {}
        self.dispatched = 0

    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, vgpu: "VirtualGPU", kernel_name: str,
               params: dict | None, real: bool, ctx=None) -> Event:
        """Queue one launch for ``vgpu``; the event fires at completion."""
        kernel = self.device.registry.get(kernel_name)
        duration = kernel.cost(params or {}, self.device.spec)
        start = max(self._vtime, self._vgpu_vtime.get(vgpu.name, 0.0))
        tag = start + duration / vgpu.share
        self._vgpu_vtime[vgpu.name] = tag
        done = self.engine.event()
        heapq.heappush(self._queue,
                       (tag, next(self._seq),
                        (vgpu, kernel_name, params, real, ctx, done)))
        self._pump()
        return done

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        tag, _, entry = heapq.heappop(self._queue)
        self._busy = True
        self._vtime = max(self._vtime, tag)
        self.dispatched += 1
        vgpu, kernel_name, params, real, ctx, done = entry
        started = self.engine.now
        ev = self.device.launch(kernel_name, params, real=real, ctx=ctx)

        def _complete(_ev: Event) -> None:
            vgpu.kernels_launched += 1
            vgpu.busy_time += self.engine.now - started
            self._busy = False
            done.succeed(_ev.value)
            self._pump()

        ev.add_callback(_complete)


class VirtualGPU:
    """A tenant's slice of one physical GPU: quota'd memory + WFQ compute.

    Duck-types the :class:`GPUDevice` surface the daemon and
    :class:`~repro.gpusim.stream.Stream` rely on (``engine`` / ``name`` /
    ``spec`` / ``memory`` / ``dma`` / ``launch``), so existing device
    consumers work unchanged on a virtual handle.  ``memory`` is a
    :class:`~repro.gpusim.memory.MemoryPartition`; kernel launches go
    through the device's :class:`GPUTimeSlicer` with this virtual GPU's
    ``share`` as the WFQ weight.  The DMA engine is shared unweighted
    (PCIe is rarely the multi-tenant bottleneck; the fluid model already
    divides bandwidth among concurrent copies).
    """

    def __init__(self, device: "GPUDevice", slicer: "GPUTimeSlicer",
                 name: str, share: float = 1.0,
                 partition: MemoryPartition | None = None):
        if share <= 0:
            raise GPUError(f"virtual GPU share must be positive: {share!r}")
        self.device = device
        self.engine = device.engine
        self.spec = device.spec
        self.registry = device.registry
        self.slicer = slicer
        self.name = name
        self.share = share
        self.memory = partition if partition is not None else (
            MemoryPartition(device.memory, device.spec.mem_bytes, name=name))
        self.dma = device.dma
        self.busy_time = 0.0
        self.kernels_launched = 0
        #: Set when the lease behind this virtual GPU was revoked.
        self.revoked = False

    def launch(self, kernel_name: str, params: dict | None = None,
               real: bool = True, ctx=None) -> Event:
        """Launch a kernel through the WFQ arbiter."""
        if self.revoked:
            raise GPUError(f"virtual GPU {self.name} has been revoked")
        return self.slicer.submit(self, kernel_name, params, real, ctx)

    def stream(self, name: str | None = None):
        """An in-order :class:`~repro.gpusim.stream.Stream` on this slice."""
        from .stream import Stream
        return Stream(self, name=name)

    def revoke(self) -> int:
        """Preempt this virtual GPU: free its memory, refuse new launches.

        Returns the bytes freed.  In-flight kernels finish (kernel-level
        granularity); the owning tenant discovers the revocation on its
        next operation and re-allocates through the ARM.
        """
        self.revoked = True
        return self.memory.release_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<VirtualGPU {self.name} on {self.device.name} "
                f"share={self.share:g}>")
