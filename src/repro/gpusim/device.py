"""The virtual GPU device.

Combines the device-memory allocator, the PCIe DMA engine, and the kernel
registry behind an execution interface that mirrors the CUDA driver API
surface the paper's middleware wraps: allocate, copy, launch.

Compute is serialized (one kernel at a time — the Tesla C1060 has no
concurrent kernels), but the DMA engine runs independently, which is the
overlap the pipeline copy protocol exploits.
"""

from __future__ import annotations

import dataclasses

from ..errors import GPUError
from ..obs.spans import NULL_SPAN, collector_for
from ..sim import Engine, Event, Resource, Tracer, NULL_TRACER
from ..units import GiB, USEC
from .dma import DMAEngine, PCIeModel, PCIE_GEN2_X16
from .kernels import KernelRegistry
from .memory import DeviceMemory


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Performance envelope of one GPU model."""

    name: str
    dp_gflops: float            # double-precision peak, GFlop/s
    gemm_efficiency: float      # fraction of peak achieved by large dgemm
    mem_bw_Bps: float           # device-memory bandwidth
    mem_bytes: int              # device-memory capacity
    launch_overhead_s: float    # per-kernel launch latency
    pcie: PCIeModel

    def __post_init__(self) -> None:
        if self.dp_gflops <= 0 or self.mem_bw_Bps <= 0 or self.mem_bytes <= 0:
            raise GPUError("GPU spec values must be positive")
        if not 0 < self.gemm_efficiency <= 1:
            raise GPUError(f"gemm efficiency must be in (0, 1]: {self.gemm_efficiency!r}")
        if self.launch_overhead_s < 0:
            raise GPUError("launch overhead cannot be negative")

    def flops_time(self, flops: float, efficiency: float | None = None) -> float:
        """Seconds to execute ``flops`` at the given fraction of peak."""
        eff = self.gemm_efficiency if efficiency is None else efficiency
        return flops / (self.dp_gflops * 1e9 * eff)

    def mem_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` through device memory."""
        return nbytes / self.mem_bw_Bps


#: NVIDIA Tesla C1060 as in the paper's testbed: 78 GFlop/s double
#: precision peak, ~102 GB/s GDDR3, 4 GiB, PCIe gen2 x16.
TESLA_C1060 = GPUSpec(
    name="tesla-c1060",
    dp_gflops=78.0,
    gemm_efficiency=0.80,
    mem_bw_Bps=102e9,
    mem_bytes=4 * GiB,
    launch_overhead_s=7.0 * USEC,
    pcie=PCIE_GEN2_X16,
)

#: Intel Xeon Phi (Knights Corner), the "emerging MIC architecture" the
#: paper's conclusion names as an easy extension target: ~1 TFlop/s double
#: precision, ~170 GB/s GDDR5, 8 GiB.  Offload launches cost more than a
#: CUDA kernel launch.  Used by the extensibility tests to show the
#: middleware is accelerator-agnostic.
XEON_PHI_KNC = GPUSpec(
    name="xeon-phi-knc",
    dp_gflops=1011.0,
    gemm_efficiency=0.75,
    mem_bw_Bps=170e9,
    mem_bytes=8 * GiB,
    launch_overhead_s=20.0 * USEC,
    pcie=PCIE_GEN2_X16,
)


class GPUDevice:
    """One virtual GPU: memory + DMA + serialized compute."""

    _ids = 0

    def __init__(self, engine: Engine, spec: GPUSpec = TESLA_C1060,
                 registry: KernelRegistry | None = None,
                 name: str | None = None, tracer: Tracer = NULL_TRACER):
        self.engine = engine
        self.spec = spec
        if registry is None:
            from .stdkernels import default_registry
            registry = default_registry().clone()
        self.registry = registry
        GPUDevice._ids += 1
        self.name = name or f"gpu{GPUDevice._ids}"
        self.tracer = tracer
        self.memory = DeviceMemory(spec.mem_bytes)
        self.dma = DMAEngine(engine, spec.pcie, name=f"{self.name}.dma")
        self._compute = Resource(engine, capacity=1)
        #: Cumulative compute-busy seconds (utilization accounting).
        self.busy_time = 0.0
        self.kernels_launched = 0

    def launch(self, kernel_name: str, params: dict | None = None,
               real: bool = True, ctx=None) -> Event:
        """Launch a kernel; the returned event fires at completion.

        ``real=False`` charges the kernel's modeled time without executing
        its numerics (timing-only mode for paper-scale problem sizes).
        The event's value is the kernel's return (error code or None).
        ``ctx`` optionally parents a ``gpu.kernel`` trace span under the
        requesting operation (see :mod:`repro.obs`).
        """
        kernel = self.registry.get(kernel_name)
        params = params or {}
        duration = kernel.cost(params, self.spec)
        done = self.engine.event()
        self.engine.process(self._run(kernel, params, duration, real, done, ctx),
                            name=f"{self.name}:{kernel_name}")
        return done

    def _run(self, kernel, params: dict, duration: float, real: bool,
             done: Event, ctx=None):
        span = collector_for(self.engine).start(
            "gpu.kernel", self.name, parent=ctx,
            kernel=kernel.name) if ctx is not None else NULL_SPAN
        with span:
            yield self._compute.acquire()
            span.event("compute_acquired")
            yield self.engine.timeout(self.spec.launch_overhead_s + duration)
            result = None
            try:
                if real:
                    result = kernel.fn(self, params)
            finally:
                self._compute.release()
            self.busy_time += duration
            self.kernels_launched += 1
            self.tracer.log(self.engine.now, "gpu.kernel", self.name,
                            (kernel.name, duration))
            span.set(modeled_s=duration)
        done.succeed(result)

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of wall time the compute engine was busy."""
        total = elapsed if elapsed is not None else self.engine.now
        return self.busy_time / total if total > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GPUDevice {self.name} ({self.spec.name})>"
