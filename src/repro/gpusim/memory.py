"""Device-memory management for the virtual GPU.

A first-fit free-list allocator over a flat address space, mirroring
``cudaMalloc``/``cudaFree`` semantics.  Real payloads are kept as uint8
backing arrays per allocation (created lazily on first write), so the
middleware's pipelined block copies write genuine bytes at genuine offsets.
Array-typed writes additionally record dtype/shape so kernels can obtain
typed views without copying.

Invariants (exercised by the property tests):

* live allocations never overlap;
* every allocation lies within the device capacity;
* freeing coalesces adjacent free ranges, so alloc-all/free-all always
  returns to a single free block.
"""

from __future__ import annotations

import sys
import typing as _t

import numpy as np

from ..buffers import ChunkView, chunk_payload, copy_stats
from ..errors import DeviceMemoryError


class Allocation:
    """One live device allocation."""

    __slots__ = ("addr", "nbytes", "data", "dtype", "shape", "_loaned")

    def __init__(self, addr: int, nbytes: int):
        self.addr = addr
        self.nbytes = nbytes
        self.data: np.ndarray | None = None  # lazy uint8 backing store
        self.dtype: np.dtype | None = None
        self.shape: tuple[int, ...] | None = None
        #: True while zero-copy read views over ``data`` may be outstanding
        #: (D2H staging, downloads handed to the application).
        self._loaned = False

    def backing(self) -> np.ndarray:
        if self.data is None:
            self.data = np.zeros(self.nbytes, dtype=np.uint8)
        return self.data

    def writable(self) -> np.ndarray:
        """Backing store for *mutation* — the allocation-level COW point.

        While read views are loaned out (zero-copy D2H), the first
        mutation repoints this allocation at a private copy of its bytes
        and leaves the old buffer to the views, which therefore keep the
        snapshot semantics a copying ``read()`` used to provide.
        """
        buf = self.backing()
        if self._loaned:
            # Refcount probe: every live view into the backing (loans
            # and anything derived from them) holds a reference to it,
            # so if the count is back to baseline — self.data, the
            # local here, and getrefcount's own argument — the snapshot
            # obligation has lapsed and the buffer can be reused in
            # place.  Buffers cycled through upload/download every pass
            # would otherwise pay a full-allocation copy per reuse.
            if sys.getrefcount(buf) > 3:
                copy_stats.count_cow(buf.nbytes)
                self.data = buf.copy()
                buf = self.data
            self._loaned = False
        return buf

    def loan(self, offset: int, nbytes: int) -> np.ndarray:
        """A read-only view of ``nbytes`` at ``offset`` (zero copy).

        The view stays valid as a snapshot of the current contents: any
        later mutation of the allocation goes through :meth:`writable`
        and copies the backing first.
        """
        view = self.backing()[offset:offset + nbytes]
        view.flags.writeable = False
        self._loaned = True
        return view

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Allocation @{self.addr:#x} {self.nbytes}B>"


class DeviceMemory:
    """First-fit allocator with free-range coalescing."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise DeviceMemoryError(f"capacity must be positive: {capacity!r}")
        self.capacity = int(capacity)
        #: Sorted list of (start, size) free ranges.
        self._free: list[tuple[int, int]] = [(0, self.capacity)]
        self._allocs: dict[int, Allocation] = {}

    # -- allocation -------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self.capacity - sum(size for _, size in self._free)

    @property
    def n_allocations(self) -> int:
        return len(self._allocs)

    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the device address.

        Zero-byte allocations are rejected (CUDA returns a unique pointer,
        but none of our workloads rely on that corner).
        """
        if nbytes <= 0:
            raise DeviceMemoryError(f"allocation size must be positive: {nbytes!r}")
        for i, (start, size) in enumerate(self._free):
            if size >= nbytes:
                if size == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (start + nbytes, size - nbytes)
                alloc = Allocation(start, nbytes)
                self._allocs[start] = alloc
                return start
        raise DeviceMemoryError(
            f"out of device memory: requested {nbytes}, "
            f"largest free block {self.largest_free_block()}"
        )

    def free(self, addr: int) -> None:
        """Release the allocation at base address ``addr``."""
        alloc = self._allocs.pop(addr, None)
        if alloc is None:
            raise DeviceMemoryError(f"free of unknown device address {addr:#x}")
        self._insert_free(alloc.addr, alloc.nbytes)

    def _insert_free(self, start: int, size: int) -> None:
        # Insert keeping sort order, then coalesce neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (start, size))
        # Coalesce with successor first, then predecessor.
        if lo + 1 < len(self._free):
            s, sz = self._free[lo]
            ns, nsz = self._free[lo + 1]
            if s + sz == ns:
                self._free[lo] = (s, sz + nsz)
                del self._free[lo + 1]
        if lo > 0:
            ps, psz = self._free[lo - 1]
            s, sz = self._free[lo]
            if ps + psz == s:
                self._free[lo - 1] = (ps, psz + sz)
                del self._free[lo]

    # -- access -----------------------------------------------------------
    def allocation(self, addr: int) -> Allocation:
        """The allocation whose *base* address is ``addr``."""
        try:
            return self._allocs[addr]
        except KeyError:
            raise DeviceMemoryError(f"unknown device address {addr:#x}") from None

    def write(self, addr: int, offset: int,
              data: bytes | np.ndarray | ChunkView) -> None:
        """Write raw bytes at ``addr + offset``.

        This is the one physical payload copy the architecture requires
        (network buffer -> device backing store); ``data`` may be a
        :class:`~repro.buffers.ChunkView`, whose bytes are read in place.
        """
        alloc = self.allocation(addr)
        if isinstance(data, (bytes, bytearray)):
            buf = np.frombuffer(data, dtype=np.uint8)
        else:
            buf = chunk_payload(data)
        if offset < 0 or offset + buf.nbytes > alloc.nbytes:
            raise DeviceMemoryError(
                f"write of {buf.nbytes}B at offset {offset} exceeds "
                f"allocation of {alloc.nbytes}B"
            )
        copy_stats.count_device_write(buf.nbytes)
        alloc.writable()[offset:offset + buf.nbytes] = buf

    def read(self, addr: int, offset: int = 0, nbytes: int | None = None,
             copy: bool = True) -> np.ndarray:
        """Read raw bytes from ``addr + offset`` (dtype uint8).

        ``copy=True`` (the public-API default) returns a private mutable
        copy.  ``copy=False`` returns a read-only *loaned view* over the
        backing store — zero copy; allocation-level copy-on-write keeps
        it a stable snapshot even if device memory is mutated later.
        The daemon's D2H staging path uses the view variant.
        """
        alloc = self.allocation(addr)
        if nbytes is None:
            nbytes = alloc.nbytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > alloc.nbytes:
            raise DeviceMemoryError(
                f"read of {nbytes}B at offset {offset} exceeds "
                f"allocation of {alloc.nbytes}B"
            )
        if not copy:
            return alloc.loan(offset, nbytes)
        copy_stats.count_payload_copy(nbytes)
        return alloc.backing()[offset:offset + nbytes].copy()

    def read_chunk(self, addr: int, offset: int = 0,
                   nbytes: int | None = None) -> ChunkView:
        """Like ``read(copy=False)`` but wrapped as a transport-ready
        :class:`~repro.buffers.ChunkView` (the D2H staging currency)."""
        return ChunkView(self.read(addr, offset, nbytes, copy=False))

    def write_array(self, addr: int, array: np.ndarray) -> None:
        """Write a typed array at offset 0 and record its dtype/shape."""
        alloc = self.allocation(addr)
        arr = np.ascontiguousarray(array)
        if arr.nbytes > alloc.nbytes:
            raise DeviceMemoryError(
                f"array of {arr.nbytes}B does not fit allocation of {alloc.nbytes}B"
            )
        copy_stats.count_device_write(arr.nbytes)
        alloc.writable()[: arr.nbytes] = arr.view(np.uint8).reshape(-1)
        alloc.dtype = arr.dtype
        alloc.shape = arr.shape

    def set_array_meta(self, addr: int, dtype: np.dtype | str, shape: tuple[int, ...]) -> None:
        """Declare the typed interpretation of a buffer without writing it."""
        alloc = self.allocation(addr)
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
        if nbytes > alloc.nbytes:
            raise DeviceMemoryError(
                f"declared view of {nbytes}B exceeds allocation of {alloc.nbytes}B"
            )
        alloc.dtype = dtype
        alloc.shape = tuple(shape)

    def _typed_extent(self, alloc: Allocation, dtype, shape) -> tuple[np.dtype, tuple, int]:
        dt = np.dtype(dtype) if dtype is not None else alloc.dtype
        shp = shape if shape is not None else alloc.shape
        if dt is None or shp is None:
            raise DeviceMemoryError(
                f"buffer {alloc.addr:#x} has no recorded dtype/shape; "
                "write_array() or set_array_meta() first"
            )
        n = dt.itemsize * int(np.prod(shp)) if shp else dt.itemsize
        if n > alloc.nbytes:
            raise DeviceMemoryError(
                f"view of {n}B exceeds allocation of {alloc.nbytes}B"
            )
        return dt, shp, n

    def view(self, addr: int, dtype: np.dtype | str | None = None,
             shape: tuple[int, ...] | None = None) -> np.ndarray:
        """A mutable typed view of a buffer (zero copy).

        Uses the recorded dtype/shape unless overridden.  Kernels mutate
        device data through these views, so acquiring one is a mutation
        point: outstanding loaned read views are detached first
        (allocation-level copy-on-write).
        """
        alloc = self.allocation(addr)
        dt, shp, n = self._typed_extent(alloc, dtype, shape)
        return alloc.writable()[:n].view(dt).reshape(shp)

    def read_array(self, addr: int, copy: bool = True) -> np.ndarray:
        """A typed read of a buffer using its recorded dtype/shape.

        ``copy=True`` (public-API default) returns a private mutable
        copy; ``copy=False`` returns a read-only loaned snapshot view
        (zero copy, protected by allocation-level copy-on-write).
        """
        alloc = self.allocation(addr)
        dt, shp, n = self._typed_extent(alloc, None, None)
        if not copy:
            return alloc.loan(0, n).view(dt).reshape(shp)
        copy_stats.count_payload_copy(n)
        return alloc.backing()[:n].view(dt).reshape(shp).copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DeviceMemory {self.used_bytes}/{self.capacity}B used, "
                f"{len(self._allocs)} allocs>")


class MemoryPartition:
    """A byte-quota view of one :class:`DeviceMemory` for a single tenant.

    Partitions are *accounting* quotas, not reserved carve-outs: all
    partitions allocate from the shared device allocator, but each one
    caps the total bytes its owner may hold and tracks which base
    addresses it owns, so the daemon can refuse cross-tenant frees and
    reads.  Creating a partition never fails — a partition whose quota
    exceeds the currently free device memory simply sees ``malloc`` fail
    at the device level when the device itself runs short.
    """

    def __init__(self, memory: DeviceMemory, quota_bytes: int, name: str = ""):
        if quota_bytes <= 0:
            raise DeviceMemoryError(
                f"partition quota must be positive: {quota_bytes!r}")
        self.memory = memory
        self.quota_bytes = int(quota_bytes)
        self.name = name
        self._owned: dict[int, int] = {}  # base addr -> nbytes

    @property
    def used_bytes(self) -> int:
        return sum(self._owned.values())

    @property
    def free_quota(self) -> int:
        return self.quota_bytes - self.used_bytes

    def owns(self, addr: int) -> bool:
        return addr in self._owned

    def check(self, addr: int) -> int:
        """Validate ownership of base address ``addr`` (returns it)."""
        if addr not in self._owned:
            raise DeviceMemoryError(
                f"address {addr:#x} is not owned by partition {self.name!r}")
        return addr

    def malloc(self, nbytes: int) -> int:
        if nbytes <= 0:
            raise DeviceMemoryError(
                f"allocation size must be positive: {nbytes!r}")
        if nbytes > self.free_quota:
            raise DeviceMemoryError(
                f"partition {self.name!r} quota exceeded: requested {nbytes}B, "
                f"{self.free_quota}B of {self.quota_bytes}B quota free")
        addr = self.memory.malloc(nbytes)
        self._owned[addr] = nbytes
        return addr

    def free(self, addr: int) -> None:
        self.check(addr)
        self.memory.free(addr)
        del self._owned[addr]

    def release_all(self) -> int:
        """Free every allocation this partition owns; returns bytes freed.

        Used when a virtual accelerator is detached or preempted: the
        tenant's device state is dropped wholesale (its host-side shadow
        is what survives, via the replay machinery).
        """
        freed = 0
        for addr, nbytes in sorted(self._owned.items()):
            self.memory.free(addr)
            freed += nbytes
        self._owned.clear()
        return freed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MemoryPartition {self.name!r} "
                f"{self.used_bytes}/{self.quota_bytes}B>")
