"""Built-in device kernels: fills, vector ops, and BLAS-3 building blocks.

Every kernel takes its problem dimensions from ``params`` (so its cost is
computable without device data) and performs its numerics on typed views of
device buffers identified by address parameters.

Shapes follow row-major numpy conventions.  The BLAS-3 kernels are the
building blocks the MAGMA-style multi-GPU factorizations launch on each
accelerator.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import KernelError
from .kernels import KernelRegistry
from .timing import (
    gemm_time,
    streaming_time,
    syrk_time,
    trsm_time,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from .device import GPUDevice, GPUSpec


def _need(params: dict, *keys: str) -> list:
    out = []
    for k in keys:
        if k not in params:
            raise KernelError(f"missing kernel parameter {k!r}")
        out.append(params[k])
    return out


# -- elementwise / vector kernels ----------------------------------------

def _fill_fn(dev: "GPUDevice", p: dict):
    dst, n, value = _need(p, "dst", "n", "value")
    view = dev.memory.view(dst, dtype=p.get("dtype", "float64"), shape=(n,))
    view[:] = value
    return 0


def _fill_cost(p: dict, spec: "GPUSpec") -> float:
    (n,) = _need(p, "n")
    return streaming_time(spec, 8.0 * n)


def _axpy_fn(dev: "GPUDevice", p: dict):
    x, y, n, alpha = _need(p, "x", "y", "n", "alpha")
    xv = dev.memory.view(x, dtype="float64", shape=(n,))
    yv = dev.memory.view(y, dtype="float64", shape=(n,))
    yv += alpha * xv
    return 0


def _axpy_cost(p: dict, spec: "GPUSpec") -> float:
    (n,) = _need(p, "n")
    return streaming_time(spec, 3 * 8.0 * n, flops=2.0 * n)


def _scal_fn(dev: "GPUDevice", p: dict):
    x, n, alpha = _need(p, "x", "n", "alpha")
    xv = dev.memory.view(x, dtype="float64", shape=(n,))
    xv *= alpha
    return 0


def _scal_cost(p: dict, spec: "GPUSpec") -> float:
    (n,) = _need(p, "n")
    return streaming_time(spec, 2 * 8.0 * n, flops=float(n))


def _dot_fn(dev: "GPUDevice", p: dict):
    x, y, out, n = _need(p, "x", "y", "out", "n")
    xv = dev.memory.view(x, dtype="float64", shape=(n,))
    yv = dev.memory.view(y, dtype="float64", shape=(n,))
    ov = dev.memory.view(out, dtype="float64", shape=(1,))
    ov[0] = float(xv @ yv)
    return 0


def _dot_cost(p: dict, spec: "GPUSpec") -> float:
    (n,) = _need(p, "n")
    return streaming_time(spec, 2 * 8.0 * n, flops=2.0 * n)


# -- BLAS-3 kernels --------------------------------------------------------

def _gemm_views(dev: "GPUDevice", p: dict):
    m, n, k = _need(p, "m", "n", "k")
    ta, tb = p.get("ta", False), p.get("tb", False)
    a = dev.memory.view(p["A"], dtype="float64", shape=(k, m) if ta else (m, k))
    b = dev.memory.view(p["B"], dtype="float64", shape=(n, k) if tb else (k, n))
    c = dev.memory.view(p["C"], dtype="float64", shape=(m, n))
    return (a.T if ta else a), (b.T if tb else b), c


def _gemm_fn(dev: "GPUDevice", p: dict):
    """C = alpha * op(A) @ op(B) + beta * C.

    BLAS semantics: with beta == 0 the input C is never read (it may hold
    uninitialized memory).
    """
    a, b, c = _gemm_views(dev, p)
    alpha = p.get("alpha", 1.0)
    beta = p.get("beta", 1.0)
    if beta == 0.0:
        c[:] = alpha * (a @ b)
    else:
        np.multiply(c, beta, out=c)
        c += alpha * (a @ b)
    return 0


def _gemm_cost(p: dict, spec: "GPUSpec") -> float:
    m, n, k = _need(p, "m", "n", "k")
    return gemm_time(spec, m, n, k)


def _syrk_fn(dev: "GPUDevice", p: dict):
    """C = beta * C + alpha * A @ A^T (lower triangle semantics).

    The full product is formed (numpy has no triangular kernel); only the
    cost model reflects the halved flop count.
    """
    n, k = _need(p, "n", "k")
    a = dev.memory.view(p["A"], dtype="float64", shape=(n, k))
    c = dev.memory.view(p["C"], dtype="float64", shape=(n, n))
    alpha = p.get("alpha", 1.0)
    beta = p.get("beta", 1.0)
    if beta == 0.0:
        c[:] = alpha * (a @ a.T)
    else:
        np.multiply(c, beta, out=c)
        c += alpha * (a @ a.T)
    return 0


def _syrk_cost(p: dict, spec: "GPUSpec") -> float:
    n, k = _need(p, "n", "k")
    return syrk_time(spec, n, k)


def _trsm_fn(dev: "GPUDevice", p: dict):
    """B = B @ inv(T)^T for lower-triangular T (right-side, used by Cholesky).

    ``T`` is the nb x nb factored diagonal block, ``B`` is m x nb.
    """
    m, nb = _need(p, "m", "nb")
    t = dev.memory.view(p["T"], dtype="float64", shape=(nb, nb))
    b = dev.memory.view(p["B"], dtype="float64", shape=(m, nb))
    # Solve X @ T^T = B  <=>  T @ X^T = B^T.
    import scipy.linalg as sla
    x = sla.solve_triangular(t, b.T, lower=True)
    b[:] = x.T
    return 0


def _trsm_cost(p: dict, spec: "GPUSpec") -> float:
    m, nb = _need(p, "m", "nb")
    return trsm_time(spec, m, nb)


def default_registry() -> KernelRegistry:
    """The registry every new device starts from."""
    reg = KernelRegistry()
    reg.register("fill", _fill_fn, _fill_cost)
    reg.register("daxpy", _axpy_fn, _axpy_cost)
    reg.register("dscal", _scal_fn, _scal_cost)
    reg.register("ddot", _dot_fn, _dot_cost)
    reg.register("dgemm", _gemm_fn, _gemm_cost)
    reg.register("dsyrk", _syrk_fn, _syrk_cost)
    reg.register("dtrsm", _trsm_fn, _trsm_cost)
    return reg


_DEFAULT: KernelRegistry | None = None


def shared_default_registry() -> KernelRegistry:
    """A cached shared instance (cloned by each device)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = default_registry()
    return _DEFAULT
