"""Kernel registry and launch descriptors for the virtual GPU.

A kernel pairs a **numerical function** (what it computes, on typed views of
device buffers) with a **cost function** (how long the real GPU would take).
The two are independent so the same kernel can run in ``real`` mode (small
problems, verified numerics) and ``timed`` mode (paper-scale problems,
virtual time only).

Kernel parameters must be plain picklable values (ints, floats, strings,
device addresses) because the middleware marshals them over the simulated
network exactly like ``acKernelSetArgs`` would.
"""

from __future__ import annotations

import typing as _t

from ..errors import KernelError

if _t.TYPE_CHECKING:  # pragma: no cover
    from .device import GPUDevice, GPUSpec

#: computes on the device; returns None or an error code (0 == OK).
KernelFn = _t.Callable[["GPUDevice", dict], _t.Any]
#: maps (params, spec) -> execution seconds (excluding launch overhead).
CostFn = _t.Callable[[dict, "GPUSpec"], float]


class Kernel:
    """A named device kernel: numerics plus cost model."""

    __slots__ = ("name", "fn", "cost_fn")

    def __init__(self, name: str, fn: KernelFn, cost_fn: CostFn):
        self.name = name
        self.fn = fn
        self.cost_fn = cost_fn

    def cost(self, params: dict, spec: "GPUSpec") -> float:
        t = self.cost_fn(params, spec)
        if t < 0:
            raise KernelError(f"kernel {self.name!r} produced negative cost {t!r}")
        return t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Kernel {self.name}>"


class KernelRegistry:
    """Name -> kernel lookup, per device (or shared read-only)."""

    def __init__(self) -> None:
        self._kernels: dict[str, Kernel] = {}

    def register(self, name: str, fn: KernelFn, cost_fn: CostFn,
                 replace: bool = False) -> Kernel:
        """Register a kernel; duplicate names need ``replace=True``."""
        if name in self._kernels and not replace:
            raise KernelError(f"kernel {name!r} already registered")
        k = Kernel(name, fn, cost_fn)
        self._kernels[name] = k
        return k

    def get(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise KernelError(
                f"unknown kernel {name!r}; registered: {sorted(self._kernels)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def names(self) -> list[str]:
        return sorted(self._kernels)

    def clone(self) -> "KernelRegistry":
        """Independent copy (per-device registries start from the defaults)."""
        out = KernelRegistry()
        out._kernels = dict(self._kernels)
        return out


#: Extension catalog: workload packages publish kernels here at import
#: time; ``kernel_create`` installs them onto a device on first use — the
#: analogue of uploading a CUDA module to the accelerator.
EXTENSIONS: dict[str, tuple[KernelFn, CostFn]] = {}

#: Modules that publish kernels, imported lazily by :func:`resolve` so
#: ``kernel_create`` finds workload kernels regardless of import order.
_PROVIDER_MODULES = (
    "repro.workloads.linalg.kernels",
    "repro.workloads.mp2c.kernels",
)
_providers_loaded = False


def provide(name: str, fn: KernelFn, cost_fn: CostFn) -> None:
    """Publish a kernel for on-demand installation by ``kernel_create``."""
    EXTENSIONS[name] = (fn, cost_fn)


def _load_providers() -> None:
    global _providers_loaded
    if _providers_loaded:
        return
    _providers_loaded = True
    import importlib
    for mod in _PROVIDER_MODULES:
        importlib.import_module(mod)


def resolve(registry: KernelRegistry, name: str) -> bool:
    """Install ``name`` from the extension catalog if absent.

    Returns True if the kernel is (now) available in ``registry``.
    """
    if name in registry:
        return True
    if name not in EXTENSIONS:
        _load_providers()
    ext = EXTENSIONS.get(name)
    if ext is None:
        return False
    registry.register(name, ext[0], ext[1])
    return True
