"""Message matching: posted receives and the unexpected-message queue.

MPI matching semantics: a receive matches the earliest arrived message with
compatible ``(source, tag)``; an arriving message matches the earliest
posted receive.  Wildcards :data:`ANY_SOURCE` / :data:`ANY_TAG` are
supported.  Messages between the same ``(source, dest, tag)`` triple are
non-overtaking (FIFO), which the simulated transport guarantees because
arrivals are processed in delivery order.
"""

from __future__ import annotations

import collections
import typing as _t

#: Wildcard source rank.
ANY_SOURCE = -1
#: Wildcard tag.
ANY_TAG = -1


class Envelope:
    """Matching metadata of a message (no payload)."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Envelope src={self.source} tag={self.tag} {self.nbytes}B>"


def _matches(want_src: int, want_tag: int, env: Envelope) -> bool:
    return (want_src in (ANY_SOURCE, env.source)) and (want_tag in (ANY_TAG, env.tag))


class MatchList:
    """An ordered list supporting earliest-match extraction.

    Used both for posted receives (entries carry the wanted ``(src, tag)``)
    and for unexpected arrivals (entries carry the actual envelope).
    """

    def __init__(self) -> None:
        self._entries: collections.deque[tuple[int, int, _t.Any]] = collections.deque()

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, source: int, tag: int, item: _t.Any) -> None:
        self._entries.append((source, tag, item))

    def pop_match_for_arrival(self, env: Envelope) -> _t.Any | None:
        """Earliest posted receive compatible with an arriving envelope."""
        for i, (src, tag, item) in enumerate(self._entries):
            if _matches(src, tag, env):
                del self._entries[i]
                return item
        return None

    def pop_match_for_recv(self, want_src: int, want_tag: int) -> _t.Any | None:
        """Earliest arrival compatible with a posted receive.

        Entries here store the *actual* envelope in the (source, tag) slots.
        """
        for i, (src, tag, item) in enumerate(self._entries):
            if _matches(want_src, want_tag, Envelope(src, tag, 0)):
                del self._entries[i]
                return item
        return None

    def remove(self, item: _t.Any) -> bool:
        """Remove a specific entry (receive cancellation). True if found."""
        for i, (_, _, it) in enumerate(self._entries):
            if it is item:
                del self._entries[i]
                return True
        return False
