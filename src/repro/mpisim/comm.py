"""Simulated MPI: world, communicators, and point-to-point messaging.

The layer reproduces the MPI semantics the middleware and the workloads
rely on:

* **eager protocol** for messages up to the link model's
  ``rendezvous_threshold``: the payload is buffered and shipped immediately;
  the send completes locally once the NIC has posted it;
* **rendezvous protocol** for larger messages: a ready-to-send (RTS) control
  message travels first, the data flows only after the receiver has matched
  it and answered clear-to-send (CTS) — so large sends complete no earlier
  than delivery, exactly the behaviour that makes PingPong a round trip;
* **non-overtaking matching** per ``(source, tag)`` with wildcard receives.

Payloads are real Python objects (see :mod:`repro.mpisim.datatypes`), so
the whole middleware stack moves genuine bytes during correctness tests.
"""

from __future__ import annotations

import typing as _t

from ..errors import MPIError
from ..netsim import Endpoint, Fabric
from ..sim import Engine, Event, Tracer, NULL_TRACER
from .datatypes import copy_for_send, payload_nbytes
from .matching import ANY_SOURCE, ANY_TAG, Envelope, MatchList


def _matches_probe(want_src: int, want_tag: int, src: int, tag: int) -> bool:
    return (want_src in (ANY_SOURCE, src)) and (want_tag in (ANY_TAG, tag))

#: Bytes added to every data message for the match header.
HEADER_BYTES = 64
#: Size of RTS/CTS control messages.
CONTROL_BYTES = 64

#: Tag space reserved for collective operations (see collectives.py).
MAX_USER_TAG = 2**20


class Message:
    """A received message: payload plus matching metadata."""

    __slots__ = ("source", "tag", "payload", "nbytes")

    def __init__(self, source: int, tag: int, payload: _t.Any, nbytes: int):
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message src={self.source} tag={self.tag} {self.nbytes}B>"


class Request:
    """Handle for a non-blocking operation.

    Wait for it inside a process with ``yield req.done``; a receive's
    ``done`` value (and ``req.message``) is the :class:`Message`.
    """

    __slots__ = ("done", "message", "kind", "cancelled")

    def __init__(self, engine: Engine, kind: str):
        self.done = Event(engine)
        self.message: Message | None = None
        self.kind = kind
        #: True once :meth:`Communicator.cancel_recv` removed this receive.
        self.cancelled = False

    @property
    def completed(self) -> bool:
        return self.done.triggered

    def _complete(self, message: Message | None = None) -> None:
        self.message = message
        self.done.succeed(message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} {state}>"


class _PostedRecv:
    __slots__ = ("request",)

    def __init__(self, request: Request):
        self.request = request


class _Arrival:
    """An unexpected arrival: either buffered eager data or a pending RTS."""

    __slots__ = ("env", "payload", "rts")

    def __init__(self, env: Envelope, payload: _t.Any = None, rts: "_Rts | None" = None):
        self.env = env
        self.payload = payload
        self.rts = rts


class _Rts:
    """Sender-side state of a rendezvous in progress."""

    __slots__ = ("src_rank", "payload", "nbytes", "send_request")

    def __init__(self, src_rank: int, payload: _t.Any, nbytes: int, send_request: Request):
        self.src_rank = src_rank
        self.payload = payload
        self.nbytes = nbytes
        self.send_request = send_request


class _RankState:
    __slots__ = ("posted", "unexpected", "coll_seq", "probers", "discards")

    def __init__(self) -> None:
        self.posted = MatchList()
        self.unexpected = MatchList()
        self.coll_seq = 0
        #: Blocking probes waiting for a matching arrival: (src, tag, event).
        self.probers: list[tuple[int, int, Event]] = []
        #: One-shot (src, tag) patterns of cancelled receives: the next
        #: matching arrival is dropped instead of rotting in ``unexpected``.
        self.discards: list[tuple[int, int]] = []


class World:
    """Binds an engine and a fabric; the factory for communicators."""

    def __init__(self, engine: Engine, fabric: Fabric, tracer: Tracer = NULL_TRACER):
        self.engine = engine
        self.fabric = fabric
        self.tracer = tracer

    def create_comm(self, endpoints: _t.Sequence[Endpoint | str],
                    name: str = "comm") -> "Communicator":
        """Create a communicator whose rank *i* lives on ``endpoints[i]``.

        Several ranks may share one endpoint (processes on the same node).
        """
        eps = [self.fabric.endpoint(e) if isinstance(e, str) else e for e in endpoints]
        if not eps:
            raise MPIError("a communicator needs at least one rank")
        return Communicator(self, eps, name)


class Communicator:
    """An ordered group of ranks with private matching state."""

    def __init__(self, world: World, endpoints: list[Endpoint], name: str):
        self.world = world
        self.engine = world.engine
        self.fabric = world.fabric
        self.name = name
        self._endpoints = endpoints
        self._states = [_RankState() for _ in endpoints]
        # Per (src, dst) sequence numbers enforce MPI's non-overtaking
        # matching even when a small eager message would physically beat an
        # earlier large one through the fluid fabric.
        self._send_seq: dict[tuple[int, int], int] = {}
        self._match_seq: dict[tuple[int, int], int] = {}
        self._held: dict[tuple[int, int], dict[int, _Arrival]] = {}

    @property
    def size(self) -> int:
        return len(self._endpoints)

    def rank(self, index: int) -> "RankHandle":
        """Handle bound to rank ``index`` for issuing operations."""
        self._check_rank(index)
        return RankHandle(self, index)

    def endpoint_of(self, rank: int) -> Endpoint:
        self._check_rank(rank)
        return self._endpoints[rank]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range for {self.name} (size {self.size})")

    # -- sending --------------------------------------------------------
    def isend(self, src: int, dst: int, tag: int, payload: _t.Any = None,
              eager: bool | None = None,
              injection_s: float | None = None) -> Request:
        """Non-blocking send from rank ``src`` to rank ``dst``.

        ``eager`` overrides the size-based protocol choice: ``True`` forces
        eager delivery (models a receiver that pre-posted its buffers, so no
        rendezvous handshake is needed — the middleware's pipeline block
        streams announce their block count in a header and use this),
        ``False`` forces rendezvous, ``None`` applies the threshold.
        ``injection_s`` overrides the NIC's per-message posting cost (see
        :meth:`repro.netsim.Fabric.transfer`).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise MPIError(f"negative tag: {tag!r}")
        nbytes = payload_nbytes(payload)
        snapshot = copy_for_send(payload)
        req = Request(self.engine, "send")
        env = Envelope(src, tag, nbytes)
        if eager is None:
            threshold = self.fabric.model.rendezvous_threshold
            eager = threshold == 0 or nbytes <= threshold
        if eager:
            self._eager_send(env, dst, snapshot, req, injection_s)
        else:
            self._rendezvous_rts(env, dst, snapshot, req)
        return req

    def _next_seq(self, pair: tuple[int, int]) -> int:
        seq = self._send_seq.get(pair, 0)
        self._send_seq[pair] = seq + 1
        return seq

    def _eager_send(self, env: Envelope, dst: int, payload: _t.Any,
                    req: Request,
                    injection_s: float | None = None) -> None:
        tx = self.fabric.transfer(self._endpoints[env.source], self._endpoints[dst],
                                  env.nbytes + HEADER_BYTES,
                                  injection_s=injection_s)
        # Eager sends complete locally as soon as the NIC has the message —
        # even across a partition (the sender cannot tell its bytes died).
        tx.injected.add_callback(lambda _ev: req._complete(None))
        if tx.dropped:
            # A dropped message must NOT consume a (src, dst) sequence
            # number: in-order matching would wait for that seq forever
            # and hold back every later message on the pair.  The fabric
            # decides drops synchronously, so the seq is drawn only here.
            return
        seq = self._next_seq((env.source, dst))
        tx.delivered.add_callback(
            lambda _ev: self._deliver_in_order(dst, _Arrival(env, payload=payload), seq))

    def _rendezvous_rts(self, env: Envelope, dst: int, payload: _t.Any,
                        req: Request) -> None:
        rts = _Rts(env.source, payload, env.nbytes, req)
        ctrl = self.fabric.transfer(self._endpoints[env.source], self._endpoints[dst],
                                    CONTROL_BYTES)
        if ctrl.dropped:
            # The RTS died at a partition: the send stays pending forever,
            # exactly like a real rendezvous sender blocked on a handshake
            # that will never come.  Callers racing a deadline (the RPC
            # layer) escape; bare blocking sends are the caller's risk.
            return
        seq = self._next_seq((env.source, dst))
        ctrl.delivered.add_callback(
            lambda _ev: self._deliver_in_order(dst, _Arrival(env, rts=rts), seq))

    def _deliver_in_order(self, dst: int, arrival: _Arrival, seq: int) -> None:
        """Admit arrivals to matching strictly in send order per (src, dst)."""
        pair = (arrival.env.source, dst)
        expected = self._match_seq.get(pair, 0)
        if seq != expected:
            self._held.setdefault(pair, {})[seq] = arrival
            return
        self._on_arrival(dst, arrival)
        self._match_seq[pair] = expected + 1
        held = self._held.get(pair)
        while held:
            nxt = self._match_seq[pair]
            queued = held.pop(nxt, None)
            if queued is None:
                break
            self._on_arrival(dst, queued)
            self._match_seq[pair] = nxt + 1

    def _rendezvous_data(self, dst: int, arrival: _Arrival, recv_req: Request) -> None:
        """Receiver matched an RTS: answer CTS, then move the payload."""
        rts = arrival.rts
        assert rts is not None
        cts = self.fabric.transfer(self._endpoints[dst], self._endpoints[rts.src_rank],
                                   CONTROL_BYTES)

        def on_cts(_ev: Event) -> None:
            data = self.fabric.transfer(self._endpoints[rts.src_rank],
                                        self._endpoints[dst],
                                        rts.nbytes + HEADER_BYTES)

            def on_data(_ev2: Event) -> None:
                rts.send_request._complete(None)
                recv_req._complete(Message(arrival.env.source, arrival.env.tag,
                                           rts.payload, rts.nbytes))

            data.delivered.add_callback(on_data)

        cts.delivered.add_callback(on_cts)

    # -- receiving ------------------------------------------------------
    def irecv(self, me: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive at rank ``me``."""
        self._check_rank(me)
        state = self._states[me]
        req = Request(self.engine, "recv")
        arrival: _Arrival | None = state.unexpected.pop_match_for_recv(source, tag)
        if arrival is not None:
            if arrival.rts is not None:
                self._rendezvous_data(me, arrival, req)
            else:
                req._complete(Message(arrival.env.source, arrival.env.tag,
                                      arrival.payload, arrival.env.nbytes))
        else:
            state.posted.add(source, tag, _PostedRecv(req))
        return req

    def cancel_recv(self, me: int, request: Request) -> bool:
        """Cancel a posted, still-incomplete receive (MPI_Cancel-style).

        Removes the posted entry so it cannot leak, and registers a
        one-shot discard for its ``(source, tag)`` pattern: if the message
        the receive was waiting for is still in flight, its eventual
        arrival is dropped instead of accumulating in the unexpected
        queue (the ARM heartbeat uses this for missed PING rounds, whose
        reply tags are never received again).  Returns True if the
        receive was pending and is now cancelled; False if it had already
        completed (its message was delivered — cancellation lost the
        race, exactly like MPI_Cancel).
        """
        if request.kind != "recv":
            raise MPIError(f"cancel_recv on a {request.kind} request")
        if request.completed or request.cancelled:
            return False
        state = self._states[me]
        for i, (src, tag, item) in enumerate(state.posted._entries):
            if isinstance(item, _PostedRecv) and item.request is request:
                del state.posted._entries[i]
                request.cancelled = True
                request.done.cancel()
                state.discards.append((src, tag))
                return True
        return False

    def discard_next(self, me: int, source: int, tag: int,
                     count: int = 1) -> None:
        """Drop the next ``count`` arrivals matching ``(source, tag)``.

        For abandoning an in-progress multi-block data stream: blocks
        still in flight (delayed rather than dropped) would otherwise rot
        in the unexpected queue and be mis-matched by a later transfer
        that reuses the tag.  Matching messages already buffered as
        unexpected are removed immediately; the remainder become one-shot
        pending discards consumed on arrival.  Discards for blocks that
        died at a partition simply never fire (tags are per-request, so a
        stale pattern has nothing left to match).
        """
        self._check_rank(me)
        state = self._states[me]
        remaining = count
        while remaining > 0:
            arrival = state.unexpected.pop_match_for_recv(source, tag)
            if arrival is None:
                break
            if arrival.rts is not None:
                # Receiver-side truncation: complete the sender without
                # moving the payload (same as a cancelled recv's discard).
                arrival.rts.send_request._complete(None)
            remaining -= 1
        for _ in range(remaining):
            state.discards.append((source, tag))

    # -- probing --------------------------------------------------------
    def iprobe(self, me: int, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Envelope | None:
        """Non-blocking probe: the earliest matching unexpected envelope.

        Returns matching metadata without consuming the message (a
        subsequent ``recv`` will still receive it), or None if nothing
        matching has arrived yet.
        """
        self._check_rank(me)
        state = self._states[me]
        for src, tg, item in state.unexpected._entries:
            if _matches_probe(source, tag, src, tg):
                return Envelope(src, tg, item.env.nbytes)
        return None

    def probe_event(self, me: int, source: int = ANY_SOURCE,
                    tag: int = ANY_TAG) -> Event:
        """Event that fires with the Envelope of a matching arrival.

        Fires immediately if a matching unexpected message is already
        buffered.  Probing does not consume the message, but a
        concurrently posted receive may — standard MPI probe caveats.
        """
        self._check_rank(me)
        ev = Event(self.engine)
        env = self.iprobe(me, source, tag)
        if env is not None:
            ev.succeed(env)
        else:
            self._states[me].probers.append((source, tag, ev))
        return ev

    def _on_arrival(self, dst: int, arrival: _Arrival) -> None:
        state = self._states[dst]
        if state.discards:
            # A cancelled receive's in-flight message: drop it (one-shot).
            env = arrival.env
            for i, (src, tag) in enumerate(state.discards):
                if _matches_probe(src, tag, env.source, env.tag):
                    del state.discards[i]
                    if arrival.rts is not None:
                        # Rendezvous: complete the sender without moving
                        # the payload anywhere (receiver-side truncation).
                        arrival.rts.send_request._complete(None)
                    return
        # Wake matching probes first, so a probe observes the message even
        # when a posted receive consumes it in the same instant.
        if state.probers:
            env = arrival.env
            still = []
            for src, tg, ev in state.probers:
                if _matches_probe(src, tg, env.source, env.tag):
                    ev.succeed(Envelope(env.source, env.tag, env.nbytes))
                else:
                    still.append((src, tg, ev))
            state.probers = still
        posted: _PostedRecv | None = state.posted.pop_match_for_arrival(arrival.env)
        if posted is None:
            state.unexpected.add(arrival.env.source, arrival.env.tag, arrival)
            return
        if arrival.rts is not None:
            self._rendezvous_data(dst, arrival, posted.request)
        else:
            posted.request._complete(Message(arrival.env.source, arrival.env.tag,
                                             arrival.payload, arrival.env.nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Communicator {self.name} size={self.size}>"


class RankHandle:
    """All MPI operations of one rank, bound for convenient calling.

    Non-blocking calls (``isend``/``irecv``) return a :class:`Request`
    immediately.  Blocking calls are generators for use with ``yield from``
    inside a simulation process.
    """

    __slots__ = ("comm", "index", "pinned_shard")

    def __init__(self, comm: Communicator, index: int):
        self.comm = comm
        self.index = index
        #: Engine shard the rank's owning node executes on, set by the
        #: cluster builder when it partitions a sharded simulation (None
        #: on unpartitioned runs).  Diagnostic: cross-shard traffic shows
        #: up in ``ShardedEngine.crossings`` keyed by these ids.
        self.pinned_shard: int | None = None

    @property
    def size(self) -> int:
        return self.comm.size

    # -- point to point --------------------------------------------------
    def isend(self, dst: int, tag: int, payload: _t.Any = None,
              eager: bool | None = None,
              injection_s: float | None = None) -> Request:
        return self.comm.isend(self.index, dst, tag, payload, eager=eager,
                               injection_s=injection_s)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return self.comm.irecv(self.index, source, tag)

    def cancel_recv(self, request: Request) -> bool:
        """Cancel a pending posted receive (see :meth:`Communicator.cancel_recv`)."""
        return self.comm.cancel_recv(self.index, request)

    def discard_next(self, source: int, tag: int, count: int = 1) -> None:
        """Drop upcoming arrivals (see :meth:`Communicator.discard_next`)."""
        self.comm.discard_next(self.index, source, tag, count)

    def send(self, dst: int, tag: int, payload: _t.Any = None):
        """Blocking send (generator)."""
        req = self.isend(dst, tag, payload)
        yield req.done

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator). Returns the :class:`Message`."""
        req = self.irecv(source, tag)
        msg = yield req.done
        return msg

    def sendrecv(self, dst: int, send_tag: int, payload: _t.Any,
                 source: int = ANY_SOURCE, recv_tag: int = ANY_TAG):
        """Combined send+receive (generator). Returns the received Message."""
        rreq = self.irecv(source, recv_tag)
        sreq = self.isend(dst, send_tag, payload)
        yield self.comm.engine.all_of([rreq.done, sreq.done])
        return rreq.message

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking probe; returns a matching Envelope or None."""
        return self.comm.iprobe(self.index, source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking probe (generator); returns the matching Envelope."""
        env = yield self.comm.probe_event(self.index, source, tag)
        return env

    def waitall(self, requests: _t.Sequence[Request]):
        """Wait for all requests (generator); returns their messages."""
        if requests:
            yield self.comm.engine.all_of([r.done for r in requests])
        return [r.message for r in requests]

    def waitany(self, requests: _t.Sequence[Request]):
        """Wait for one request (generator); returns (index, message)."""
        if not requests:
            raise MPIError("waitany needs at least one request")
        yield self.comm.engine.any_of([r.done for r in requests])
        for i, r in enumerate(requests):
            if r.completed:
                return i, r.message
        raise MPIError("waitany woke with no completed request")  # pragma: no cover

    # -- collectives (implemented in collectives.py) ---------------------
    def barrier(self):
        from .collectives import barrier
        return barrier(self)

    def bcast(self, payload: _t.Any = None, root: int = 0):
        from .collectives import bcast
        return bcast(self, payload, root)

    def reduce(self, value: _t.Any, op=None, root: int = 0):
        from .collectives import reduce
        return reduce(self, value, op, root)

    def allreduce(self, value: _t.Any, op=None):
        from .collectives import allreduce
        return allreduce(self, value, op)

    def gather(self, value: _t.Any, root: int = 0):
        from .collectives import gather
        return gather(self, value, root)

    def scatter(self, values: _t.Sequence[_t.Any] | None = None, root: int = 0):
        from .collectives import scatter
        return scatter(self, values, root)

    def alltoall(self, values: _t.Sequence[_t.Any]):
        from .collectives import alltoall
        return alltoall(self, values)

    def _next_coll_tag(self) -> int:
        """Allocate a tag block (64 tags) for one collective call.

        All ranks call collectives in the same order per communicator, so
        per-rank counters stay in agreement; each collective may use
        ``base + round`` for up to 64 internal rounds.
        """
        state = self.comm._states[self.index]
        seq = state.coll_seq
        state.coll_seq += 1
        return MAX_USER_TAG + seq * 64

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rank {self.index}/{self.comm.size} on {self.comm.name}>"
