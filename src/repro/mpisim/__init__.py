"""Simulated MPI layer: communicators, point-to-point, collectives.

Carries real Python payloads over the simulated fabric with eager /
rendezvous protocol semantics, wildcard matching, and logarithmic
collectives.
"""

from .comm import (
    CONTROL_BYTES,
    HEADER_BYTES,
    MAX_USER_TAG,
    Communicator,
    Message,
    RankHandle,
    Request,
    World,
)
from .datatypes import Phantom, copy_for_send, payload_nbytes
from .matching import ANY_SOURCE, ANY_TAG

__all__ = [
    "World",
    "Communicator",
    "RankHandle",
    "Request",
    "Message",
    "Phantom",
    "payload_nbytes",
    "copy_for_send",
    "ANY_SOURCE",
    "ANY_TAG",
    "HEADER_BYTES",
    "CONTROL_BYTES",
    "MAX_USER_TAG",
]
