"""Payload handling for the simulated MPI layer.

Messages carry real Python payloads (numpy arrays, tuples, dataclasses).
For timing purposes every payload has a byte size:

* numpy arrays report ``arr.nbytes`` and are copied at send time (MPI buffer
  semantics — the sender may reuse its buffer immediately after ``isend``
  returns, exactly like a buffered eager send);
* ``bytes``/``bytearray``/``memoryview`` report their length;
* :class:`Phantom` wraps a declared size with no real data — used by the
  timing-only execution mode to move "10 million particles" without
  allocating them;
* anything else is measured by its pickled size (control messages).
"""

from __future__ import annotations

import pickle
import typing as _t

import numpy as np

from ..buffers import ChunkView, copy_stats


class Phantom:
    """A payload of declared size with no backing data (timing-only mode)."""

    __slots__ = ("nbytes", "note")

    def __init__(self, nbytes: int, note: str = ""):
        if nbytes < 0:
            raise ValueError(f"negative phantom size: {nbytes!r}")
        self.nbytes = int(nbytes)
        self.note = note

    def __repr__(self) -> str:
        return f"Phantom({self.nbytes}{', ' + self.note if self.note else ''})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Phantom) and other.nbytes == self.nbytes

    def __hash__(self) -> int:
        return hash(("Phantom", self.nbytes))


def payload_nbytes(payload: _t.Any) -> int:
    """Byte size of ``payload`` for transfer-time accounting.

    An object may define ``wire_sized()`` returning the value to measure
    in its place — used by frames carrying out-of-band metadata (e.g. a
    trace span context) that must not change simulated transfer times.
    """
    if payload is None:
        return 0
    if isinstance(payload, (Phantom, ChunkView)):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    sized = getattr(payload, "wire_sized", None)
    if sized is not None:
        payload = sized()
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def copy_for_send(payload: _t.Any) -> _t.Any:
    """Snapshot a payload so the sender can reuse its buffer immediately.

    Arrays are copied; immutable and phantom payloads are passed through.
    A :class:`~repro.buffers.ChunkView` is an *ownership transfer*, not a
    copy: the view is immutable by contract and its backing buffer is
    loaned to the transport until delivery, so "MPI copies at send time"
    costs nothing physical on the zero-copy plane.  Mutable containers
    are shallow-copied via pickle round-trip only when small (control
    messages); large mutable structures should be arrays.
    """
    if isinstance(payload, ChunkView):
        return payload
    if isinstance(payload, np.ndarray):
        copy_stats.count_payload_copy(payload.nbytes)
        return payload.copy()
    if isinstance(payload, bytearray):
        copy_stats.count_payload_copy(len(payload))
        return bytes(payload)
    if isinstance(payload, memoryview):
        copy_stats.count_payload_copy(payload.nbytes)
        return payload.tobytes()
    return payload
