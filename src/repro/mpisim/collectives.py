"""Collective operations built on simulated point-to-point messaging.

All collectives are generators: every rank of the communicator must call
the same collectives in the same order and iterate them inside its own
simulation process (``result = yield from rank.bcast(...)``).

Algorithms are the textbook logarithmic ones (dissemination barrier,
binomial-tree broadcast and reduce), so the simulated cost scales like a
real MPI implementation's.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import MPIError
from .datatypes import Phantom

if _t.TYPE_CHECKING:  # pragma: no cover
    from .comm import RankHandle


def _default_op(a: _t.Any, b: _t.Any) -> _t.Any:
    """Elementwise sum, the MPI_SUM analogue."""
    return np.add(a, b)


def apply_op(op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None,
             a: _t.Any, b: _t.Any) -> _t.Any:
    """Apply a reduction op, propagating Phantom payloads by size."""
    if isinstance(a, Phantom) or isinstance(b, Phantom):
        na = a.nbytes if isinstance(a, Phantom) else np.asarray(a).nbytes
        nb = b.nbytes if isinstance(b, Phantom) else np.asarray(b).nbytes
        return Phantom(max(na, nb), note="reduced")
    return (op or _default_op)(a, b)


def barrier(rank: "RankHandle"):
    """Dissemination barrier: ceil(log2(p)) rounds of paired messages."""
    p = rank.size
    base = rank._next_coll_tag()
    if p == 1:
        return
    me = rank.index
    k = 1
    rnd = 0
    while k < p:
        dst = (me + k) % p
        src = (me - k) % p
        rreq = rank.comm.irecv(me, src, base + rnd)
        rank.comm.isend(me, dst, base + rnd, None)
        yield rreq.done
        k <<= 1
        rnd += 1


def bcast(rank: "RankHandle", payload: _t.Any = None, root: int = 0):
    """Binomial-tree broadcast; returns the payload on every rank."""
    p = rank.size
    rank.comm._check_rank(root)
    base = rank._next_coll_tag()
    if p == 1:
        return payload
    me = rank.index
    vr = (me - root) % p  # virtual rank with root at 0
    # Receive phase: find the bit where my parent contacted me.
    mask = 1
    while mask < p:
        if vr & mask:
            parent = ((vr ^ mask) + root) % p
            msg = yield from rank.recv(parent, base)
            payload = msg.payload
            break
        mask <<= 1
    # Send phase: relay to children at decreasing bit positions.
    mask >>= 1
    pending = []
    while mask > 0:
        if vr | mask != vr and vr | mask < p and not (vr & mask):
            child = ((vr | mask) + root) % p
            pending.append(rank.isend(child, base, payload))
        mask >>= 1
    for req in pending:
        yield req.done
    return payload


def reduce(rank: "RankHandle", value: _t.Any, op=None, root: int = 0):
    """Binomial-tree reduction to ``root``; other ranks return ``None``."""
    p = rank.size
    rank.comm._check_rank(root)
    base = rank._next_coll_tag()
    if p == 1:
        return value
    me = rank.index
    vr = (me - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vr & mask:
            parent = ((vr ^ mask) + root) % p
            yield from rank.send(parent, base, acc)
            break
        partner = vr | mask
        if partner < p:
            msg = yield from rank.recv(((partner + root) % p), base)
            acc = apply_op(op, acc, msg.payload)
        mask <<= 1
    return acc if me == root else None


def allreduce(rank: "RankHandle", value: _t.Any, op=None):
    """Reduce to rank 0 then broadcast the result to everyone."""
    reduced = yield from reduce(rank, value, op, root=0)
    result = yield from bcast(rank, reduced, root=0)
    return result


def gather(rank: "RankHandle", value: _t.Any, root: int = 0):
    """Gather one value per rank at ``root`` (returns list there, else None)."""
    p = rank.size
    rank.comm._check_rank(root)
    base = rank._next_coll_tag()
    me = rank.index
    if me != root:
        yield from rank.send(root, base, value)
        return None
    out: list[_t.Any] = [None] * p
    out[me] = value
    for src in range(p):
        if src == root:
            continue
        msg = yield from rank.recv(src, base)
        out[src] = msg.payload
    return out


def scatter(rank: "RankHandle", values: _t.Sequence[_t.Any] | None = None,
            root: int = 0):
    """Scatter ``values[i]`` from root to rank i; returns the local value."""
    p = rank.size
    rank.comm._check_rank(root)
    base = rank._next_coll_tag()
    me = rank.index
    if me == root:
        if values is None or len(values) != p:
            raise MPIError(f"scatter at root needs exactly {p} values")
        pending = []
        for dst in range(p):
            if dst != root:
                pending.append(rank.isend(dst, base, values[dst]))
        for req in pending:
            yield req.done
        return values[root]
    msg = yield from rank.recv(root, base)
    return msg.payload


def alltoall(rank: "RankHandle", values: _t.Sequence[_t.Any]):
    """Personalized all-to-all; returns the list received from each rank."""
    p = rank.size
    if len(values) != p:
        raise MPIError(f"alltoall needs exactly {p} values, got {len(values)}")
    base = rank._next_coll_tag()
    me = rank.index
    out: list[_t.Any] = [None] * p
    out[me] = values[me]
    rreqs = {src: rank.irecv(src, base) for src in range(p) if src != me}
    sreqs = [rank.isend(dst, base, values[dst]) for dst in range(p) if dst != me]
    for src, req in rreqs.items():
        msg = yield req.done
        out[src] = msg.payload
    for req in sreqs:
        yield req.done
    return out
