"""repro — a reproduction of "A Dynamic Accelerator-Cluster Architecture"
(Rinke et al., ICPP 2012).

The library implements the paper's full system — a pool of
network-attached accelerators dynamically assigned to compute nodes by an
accelerator resource manager, driven through an MPI-based remoting
middleware with a GPUDirect-style pipelined copy protocol — together with
every substrate it runs on: a from-scratch discrete-event simulation
kernel, a fluid-flow InfiniBand fabric model, a simulated MPI layer with
real payloads, and a virtual GPU that executes genuine numpy kernels under
a Tesla-C1060-calibrated cost model.

Quick tour::

    from repro.cluster import Cluster, paper_testbed

    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    ac = cluster.remote(0, handles[0])

    ptr = sess.call(ac.mem_alloc(8 * 1024))
    sess.call(ac.memcpy_h2d(ptr, my_array))
    sess.call(ac.kernel_create("daxpy"))
    sess.call(ac.kernel_run("daxpy", {"x": ptr, ...}))
    out = sess.call(ac.memcpy_d2h(ptr, 8 * 1024))

Subpackages:

* :mod:`repro.sim` — discrete-event kernel (events, processes, resources)
* :mod:`repro.netsim` — network fabric and link models
* :mod:`repro.mpisim` — simulated MPI (p2p, collectives, real payloads)
* :mod:`repro.gpusim` — virtual GPU (memory, DMA, kernels)
* :mod:`repro.cluster` — node specs, cluster builder, batch scheduler
* :mod:`repro.core` — **the paper's contribution**: middleware + ARM
* :mod:`repro.baselines` — CUDA-local and TCP-remoting baselines
* :mod:`repro.workloads` — bandwidthTest, PingPong, MAGMA-style QR /
  Cholesky, MP2C
* :mod:`repro.analysis` — per-figure experiment drivers and tables
"""

__version__ = "1.0.0"

from . import errors, units

__all__ = ["errors", "units", "__version__"]
