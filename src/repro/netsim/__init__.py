"""Network substrate: link models, point-to-point links, switched fabric."""

from .fabric import Endpoint, Fabric, Transmission
from .link import Link
from .models import IB_QDR_MPI, PRESETS, TCP_10GE, TCP_IPOIB, LinkModel, preset

__all__ = [
    "LinkModel",
    "preset",
    "PRESETS",
    "IB_QDR_MPI",
    "TCP_IPOIB",
    "TCP_10GE",
    "Fabric",
    "Endpoint",
    "Transmission",
    "Link",
]
