"""Network substrate: link models, links, switched multi-topology fabric."""

from .fabric import Endpoint, Fabric, Transmission
from .link import Link
from .models import IB_QDR_MPI, PRESETS, TCP_10GE, TCP_IPOIB, LinkModel, preset
from .topology import Topology, TopologySpec, topology_spec

__all__ = [
    "LinkModel",
    "preset",
    "PRESETS",
    "IB_QDR_MPI",
    "TCP_IPOIB",
    "TCP_10GE",
    "Fabric",
    "Endpoint",
    "Transmission",
    "Link",
    "Topology",
    "TopologySpec",
    "topology_spec",
]
