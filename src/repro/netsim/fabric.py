"""Switched network fabric with fair-share contention.

The fabric is modeled as a non-blocking crossbar: every endpoint has a
transmit share and a receive share of ``bandwidth_Bps`` each (full duplex).
A message flows concurrently through the sender's TX share and the
receiver's RX share; it is delivered one wire latency after both shares have
drained it.  Uncontended transfers therefore take exactly
``injection + latency + bytes/bandwidth``, while concurrent flows into or
out of the same endpoint split that endpoint's bandwidth fairly — the
"host-device traffic competes with compute traffic" effect the paper warns
about (Sect. III-B).
"""

from __future__ import annotations

import heapq
import typing as _t

from ..errors import NetworkError
from ..obs.spans import NULL_SPAN, collector_for
from ..sim import BandwidthShare, Engine, Event, Resource, Tracer, NULL_TRACER
from ..sim.events import Timeout
from .models import LinkModel


class Transmission:
    """Handle for one in-flight message.

    ``injected`` fires when the sender's NIC has posted the message (the
    sending CPU is free again); ``delivered`` fires when the last byte has
    arrived at the destination.
    """

    __slots__ = ("src", "dst", "nbytes", "injected", "delivered",
                 "injection_s", "dropped")

    def __init__(self, src: "Endpoint", dst: "Endpoint", nbytes: int,
                 injected: Event, delivered: Event,
                 injection_s: float | None = None):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.injected = injected
        self.delivered = delivered
        #: Per-message posting cost override (None -> the link model's).
        self.injection_s = injection_s
        #: Set synchronously by :meth:`Fabric.transfer` when the link is
        #: cut: sender-side costs are paid, ``delivered`` never fires.
        self.dropped = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Transmission {self.src.name}->{self.dst.name} {self.nbytes}B>"


class Endpoint:
    """One fabric port (a compute node or accelerator node NIC)."""

    def __init__(self, fabric: "Fabric", name: str):
        self.fabric = fabric
        self.name = name
        model = fabric.model
        #: Receive-side bandwidth pool: concurrent senders share it fairly.
        self.rx = BandwidthShare(fabric.engine, model.bandwidth_Bps)
        #: The send-side NIC: drains its message queue FIFO.
        self.nic = Resource(fabric.engine, capacity=1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Endpoint {self.name}>"


class Fabric:
    """The cluster interconnect shared by compute nodes and accelerators.

    By default the switch is a non-blocking crossbar: only per-endpoint
    port bandwidth limits flows.  :meth:`set_core_capacity` adds a shared
    core stage (finite bisection bandwidth) that every inter-node flow
    also traverses — modelling oversubscribed switches, where accelerator
    traffic and application traffic contend even between disjoint node
    pairs (the scenario behind the paper's advice to keep the
    accelerator-to-node ratio low).
    """

    def __init__(self, engine: Engine, model: LinkModel, tracer: Tracer = NULL_TRACER):
        self.engine = engine
        self.model = model
        self.tracer = tracer
        self.endpoints: dict[str, Endpoint] = {}
        self._obs = collector_for(engine)
        self._core: BandwidthShare | None = None
        #: Running totals for utilization analysis.
        self.bytes_moved = 0
        self.messages_sent = 0
        #: Partitioned directed links: messages on them vanish in flight.
        self._cuts: set[tuple[str, str]] = set()
        #: Extra propagation latency per directed link (slow-link fault).
        self._slow: dict[tuple[str, str], float] = {}
        self.messages_dropped = 0
        self.bytes_dropped = 0

    def set_core_capacity(self, capacity_Bps: float | None) -> None:
        """Limit the switch core to ``capacity_Bps`` (None = non-blocking)."""
        if capacity_Bps is None:
            self._core = None
        else:
            self._core = BandwidthShare(self.engine, capacity_Bps)

    def add_endpoint(self, name: str) -> Endpoint:
        """Register a new port on the fabric. Names must be unique."""
        if name in self.endpoints:
            raise NetworkError(f"duplicate endpoint name: {name!r}")
        ep = Endpoint(self, name)
        self.endpoints[name] = ep
        return ep

    def endpoint(self, name: str) -> Endpoint:
        """Look up an endpoint by name."""
        try:
            return self.endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    # -- impairments (chaos injection) ----------------------------------
    def cut(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Partition the ``a``/``b`` link: messages on it vanish in flight.

        The sender still pays its NIC/injection costs (it cannot tell),
        but nothing arrives and no delivery event ever fires — exactly
        the silence a real partition produces.  Loopback (``a == b``)
        traffic is never cut.
        """
        if a not in self.endpoints or b not in self.endpoints:
            raise NetworkError(f"unknown endpoint in cut: {a!r}/{b!r}")
        self._cuts.add((a, b))
        if bidirectional:
            self._cuts.add((b, a))

    def heal(self, a: str | None = None, b: str | None = None,
             bidirectional: bool = True) -> None:
        """Undo :meth:`cut` for one link, or every link when ``a`` is None.

        Only affects messages sent after the heal; in-flight drops stay
        dropped (the wire does not retroactively deliver).
        """
        if a is None:
            self._cuts.clear()
            return
        self._cuts.discard((a, b))
        if bidirectional:
            self._cuts.discard((b, a))

    def is_cut(self, src: str, dst: str) -> bool:
        return (src, dst) in self._cuts

    def set_link_delay(self, a: str, b: str, extra_s: float,
                       bidirectional: bool = True) -> None:
        """Add ``extra_s`` propagation latency to the ``a``→``b`` link.

        ``extra_s`` of 0 restores the nominal latency.  Ordering per
        (src, dst) pair is preserved: the extra delay is a constant, so
        messages delay-shift uniformly instead of overtaking.
        """
        if extra_s < 0:
            raise NetworkError(f"negative link delay: {extra_s!r}")
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for pair in pairs:
            if extra_s == 0:
                self._slow.pop(pair, None)
            else:
                self._slow[pair] = extra_s

    def _extra_latency(self, tx: Transmission) -> float:
        if not self._slow or tx.src is tx.dst:
            return 0.0
        return self._slow.get((tx.src.name, tx.dst.name), 0.0)

    def transfer(self, src: Endpoint | str, dst: Endpoint | str, nbytes: int,
                 weight: float = 1.0,
                 injection_s: float | None = None) -> Transmission:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns immediately with a :class:`Transmission`; the actual flow
        runs as an internal process.  Sending to oneself is charged a
        loopback (no wire latency, through the local RX share only).

        ``injection_s`` overrides the per-message posting cost, modelling
        protocol-specific send paths: per-block memory registration makes
        it *higher* for middleware H2D block streams, pre-built descriptors
        over a pinned ring make it *lower* for daemon D2H streams.
        """
        if isinstance(src, str):
            src = self.endpoint(src)
        if isinstance(dst, str):
            dst = self.endpoint(dst)
        if src.fabric is not self or dst.fabric is not self:
            raise NetworkError("endpoints belong to a different fabric")
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes!r}")

        if injection_s is not None and injection_s < 0:
            raise NetworkError(f"negative injection override: {injection_s!r}")
        injected = self.engine.event()
        delivered = self.engine.event()
        tx = Transmission(src, dst, nbytes, injected, delivered, injection_s)
        if self._cuts and src is not dst and (src.name, dst.name) in self._cuts:
            # Decided synchronously so the messaging layer above can see
            # the drop before registering delivery-ordering callbacks.
            tx.dropped = True
            self.messages_dropped += 1
            self.bytes_dropped += nbytes
        if self._obs.enabled or self.tracer.enabled:
            # Static process name: one flow process per pipeline block
            # makes per-flow f-string formatting measurable on large
            # transfers.
            self.engine.process(self._flow(tx, weight), name="net.flow")
        else:
            self._fast_flow(tx, weight)
        return tx

    def _fast_flow(self, tx: Transmission, weight: float) -> None:
        """Untraced flow as a callback chain (no generator Process).

        Mirrors :meth:`_flow` stage for stage but saves the Process, its
        kickoff event, and both Timeouts per message — which dominates
        wall time on block-pipelined transfers.  Runs inside
        :meth:`transfer` before the Transmission is returned, so the
        internal continuations registered here always precede any client
        callbacks on ``injected``/``delivered``.
        """
        model = self.model
        engine = self.engine

        def _delivered_first(_ev):
            self.bytes_moved += tx.nbytes
            self.messages_sent += 1

        tx.delivered.callbacks = [_delivered_first]

        def _drained(_ev):
            tx.src.nic.release()
            # Merged Timeout(latency) + delivered.succeed(): schedule the
            # delivered event itself one wire latency out.
            delivered = tx.delivered
            delivered._ok = True
            delivered._value = None
            delivered._scheduled = True
            delay = (model.latency_s
                     if tx.src is not tx.dst and model.latency_s > 0
                     else 0.0)
            delay += self._extra_latency(tx)
            heapq.heappush(engine._heap,
                           (engine.now + delay, next(engine._seq), delivered))

        def _injected_first(_ev):
            if tx.dropped:
                # The message entered the wire and vanished at the cut:
                # the NIC frees, the receiver never hears anything.
                tx.src.nic.release()
                return
            if tx.nbytes > 0:
                rx_done = tx.dst.rx.transfer(tx.nbytes, weight)
                if self._core is not None and tx.src is not tx.dst:
                    engine.all_of(
                        [rx_done, self._core.transfer(tx.nbytes, weight)]
                    ).add_callback(_drained)
                else:
                    rx_done.add_callback(_drained)
            else:
                _drained(None)

        tx.injected.callbacks = [_injected_first]

        def _granted(_ev):
            # Merged Timeout(injection) + injected.succeed().
            inj = (model.injection_overhead_s if tx.injection_s is None
                   else tx.injection_s)
            injected = tx.injected
            injected._ok = True
            injected._value = None
            injected._scheduled = True
            heapq.heappush(engine._heap,
                           (engine.now + inj, next(engine._seq), injected))

        tx.src.nic.acquire().add_callback(_granted)

    def _flow(self, tx: Transmission, weight: float):
        model = self.model
        engine = self.engine
        # Fabric flows root their own traces (no request context reaches
        # this layer); each endpoint gets its own timeline row.  Span
        # construction is guarded (not just null-object'd): this runs per
        # pipeline block, and the disabled case should pay one attribute
        # load, not a kwargs dict.
        obs = self._obs
        span = (obs.start("net.flow", tx.src.name, dst=tx.dst.name,
                          nbytes=tx.nbytes) if obs.enabled else NULL_SPAN)
        with span:
            # 1. The sender NIC drains its queue FIFO: it is held for the
            #    injection overhead and the wire transmission of this
            #    message.  This keeps queued messages (e.g. pipeline
            #    blocks) arriving back-to-back instead of fair-sharing
            #    against each other.
            yield tx.src.nic.acquire()
            inj = model.injection_overhead_s if tx.injection_s is None else tx.injection_s
            yield Timeout(engine, inj)
            tx.injected.succeed(None)
            if span is not NULL_SPAN:
                span.event("injected")
            if tx.dropped:
                # Vanishes at the cut: NIC frees, nothing arrives, and
                # the delivered event never fires (mirrors _fast_flow).
                tx.src.nic.release()
                return
            # 2. Wire transmission through the receiver's share: concurrent
            #    senders into one endpoint split its bandwidth fairly, and
            #    the resulting backpressure keeps this NIC busy longer.
            #    With a finite switch core, inter-node flows traverse it as
            #    well and proceed at the slower of the two stages.
            if tx.nbytes > 0:
                rx_done = tx.dst.rx.transfer(tx.nbytes, weight)
                if self._core is not None and tx.src is not tx.dst:
                    yield engine.all_of(
                        [rx_done, self._core.transfer(tx.nbytes, weight)])
                else:
                    yield rx_done
            tx.src.nic.release()
            # 3. Propagation latency (not a NIC resource).
            prop = (model.latency_s if tx.src is not tx.dst else 0.0)
            prop += self._extra_latency(tx)
            if prop > 0:
                yield Timeout(engine, prop)
            self.bytes_moved += tx.nbytes
            self.messages_sent += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.log(engine.now, "net.delivered",
                           f"{tx.src.name}->{tx.dst.name}", tx.nbytes)
        tx.delivered.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Fabric {self.model.name} endpoints={len(self.endpoints)}>"
