"""Switched network fabric with fair-share contention.

The fabric is modeled as a non-blocking crossbar: every endpoint has a
transmit share and a receive share of ``bandwidth_Bps`` each (full duplex).
A message flows concurrently through the sender's TX share and the
receiver's RX share; it is delivered one wire latency after both shares have
drained it.  Uncontended transfers therefore take exactly
``injection + latency + bytes/bandwidth``, while concurrent flows into or
out of the same endpoint split that endpoint's bandwidth fairly — the
"host-device traffic competes with compute traffic" effect the paper warns
about (Sect. III-B).
"""

from __future__ import annotations

import heapq
import typing as _t

from ..errors import NetworkError
from ..obs.spans import NULL_SPAN, collector_for
from ..sim import BandwidthShare, Engine, Event, Resource, Tracer, NULL_TRACER
from ..sim.events import Timeout
from .models import LinkModel
from .topology import Topology


class Transmission:
    """Handle for one in-flight message.

    ``injected`` fires when the sender's NIC has posted the message (the
    sending CPU is free again); ``delivered`` fires when the last byte has
    arrived at the destination.
    """

    __slots__ = ("src", "dst", "nbytes", "injected", "delivered",
                 "injection_s", "dropped", "hops")

    def __init__(self, src: "Endpoint", dst: "Endpoint", nbytes: int,
                 injected: Event, delivered: Event,
                 injection_s: float | None = None,
                 hops: tuple[tuple[str, str], ...] = ()):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.injected = injected
        self.delivered = delivered
        #: Per-message posting cost override (None -> the link model's).
        self.injection_s = injection_s
        #: Set synchronously by :meth:`Fabric.transfer` when the link is
        #: cut: sender-side costs are paid, ``delivered`` never fires.
        self.dropped = False
        #: Directed inter-switch trunk pairs this message traverses
        #: (empty on a single switch or a same-switch pair).
        self.hops = hops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Transmission {self.src.name}->{self.dst.name} {self.nbytes}B>"


class Endpoint:
    """One fabric port (a compute node or accelerator node NIC)."""

    def __init__(self, fabric: "Fabric", name: str, switch: str | None = None):
        self.fabric = fabric
        self.name = name
        #: Switch this port hangs off (None on a topology-less fabric).
        self.switch = switch
        model = fabric.model
        #: Receive-side bandwidth pool: concurrent senders share it fairly.
        self.rx = BandwidthShare(fabric.engine, model.bandwidth_Bps)
        #: The send-side NIC: drains its message queue FIFO.
        self.nic = Resource(fabric.engine, capacity=1)
        #: Delivered-byte totals for endpoint-traffic accounting.
        self.tx_bytes = 0
        self.rx_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Endpoint {self.name}>"


class Fabric:
    """The cluster interconnect shared by compute nodes and accelerators.

    By default the switch is a non-blocking crossbar: only per-endpoint
    port bandwidth limits flows.  :meth:`set_core_capacity` adds a shared
    core stage (finite bisection bandwidth) that every inter-node flow
    also traverses — modelling oversubscribed switches, where accelerator
    traffic and application traffic contend even between disjoint node
    pairs (the scenario behind the paper's advice to keep the
    accelerator-to-node ratio low).
    """

    def __init__(self, engine: Engine, model: LinkModel, tracer: Tracer = NULL_TRACER,
                 topology: Topology | None = None):
        self.engine = engine
        self.model = model
        self.tracer = tracer
        self.endpoints: dict[str, Endpoint] = {}
        self._obs = collector_for(engine)
        self._core: BandwidthShare | None = None
        #: Running totals for utilization analysis.
        self.bytes_moved = 0
        self.messages_sent = 0
        #: Partitioned directed links: messages on them vanish in flight.
        self._cuts: set[tuple[str, str]] = set()
        #: Extra propagation latency per directed link (slow-link fault).
        self._slow: dict[tuple[str, str], float] = {}
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Multi-switch extension: one BandwidthShare per *directed* trunk
        #: so cross-switch flows contend hop by hop, a per-hop latency,
        #: and routed impairments (cut/slow applied to trunk segments).
        self.topology = topology
        self._trunks: dict[tuple[str, str], BandwidthShare] = {}
        self._trunk_latency_s = 0.0
        self.trunk_bytes: dict[tuple[str, str], int] = {}
        self._trunk_cuts: dict[tuple[str, str], int] = {}
        self._pair_trunk_cuts: dict[tuple[str, str],
                                    tuple[tuple[str, str], ...]] = {}
        self._slow_trunks: dict[tuple[str, str], float] = {}
        self._hop_cache: dict[tuple[str, str],
                              tuple[tuple[str, str], ...]] = {}
        if topology is not None:
            trunk_bw = topology.trunk_bandwidth_Bps or model.bandwidth_Bps
            self._trunk_latency_s = (model.latency_s
                                     if topology.trunk_latency_s is None
                                     else topology.trunk_latency_s)
            for a, b in topology.trunks:
                self._trunks[(a, b)] = BandwidthShare(engine, trunk_bw)
                self._trunks[(b, a)] = BandwidthShare(engine, trunk_bw)

    def lookahead_s(self, cross_switch: bool = False) -> float:
        """Minimum latency of any fabric interaction — the conservative
        lookahead window a sharded simulation may run ahead by.

        Every message and flow pays at least the model's base latency;
        with ``cross_switch=True`` (partitions aligned to topology
        switches) one trunk hop's latency is added, since cross-shard
        traffic then always crosses at least one trunk.
        """
        lookahead = self.model.latency_s
        if cross_switch and self.topology is not None:
            lookahead += self._trunk_latency_s
        return lookahead

    def set_core_capacity(self, capacity_Bps: float | None) -> None:
        """Limit the switch core to ``capacity_Bps`` (None = non-blocking)."""
        if capacity_Bps is None:
            self._core = None
        else:
            self._core = BandwidthShare(self.engine, capacity_Bps)

    def add_endpoint(self, name: str, switch: str | None = None) -> Endpoint:
        """Register a new port on the fabric. Names must be unique.

        On a multi-switch fabric ``switch`` attaches the port to a named
        switch (default: the topology's first switch).
        """
        if name in self.endpoints:
            raise NetworkError(f"duplicate endpoint name: {name!r}")
        topo = self.topology
        if topo is None:
            if switch is not None:
                raise NetworkError(
                    f"endpoint {name!r} names switch {switch!r} but the "
                    f"fabric has no topology")
        else:
            if switch is None:
                switch = topo.switches[0]
            elif switch not in topo._adjacency:
                raise NetworkError(f"unknown switch {switch!r} for "
                                   f"endpoint {name!r}")
        ep = Endpoint(self, name, switch)
        self.endpoints[name] = ep
        return ep

    def endpoint(self, name: str) -> Endpoint:
        """Look up an endpoint by name."""
        try:
            return self.endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    # -- topology queries -----------------------------------------------
    def switch_of(self, name: str) -> str | None:
        """Switch the named endpoint hangs off (None without a topology)."""
        return self.endpoint(name).switch

    def hop_count(self, a: str, b: str) -> int:
        """Trunk hops between two endpoints (0 = same switch / no topo)."""
        return len(self._route_hops(a, b))

    def _route_hops(self, src: str, dst: str) -> tuple[tuple[str, str], ...]:
        if self.topology is None or src == dst:
            return ()
        key = (src, dst)
        hops = self._hop_cache.get(key)
        if hops is None:
            sa = self.endpoint(src).switch
            sb = self.endpoint(dst).switch
            hops = (() if sa == sb
                    else self.topology.trunk_hops(sa, sb))
            self._hop_cache[key] = hops
        return hops

    # -- impairments (chaos injection) ----------------------------------
    def cut(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Partition the ``a``/``b`` link: messages on it vanish in flight.

        The sender still pays its NIC/injection costs (it cannot tell),
        but nothing arrives and no delivery event ever fires — exactly
        the silence a real partition produces.  Loopback (``a == b``)
        traffic is never cut.

        When ``a`` and ``b`` sit on different switches the cut is routed:
        the trunk segments on their path go down, so every endpoint pair
        whose route crosses those trunks loses connectivity too (a real
        trunk failure severs the path, not one flow).  Same-switch pairs
        keep the original port-level semantics.
        """
        if a not in self.endpoints or b not in self.endpoints:
            raise NetworkError(f"unknown endpoint in cut: {a!r}/{b!r}")
        for src, dst in ([(a, b), (b, a)] if bidirectional else [(a, b)]):
            hops = self._route_hops(src, dst)
            if hops and (src, dst) not in self._pair_trunk_cuts:
                self._pair_trunk_cuts[(src, dst)] = hops
                for h in hops:
                    self._trunk_cuts[h] = self._trunk_cuts.get(h, 0) + 1
            else:
                self._cuts.add((src, dst))

    def heal(self, a: str | None = None, b: str | None = None,
             bidirectional: bool = True) -> None:
        """Undo :meth:`cut` for one link, or every link when ``a`` is None.

        Only affects messages sent after the heal; in-flight drops stay
        dropped (the wire does not retroactively deliver).
        """
        if a is None:
            self._cuts.clear()
            self._trunk_cuts.clear()
            self._pair_trunk_cuts.clear()
            return
        for src, dst in ([(a, b), (b, a)] if bidirectional else [(a, b)]):
            self._cuts.discard((src, dst))
            hops = self._pair_trunk_cuts.pop((src, dst), ())
            for h in hops:
                left = self._trunk_cuts.get(h, 0) - 1
                if left <= 0:
                    self._trunk_cuts.pop(h, None)
                else:
                    self._trunk_cuts[h] = left

    def is_cut(self, src: str, dst: str) -> bool:
        if (src, dst) in self._cuts:
            return True
        if not self._trunk_cuts:
            return False
        return any(h in self._trunk_cuts for h in self._route_hops(src, dst))

    def set_link_delay(self, a: str, b: str, extra_s: float,
                       bidirectional: bool = True) -> None:
        """Add ``extra_s`` propagation latency to the ``a``→``b`` link.

        ``extra_s`` of 0 restores the nominal latency.  Ordering per
        (src, dst) pair is preserved: the extra delay is a constant, so
        messages delay-shift uniformly instead of overtaking.

        Cross-switch pairs route the impairment to the first trunk
        segment on their path, so every flow crossing that trunk slows
        down — the fault lives on the wire, not on one endpoint pair.
        """
        if extra_s < 0:
            raise NetworkError(f"negative link delay: {extra_s!r}")
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for pair in pairs:
            hops = self._route_hops(*pair)
            target: dict = self._slow_trunks if hops else self._slow
            key = hops[0] if hops else pair
            if extra_s == 0:
                target.pop(key, None)
            else:
                target[key] = extra_s

    def _extra_latency(self, tx: Transmission) -> float:
        if tx.src is tx.dst:
            return 0.0
        extra = 0.0
        if self._slow:
            extra = self._slow.get((tx.src.name, tx.dst.name), 0.0)
        if self._slow_trunks and tx.hops:
            slow = self._slow_trunks
            for h in tx.hops:
                extra += slow.get(h, 0.0)
        return extra

    def transfer(self, src: Endpoint | str, dst: Endpoint | str, nbytes: int,
                 weight: float = 1.0,
                 injection_s: float | None = None) -> Transmission:
        """Start moving ``nbytes`` from ``src`` to ``dst``.

        Returns immediately with a :class:`Transmission`; the actual flow
        runs as an internal process.  Sending to oneself is charged a
        loopback (no wire latency, through the local RX share only).

        ``injection_s`` overrides the per-message posting cost, modelling
        protocol-specific send paths: per-block memory registration makes
        it *higher* for middleware H2D block streams, pre-built descriptors
        over a pinned ring make it *lower* for daemon D2H streams.
        """
        if isinstance(src, str):
            src = self.endpoint(src)
        if isinstance(dst, str):
            dst = self.endpoint(dst)
        if src.fabric is not self or dst.fabric is not self:
            raise NetworkError("endpoints belong to a different fabric")
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes!r}")

        if injection_s is not None and injection_s < 0:
            raise NetworkError(f"negative injection override: {injection_s!r}")
        injected = self.engine.event()
        delivered = self.engine.event()
        hops = (self._route_hops(src.name, dst.name)
                if self.topology is not None and src is not dst else ())
        tx = Transmission(src, dst, nbytes, injected, delivered, injection_s,
                          hops)
        if src is not dst and (
                (self._cuts and (src.name, dst.name) in self._cuts)
                or (self._trunk_cuts
                    and any(h in self._trunk_cuts for h in hops))):
            # Decided synchronously so the messaging layer above can see
            # the drop before registering delivery-ordering callbacks.
            tx.dropped = True
            self.messages_dropped += 1
            self.bytes_dropped += nbytes
        if self._obs.enabled or self.tracer.enabled:
            # Static process name: one flow process per pipeline block
            # makes per-flow f-string formatting measurable on large
            # transfers.
            self.engine.process(self._flow(tx, weight), name="net.flow")
        else:
            self._fast_flow(tx, weight)
        return tx

    def _account_delivery(self, tx: Transmission) -> None:
        """Delivery bookkeeping shared by the fast and traced paths.

        ``bytes_moved`` counts each message once regardless of hop count
        (it is an end-to-end total); trunk traffic is accounted
        separately per segment in :attr:`trunk_bytes`.
        """
        self.bytes_moved += tx.nbytes
        self.messages_sent += 1
        tx.src.tx_bytes += tx.nbytes
        tx.dst.rx_bytes += tx.nbytes
        if tx.hops:
            tb = self.trunk_bytes
            for h in tx.hops:
                tb[h] = tb.get(h, 0) + tx.nbytes

    def _fast_flow(self, tx: Transmission, weight: float) -> None:
        """Untraced flow as a callback chain (no generator Process).

        Mirrors :meth:`_flow` stage for stage but saves the Process, its
        kickoff event, and both Timeouts per message — which dominates
        wall time on block-pipelined transfers.  Runs inside
        :meth:`transfer` before the Transmission is returned, so the
        internal continuations registered here always precede any client
        callbacks on ``injected``/``delivered``.
        """
        model = self.model
        engine = self.engine

        def _delivered_first(_ev):
            self._account_delivery(tx)

        tx.delivered.callbacks = [_delivered_first]

        def _drained(_ev):
            tx.src.nic.release()
            # Merged Timeout(latency) + delivered.succeed(): schedule the
            # delivered event itself one wire latency out (plus one trunk
            # latency per inter-switch hop).
            delivered = tx.delivered
            delivered._ok = True
            delivered._value = None
            delivered._scheduled = True
            delay = (model.latency_s
                     if tx.src is not tx.dst and model.latency_s > 0
                     else 0.0)
            if tx.hops:
                delay += self._trunk_latency_s * len(tx.hops)
            delay += self._extra_latency(tx)
            heapq.heappush(engine._heap,
                           (engine.now + delay, next(engine._seq), delivered))

        def _injected_first(_ev):
            if tx.dropped:
                # The message entered the wire and vanished at the cut:
                # the NIC frees, the receiver never hears anything.
                tx.src.nic.release()
                return
            if tx.nbytes > 0:
                rx_done = tx.dst.rx.transfer(tx.nbytes, weight)
                stages = None
                if self._core is not None and tx.src is not tx.dst:
                    stages = [rx_done, self._core.transfer(tx.nbytes, weight)]
                if tx.hops:
                    if stages is None:
                        stages = [rx_done]
                    stages += [self._trunks[h].transfer(tx.nbytes, weight)
                               for h in tx.hops]
                if stages is not None:
                    engine.all_of(stages).add_callback(_drained)
                else:
                    rx_done.add_callback(_drained)
            else:
                _drained(None)

        tx.injected.callbacks = [_injected_first]

        def _granted(_ev):
            # Merged Timeout(injection) + injected.succeed().
            inj = (model.injection_overhead_s if tx.injection_s is None
                   else tx.injection_s)
            injected = tx.injected
            injected._ok = True
            injected._value = None
            injected._scheduled = True
            heapq.heappush(engine._heap,
                           (engine.now + inj, next(engine._seq), injected))

        tx.src.nic.acquire().add_callback(_granted)

    def _flow(self, tx: Transmission, weight: float):
        model = self.model
        engine = self.engine
        # Fabric flows root their own traces (no request context reaches
        # this layer); each endpoint gets its own timeline row.  Span
        # construction is guarded (not just null-object'd): this runs per
        # pipeline block, and the disabled case should pay one attribute
        # load, not a kwargs dict.
        obs = self._obs
        span = (obs.start("net.flow", tx.src.name, dst=tx.dst.name,
                          nbytes=tx.nbytes) if obs.enabled else NULL_SPAN)
        with span:
            # 1. The sender NIC drains its queue FIFO: it is held for the
            #    injection overhead and the wire transmission of this
            #    message.  This keeps queued messages (e.g. pipeline
            #    blocks) arriving back-to-back instead of fair-sharing
            #    against each other.
            yield tx.src.nic.acquire()
            inj = model.injection_overhead_s if tx.injection_s is None else tx.injection_s
            yield Timeout(engine, inj)
            tx.injected.succeed(None)
            if span is not NULL_SPAN:
                span.event("injected")
            if tx.dropped:
                # Vanishes at the cut: NIC frees, nothing arrives, and
                # the delivered event never fires (mirrors _fast_flow).
                tx.src.nic.release()
                return
            # 2. Wire transmission through the receiver's share: concurrent
            #    senders into one endpoint split its bandwidth fairly, and
            #    the resulting backpressure keeps this NIC busy longer.
            #    With a finite switch core, inter-node flows traverse it as
            #    well and proceed at the slower of the two stages; on a
            #    multi-switch route the flow also drains through every
            #    trunk segment it crosses (per-hop contention).
            if tx.nbytes > 0:
                rx_done = tx.dst.rx.transfer(tx.nbytes, weight)
                stages = None
                if self._core is not None and tx.src is not tx.dst:
                    stages = [rx_done, self._core.transfer(tx.nbytes, weight)]
                if tx.hops:
                    if stages is None:
                        stages = [rx_done]
                    stages += [self._trunks[h].transfer(tx.nbytes, weight)
                               for h in tx.hops]
                if stages is not None:
                    yield engine.all_of(stages)
                else:
                    yield rx_done
            tx.src.nic.release()
            # 3. Propagation latency (not a NIC resource).
            prop = (model.latency_s if tx.src is not tx.dst else 0.0)
            if tx.hops:
                prop += self._trunk_latency_s * len(tx.hops)
            prop += self._extra_latency(tx)
            if prop > 0:
                yield Timeout(engine, prop)
            self._account_delivery(tx)
            tracer = self.tracer
            if tracer.enabled:
                tracer.log(engine.now, "net.delivered",
                           f"{tx.src.name}->{tx.dst.name}", tx.nbytes)
        tx.delivered.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Fabric {self.model.name} endpoints={len(self.endpoints)}>"
