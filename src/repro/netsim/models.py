"""Network hardware models and presets.

A :class:`LinkModel` captures the parameters of a network technology that
the simulation charges time for:

* ``latency_s`` — one-way wire/switch latency,
* ``bandwidth_Bps`` — peak sustained point-to-point bandwidth,
* ``injection_overhead_s`` — per-message posting cost at the sender (NIC
  doorbell, descriptor setup); serialized per NIC,
* ``rendezvous_threshold`` — message size above which the MPI layer uses a
  rendezvous handshake instead of eager delivery.

Presets are calibrated to the paper's testbed (QDR InfiniBand under Open MPI
1.4.3: ~2 us latency, ~2660 MiB/s peak — Sect. V-A) plus TCP/IPoIB and 10GE
models used by the rCUDA-style baseline.
"""

from __future__ import annotations

import dataclasses

from ..errors import NetworkError
from ..units import KiB, MiB, USEC


@dataclasses.dataclass(frozen=True)
class LinkModel:
    """Timing parameters of one network technology."""

    name: str
    latency_s: float
    bandwidth_Bps: float
    injection_overhead_s: float
    rendezvous_threshold: int

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise NetworkError(f"negative latency: {self.latency_s!r}")
        if self.bandwidth_Bps <= 0:
            raise NetworkError(f"non-positive bandwidth: {self.bandwidth_Bps!r}")
        if self.injection_overhead_s < 0:
            raise NetworkError(
                f"negative injection overhead: {self.injection_overhead_s!r}"
            )
        if self.rendezvous_threshold < 0:
            raise NetworkError(
                f"negative rendezvous threshold: {self.rendezvous_threshold!r}"
            )

    def wire_time(self, nbytes: int) -> float:
        """Pure transmission time of ``nbytes`` at peak bandwidth."""
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes!r}")
        return nbytes / self.bandwidth_Bps

    def message_time(self, nbytes: int) -> float:
        """Uncontended one-way time for a single message.

        ``injection + latency + bytes/bandwidth`` — the fluid fabric
        reproduces this exactly when no other flow is active.
        """
        return self.injection_overhead_s + self.latency_s + self.wire_time(nbytes)

    def effective_bandwidth(self, nbytes: int) -> float:
        """Observed bandwidth for one message of ``nbytes`` (bytes/s).

        This is what a PingPong-style benchmark reports; it ramps up with
        message size toward ``bandwidth_Bps``.
        """
        if nbytes <= 0:
            raise NetworkError(f"non-positive message size: {nbytes!r}")
        return nbytes / self.message_time(nbytes)


#: QDR InfiniBand under an MPI library, as in the paper's testbed:
#: peak ~2660 MiB/s at 64 MiB messages, ~2 us small-message latency.
IB_QDR_MPI = LinkModel(
    name="ib-qdr-mpi",
    latency_s=1.6 * USEC,
    bandwidth_Bps=2660 * MiB,
    injection_overhead_s=0.4 * USEC,
    rendezvous_threshold=12 * KiB,
)

#: TCP over InfiniBand (IPoIB) — what a socket-based remoting framework like
#: rCUDA v3.2 rides on: much higher latency and protocol overhead, lower
#: sustained bandwidth.
TCP_IPOIB = LinkModel(
    name="tcp-ipoib",
    latency_s=25.0 * USEC,
    bandwidth_Bps=1150 * MiB,
    injection_overhead_s=8.0 * USEC,
    rendezvous_threshold=0,  # stream semantics: no eager/rendezvous split
)

#: 10 Gigabit Ethernet with a TCP stack.
TCP_10GE = LinkModel(
    name="tcp-10ge",
    latency_s=50.0 * USEC,
    bandwidth_Bps=950 * MiB,
    injection_overhead_s=10.0 * USEC,
    rendezvous_threshold=0,
)

PRESETS: dict[str, LinkModel] = {
    m.name: m for m in (IB_QDR_MPI, TCP_IPOIB, TCP_10GE)
}


def preset(name: str) -> LinkModel:
    """Look up a link model preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise NetworkError(
            f"unknown link model {name!r}; available: {sorted(PRESETS)}"
        ) from None
