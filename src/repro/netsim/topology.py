"""Multi-switch fabric topologies: rings and 2D/3D tori.

The paper's testbed hangs every node off one non-blocking switch; the
APEnet+/GPU-P2P line of work (arXiv:1307.8276, 1311.1741) runs direct
GPU↔GPU traffic over a 3D-torus interconnect instead.  A
:class:`Topology` names the switches, lists the inter-switch trunk
links, and answers shortest-path routing queries; the
:class:`~repro.netsim.fabric.Fabric` turns each directed trunk into a
:class:`~repro.sim.BandwidthShare` so concurrent flows crossing the same
trunk contend for it hop by hop (exactly the per-endpoint fair-share
machinery, applied per trunk).

Routing is deterministic: breadth-first search visiting neighbours in
sorted name order, so among equal-length paths the one through the
lexicographically earliest discovered predecessor wins.  The same
topology therefore always produces the same routing table — seeded runs
replay bit-identically.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import typing as _t

from ..errors import NetworkError


class Topology:
    """Named switches + undirected trunk links + deterministic routing."""

    def __init__(self, name: str, switches: _t.Sequence[str],
                 trunks: _t.Iterable[tuple[str, str]],
                 trunk_bandwidth_Bps: float | None = None,
                 trunk_latency_s: float | None = None):
        if len(set(switches)) != len(switches):
            raise NetworkError(f"duplicate switch names in topology {name!r}")
        self.name = name
        self.switches: tuple[str, ...] = tuple(switches)
        known = set(self.switches)
        #: Undirected trunk set, each stored with endpoints sorted.
        self.trunks: tuple[tuple[str, str], ...] = tuple(sorted(
            {tuple(sorted(t)) for t in trunks if t[0] != t[1]}))
        for a, b in self.trunks:
            if a not in known or b not in known:
                raise NetworkError(f"trunk {a!r}-{b!r} references an "
                                   f"unknown switch")
        #: None means "inherit the link model's value" (set by the Fabric).
        self.trunk_bandwidth_Bps = trunk_bandwidth_Bps
        self.trunk_latency_s = trunk_latency_s
        self._adjacency: dict[str, tuple[str, ...]] = {s: () for s in switches}
        neigh: dict[str, set[str]] = {s: set() for s in switches}
        for a, b in self.trunks:
            neigh[a].add(b)
            neigh[b].add(a)
        for s, ns in neigh.items():
            self._adjacency[s] = tuple(sorted(ns))
        #: source -> {dest: predecessor-of-dest on the route} (lazy, per
        #: source; a BFS tree is deterministic given sorted adjacency).
        self._parents: dict[str, dict[str, str]] = {}
        self._routes: dict[tuple[str, str], tuple[str, ...]] = {}

    # -- constructors -----------------------------------------------------
    @classmethod
    def single(cls, name: str = "single", **kw) -> "Topology":
        """One switch, no trunks — the paper's original crossbar."""
        return cls(name, ["sw0"], [], **kw)

    @classmethod
    def ring(cls, n: int, **kw) -> "Topology":
        """``n`` switches in a cycle (n >= 2; n == 2 degenerates to one
        trunk)."""
        if n < 2:
            raise NetworkError(f"a ring needs >= 2 switches, got {n}")
        switches = [f"sw{i}" for i in range(n)]
        trunks = [(f"sw{i}", f"sw{(i + 1) % n}") for i in range(n)]
        return cls(f"ring{n}", switches, trunks, **kw)

    @classmethod
    def torus(cls, *dims: int, **kw) -> "Topology":
        """A 2D or 3D torus: wraparound mesh over ``dims`` switches."""
        if len(dims) not in (2, 3):
            raise NetworkError(f"torus takes 2 or 3 dimensions, got {dims!r}")
        if any(d < 1 for d in dims):
            raise NetworkError(f"torus dimensions must be >= 1: {dims!r}")
        coords = list(itertools.product(*(range(d) for d in dims)))
        name_of = {c: "sw" + "-".join(str(x) for x in c) for c in coords}
        trunks = []
        for c in coords:
            for axis, extent in enumerate(dims):
                if extent < 2:
                    continue
                nxt = list(c)
                nxt[axis] = (c[axis] + 1) % extent
                trunks.append((name_of[c], name_of[tuple(nxt)]))
        label = "x".join(str(d) for d in dims)
        return cls(f"torus{label}", [name_of[c] for c in coords], trunks, **kw)

    # -- routing ----------------------------------------------------------
    def _bfs(self, src: str) -> dict[str, str]:
        parents: dict[str, str] = {src: src}
        queue = collections.deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self._adjacency[cur]:
                if nxt not in parents:
                    parents[nxt] = cur
                    queue.append(nxt)
        return parents

    def route(self, src: str, dst: str) -> tuple[str, ...]:
        """The switch path ``(src, ..., dst)``; deterministic tie-breaks."""
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        if src not in self._adjacency or dst not in self._adjacency:
            raise NetworkError(f"unknown switch in route: {src!r}/{dst!r}")
        if src == dst:
            path: tuple[str, ...] = (src,)
        else:
            parents = self._parents.get(src)
            if parents is None:
                parents = self._parents[src] = self._bfs(src)
            if dst not in parents:
                raise NetworkError(
                    f"no trunk path {src!r} -> {dst!r} in {self.name!r}")
            rev = [dst]
            while rev[-1] != src:
                rev.append(parents[rev[-1]])
            path = tuple(reversed(rev))
        self._routes[key] = path
        return path

    def hops(self, src: str, dst: str) -> int:
        """Trunk hops between two switches (0 for the same switch)."""
        return len(self.route(src, dst)) - 1

    def trunk_hops(self, src: str, dst: str) -> tuple[tuple[str, str], ...]:
        """The directed trunk pairs a ``src``→``dst`` message traverses."""
        path = self.route(src, dst)
        return tuple(zip(path, path[1:]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Topology {self.name} switches={len(self.switches)} "
                f"trunks={len(self.trunks)}>")


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """Declarative topology choice for a :class:`~repro.cluster.ClusterSpec`.

    ``kind`` is one of ``single``, ``ring``, ``torus2d``, ``torus3d``;
    ``dims`` is the switch count (ring) or per-axis extents (torus).
    Trunk bandwidth/latency default to the cluster's link model when left
    ``None``.
    """

    kind: str = "single"
    dims: tuple[int, ...] = ()
    trunk_bandwidth_Bps: float | None = None
    trunk_latency_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("single", "ring", "torus2d", "torus3d"):
            raise NetworkError(f"unknown topology kind {self.kind!r}")
        want = {"single": 0, "ring": 1, "torus2d": 2, "torus3d": 3}[self.kind]
        if len(self.dims) != want:
            raise NetworkError(
                f"topology {self.kind!r} takes {want} dimension(s), "
                f"got {self.dims!r}")

    def build(self) -> Topology:
        kw = {"trunk_bandwidth_Bps": self.trunk_bandwidth_Bps,
              "trunk_latency_s": self.trunk_latency_s}
        if self.kind == "single":
            return Topology.single(**kw)
        if self.kind == "ring":
            return Topology.ring(self.dims[0], **kw)
        return Topology.torus(*self.dims, **kw)


#: Named shortcuts for the CLI / workload configs.
def topology_spec(kind: str, dims: _t.Sequence[int] = ()) -> TopologySpec:
    return TopologySpec(kind=kind, dims=tuple(dims))
