"""A dedicated point-to-point duplex link.

Unlike the shared :class:`~repro.netsim.fabric.Fabric`, a :class:`Link`
connects exactly two parties with private bandwidth in each direction.  It
is used for loopback-style paths and in unit tests; the cluster itself runs
on the fabric.
"""

from __future__ import annotations

from ..errors import NetworkError
from ..sim import BandwidthShare, Engine, Event
from .models import LinkModel


class Link:
    """Full-duplex private link between side ``a`` and side ``b``."""

    def __init__(self, engine: Engine, model: LinkModel):
        self.engine = engine
        self.model = model
        self._ab = BandwidthShare(engine, model.bandwidth_Bps)
        self._ba = BandwidthShare(engine, model.bandwidth_Bps)

    def transfer(self, direction: str, nbytes: int) -> Event:
        """Move ``nbytes`` in ``direction`` (``"ab"`` or ``"ba"``).

        The returned event succeeds when the last byte arrives.
        """
        if direction == "ab":
            share = self._ab
        elif direction == "ba":
            share = self._ba
        else:
            raise NetworkError(f"direction must be 'ab' or 'ba', got {direction!r}")
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes!r}")
        done = self.engine.event()
        self.engine.process(self._flow(share, nbytes, done))
        return done

    def _flow(self, share: BandwidthShare, nbytes: int, done: Event):
        yield self.engine.timeout(self.model.injection_overhead_s)
        if nbytes:
            yield share.transfer(nbytes)
        if self.model.latency_s:
            yield self.engine.timeout(self.model.latency_s)
        done.succeed(None)
