#!/usr/bin/env python3
"""Multi-GPU QR factorization: the paper's Figure 9 scenario.

One compute node factors matrices with 1-3 network-attached GPUs and with
a node-attached one, printing the GFlop/s each configuration achieves —
first verifying the numerics on a small real run, then sweeping paper
sizes in timing-only mode.

Run:  python examples/multi_gpu_qr.py
"""

import numpy as np

from repro.baselines import LocalAccelerator
from repro.cluster import Cluster, paper_testbed
from repro.workloads.linalg import qr_factorize, reconstruct_q


def remote_setup(n_gpus):
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=n_gpus))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=n_gpus))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


def local_setup():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=0,
                                    local_gpus=True))
    node = cluster.compute_nodes[0]
    return cluster, cluster.session(), [
        LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)]


def main():
    # -- correctness first: a real 128x128 factorization on 3 remote GPUs --
    n_small = 128
    A = np.random.default_rng(0).standard_normal((n_small, n_small))
    cluster, sess, acs = remote_setup(3)
    res = sess.call(qr_factorize(cluster.engine, cluster.compute_nodes[0].cpu,
                                 acs, n_small, nb=32, A=A))
    Q = reconstruct_q(n_small, res.reflectors)
    assert np.allclose(Q @ res.R, A, atol=1e-8)
    assert np.allclose(Q.T @ Q, np.eye(n_small), atol=1e-9)
    print(f"verified: QR of a {n_small}x{n_small} matrix across 3 "
          "network-attached GPUs reproduces A (QR=A, Q orthonormal)\n")

    # -- the Figure 9 sweep in timing-only mode ---------------------------
    sizes = [1024, 4032, 8064, 10240]
    configs = [("CUDA local", None)] + [(f"{g} network GPU(s)", g)
                                        for g in (1, 2, 3)]
    print(f"{'N':>7}" + "".join(f"{label:>20}" for label, _ in configs)
          + "   [GFlop/s]")
    rows = {}
    for n in sizes:
        cells = []
        for label, g in configs:
            c, s, a = local_setup() if g is None else remote_setup(g)
            r = s.call(qr_factorize(c.engine, c.compute_nodes[0].cpu,
                                    a, n, nb=128))
            cells.append(r.gflops)
        rows[n] = cells
        print(f"{n:>7}" + "".join(f"{v:>20.1f}" for v in cells))

    top = sizes[-1]
    speedup = rows[top][3] / rows[top][0]
    print(f"\n3 network-attached GPUs vs 1 local GPU at N={top}: "
          f"{speedup:.2f}x  (paper: ~2.2x)")
    print("note: 1 network GPU never beats the local one — QR pays the "
          "panel-roundtrip bandwidth penalty.")


if __name__ == "__main__":
    main()
