#!/usr/bin/env python3
"""Fault tolerance: a broken accelerator no longer takes the node with it.

Under the static architecture a dying GPU drags down its host node and
whatever runs there.  Here an accelerator fails in the middle of a job:
the compute node merely receives an error on its next request, reports
the failure to the ARM, allocates a replacement from the pool, re-uploads
its state, and finishes — while a second accelerator of the same job keeps
working undisturbed throughout.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster import Cluster, paper_testbed
from repro.core import FaultInjector
from repro.errors import AcceleratorFault
from repro.units import fmt_time


def main():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    engine = cluster.engine
    sess = cluster.session()
    arm = cluster.arm_client(0)
    injector = FaultInjector(cluster)

    handles = sess.call(arm.alloc(count=2, job="resilient-job"))
    primary, secondary = handles
    print(f"job holds ac{primary.ac_id} (primary) and "
          f"ac{secondary.ac_id} (secondary)")

    # The primary accelerator's GPU dies 2 ms into the run.
    injector.break_at(primary.ac_id, at_time=0.002)

    data = np.arange(100_000, dtype=np.float64)

    def job():
        ac1 = cluster.remote(0, primary)
        ac2 = cluster.remote(0, secondary)
        p1 = yield from ac1.mem_alloc(data.nbytes)
        p2 = yield from ac2.mem_alloc(data.nbytes)
        yield from ac1.memcpy_h2d(p1, data)
        yield from ac2.memcpy_h2d(p2, data)

        completed = 0
        recovered_at = None
        for i in range(100):
            try:
                yield from ac1.kernel_run("dscal",
                                          {"x": p1, "n": len(data),
                                           "alpha": 1.0})
            except AcceleratorFault as exc:
                print(f"[{fmt_time(engine.now)}] primary failed: {exc}")
                yield from arm.report_break(primary.ac_id)
                replacement = (yield from arm.alloc(count=1,
                                                    job="resilient-job"))[0]
                print(f"[{fmt_time(engine.now)}] ARM assigned replacement "
                      f"ac{replacement.ac_id}")
                ac1 = cluster.remote(0, replacement)
                p1 = yield from ac1.mem_alloc(data.nbytes)
                yield from ac1.memcpy_h2d(p1, data)  # restore state
                recovered_at = engine.now
                continue
            # The secondary keeps serving throughout.
            yield from ac2.kernel_run("dscal",
                                      {"x": p2, "n": len(data),
                                       "alpha": 1.0})
            completed += 1
        final = yield from ac1.memcpy_d2h(p1, data.nbytes)
        return completed, recovered_at, final

    completed, recovered_at, final = sess.call(job())
    assert recovered_at is not None, "the fault never surfaced?"
    assert completed >= 99  # exactly one iteration was lost to the fault
    assert np.allclose(final, data)  # restored state survived

    print(f"\niterations completed: {completed}/100 "
          "(exactly one lost to the failure)")
    print(f"recovery finished at {fmt_time(recovered_at)}")
    print("secondary accelerator served every iteration — the failure "
          "stayed contained to one device.")
    status = sess.call(arm.status())
    broken = [k for k, v in status.items() if v["state"] == "broken"]
    print(f"ARM registry now marks {['ac%d' % b for b in broken]} broken; "
          "the compute node itself never went down.")


if __name__ == "__main__":
    main()
