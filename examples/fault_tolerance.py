#!/usr/bin/env python3
"""Fault tolerance: a broken accelerator no longer takes the node with it.

Under the static architecture a dying GPU drags down its host node and
whatever runs there.  Here an accelerator fails in the middle of a job
and the middleware's failover layer handles the whole recovery: the
front-end reports the break to the ARM, allocates a replacement from the
pool, replays the tracked device state, and re-runs the interrupted
iteration — the application code never sees the fault.  A second
accelerator of the same job keeps working undisturbed throughout.

Two failure modes are shown:

* ``break``  — the GPU dies but its daemon survives and answers
  ``Status.BROKEN`` (fast, error-reply detection);
* ``crash``  — the daemon host goes silent, detectable only through the
  per-request virtual-time deadline (``RequestTimeout``), after which the
  same failover path kicks in.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster import Cluster, paper_testbed
from repro.core import FailoverConfig, FailoverPolicy, FaultInjector, RetryPolicy
from repro.units import fmt_time


def main():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=4))
    engine = cluster.engine
    sess = cluster.session()
    arm = cluster.arm_client(0)
    injector = FaultInjector(cluster)

    handles = sess.call(arm.alloc(count=2, job="resilient-job"))
    primary, secondary = handles
    print(f"job holds ac{primary.ac_id} (primary) and "
          f"ac{secondary.ac_id} (secondary)")

    # Per-request deadline so even a silently crashed daemon is detected;
    # REALLOCATE failover replays state on an ARM-assigned replacement.
    retry = RetryPolicy(timeout_s=2e-3)
    config = FailoverConfig(policy=FailoverPolicy.REALLOCATE,
                            job="resilient-job")
    ra = cluster.resilient(0, primary, config=config, retry=retry)

    # The primary accelerator's GPU dies 2 ms into the run; later its
    # replacement's daemon host crashes outright (drops requests).
    injector.break_at(primary.ac_id, at_time=0.002)

    data = np.arange(100_000, dtype=np.float64)

    def job():
        ac2 = cluster.remote(0, secondary, retry=retry)
        p1 = yield from ra.mem_alloc(data.nbytes)
        p2 = yield from ac2.mem_alloc(data.nbytes)
        yield from ra.memcpy_h2d(p1, data)
        yield from ac2.memcpy_h2d(p2, data)
        yield from ra.kernel_create("dscal")

        completed = 0
        current = ra.handle.ac_id
        crash_armed = False
        for _ in range(100):
            def iteration():
                yield from ra.kernel_run("dscal", {"x": p1, "n": len(data),
                                                   "alpha": 1.0})

            yield from ra.run_guarded(iteration)
            if ra.handle.ac_id != current:
                print(f"[{fmt_time(engine.now)}] primary ac{current} failed; "
                      f"ARM assigned replacement ac{ra.handle.ac_id} "
                      f"(recovery took "
                      f"{fmt_time(ra.recovery_latencies[-1])})")
                current = ra.handle.ac_id
                if not crash_armed:
                    # Now crash the replacement's daemon host: no error
                    # reply this time, just silence.
                    injector.crash_at(current, at_time=engine.now + 0.002)
                    crash_armed = True
            # The secondary keeps serving throughout.
            yield from ac2.kernel_run("dscal", {"x": p2, "n": len(data),
                                                "alpha": 1.0})
            completed += 1
        final = yield from ra.memcpy_d2h(p1, data.nbytes)
        return completed, final

    completed, final = sess.call(job())
    assert ra.failovers == 2, "expected one break + one crash failover"
    assert np.allclose(final, data)  # replayed state survived both faults

    print(f"\niterations completed: {completed}/100 "
          "(interrupted iterations were replayed on the replacements)")
    print(f"request deadlines hit: {ra.timeouts} "
          "(the crashed daemon never answered; retries timed out)")
    print("secondary accelerator served every iteration — the failures "
          "stayed contained to single devices.")
    status = sess.call(arm.status())
    broken = sorted(k for k, v in status.items() if v["state"] == "broken")
    print(f"ARM registry now marks {['ac%d' % b for b in broken]} broken; "
          "the compute node itself never went down.")


if __name__ == "__main__":
    main()
