#!/usr/bin/env python3
"""Dynamic accelerator assignment at runtime (the paper's Figure 3b).

Two compute nodes run jobs with *phases* of different GPU demand.  Each
allocates accelerators from the shared pool when a GPU phase starts and
releases them when it ends — the dynamic assignment strategy the paper
proposes as future work.  With only three accelerators for two greedy
jobs, one job's burst has to queue until the other releases; the script
prints the allocation timeline and the pool utilization the ARM measured.

Run:  python examples/dynamic_allocation.py
"""

from repro.cluster import Cluster, paper_testbed
from repro.mpisim import Phantom
from repro.units import MiB, fmt_time


def main():
    cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=3))
    engine = cluster.engine
    timeline = []

    def log(job, msg):
        timeline.append((engine.now, job, msg))

    def job(cn_index, name, phases):
        """phases: list of (cpu_seconds, n_gpus, gpu_work_items)."""
        arm = cluster.arm_client(cn_index)
        for cpu_s, n_gpus, items in phases:
            # CPU-only phase: no accelerators held.
            yield engine.timeout(cpu_s)
            if n_gpus == 0:
                continue
            log(name, f"requesting {n_gpus} accelerator(s)")
            handles = yield from arm.alloc(count=n_gpus, job=name)
            ids = ",".join(f"ac{h.ac_id}" for h in handles)
            log(name, f"granted [{ids}]")
            acs = [cluster.remote(cn_index, h) for h in handles]
            ptrs = []
            for ac in acs:
                ptrs.append((yield from ac.mem_alloc(16 * MiB)))
            for _ in range(items):
                for ac, ptr in zip(acs, ptrs):
                    yield from ac.memcpy_h2d(ptr, Phantom(16 * MiB))
                    yield from ac.kernel_run(
                        "dgemm", {"A": 0, "B": 0, "C": 0,
                                  "m": 1024, "n": 1024, "k": 1024},
                        real=False)
            for ac, ptr in zip(acs, ptrs):
                yield from ac.mem_free(ptr)
            yield from arm.release(handles)
            log(name, f"released [{ids}]")

    # Job A: alternating CPU and 2-GPU bursts; Job B: one long 3-GPU burst
    # arriving while A holds part of the pool.
    pa = engine.process(job(0, "job-A", [(0.01, 2, 6), (0.05, 2, 6)]))
    pb = engine.process(job(1, "job-B", [(0.05, 3, 8)]))
    engine.run(until=engine.all_of([pa, pb]))

    print("allocation timeline (virtual time):")
    for t, name, msg in timeline:
        print(f"  {fmt_time(t):>12}  {name:<6} {msg}")

    util = cluster.arm.utilization()
    print(f"\nARM-measured pool utilization: {util * 100:.1f}% over "
          f"{fmt_time(engine.now)}")
    snap = cluster.arm.snapshot()
    for ac_id, info in sorted(snap.items()):
        print(f"  ac{ac_id}: state={info['state']}, "
              f"assigned for {fmt_time(info['assigned_seconds'])}")
    assert cluster.arm.free_count() == 3, "pool should be fully released"
    print("\njob-B's 3-GPU burst queued FIFO until job-A released — "
          "dynamic assignment with exclusive handles, no manual cabling.")


if __name__ == "__main__":
    main()
