#!/usr/bin/env python3
"""MP2C molecular dynamics with offloaded SRD: the Figure 11 scenario.

Two MPI ranks on separate compute nodes run a coupled MD + multi-particle
collision dynamics simulation; the SRD collision step is offloaded to one
GPU per rank — node-attached or network-attached.  The script first runs
a small *real* simulation (verifying energy and momentum conservation and
that the architecture does not change the physics), then compares the
virtual runtimes of both architectures at a larger, timing-only scale.

Run:  python examples/md_offload.py
"""

import numpy as np

from repro.baselines import LocalAccelerator
from repro.cluster import Cluster, paper_testbed
from repro.workloads.mp2c import (
    MP2CConfig,
    kinetic_energy,
    momentum,
    run_mp2c,
    thermal_velocities,
)

N_RANKS = 2


def remote_setup():
    cluster = Cluster(paper_testbed(n_compute=N_RANKS, n_accelerators=N_RANKS))
    sess = cluster.session()
    acs = []
    for i in range(N_RANKS):
        handles = sess.call(cluster.arm_client(i).alloc(count=1))
        acs.append(cluster.remote(i, handles[0]))
    return cluster, sess, acs


def local_setup():
    cluster = Cluster(paper_testbed(n_compute=N_RANKS, n_accelerators=0,
                                    local_gpus=True))
    sess = cluster.session()
    acs = [LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
           for node in cluster.compute_nodes]
    return cluster, sess, acs


def make_initial(cfg, seed=0):
    rng = np.random.default_rng(seed)
    edge = cfg.box_edge_cells()
    cells_x = edge + (N_RANKS - edge % N_RANKS) % N_RANKS
    box = np.array([cells_x * cfg.cell_size, edge * cfg.cell_size,
                    edge * cfg.cell_size])
    slab = box[0] / N_RANKS
    per_rank = cfg.n_particles // N_RANKS
    out = []
    for r in range(N_RANKS):
        pos = rng.uniform(0, 1, (per_rank, 3)) * np.array([slab, box[1], box[2]])
        pos[:, 0] += r * slab
        out.append((pos, thermal_velocities(rng, per_rank)))
    return out


def run(cluster, sess, acs, cfg, initial=None):
    ranks = [cluster.compute_rank(i) for i in range(N_RANKS)]
    return sess.call(run_mp2c(cluster.engine, cluster.compute_nodes[0].cpu,
                              ranks, acs, cfg, initial=initial))


def main():
    # -- physics validation on a small real run ---------------------------
    cfg = MP2CConfig(n_particles=4000, steps=20, srd_every=5)
    initial = make_initial(cfg)
    e0 = sum(kinetic_energy(v) for _, v in initial)
    p0 = sum(momentum(v) for _, v in initial)

    cluster, sess, acs = remote_setup()
    res = run(cluster, sess, acs, cfg, initial=initial)
    e1 = sum(kinetic_energy(v) for _, v in res.final)
    p1 = sum(momentum(v) for _, v in res.final)
    n1 = sum(p.shape[0] for p, _ in res.final)
    print(f"real run: {cfg.n_particles} particles, {cfg.steps} steps, "
          f"SRD every {cfg.srd_every}th on remote GPUs")
    print(f"  particles conserved : {n1} == {cfg.n_particles // 2 * 2}")
    print(f"  kinetic energy drift: {abs(e1 - e0) / e0:.2e} (SRD is exact)")
    print(f"  momentum drift      : {np.abs(p1 - p0).max():.2e}")
    assert n1 == cfg.n_particles // 2 * 2
    assert abs(e1 - e0) / e0 < 1e-12
    assert np.abs(p1 - p0).max() < 1e-7

    # -- coupled LJ solutes (the molecular-dynamics part of MP2C) ---------
    cfg2 = MP2CConfig(n_particles=4000, steps=10, srd_every=5, dt=0.004)
    solvent2 = make_initial(cfg2, seed=7)
    rng = np.random.default_rng(8)
    solutes = []
    edge = cfg2.box_edge_cells() * cfg2.cell_size
    cells_x = cfg2.box_edge_cells() + (N_RANKS - cfg2.box_edge_cells() % N_RANKS) % N_RANKS
    slab = cells_x * cfg2.cell_size / N_RANKS
    for r in range(N_RANKS):
        spos = rng.uniform(0.2, 0.8, (8, 3)) * np.array([slab, edge, edge])
        spos[:, 0] += r * slab
        svel = np.zeros((8, 3))
        solutes.append((spos, svel))
    cluster2, sess2, acs2 = remote_setup()
    res2 = sess2.call(run_mp2c(cluster2.engine,
                               cluster2.compute_nodes[0].cpu,
                               [cluster2.compute_rank(i) for i in range(N_RANKS)],
                               acs2, cfg2, initial=solvent2, solutes=solutes))
    n_sol = sum(sp.shape[0] for _, _, sp, _ in res2.final)
    p_tot = (sum(momentum(v) for _, v, _, _ in res2.final)
             + sum(momentum(sv) for _, _, _, sv in res2.final))
    print(f"\ncoupled run with {n_sol} LJ solutes across {N_RANKS} ranks "
          "(halo-exchanged forces, SRD-coupled):")
    print(f"  solutes conserved  : {n_sol} == 16")
    print(f"  total momentum     : |p| = {np.abs(p_tot).max():.2e}")
    assert n_sol == 16

    # -- timing comparison at scale (timing-only mode) --------------------
    print("\ntimed comparison (virtual minutes, 2 ranks, 300 steps):")
    print(f"{'particles':>12}{'CUDA local':>14}{'dynamic':>12}{'slowdown':>11}")
    for n in (1_000_000, 2_000_000):
        cfg = MP2CConfig(n_particles=n, steps=300)
        cl, sl, al = local_setup()
        t_local = run(cl, sl, al, cfg).minutes
        cr, sr, ar = remote_setup()
        t_dyn = run(cr, sr, ar, cfg).minutes
        print(f"{n:>12}{t_local:>14.2f}{t_dyn:>12.2f}"
              f"{(t_dyn / t_local - 1) * 100:>10.2f}%")
    print("\nthe dynamic architecture costs a few percent at most — the "
          "paper's Figure 11 finding.")


if __name__ == "__main__":
    main()
