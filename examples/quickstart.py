#!/usr/bin/env python3
"""Quickstart: the paper's Listing 2 on a simulated dynamic cluster.

Builds a small dynamic accelerator cluster (1 compute node + 3
network-attached accelerators on QDR InfiniBand), statically allocates one
accelerator through the ARM, and runs the exact program shape of the
paper's Listing 2 — allocate, copy in, create/configure/run a kernel,
copy out, free — verifying the numerics and printing what each remote
operation cost in *virtual* cluster time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import Cluster, paper_testbed
from repro.units import fmt_time


def main():
    # -- build the cluster and allocate one accelerator ------------------
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    sess = cluster.session()
    arm = cluster.arm_client(0)

    handles = sess.call(arm.alloc(count=1, job="quickstart"))
    ac = cluster.remote(0, handles[0])
    print(f"ARM assigned accelerator ac{handles[0].ac_id} "
          f"(daemon rank {handles[0].daemon_rank})")

    # -- Listing 2: y = alpha * x + y on the remote GPU -------------------
    n = 1 << 20  # 1M doubles = 8 MiB per vector
    alpha = 3.0
    x = np.full(n, 2.0)
    y = np.full(n, 1.0)

    def timed(label, gen):
        t0 = sess.now
        out = sess.call(gen)
        print(f"  {label:<28} {fmt_time(sess.now - t0)}")
        return out

    print(f"\nacMemAlloc / acMemCpy / acKernel* / acMemFree for n={n}:")
    px = timed("acMemAlloc(x)", ac.mem_alloc(x.nbytes))
    py = timed("acMemAlloc(y)", ac.mem_alloc(y.nbytes))
    timed("acMemCpy(h2d, x)  [8 MiB]", ac.memcpy_h2d(px, x))
    timed("acMemCpy(h2d, y)  [8 MiB]", ac.memcpy_h2d(py, y))
    timed("acKernelCreate(daxpy)", ac.kernel_create("daxpy"))
    ac.kernel_set_args("daxpy", {"x": px, "y": py, "n": n, "alpha": alpha})
    timed("acKernelRun(daxpy)", ac.kernel_run("daxpy"))
    result = timed("acMemCpy(d2h, y)  [8 MiB]", ac.memcpy_d2h(py, y.nbytes))
    timed("acMemFree(x)", ac.mem_free(px))
    timed("acMemFree(y)", ac.mem_free(py))

    # -- verify and release ------------------------------------------------
    expected = alpha * x + y
    assert np.allclose(result, expected), "remote daxpy produced wrong data!"
    print("\nresult verified: y == 3.0*x + y everywhere")

    sess.call(arm.release(handles))
    print(f"accelerator released; pool has {cluster.arm.free_count()} free")
    print(f"total virtual time: {fmt_time(sess.now)}")


if __name__ == "__main__":
    main()
