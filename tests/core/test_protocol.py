"""Unit tests for the wire protocol and block-size policies."""

import pytest

from repro.core import (
    AcceleratorHandle,
    AdaptiveBlockPolicy,
    FixedBlockPolicy,
    NAIVE_TRANSFER,
    Op,
    Request,
    Response,
    Status,
    TransferConfig,
    data_tag,
    next_request_id,
    pipeline,
    reply_tag,
)
from repro.errors import (
    AcceleratorFault,
    AllocationError,
    MiddlewareError,
    ProtocolError,
)
from repro.mpisim import MAX_USER_TAG
from repro.units import KiB, MiB


class TestRequestResponse:
    def test_request_validation(self):
        with pytest.raises(ProtocolError):
            Request(op="not-an-op", req_id=1, reply_to=0)
        with pytest.raises(ProtocolError):
            Request(op=Op.PING, req_id=0, reply_to=0)
        with pytest.raises(ProtocolError):
            Request(op=Op.PING, req_id=1, reply_to=-1)

    def test_response_ok(self):
        r = Response(req_id=1, status=Status.OK, value=42)
        assert r.ok
        r.raise_for_status()  # no-op

    def test_raise_for_status_mapping(self):
        with pytest.raises(AcceleratorFault):
            Response(1, Status.BROKEN).raise_for_status()
        with pytest.raises(AllocationError):
            Response(1, Status.UNAVAILABLE).raise_for_status()
        with pytest.raises(AllocationError):
            Response(1, Status.DENIED).raise_for_status()
        with pytest.raises(MiddlewareError):
            Response(1, Status.ERROR, error="boom").raise_for_status()

    def test_handle_validation(self):
        with pytest.raises(ProtocolError):
            AcceleratorHandle(-1, 0)
        with pytest.raises(ProtocolError):
            AcceleratorHandle(0, -1)

    def test_handles_hashable_and_frozen(self):
        h = AcceleratorHandle(1, 2)
        assert hash(h) == hash(AcceleratorHandle(1, 2))
        with pytest.raises(Exception):
            h.ac_id = 5


class TestTags:
    def test_request_ids_unique(self):
        ids = {next_request_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_tags_below_collective_space(self):
        for _ in range(100):
            rid = next_request_id()
            assert 0 < reply_tag(rid) < MAX_USER_TAG
            assert 0 < data_tag(rid) < MAX_USER_TAG

    def test_reply_and_data_tags_disjoint(self):
        rid = next_request_id()
        assert reply_tag(rid) != data_tag(rid)
        # The ranges themselves never overlap.
        assert reply_tag(1) < 300_000 <= data_tag(1)


class TestBlockPolicies:
    def test_fixed_policy(self):
        p = FixedBlockPolicy(128 * KiB)
        assert p.block_bytes(MiB, "h2d") == 128 * KiB
        assert p.name == "pipeline-128K"

    def test_fixed_policy_rejects_nonpositive(self):
        with pytest.raises(MiddlewareError):
            FixedBlockPolicy(0)

    def test_adaptive_policy_h2d_threshold(self):
        p = AdaptiveBlockPolicy()
        assert p.block_bytes(8 * MiB, "h2d") == 128 * KiB
        assert p.block_bytes(9 * MiB, "h2d") == 512 * KiB
        assert p.block_bytes(64 * MiB, "h2d") == 512 * KiB

    def test_adaptive_policy_d2h_always_small(self):
        p = AdaptiveBlockPolicy()
        for n in (MiB, 16 * MiB, 64 * MiB):
            assert p.block_bytes(n, "d2h") == 128 * KiB

    def test_policy_name(self):
        assert AdaptiveBlockPolicy().name == "pipeline-128-512K"


class TestTransferConfig:
    def test_naive_plan_single_block(self):
        assert NAIVE_TRANSFER.plan_blocks(10 * MiB, "h2d") == [(0, 10 * MiB)]

    def test_pipeline_plan_covers_payload(self):
        cfg = pipeline(128 * KiB)
        blocks = cfg.plan_blocks(MiB + 5, "h2d")
        assert blocks[0] == (0, 128 * KiB)
        assert sum(size for _, size in blocks) == MiB + 5
        offsets = [off for off, _ in blocks]
        assert offsets == sorted(offsets)

    def test_plan_zero_bytes(self):
        assert pipeline(KiB).plan_blocks(0, "h2d") == []

    def test_plan_negative_rejected(self):
        with pytest.raises(MiddlewareError):
            pipeline(KiB).plan_blocks(-1, "h2d")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(MiddlewareError):
            TransferConfig(protocol="telepathy")

    def test_names(self):
        assert NAIVE_TRANSFER.name == "naive"
        assert pipeline(64 * KiB).name == "pipeline-64K"
