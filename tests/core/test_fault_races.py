"""Fault-mode races: concurrent failure detectors and revoke-vs-attach.

Two families of races that the single-fault tests never exercised:

* **double detection** — an explicit ``ARM_BREAK`` racing the heartbeat
  monitor's eviction (and a TTL sweep) over the *same* device while a
  ``valloc`` is parked in flight: the detectors must converge on one
  BROKEN transition, revoke each hosted lease once, and answer the
  parked waiter exactly once;
* **failover racing ``VAC_REVOKE``** — the ARM's one-way revoke can
  overtake the tenant's very first ``VAC_ATTACH`` (or a failover's
  re-attach).  The daemon must answer PREEMPTED from the tombstone
  instead of resurrecting a revoked slice, and the guarded attach must
  carry the tenant through recovery onto the *new* grant.
"""

import collections

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import (
    FailoverConfig,
    FaultInjector,
    Op,
    Request,
    TenantSpec,
    next_request_id,
)
from repro.core.arm import AcceleratorState
from repro.core.daemon import _Tombstone
from repro.core.protocol import TAG_REQUEST
from repro.errors import AcceleratorFault, AllocationError
from repro.mpisim import Phantom

REPORT_PERIOD = 1e-4
TTL = 5e-4


def _reply_counter(arm) -> collections.Counter:
    counts: collections.Counter = collections.Counter()
    original = arm._reply

    def spy(req, resp):
        counts[req.req_id] += 1
        original(req, resp)

    arm._reply = spy
    return counts


class TestConcurrentFailureDetectors:
    def test_break_racing_heartbeat_eviction_during_valloc(self):
        """ARM_BREAK + heartbeat eviction + TTL sweep on one device.

        Device 0 hosts the only lease slot; a second valloc is parked.
        Then every failure detector fires on device 0 at once: its
        daemon crashes (heartbeat misses), an out-of-band ARM_BREAK
        lands, and the discovery TTL expires.  One BROKEN/evict
        transition must win, the parked waiter must get exactly one
        reply, and the ARM must keep serving.
        """
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=2),
                          discovery=True, initial_accelerators=2,
                          report_period_s=REPORT_PERIOD)
        cluster.arm.admission.slots_per_device = 1
        cluster.arm.enable_discovery(ttl_s=TTL)
        cluster.arm.start_heartbeat(period_s=2 * REPORT_PERIOD,
                                    timeout_s=REPORT_PERIOD)
        counts = _reply_counter(cluster.arm)
        cluster.run(until=3 * REPORT_PERIOD)
        for t in ("t0", "t1", "t2"):
            cluster.arm.admission.register(TenantSpec(tenant_id=t))
        client = cluster.arm_client(0)
        sess = cluster.session()
        g0 = sess.call(client.valloc("t0"))
        g1 = sess.call(client.valloc("t1"))
        assert {g0["vac"].ac_id, g1["vac"].ac_id} == {0, 1}
        grants = {}

        def lease(tenant):
            grants[tenant] = yield from client.valloc(tenant, wait=True)

        cluster.engine.process(lease("t2"))
        cluster.run(until=cluster.engine.now + REPORT_PERIOD)
        assert len(cluster.arm._vqueue) == 1

        # All three detectors converge on device 0 around the same time.
        injector = FaultInjector(cluster)
        now = cluster.engine.now
        injector.crash_at(0, now + REPORT_PERIOD)          # heartbeat miss
        injector.break_at(0, now + 2 * REPORT_PERIOD)      # explicit break
        cluster.run(until=now + 20 * TTL)                  # + TTL sweep

        # The detector storm must not have answered (or corrupted) the
        # parked waiter: device 1's slot is still leased, so it waits.
        assert "t2" not in grants
        # Detectors converged: at most one break/evict pair for ac0, and
        # the device-0 lease was revoked exactly once.
        kinds = [k for _, k, ac in cluster.arm.pool_events if ac == 0]
        assert kinds.count("break") <= 1
        assert kinds.count("evict") <= 1
        broken_ac = 0
        victim = g0 if g0["vac"].ac_id == broken_ac else g1
        survivor = g1 if victim is g0 else g0
        assert victim["vac"].vac_id in cluster.arm._revoked_vacs
        # Releasing the surviving lease wakes the waiter exactly once.
        sess.call(client.vrelease(survivor["vac"]))
        cluster.run(until=cluster.engine.now + 1e-3)
        assert "t2" in grants
        assert grants["t2"]["vac"].ac_id == 1
        assert max(counts.values()) == 1, (
            f"a request was answered more than once: {counts}")
        # The ARM is alive: it still answers (pool is full, so DENIED /
        # UNAVAILABLE — a reply at all is the liveness proof).
        with pytest.raises(AllocationError):
            sess.call(client.valloc("t0", wait=False))

    def test_double_break_revokes_each_lease_once(self, cluster, sess):
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("t0"))
        grant = sess.call(client.valloc("t0"))
        revoked = []
        original = cluster.arm._revoke_lease

        def spy(vac_id, notify):
            revoked.append(vac_id)
            original(vac_id, notify)

        cluster.arm._revoke_lease = spy
        sess.call(client.report_break(grant["vac"].ac_id))
        sess.call(client.report_break(grant["vac"].ac_id))
        assert revoked.count(grant["vac"].vac_id) == 1


class TestRevokeRacingAttach:
    def test_revoke_before_first_attach_hits_tombstone(self, cluster, sess):
        """A VAC_REVOKE overtaking the initial VAC_ATTACH must not
        resurrect the slice: the daemon parks a tombstone and answers
        the late attach with PREEMPTED."""
        client = cluster.arm_client(0)
        sess.call(client.register_tenant("t0"))
        grant = sess.call(client.valloc("t0"))
        vac = grant["vac"]
        daemon = cluster.daemons[vac.ac_id]
        # The revoke wins the race: it reaches the daemon first.
        cluster.arm.rank.isend(
            cluster.arm.records[vac.ac_id].daemon_rank, TAG_REQUEST,
            Request(op=Op.VAC_REVOKE, req_id=next_request_id(),
                    reply_to=cluster.arm.rank.index,
                    params={"vac_id": vac.vac_id, "oneway": True}))
        cluster.run(until=cluster.engine.now + 1e-3)
        assert isinstance(daemon._vacs[vac.vac_id], _Tombstone)
        remote = cluster.remote(0, vac)
        with pytest.raises(AcceleratorFault, match="revoked"):
            sess.call(remote.vac_attach(share=grant["share"],
                                        mem_quota=grant["mem_quota"]))
        # Still a tombstone: the attach must not have resurrected it.
        assert isinstance(daemon._vacs[vac.vac_id], _Tombstone)
        assert daemon.stats.preempted_requests >= 1

    def test_guarded_first_attach_recovers_onto_new_grant(self, cluster):
        """End to end: the tenant helper's guarded initial attach rides
        out a revoke that lands before the attach, reacquires, and the
        session completes on the replacement lease."""
        eng = cluster.engine
        client = cluster.arm_client(0)
        sess = cluster.session()
        sess.call(client.register_tenant("t0"))
        done = {}

        def session():
            ac = yield from cluster.tenant(
                0, "t0", config=FailoverConfig(wait_for_replacement=True))
            addr = yield from ac.mem_alloc(4096)
            yield from ac.memcpy_h2d(addr, Phantom(4096))
            out = yield from ac.memcpy_d2h(addr, 4096)
            yield from ac.release_lease()
            done["ac"] = ac
            done["out"] = out

        def revoker():
            # Fire the instant the grant exists — the one-way revoke
            # then races the client's first VAC_ATTACH to the daemon.
            while not cluster.arm.admission.leases:
                yield eng.timeout(1e-7)
            vac_id = next(iter(cluster.arm.admission.leases))
            cluster.arm._revoke_lease(vac_id, notify=True)

        eng.process(session())
        eng.process(revoker())
        cluster.run(until=0.5)
        assert "ac" in done, "session never completed after the revoke race"
        assert done["ac"].preemptions_survived == 1
        # The replacement grant is the one that served the session.
        assert done["out"].nbytes == 4096

    def test_revoke_racing_failover_reattach(self, cluster):
        """A second revoke racing the failover's own re-attach: the
        tenant must survive both and land on a live third lease."""
        eng = cluster.engine
        client = cluster.arm_client(0)
        sess = cluster.session()
        sess.call(client.register_tenant("t0"))
        done = {}

        def session():
            ac = yield from cluster.tenant(
                0, "t0", config=FailoverConfig(wait_for_replacement=True))
            addr = yield from ac.mem_alloc(4096)
            for _ in range(4):
                yield from ac.memcpy_h2d(addr, Phantom(4096))
            yield from ac.release_lease()
            done["ac"] = ac

        def revoker():
            # Revoke the first two leases the moment each appears.
            for _ in range(2):
                while not cluster.arm.admission.leases:
                    yield eng.timeout(1e-7)
                vac_id = next(iter(cluster.arm.admission.leases))
                cluster.arm._revoke_lease(vac_id, notify=True)

        eng.process(session())
        eng.process(revoker())
        cluster.run(until=0.5)
        assert "ac" in done, "session never completed after revoke races"
        assert done["ac"].preemptions_survived == 2
