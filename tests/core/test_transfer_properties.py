"""Property-based tests: chunking, reassembly, and end-to-end transfers."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster, paper_testbed
from repro.core import pipeline, NAIVE_TRANSFER
from repro.core.transfer import (
    as_flat_bytes,
    assemble_chunks,
    payload_meta,
    slice_chunks,
)
from repro.errors import MiddlewareError
from repro.mpisim import Phantom


class TestChunkHelpers:
    @given(st.binary(min_size=0, max_size=4096), st.integers(1, 512))
    @settings(max_examples=150, deadline=None)
    def test_slice_assemble_roundtrip(self, data, block):
        blocks = [(off, min(block, len(data) - off))
                  for off in range(0, len(data), block)]
        chunks = slice_chunks(np.frombuffer(data, np.uint8), blocks)
        out = assemble_chunks(chunks, blocks, None)
        assert bytes(out) == data

    @given(st.integers(1, 10_000_000), st.integers(1, 1_000_000))
    @settings(max_examples=150, deadline=None)
    def test_phantom_slicing_preserves_total(self, nbytes, block):
        blocks = [(off, min(block, nbytes - off))
                  for off in range(0, nbytes, block)]
        chunks = slice_chunks(Phantom(nbytes), blocks)
        assert all(isinstance(c, Phantom) for c in chunks)
        assert sum(c.nbytes for c in chunks) == nbytes
        out = assemble_chunks(chunks, blocks, None)
        assert isinstance(out, Phantom)
        assert out.nbytes == nbytes

    def test_slice_size_mismatch_rejected(self):
        with pytest.raises(MiddlewareError, match="does not match"):
            slice_chunks(np.zeros(10, np.uint8), [(0, 5)])

    def test_assemble_count_mismatch_rejected(self):
        with pytest.raises(MiddlewareError, match="chunks"):
            assemble_chunks([b"ab"], [(0, 2), (2, 2)], None)

    def test_assemble_chunk_size_mismatch_rejected(self):
        with pytest.raises(MiddlewareError, match="block size"):
            assemble_chunks([np.zeros(3, np.uint8)], [(0, 2)], None)

    def test_assemble_with_meta_restores_type(self):
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        flat = as_flat_bytes(arr)
        blocks = [(0, 12), (12, 12)]
        chunks = slice_chunks(arr, blocks)
        out = assemble_chunks(chunks, blocks, payload_meta(arr))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, arr)
        assert flat.nbytes == 24

    def test_assemble_mixed_chunks_rejected(self):
        # A phantom chunk among real ones would silently discard data if
        # the mix collapsed to a Phantom.
        blocks = [(0, 2), (2, 2)]
        with pytest.raises(MiddlewareError, match="mixed"):
            assemble_chunks([np.zeros(2, np.uint8), Phantom(2)], blocks, None)
        with pytest.raises(MiddlewareError, match="mixed"):
            assemble_chunks([Phantom(2), np.zeros(2, np.uint8)], blocks, None)

    def test_unsupported_payload_rejected(self):
        with pytest.raises(MiddlewareError, match="unsupported"):
            as_flat_bytes({"a": 1})

    def test_meta_only_for_arrays(self):
        assert payload_meta(b"abc") is None
        assert payload_meta(Phantom(5)) is None
        assert payload_meta(np.zeros(3)) == ("<f8", (3,))


class TestEndToEndProperty:
    """One shared cluster; hypothesis drives payload shapes through it."""

    @pytest.fixture(scope="class")
    def rig(self):
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=1))
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=1))
        ac = cluster.remote(0, handles[0])
        return cluster, sess, ac

    @given(nbytes=st.integers(1, 300_000),
           block=st.sampled_from([256, 4096, 65536, 131072]),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_pipeline_roundtrip_arbitrary_sizes(self, rig, nbytes, block, seed):
        cluster, sess, ac = rig
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, nbytes).astype(np.uint8)
        cfg = pipeline(block)
        ptr = sess.call(ac.mem_alloc(nbytes))
        sess.call(ac.memcpy_h2d(ptr, data, transfer=cfg))
        out = sess.call(ac.memcpy_d2h(ptr, nbytes, transfer=cfg))
        np.testing.assert_array_equal(np.asarray(out).view(np.uint8).reshape(-1),
                                      data)
        sess.call(ac.mem_free(ptr))

    @given(nbytes=st.integers(1, 100_000), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_naive_equals_pipeline_data(self, rig, nbytes, seed):
        cluster, sess, ac = rig
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, nbytes).astype(np.uint8)
        ptr = sess.call(ac.mem_alloc(nbytes))
        sess.call(ac.memcpy_h2d(ptr, data, transfer=NAIVE_TRANSFER))
        out_naive = sess.call(ac.memcpy_d2h(ptr, nbytes, transfer=NAIVE_TRANSFER))
        out_pipe = sess.call(ac.memcpy_d2h(ptr, nbytes, transfer=pipeline(4096)))
        np.testing.assert_array_equal(np.asarray(out_naive),
                                      np.asarray(out_pipe))
        sess.call(ac.mem_free(ptr))

    @given(off=st.integers(0, 500), nbytes=st.integers(1, 500),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_offset_writes_compose(self, rig, off, nbytes, seed):
        cluster, sess, ac = rig
        rng = np.random.default_rng(seed)
        total = 1200
        base = rng.integers(0, 256, total).astype(np.uint8)
        patch = rng.integers(0, 256, nbytes).astype(np.uint8)
        ptr = sess.call(ac.mem_alloc(total))
        sess.call(ac.memcpy_h2d(ptr, base))
        sess.call(ac.memcpy_h2d(ptr, patch, offset=off))
        out = np.asarray(sess.call(ac.memcpy_d2h(ptr, total))).view(np.uint8)
        expected = base.copy()
        expected[off:off + nbytes] = patch
        np.testing.assert_array_equal(out.reshape(-1), expected)
        sess.call(ac.mem_free(ptr))
