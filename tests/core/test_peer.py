"""Tests for direct accelerator-to-accelerator transfers (PEER_PUT).

The paper highlights (Sect. III-C) that its accelerators "can efficiently
exchange data without involving their associated compute nodes" — a
capability CUDA 4.2 / OpenCL 1.2 did not offer across a network.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.errors import MiddlewareError
from repro.mpisim import Phantom
from repro.units import MiB


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=3))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


class TestPeerPut:
    def test_data_arrives_intact(self, rig):
        cluster, sess, acs = rig
        data = np.random.default_rng(0).standard_normal(5000)
        p0 = sess.call(acs[0].mem_alloc(data.nbytes))
        p1 = sess.call(acs[1].mem_alloc(data.nbytes))
        sess.call(acs[0].memcpy_h2d(p0, data))
        sess.call(acs[0].peer_put(p0, data.nbytes, acs[1], p1))
        out = sess.call(acs[1].memcpy_d2h(p1, data.nbytes))
        np.testing.assert_array_equal(
            np.asarray(out).view(np.float64).reshape(-1), data)

    def test_chain_across_three_accelerators(self, rig):
        cluster, sess, acs = rig
        data = np.arange(1000, dtype=np.float64)
        ptrs = [sess.call(ac.mem_alloc(data.nbytes)) for ac in acs]
        sess.call(acs[0].memcpy_h2d(ptrs[0], data))
        sess.call(acs[0].peer_put(ptrs[0], data.nbytes, acs[1], ptrs[1]))
        sess.call(acs[1].peer_put(ptrs[1], data.nbytes, acs[2], ptrs[2]))
        out = sess.call(acs[2].memcpy_d2h(ptrs[2], data.nbytes))
        np.testing.assert_array_equal(
            np.asarray(out).view(np.float64).reshape(-1), data)

    def test_no_compute_node_data_traffic(self, rig):
        # The bulk bytes flow ac0 -> ac1 directly: the compute node's
        # endpoint only sees the small request/response messages.
        cluster, sess, acs = rig
        p0 = sess.call(acs[0].mem_alloc(16 * MiB))
        p1 = sess.call(acs[1].mem_alloc(16 * MiB))
        sess.call(acs[0].memcpy_h2d(p0, Phantom(16 * MiB)))
        before = cluster.fabric.bytes_moved
        cn_rx_before = cluster.fabric.endpoints["cn0"].rx
        sess.call(acs[0].peer_put(p0, 16 * MiB, acs[1], p1))
        moved = cluster.fabric.bytes_moved - before
        assert moved >= 16 * MiB  # the payload crossed the fabric once
        assert moved < 16 * MiB * 1.1  # ...and only once (plus control)

    def test_peer_put_faster_than_via_host(self, rig):
        cluster, sess, acs = rig
        nbytes = 32 * MiB
        p0 = sess.call(acs[0].mem_alloc(nbytes))
        p1 = sess.call(acs[1].mem_alloc(nbytes))
        sess.call(acs[0].memcpy_h2d(p0, Phantom(nbytes)))
        t0 = sess.now
        sess.call(acs[0].peer_put(p0, nbytes, acs[1], p1))
        t_direct = sess.now - t0
        t0 = sess.now
        staged = sess.call(acs[0].memcpy_d2h(p0, nbytes))
        sess.call(acs[1].memcpy_h2d(p1, staged))
        t_via_host = sess.now - t0
        assert t_direct < t_via_host * 0.75

    def test_overflow_rejected(self, rig):
        cluster, sess, acs = rig
        p0 = sess.call(acs[0].mem_alloc(100))
        p1 = sess.call(acs[1].mem_alloc(100))
        with pytest.raises(MiddlewareError):
            sess.call(acs[0].peer_put(p0, 500, acs[1], p1))

    def test_phantom_peer_put(self, rig):
        cluster, sess, acs = rig
        p0 = sess.call(acs[0].mem_alloc(MiB))
        p1 = sess.call(acs[1].mem_alloc(MiB))
        sess.call(acs[0].memcpy_h2d(p0, Phantom(MiB)))
        sess.call(acs[0].peer_put(p0, MiB, acs[1], p1))
        out = sess.call(acs[1].memcpy_d2h(p1, MiB))
        assert isinstance(out, Phantom)


class TestPeerProgramIdentity:
    """Seeded peer programs: P2P vs staged must be bit-identical."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
    def test_p2p_matches_staged_and_oracle(self, seed):
        from ..harness import run_peer_modes
        expected, outcomes = run_peer_modes(seed)
        for mode, out in outcomes.items():
            assert out.results == expected, (
                f"{mode}: downloaded bytes diverged from the host oracle")
            out.assert_monotonic()
        assert outcomes["p2p"].results == outcomes["staged"].results

    @pytest.mark.parametrize("seed", [3, 1234])
    def test_identity_holds_across_switches(self, seed):
        from repro.netsim import TopologySpec

        from ..harness import run_peer_modes
        expected, outcomes = run_peer_modes(
            seed, n_devices=4, topology=TopologySpec(kind="ring", dims=(2,)))
        for out in outcomes.values():
            assert out.results == expected

    def test_replay_is_deterministic(self):
        from ..harness import run_peer_modes
        first = run_peer_modes(5)[1]["p2p"]
        second = run_peer_modes(5)[1]["p2p"]
        assert first.results == second.results
        assert first.trace == second.trace


class TestPeerPutAcrossSwitches:
    @pytest.fixture
    def topo_rig(self):
        from repro.cluster import ClusterSpec
        from repro.netsim import TopologySpec
        cluster = Cluster(ClusterSpec(
            n_compute=1, n_accelerators=2,
            topology=TopologySpec(kind="ring", dims=(2,))))
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=2))
        acs = [cluster.remote(0, h) for h in handles]
        return cluster, sess, acs

    def test_bulk_bytes_cross_the_trunk_once(self, topo_rig):
        # ac0 sits on sw0, ac1 on sw1 (round-robin attachment): a
        # device-direct put sends the payload over the trunk exactly
        # once, and the compute node's endpoint never carries the bulk.
        cluster, sess, acs = topo_rig
        assert cluster.fabric.hop_count("ac0", "ac1") == 1
        nbytes = 4 * MiB
        p0 = sess.call(acs[0].mem_alloc(nbytes))
        p1 = sess.call(acs[1].mem_alloc(nbytes))
        sess.call(acs[0].memcpy_h2d(p0, Phantom(nbytes)))
        trunk_before = sum(cluster.fabric.trunk_bytes.values())
        cn = cluster.fabric.endpoints["cn0"]
        cn_before = cn.tx_bytes + cn.rx_bytes
        sess.call(acs[0].peer_put(p0, nbytes, acs[1], p1))
        trunk = sum(cluster.fabric.trunk_bytes.values()) - trunk_before
        cn_bytes = cn.tx_bytes + cn.rx_bytes - cn_before
        assert trunk >= nbytes  # the payload crossed the trunk...
        assert trunk < nbytes * 1.1  # ...once, plus control envelopes
        assert cn_bytes < nbytes * 0.01  # the CN saw control traffic only

    def test_cross_switch_put_arrives_intact(self, topo_rig):
        cluster, sess, acs = topo_rig
        data = np.random.default_rng(1).standard_normal(4000)
        p0 = sess.call(acs[0].mem_alloc(data.nbytes))
        p1 = sess.call(acs[1].mem_alloc(data.nbytes))
        sess.call(acs[0].memcpy_h2d(p0, data))
        sess.call(acs[0].peer_put(p0, data.nbytes, acs[1], p1))
        out = sess.call(acs[1].memcpy_d2h(p1, data.nbytes))
        np.testing.assert_array_equal(
            np.asarray(out).view(np.float64).reshape(-1), data)
