"""Cross-stream coalescing: merging, isolation, and MBATCH at-most-once."""

import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import (
    Op,
    Request,
    TAG_REQUEST,
    next_request_id,
    reply_tag,
)
from repro.core.coalesce import FrameCoalescer
from repro.core.daemon import DEDUP_CACHE_SIZE
from repro.errors import MiddlewareError


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=1))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=1))
    ac = cluster.remote(0, handles[0])
    co = FrameCoalescer(cluster.compute_rank(0), handles[0].daemon_rank,
                        window_s=2e-6)
    return cluster, sess, ac, co


class TestFrameCoalescer:
    def test_single_sub_frame_round_trips(self, rig):
        cluster, sess, ac, co = rig
        subs = sess.call(ac.coalesced_rpc(co, [(Op.PING, {})]))
        assert len(subs) == 1 and subs[0].ok and subs[0].value == "pong"
        assert co.subs_in == 1 and co.frames_out == 1
        assert co.roundtrips_saved == 0

    def test_concurrent_sub_frames_share_a_wire_frame(self, rig):
        cluster, sess, ac, co = rig
        daemon = cluster.daemons[ac.handle.ac_id]
        results = sess.parallel([
            ac.coalesced_rpc(co, [(Op.MEM_ALLOC, {"nbytes": 64})])
            for _ in range(4)])
        addrs = {subs[0].value for subs in results}
        assert len(addrs) == 4 and all(s[0].ok for s in results)
        # The 2 us window gathered the concurrent submissions: fewer
        # frames than sub-frames, and the daemon saw merged carriers.
        assert co.subs_in == 4
        assert co.frames_out < co.subs_in
        assert co.merged_subs > 0
        assert co.roundtrips_saved == co.subs_in - co.frames_out
        assert daemon.stats.mbatches == co.frames_out
        assert daemon.stats.mbatched_subs == 4

    def test_sub_frame_failure_does_not_skip_other_riders(self, rig):
        cluster, sess, ac, co = rig
        good, bad = sess.parallel([
            ac.coalesced_rpc(co, [(Op.MEM_ALLOC, {"nbytes": 64})]),
            ac.coalesced_rpc(co, [(Op.MEM_FREE, {"addr": 0xdead})]),
        ])
        assert good[0].ok
        assert not bad[0].ok

    def test_ops_within_a_sub_frame_execute_in_order(self, rig):
        cluster, sess, ac, co = rig
        subs = sess.call(ac.coalesced_rpc(co, [
            (Op.MEM_ALLOC, {"nbytes": 128}),
            (Op.PING, {}),
        ]))
        assert [s.ok for s in subs] == [True, True]
        addr = subs[0].value
        freed = sess.call(ac.coalesced_rpc(co, [(Op.MEM_FREE,
                                                 {"addr": addr})]))
        assert freed[0].ok

    def test_non_batchable_op_rejected(self, rig):
        cluster, sess, ac, co = rig
        with pytest.raises(MiddlewareError):
            sess.call(ac.coalesced_rpc(
                co, [(Op.MEMCPY_H2D, {"addr": 0, "nbytes": 8})]))

    def test_validation(self, rig):
        cluster, _, ac, _ = rig
        rank = cluster.compute_rank(0)
        with pytest.raises(ValueError):
            FrameCoalescer(rank, ac.handle.daemon_rank, window_s=-1.0)
        with pytest.raises(ValueError):
            FrameCoalescer(rank, ac.handle.daemon_rank, max_merge=0)
        with pytest.raises(ValueError):
            FrameCoalescer(rank, ac.handle.daemon_rank, max_inflight=0)


class TestMbatchDedup:
    """A retried merged frame must replay every sub-response exactly once."""

    def _exchange(self, cluster, sess, dst, req):
        rank = cluster.compute_rank(0)

        def roundtrip():
            rreq = rank.irecv(source=dst, tag=reply_tag(req.req_id))
            rank.isend(dst, TAG_REQUEST, req)
            yield rreq.done
            return rreq.message.payload

        return sess.call(roundtrip())

    def _mbatch_req(self, req_id, reqs, attempt=0):
        return Request(op=Op.MBATCH, req_id=req_id, reply_to=0,
                       params={"reqs": reqs}, attempt=attempt)

    def test_duplicate_mbatch_replays_every_sub_once(self, rig):
        cluster, sess, ac, _ = rig
        daemon = cluster.daemons[ac.handle.ac_id]
        scope = dict(ac._scope)
        req_id = next_request_id()
        reqs = [(next_request_id(),
                 [(Op.MEM_ALLOC.value, {"nbytes": 256, **scope})])
                for _ in range(3)]
        first = self._exchange(cluster, sess, ac.handle.daemon_rank,
                               self._mbatch_req(req_id, reqs))
        assert first.ok and len(first.value) == 3
        used = daemon.gpu.memory.used_bytes

        dup = self._exchange(cluster, sess, ac.handle.daemon_rank,
                             self._mbatch_req(req_id, reqs, attempt=1))
        assert dup.ok
        # Bit-identical replay: same addresses per sub, no re-execution.
        assert [[s.value for s in sub] for sub in dup.value] \
            == [[s.value for s in sub] for sub in first.value]
        assert daemon.gpu.memory.used_bytes == used
        assert daemon.stats.dedup_hits == 1

    def test_merged_frame_weighs_its_sub_count_in_the_dedup_window(
            self, rig, monkeypatch):
        # Regression: eviction must be weighted by replayable
        # sub-responses, or one merged frame of N subs would occupy a
        # single slot and stretch the window's memory by N.
        import repro.core.daemon as daemon_mod
        monkeypatch.setattr(daemon_mod, "DEDUP_CACHE_SIZE", 8)
        cluster, sess, ac, _ = rig
        daemon = cluster.daemons[ac.handle.ac_id]
        scope = dict(ac._scope)
        mb_id = next_request_id()
        reqs = [(next_request_id(),
                 [(Op.MEM_ALLOC.value, {"nbytes": 64, **scope})])
                for _ in range(6)]
        self._exchange(cluster, sess, ac.handle.daemon_rank,
                       self._mbatch_req(mb_id, reqs))
        assert daemon._dedup_weight == 6
        # Three plain allocs push the weight past 8: the 6-sub frame is
        # evicted first (FIFO), leaving only the plain entries.
        for _ in range(3):
            req = Request(op=Op.MEM_ALLOC, req_id=next_request_id(),
                          reply_to=0, params={"nbytes": 64, **scope})
            self._exchange(cluster, sess, ac.handle.daemon_rank, req)
        assert mb_id not in daemon._dedup
        assert daemon._dedup_weight == 3
        assert len(daemon._dedup) == 3

    def test_real_cache_bound_unchanged_for_plain_ops(self, rig):
        # The weighted window degenerates to the historical count bound
        # when nothing is merged.
        assert DEDUP_CACHE_SIZE == 512
