"""Ring collectives over the P2P data plane, and topology-aware placement.

The acceptance bar for the P2P plane: a ring allreduce on an 8-device
torus must be *bit-identical* to the staged two-hop oracle (and to a
numpy oracle reproducing the ring's accumulation order), strictly
faster in virtual time, and move at least 2x fewer bytes through
compute-node endpoints.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core.collectives import ring_allreduce, ring_broadcast
from repro.errors import MiddlewareError
from repro.netsim import TopologySpec
from repro.workloads.collective import (
    CollectiveConfig,
    ring_hop_counts,
    run,
    run_once,
)

QUICK = CollectiveConfig(devices=8, chunk_elements=256,
                         topology="torus2d", dims=(2, 2))


@pytest.fixture(scope="module")
def allreduce_report():
    """One 8-device comparison run shared by the assertions below."""
    return run(QUICK)


class TestRingAllreduce:
    def test_p2p_bit_identical_to_staged_and_oracle(self, allreduce_report):
        rep = allreduce_report
        assert rep.identical, "P2P and staged transports diverged"
        assert all(r.exact for r in rep.results.values()), \
            "device contents do not match the numpy oracle bit-for-bit"

    def test_p2p_reduces_compute_node_bytes(self, allreduce_report):
        rep = allreduce_report
        # The point of the plane: the driving compute node stops being
        # the data path.  Control traffic still crosses it, bulk no.
        assert rep.cn_ratio >= 2.0
        assert rep.results["p2p"].cn_bytes < rep.results["staged"].cn_bytes

    def test_p2p_faster_in_virtual_time(self, allreduce_report):
        assert allreduce_report.speedup > 1.0

    def test_deterministic_replay(self, allreduce_report):
        assert run(QUICK).digest == allreduce_report.digest

    def test_placement_keeps_ring_neighbours_close(self, allreduce_report):
        # Round-robin attachment over the 2x2 torus: every ring edge
        # crosses at most 2 trunks (the torus diameter).
        assert max(allreduce_report.ring_hops) <= 2

    def test_bytes_on_wire_match_the_schedule(self, allreduce_report):
        # Ring allreduce moves 2*(N-1) chunks per device end to end.
        cfg = QUICK
        expected = 2 * (cfg.devices - 1) * cfg.devices * cfg.chunk_nbytes()
        moved = allreduce_report.results["p2p"].bytes_moved
        assert moved >= expected
        # ... plus RPC envelopes, but nowhere near another chunk sweep.
        assert moved < expected + cfg.devices * cfg.devices * 4096


class TestRingBroadcast:
    def test_broadcast_matches_root(self):
        cfg = CollectiveConfig(devices=4, chunk_elements=256, op="broadcast",
                               topology="ring", dims=(2,))
        rep = run(cfg)
        assert rep.identical
        assert all(r.exact for r in rep.results.values())
        assert rep.cn_ratio >= 2.0

    def test_single_mode_run(self):
        res = run_once(CollectiveConfig(devices=2, chunk_elements=64,
                                        op="broadcast", topology="single",
                                        dims=()), "p2p")
        assert res.exact

    def test_config_validation(self):
        with pytest.raises(MiddlewareError):
            CollectiveConfig(devices=1)
        with pytest.raises(MiddlewareError):
            CollectiveConfig(op="allgather")
        with pytest.raises(MiddlewareError):
            run_once(QUICK, "telepathy")


class TestCollectiveLayer:
    def test_allreduce_argument_validation(self):
        cluster = Cluster(ClusterSpec(n_compute=1, n_accelerators=2))
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=2))
        acs = [cluster.remote(0, h) for h in handles]
        with pytest.raises(MiddlewareError):
            sess.call(ring_allreduce(cluster.engine, acs, [[1]], [1, 2],
                                     8, 1))
        with pytest.raises(MiddlewareError):
            sess.call(ring_allreduce(cluster.engine, acs, [[1, 2], [3, 4]],
                                     [1], 8, 1))
        with pytest.raises(MiddlewareError):
            sess.call(ring_broadcast(cluster.engine, acs, [[1], [2]], 8,
                                     root=5))

    def test_ring_hop_counts_shape(self):
        hops = ring_hop_counts(QUICK)
        assert len(hops) == QUICK.devices
        assert all(h >= 0 for h in hops)


class TestTopologyAwarePlacement:
    @pytest.fixture
    def cluster(self):
        # 4 devices round-robined over a 2-switch ring: ac0, ac2 hang
        # off sw0 and ac1, ac3 off sw1.
        return Cluster(ClusterSpec(
            n_compute=1, n_accelerators=4,
            topology=TopologySpec(kind="ring", dims=(2,))))

    def test_pairs_land_on_one_switch(self, cluster):
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=2))
        switches = {cluster.fabric.switch_of(f"ac{h.ac_id}")
                    for h in handles}
        assert len(switches) == 1, \
            f"2-device alloc split across switches: {handles}"

    def test_hop_distance_and_snapshot(self, cluster):
        arm = cluster.arm
        assert arm.hop_distance(0, 2) == 0
        assert arm.hop_distance(0, 1) == 1
        snap = arm.snapshot()
        assert {r["switch"] for r in snap.values()} == {"sw0", "sw1"}

    def test_full_alloc_still_works(self, cluster):
        sess = cluster.session()
        handles = sess.call(cluster.arm_client(0).alloc(count=4))
        assert len({h.ac_id for h in handles}) == 4
