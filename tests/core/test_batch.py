"""Tests for the batch runner (Sect. V-B production flow)."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import BatchJobSpec, BatchRunner
from repro.errors import AllocationError
from repro.mpisim import Phantom
from repro.units import MiB


@pytest.fixture
def cluster():
    return Cluster(paper_testbed(n_compute=2, n_accelerators=3))


def gpu_burn(duration_items: int):
    """A job body running `duration_items` gemm launches per accelerator."""

    def body(ctx):
        ptrs = []
        for ac in ctx.accelerators:
            ptrs.append((yield from ac.mem_alloc(MiB)))
        for _ in range(duration_items):
            for ac, p in zip(ctx.accelerators, ptrs):
                yield from ac.memcpy_h2d(p, Phantom(MiB))
                yield from ac.kernel_run(
                    "dgemm", {"A": 0, "B": 0, "C": 0,
                              "m": 512, "n": 512, "k": 512}, real=False)
        for ac, p in zip(ctx.accelerators, ptrs):
            yield from ac.mem_free(p)
        return len(ctx.accelerators)

    return body


class TestBatchRunner:
    def test_single_job_runs_and_releases(self, cluster):
        runner = BatchRunner(cluster)
        rec = runner.run_all([BatchJobSpec("j0", gpu_burn(3),
                                           n_accelerators=2)])[0]
        assert rec.ok
        assert rec.result == 2
        assert cluster.arm.free_count() == 3
        assert len(runner._free_nodes) == 2

    def test_cpu_only_job(self, cluster):
        def body(ctx):
            yield ctx.engine.timeout(1.0)
            return "cpu-done"

        runner = BatchRunner(cluster)
        rec = runner.run_all([BatchJobSpec("cpu", body,
                                           n_accelerators=0)])[0]
        assert rec.result == "cpu-done"

    def test_two_jobs_share_the_pool(self, cluster):
        runner = BatchRunner(cluster)
        recs = runner.run_all([
            BatchJobSpec("a", gpu_burn(5), n_accelerators=2),
            BatchJobSpec("b", gpu_burn(5), n_accelerators=1),
        ])
        assert all(r.ok for r in recs)
        # Two nodes, three accelerators: both start essentially at once
        # (the only wait is the ARM's microsecond-scale control traffic).
        assert all(r.wait_s < 1e-3 for r in recs)

    def test_pool_shortage_queues_fifo(self, cluster):
        runner = BatchRunner(cluster)
        recs = runner.run_all([
            BatchJobSpec("big", gpu_burn(10), n_accelerators=3),
            BatchJobSpec("late", gpu_burn(1), n_accelerators=1,
                         arrival_s=0.0001),
        ])
        by_name = {r.spec.name: r for r in recs}
        # "late" had a free node but had to wait at the ARM for the pool.
        assert by_name["late"].start_s >= by_name["big"].end_s * 0.99

    def test_node_shortage_queues(self):
        cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=3))
        runner = BatchRunner(cluster)
        recs = runner.run_all([
            BatchJobSpec("first", gpu_burn(5), n_accelerators=1),
            BatchJobSpec("second", gpu_burn(1), n_accelerators=1),
        ])
        by_name = {r.spec.name: r for r in recs}
        assert by_name["second"].start_s >= by_name["first"].end_s * 0.99

    def test_failing_job_still_releases(self, cluster):
        def bad(ctx):
            yield ctx.engine.timeout(0.001)
            raise RuntimeError("app crash")

        runner = BatchRunner(cluster)
        rec = runner.run_all([BatchJobSpec("bad", bad, n_accelerators=2)])[0]
        assert not rec.ok
        assert isinstance(rec.error, RuntimeError)
        assert cluster.arm.free_count() == 3
        assert len(runner._free_nodes) == 2

    def test_oversized_request_rejected_at_submit(self, cluster):
        runner = BatchRunner(cluster)
        with pytest.raises(AllocationError, match="wants 9"):
            runner.submit(BatchJobSpec("huge", gpu_burn(1), n_accelerators=9))

    def test_arrival_times_respected(self, cluster):
        runner = BatchRunner(cluster)
        recs = runner.run_all([
            BatchJobSpec("later", gpu_burn(1), n_accelerators=1,
                         arrival_s=5.0),
        ])
        assert recs[0].start_s >= 5.0

    def test_utilization_visible_to_arm(self, cluster):
        runner = BatchRunner(cluster)
        runner.run_all([BatchJobSpec("j", gpu_burn(20), n_accelerators=3)])
        assert cluster.arm.utilization() > 0.5

    def test_real_numerics_inside_job(self, cluster):
        data = np.arange(64, dtype=np.float64)

        def body(ctx):
            ac = ctx.accelerators[0]
            p = yield from ac.mem_alloc(data.nbytes)
            yield from ac.memcpy_h2d(p, data)
            yield from ac.kernel_run("dscal", {"x": p, "n": 64, "alpha": 3.0})
            out = yield from ac.memcpy_d2h(p, data.nbytes)
            return out

        runner = BatchRunner(cluster)
        rec = runner.run_all([BatchJobSpec("math", body)])[0]
        np.testing.assert_allclose(rec.result, 3.0 * data)

    def test_spec_validation(self):
        with pytest.raises(AllocationError):
            BatchJobSpec("x", gpu_burn(1), n_accelerators=-1)
        with pytest.raises(AllocationError):
            BatchJobSpec("x", gpu_burn(1), arrival_s=-1.0)
