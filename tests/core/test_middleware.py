"""End-to-end middleware tests: the full front-end -> MPI -> daemon -> GPU path."""

import numpy as np
import pytest

from repro.core import NAIVE_TRANSFER, TransferConfig, pipeline
from repro.errors import MiddlewareError
from repro.mpisim import Phantom
from repro.units import KiB, MiB


@pytest.fixture
def ac(cluster, sess):
    """One allocated RemoteAccelerator front-end."""
    client = cluster.arm_client(0)
    handles = sess.call(client.alloc(count=1))
    return cluster.remote(0, handles[0])


class TestMemoryOps:
    def test_alloc_and_free(self, cluster, sess, ac):
        ptr = sess.call(ac.mem_alloc(1024))
        gpu = cluster.accelerator_for_handle(ac.handle).gpu
        assert gpu.memory.used_bytes == 1024
        sess.call(ac.mem_free(ptr))
        assert gpu.memory.used_bytes == 0

    def test_alloc_oom_raises_remotely(self, cluster, sess, ac):
        with pytest.raises(MiddlewareError, match="out of device memory"):
            sess.call(ac.mem_alloc(100 * 1024**3))

    def test_free_bad_pointer(self, sess, ac):
        with pytest.raises(MiddlewareError, match="unknown device address"):
            sess.call(ac.mem_free(0xdead))

    def test_operations_cost_virtual_time(self, sess, ac):
        t0 = sess.now
        sess.call(ac.mem_alloc(1024))
        # request + reply latency plus malloc cost: microseconds, not zero.
        assert sess.now - t0 > 5e-6


class TestMemcpyRoundTrip:
    @pytest.mark.parametrize("cfg", [
        NAIVE_TRANSFER,
        pipeline(128 * KiB),
        pipeline(64 * KiB),
        None,  # default adaptive
    ])
    def test_h2d_d2h_roundtrip_preserves_data(self, sess, ac, cfg):
        rng = np.random.default_rng(7)
        data = rng.standard_normal(int(0.5 * MiB / 8))  # 0.5 MiB of doubles
        ptr = sess.call(ac.mem_alloc(data.nbytes))
        sess.call(ac.memcpy_h2d(ptr, data, transfer=cfg))
        out = sess.call(ac.memcpy_d2h(ptr, data.nbytes, transfer=cfg))
        assert out.dtype == data.dtype
        np.testing.assert_array_equal(out, data)

    def test_roundtrip_preserves_2d_shape(self, sess, ac):
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        ptr = sess.call(ac.mem_alloc(data.nbytes))
        sess.call(ac.memcpy_h2d(ptr, data))
        out = sess.call(ac.memcpy_d2h(ptr, data.nbytes))
        assert out.shape == (8, 8)
        np.testing.assert_array_equal(out, data)

    def test_bytes_payload(self, sess, ac):
        data = bytes(range(256)) * 10
        ptr = sess.call(ac.mem_alloc(len(data)))
        sess.call(ac.memcpy_h2d(ptr, data))
        out = sess.call(ac.memcpy_d2h(ptr, len(data)))
        assert bytes(out) == data

    def test_phantom_transfer_charges_time_only(self, cluster, sess, ac):
        ptr = sess.call(ac.mem_alloc(64 * MiB))
        t0 = sess.now
        sess.call(ac.memcpy_h2d(ptr, Phantom(64 * MiB)))
        elapsed = sess.now - t0
        # 64 MiB at ~2660 MiB/s: at least 24 ms of virtual time.
        assert elapsed > 0.024
        gpu = cluster.accelerator_for_handle(ac.handle).gpu
        assert gpu.memory.allocation(ptr).data is None  # nothing materialized

    def test_phantom_d2h_returns_phantom(self, sess, ac):
        ptr = sess.call(ac.mem_alloc(MiB))
        sess.call(ac.memcpy_h2d(ptr, Phantom(MiB)))
        out = sess.call(ac.memcpy_d2h(ptr, MiB))
        assert isinstance(out, Phantom)
        assert out.nbytes == MiB

    def test_copy_overflow_rejected(self, sess, ac):
        ptr = sess.call(ac.mem_alloc(100))
        with pytest.raises(MiddlewareError, match="exceeds allocation"):
            sess.call(ac.memcpy_h2d(ptr, np.zeros(100)))

    def test_pipeline_faster_than_naive_for_large(self, sess, ac):
        ptr = sess.call(ac.mem_alloc(16 * MiB))
        t0 = sess.now
        sess.call(ac.memcpy_h2d(ptr, Phantom(16 * MiB), transfer=NAIVE_TRANSFER))
        t_naive = sess.now - t0
        t0 = sess.now
        sess.call(ac.memcpy_h2d(ptr, Phantom(16 * MiB), transfer=pipeline(128 * KiB)))
        t_pipe = sess.now - t0
        assert t_pipe < t_naive
        # The naive protocol serializes network + PCIe; pipeline mostly
        # hides the PCIe stage.
        assert t_naive / t_pipe > 1.2

    def test_daemon_staging_accounting(self, cluster, sess, ac):
        daemon = cluster.daemons[ac.handle.ac_id]
        ptr = sess.call(ac.mem_alloc(8 * MiB))
        sess.call(ac.memcpy_h2d(ptr, Phantom(8 * MiB), transfer=NAIVE_TRANSFER))
        naive_peak = daemon.stats.staging_peak
        assert naive_peak == 8 * MiB  # naive buffers the whole message
        daemon.stats.staging_peak = 0
        sess.call(ac.memcpy_h2d(ptr, Phantom(8 * MiB), transfer=pipeline(128 * KiB)))
        assert daemon.stats.staging_peak <= 16 * 128 * KiB  # bounded window


class TestKernels:
    def test_paper_listing2_flow(self, cluster, sess, ac):
        """The exact program shape of Listing 2: alloc, copy, kernel, copy, free."""
        x = np.full(1000, 2.0)
        y = np.full(1000, 1.0)
        px = sess.call(ac.mem_alloc(x.nbytes))
        py = sess.call(ac.mem_alloc(y.nbytes))
        sess.call(ac.memcpy_h2d(px, x))
        sess.call(ac.memcpy_h2d(py, y))
        sess.call(ac.kernel_create("daxpy"))
        ac.kernel_set_args("daxpy", {"x": px, "y": py, "n": 1000, "alpha": 3.0})
        rc = sess.call(ac.kernel_run("daxpy"))
        assert rc == 0
        out = sess.call(ac.memcpy_d2h(py, y.nbytes))
        np.testing.assert_allclose(out, np.full(1000, 7.0))
        sess.call(ac.mem_free(px))
        sess.call(ac.mem_free(py))

    def test_kernel_create_unknown_rejected(self, sess, ac):
        with pytest.raises(MiddlewareError, match="unknown kernel"):
            sess.call(ac.kernel_create("no-such-kernel"))

    def test_set_args_before_create_rejected(self, ac):
        with pytest.raises(MiddlewareError, match="not created"):
            ac.kernel_set_args("daxpy", {})

    def test_kernel_run_with_explicit_params(self, sess, ac):
        n = 64
        p = sess.call(ac.mem_alloc(8 * n))
        sess.call(ac.memcpy_h2d(p, np.ones(n)))
        sess.call(ac.kernel_run("dscal", {"x": p, "n": n, "alpha": 5.0}))
        out = sess.call(ac.memcpy_d2h(p, 8 * n))
        np.testing.assert_allclose(out, np.full(n, 5.0))

    def test_timed_kernel_run(self, cluster, sess, ac):
        t0 = sess.now
        sess.call(ac.kernel_run("dgemm",
                                {"A": 0, "B": 0, "C": 0,
                                 "m": 1024, "n": 1024, "k": 1024},
                                real=False))
        # ~2.1 GFlop at ~60 GF/s -> tens of milliseconds.
        assert sess.now - t0 > 0.01

    def test_remote_gemm_matches_numpy(self, sess, ac):
        rng = np.random.default_rng(3)
        m = n = k = 16
        A, B = rng.standard_normal((m, k)), rng.standard_normal((k, n))
        C = np.zeros((m, n))
        pa = sess.call(ac.mem_alloc(A.nbytes))
        pb = sess.call(ac.mem_alloc(B.nbytes))
        pc = sess.call(ac.mem_alloc(C.nbytes))
        for p, arr in ((pa, A), (pb, B), (pc, C)):
            sess.call(ac.memcpy_h2d(p, arr))
        sess.call(ac.kernel_run("dgemm", {"A": pa, "B": pb, "C": pc,
                                          "m": m, "n": n, "k": k, "beta": 0.0}))
        out = sess.call(ac.memcpy_d2h(pc, C.nbytes))
        np.testing.assert_allclose(out, A @ B)


class TestMultiAccelerator:
    def test_three_accelerators_independent(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=3))
        acs = [cluster.remote(0, h) for h in handles]
        ptrs = []
        for i, a in enumerate(acs):
            p = sess.call(a.mem_alloc(800))
            sess.call(a.memcpy_h2d(p, np.full(100, float(i))))
            ptrs.append(p)
        for i, (a, p) in enumerate(zip(acs, ptrs)):
            out = sess.call(a.memcpy_d2h(p, 800))
            np.testing.assert_array_equal(out, np.full(100, float(i)))

    def test_parallel_ops_via_session(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=3))
        acs = [cluster.remote(0, h) for h in handles]
        ptrs = sess.parallel([a.mem_alloc(4 * MiB) for a in acs])
        assert len(set(zip([a.handle.ac_id for a in acs], ptrs))) == 3
        # Parallel phantom uploads: wall time should be < 3x solo time.
        t0 = sess.now
        sess.parallel([a.memcpy_h2d(p, Phantom(4 * MiB))
                       for a, p in zip(acs, ptrs)])
        elapsed = sess.now - t0
        solo = 4 * MiB / (2660 * MiB)
        assert elapsed < 2.2 * 3 * solo  # the shared CN NIC serializes sends

    def test_peer_put_between_accelerators(self, cluster, sess):
        client = cluster.arm_client(0)
        handles = sess.call(client.alloc(count=2))
        a0, a1 = (cluster.remote(0, h) for h in handles)
        data = np.arange(2000, dtype=np.float64)
        p0 = sess.call(a0.mem_alloc(data.nbytes))
        p1 = sess.call(a1.mem_alloc(data.nbytes))
        sess.call(a0.memcpy_h2d(p0, data))
        cn_bytes_before = cluster.fabric.endpoints["cn0"].rx  # smoke only
        sess.call(a0.peer_put(p0, data.nbytes, a1, p1))
        out = sess.call(a1.memcpy_d2h(p1, data.nbytes))
        np.testing.assert_array_equal(out, data)

    def test_ping(self, sess, ac):
        assert sess.call(ac.ping()) == "pong"
