"""Behavioural tests for the back-end daemon: serialization, accounting."""

import numpy as np
import pytest

from repro.cluster import Cluster, paper_testbed
from repro.core import (
    NAIVE_TRANSFER,
    Op,
    Request,
    TAG_REQUEST,
    next_request_id,
    pipeline,
    reply_tag,
)
from repro.core.daemon import DEDUP_CACHE_SIZE
from repro.mpisim import Phantom
from repro.units import KiB, MiB


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=2, n_accelerators=2))
    sess = cluster.session()
    handles = sess.call(cluster.arm_client(0).alloc(count=2))
    acs = [cluster.remote(0, h) for h in handles]
    return cluster, sess, acs


class TestDaemonSerialization:
    def test_concurrent_ops_to_one_daemon_serialize(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        params = {"A": 0, "B": 0, "C": 0, "m": 1024, "n": 1024, "k": 1024}
        t0 = sess.now
        sess.call(ac.kernel_run("dgemm", params, real=False))
        one = sess.now - t0
        t0 = sess.now
        sess.parallel([ac.kernel_run("dgemm", params, real=False)
                       for _ in range(3)])
        three = sess.now - t0
        assert three == pytest.approx(3 * one, rel=0.05)

    def test_concurrent_ops_to_two_daemons_overlap(self, rig):
        cluster, sess, acs = rig
        params = {"A": 0, "B": 0, "C": 0, "m": 1024, "n": 1024, "k": 1024}
        t0 = sess.now
        sess.call(acs[0].kernel_run("dgemm", params, real=False))
        one = sess.now - t0
        t0 = sess.now
        sess.parallel([ac.kernel_run("dgemm", params, real=False)
                       for ac in acs])
        both = sess.now - t0
        assert both < 1.5 * one

    def test_replies_matched_by_request_id(self, rig):
        # Two concurrent ops with different durations: each caller gets
        # its own answer even though replies share the (src, dst) pair.
        cluster, sess, acs = rig
        ac = acs[0]
        p_small = sess.call(ac.mem_alloc(64))
        p_big = sess.call(ac.mem_alloc(MiB))
        small = np.full(8, 3.0)
        results = sess.parallel([
            ac.memcpy_h2d(p_big, Phantom(MiB)),
            ac.memcpy_h2d(p_small, small),
        ])
        out = sess.call(ac.memcpy_d2h(p_small, 64))
        np.testing.assert_array_equal(out, small)

    def test_request_counter(self, rig):
        cluster, sess, acs = rig
        daemon = cluster.daemons[acs[0].handle.ac_id]
        before = daemon.stats.requests
        sess.call(acs[0].ping())
        sess.call(acs[0].ping())
        assert daemon.stats.requests == before + 2

    def test_two_frontends_one_accelerator_after_reassignment(self, rig):
        # Release from CN0, allocate from CN1: the daemon serves its new
        # exclusive owner with state intact (device memory was freed).
        cluster, sess, acs = rig
        client0 = cluster.arm_client(0)
        handles = [ac.handle for ac in acs]
        sess.call(client0.release(handles))
        client1 = cluster.arm_client(1)
        new = sess.call(client1.alloc(count=1))
        ac = cluster.remote(1, new[0])
        assert sess.call(ac.ping()) == "pong"


class TestD2HStaging:
    def test_naive_d2h_stages_and_unstages_symmetrically(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]
        ptr = sess.call(ac.mem_alloc(8 * MiB))
        daemon.stats.staging_peak = 0
        sess.call(ac.memcpy_d2h(ptr, 8 * MiB, transfer=NAIVE_TRANSFER))
        # The whole message was staged once and fully released.
        assert daemon.stats.staging_peak == 8 * MiB
        assert daemon.stats.staging_now == 0

    def test_pipelined_d2h_staging_bounded(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]
        ptr = sess.call(ac.mem_alloc(8 * MiB))
        daemon.stats.staging_peak = 0
        sess.call(ac.memcpy_d2h(ptr, 8 * MiB, transfer=pipeline(128 * KiB)))
        # Blocks are released as their sends complete: the window stays a
        # small multiple of the block size, not the message size.
        assert 0 < daemon.stats.staging_peak < 8 * MiB
        assert daemon.stats.staging_now == 0


class TestArmConcurrency:
    def test_interleaved_clients_never_double_assign(self):
        cluster = Cluster(paper_testbed(n_compute=4, n_accelerators=3))
        eng = cluster.engine
        assignments = []

        def client_job(cn, hold, cycles):
            client = cluster.arm_client(cn)
            for _ in range(cycles):
                handles = yield from client.alloc(count=1, wait=True)
                assignments.append((eng.now, cn, handles[0].ac_id, "get"))
                yield eng.timeout(hold)
                assignments.append((eng.now, cn, handles[0].ac_id, "put"))
                yield from client.release(handles)

        procs = [eng.process(client_job(cn, 0.01 * (cn + 1), 5))
                 for cn in range(4)]
        eng.run(until=eng.all_of(procs))
        # Replay the log: an accelerator may never be granted twice
        # without an intervening release.
        held: dict[int, int] = {}
        for t, cn, ac_id, what in sorted(assignments, key=lambda r: r[0]):
            if what == "get":
                assert ac_id not in held, f"double assignment of ac{ac_id}"
                held[ac_id] = cn
            else:
                assert held.pop(ac_id) == cn
        assert not held

    def test_waiters_eventually_served(self):
        cluster = Cluster(paper_testbed(n_compute=4, n_accelerators=1))
        eng = cluster.engine
        served = []

        def client_job(cn):
            client = cluster.arm_client(cn)
            handles = yield from client.alloc(count=1, wait=True)
            yield eng.timeout(0.005)
            yield from client.release(handles)
            served.append(cn)

        procs = [eng.process(client_job(cn)) for cn in range(4)]
        eng.run(until=eng.all_of(procs))
        assert sorted(served) == [0, 1, 2, 3]


class TestDedupCacheEviction:
    """The at-most-once cache is bounded FIFO; eviction trades safety for
    memory, so both sides of the boundary need pinning down."""

    def _exchange(self, cluster, ac, req_id, attempt, nbytes=64):
        rank = cluster.compute_rank(0)

        def body():
            req = Request(op=Op.MEM_ALLOC, req_id=req_id, reply_to=0,
                          params={"nbytes": nbytes}, attempt=attempt)
            rreq = rank.irecv(source=ac.handle.daemon_rank,
                              tag=reply_tag(req_id))
            rank.isend(ac.handle.daemon_rank, TAG_REQUEST, req)
            yield rreq.done
            return rreq.message.payload

        return body()

    def test_recent_duplicate_replays_old_duplicate_reexecutes(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]

        first_id = next_request_id()
        first = sess.call(self._exchange(cluster, ac, first_id, attempt=0))
        assert first.ok

        # Fill the cache with enough newer entries to push first_id out.
        last_id = None
        for _ in range(DEDUP_CACHE_SIZE):
            last_id = next_request_id()
            sess.call(self._exchange(cluster, ac, last_id, attempt=0))
        assert len(daemon._dedup) == DEDUP_CACHE_SIZE
        assert first_id not in daemon._dedup
        assert last_id in daemon._dedup

        # A duplicate of a *recent* request is replayed, not re-run.
        used = daemon.gpu.memory.used_bytes
        hits = daemon.stats.dedup_hits
        replay = sess.call(self._exchange(cluster, ac, last_id, attempt=1))
        assert replay.ok
        assert daemon.stats.dedup_hits == hits + 1
        assert daemon.gpu.memory.used_bytes == used

        # A duplicate of the *evicted* request falls off the at-most-once
        # guarantee: the daemon re-executes and hands out a fresh address.
        rerun = sess.call(self._exchange(cluster, ac, first_id, attempt=1))
        assert rerun.ok
        assert rerun.value != first.value
        assert daemon.stats.dedup_hits == hits + 1
        assert daemon.gpu.memory.used_bytes == used + 64

    def test_cache_never_exceeds_bound(self, rig):
        cluster, sess, acs = rig
        ac = acs[0]
        daemon = cluster.daemons[ac.handle.ac_id]
        for _ in range(DEDUP_CACHE_SIZE + 7):
            sess.call(self._exchange(cluster, ac, next_request_id(), attempt=0))
        assert len(daemon._dedup) == DEDUP_CACHE_SIZE
