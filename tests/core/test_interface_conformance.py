"""Backend conformance: one AcceleratorAPI, three interchangeable backends.

The same op program must produce identical results on the remote
middleware path, the node-attached local baseline, and the failover
wrapper; optional capabilities degrade through the typed UnsupportedOp;
the context-manager lifecycle and the legacy-signature deprecation shims
behave uniformly.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import LocalAccelerator
from repro.cluster import Cluster, paper_testbed
from repro.core import FailoverConfig
from repro.core.interface import API_METHODS, AcceleratorAPI, CapabilitySet
from repro.errors import MiddlewareError, UnsupportedOp

BACKENDS = ("remote", "local", "resilient")


@pytest.fixture
def rig():
    cluster = Cluster(paper_testbed(n_compute=1, n_accelerators=2,
                                    local_gpus=True))
    return cluster, cluster.session()


def make_backend(kind, cluster, sess):
    if kind == "local":
        node = cluster.compute_nodes[0]
        return LocalAccelerator(cluster.engine, node.local_gpu, node.cpu)
    handle = sess.call(cluster.arm_client(0).alloc(count=1, job=kind))[0]
    if kind == "remote":
        return cluster.remote(0, handle)
    return cluster.resilient(0, handle, config=FailoverConfig(job=kind))


@pytest.fixture(params=BACKENDS)
def backend(request, rig):
    cluster, sess = rig
    return make_backend(request.param, cluster, sess)


def run_op_program(sess, ac):
    """The shared conformance program: alloc, copy, kernel, copy, free."""
    data = np.arange(256, dtype=np.float64)
    ptr = sess.call(ac.mem_alloc(data.nbytes))
    sess.call(ac.memcpy_h2d(ptr, data))
    sess.call(ac.kernel_create("dscal"))
    ac.kernel_set_args("dscal", {"x": ptr, "n": 256, "alpha": 2.0})
    sess.call(ac.kernel_run("dscal"))
    out = sess.call(ac.memcpy_d2h(ptr, data.nbytes))
    pong = sess.call(ac.ping())
    sess.call(ac.mem_free(ptr))
    return out, pong


class TestStructuralConformance:
    def test_backend_satisfies_protocol(self, backend):
        assert isinstance(backend, AcceleratorAPI)

    def test_backend_has_every_api_method(self, backend):
        for name in API_METHODS:
            assert callable(getattr(backend, name)), name

    def test_api_methods_list_matches_protocol(self):
        declared = {n for n in vars(AcceleratorAPI)
                    if not n.startswith("_")} | {"__enter__", "__exit__"}
        assert set(API_METHODS) == declared, (
            "API_METHODS and AcceleratorAPI drifted apart")


class TestBehavioralConformance:
    def test_same_program_same_results(self, rig):
        cluster, sess = rig
        outs = {}
        for kind in BACKENDS:
            ac = make_backend(kind, cluster, sess)
            out, pong = run_op_program(sess, ac)
            assert pong is not None
            outs[kind] = out
        expected = np.arange(256, dtype=np.float64) * 2.0
        for kind, out in outs.items():
            np.testing.assert_array_equal(out, expected, err_msg=kind)

    def test_unknown_kernel_rejected_everywhere(self, rig, backend):
        _, sess = rig
        with pytest.raises(MiddlewareError, match="unknown kernel"):
            sess.call(backend.kernel_create("no-such-kernel"))


class TestOptionalCapabilities:
    @pytest.mark.parametrize("kind", ("local", "resilient"))
    def test_peer_put_raises_typed_unsupported(self, rig, kind):
        cluster, sess = rig
        ac = make_backend(kind, cluster, sess)
        with pytest.raises(UnsupportedOp) as exc_info:
            sess.call(ac.peer_put(0, 1024, None, 0))
        assert exc_info.value.op == "peer_put"
        assert exc_info.value.backend == type(ac).__name__

    def test_remote_supports_peer_put(self, rig):
        cluster, sess = rig
        a = make_backend("remote", cluster, sess)
        b = cluster.remote(0, sess.call(
            cluster.arm_client(0).alloc(count=1, job="peer"))[0])
        data = np.arange(128, dtype=np.float64)
        src = sess.call(a.mem_alloc(data.nbytes))
        dst = sess.call(b.mem_alloc(data.nbytes))
        sess.call(a.memcpy_h2d(src, data))
        sess.call(a.peer_put(src, data.nbytes, b, dst))
        out = sess.call(b.memcpy_d2h(dst, data.nbytes))
        np.testing.assert_array_equal(out, data)


class TestLifecycle:
    def test_with_releases_live_allocations(self, rig, backend):
        _, sess = rig
        with backend as ac:
            assert ac is backend
            ptr = sess.call(ac.mem_alloc(4096))
            assert ptr is not None
        # Exiting drove release(): a second program can reuse the backend
        # and the freed address is gone from its live-set.
        live = getattr(backend, "_live", None)
        if live is None:
            live = backend._vmap      # the resilient wrapper's ledger
        assert live == {}

    def test_with_body_exception_still_released_and_propagates(self, rig,
                                                               backend):
        _, sess = rig
        with pytest.raises(RuntimeError, match="body failed"):
            with backend as ac:
                sess.call(ac.mem_alloc(4096))
                raise RuntimeError("body failed")
        live = getattr(backend, "_live", None)
        if live is None:
            live = backend._vmap
        assert live == {}

    def test_double_close_is_harmless(self, rig, backend):
        _, sess = rig
        sess.call(backend.mem_alloc(1024))
        backend.close()
        backend.close()

    def test_stream_with_flushes_on_exit(self, rig, backend):
        with backend.stream() as s:
            fut = s.mem_alloc(1024)
            s.kernel_create("dscal")
        assert fut.ok                     # exit drove synchronize()
        assert not s._queue

    def test_stream_with_body_exception_not_masked(self, rig, backend):
        with pytest.raises(RuntimeError, match="body failed"):
            with backend.stream() as s:
                s.kernel_create("no-such-kernel")   # will fail the stream
                raise RuntimeError("body failed")


class TestDeprecationShims:
    def test_legacy_positional_pinned_warns_and_works(self, rig):
        cluster, sess = rig
        local = make_backend("local", cluster, sess)
        data = np.arange(64, dtype=np.float64)
        ptr = sess.call(local.mem_alloc(data.nbytes))
        with pytest.warns(DeprecationWarning, match="pinned"):
            sess.call(local.memcpy_h2d(ptr, data, False))
        with pytest.warns(DeprecationWarning, match="pinned"):
            out = sess.call(local.memcpy_d2h(ptr, data.nbytes, False))
        np.testing.assert_array_equal(out, data)

    def test_keyword_pinned_does_not_warn(self, rig, recwarn):
        cluster, sess = rig
        local = make_backend("local", cluster, sess)
        data = np.arange(64, dtype=np.float64)
        ptr = sess.call(local.mem_alloc(data.nbytes))
        sess.call(local.memcpy_h2d(ptr, data, pinned=False))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestCapabilityNegotiation:
    """capabilities() is the query; UnsupportedOp is the enforcement.
    The two must always agree."""

    def test_every_backend_reports_capabilities(self, backend):
        caps = backend.capabilities()
        assert isinstance(caps, CapabilitySet)
        for field in ("peer_put", "streams", "zero_copy", "fabric"):
            assert isinstance(getattr(caps, field), bool)

    def test_capability_set_is_frozen(self, backend):
        caps = backend.capabilities()
        with pytest.raises(dataclasses.FrozenInstanceError):
            caps.peer_put = True

    def test_capabilities_agree_with_unsupported(self, rig, backend):
        """peer_put=False means a peer-less direct call raises the typed
        error; peer_put=True means the op is natively available."""
        _, sess = rig
        caps = backend.capabilities()
        if caps.peer_put:
            assert type(backend).__name__ == "RemoteAccelerator"
        else:
            with pytest.raises(UnsupportedOp):
                sess.call(backend.peer_put(0, 1024, None, 0))

    def test_remote_advertises_the_fabric(self, rig):
        cluster, sess = rig
        caps = make_backend("remote", cluster, sess).capabilities()
        assert caps.peer_put and caps.streams and caps.fabric

    def test_wrapper_masks_delegate_capabilities(self, rig):
        # The failover wrapper replays ops from host shadows; the native
        # fabric path would bypass that, so the wrapper must not
        # advertise it even though its delegate does.
        cluster, sess = rig
        resilient = make_backend("resilient", cluster, sess)
        assert resilient._ac.capabilities().peer_put
        assert not resilient.capabilities().peer_put

    def test_local_peer_put_stages_instead_of_raising(self, rig):
        # A capable peer gets the degraded two-hop path; only a peer
        # without memcpy_h2d is a typed UnsupportedOp.
        cluster, sess = rig
        local = make_backend("local", cluster, sess)
        data = np.arange(96, dtype=np.float64)
        src = sess.call(local.mem_alloc(data.nbytes))
        dst = sess.call(local.mem_alloc(data.nbytes))
        sess.call(local.memcpy_h2d(src, data))
        sess.call(local.peer_put(src, data.nbytes, local, dst))
        out = sess.call(local.memcpy_d2h(dst, data.nbytes))
        np.testing.assert_array_equal(out, data)

    def test_resilient_fallback_reaches_a_remote_peer(self, rig):
        cluster, sess = rig
        a = make_backend("resilient", cluster, sess)
        b = cluster.remote(0, sess.call(
            cluster.arm_client(0).alloc(count=1, job="peer-b"))[0])
        data = np.arange(128, dtype=np.float64)
        src = sess.call(a.mem_alloc(data.nbytes))
        dst = sess.call(b.mem_alloc(data.nbytes))
        sess.call(a.memcpy_h2d(src, data))
        sess.call(a.peer_put(src, data.nbytes, b, dst))
        out = sess.call(b.memcpy_d2h(dst, data.nbytes))
        np.testing.assert_array_equal(out, data)


class TestPeerPutSignatureShim:
    def _pair(self, cluster, sess):
        a = make_backend("remote", cluster, sess)
        b = cluster.remote(0, sess.call(
            cluster.arm_client(0).alloc(count=1, job="shim-peer"))[0])
        data = np.arange(64, dtype=np.float64)
        src = sess.call(a.mem_alloc(data.nbytes))
        dst = sess.call(b.mem_alloc(data.nbytes))
        sess.call(a.memcpy_h2d(src, data))
        return a, b, src, dst, data

    def test_legacy_positional_transfer_warns_and_works(self, rig):
        cluster, sess = rig
        a, b, src, dst, data = self._pair(cluster, sess)
        with pytest.warns(DeprecationWarning, match="transfer"):
            sess.call(a.peer_put(src, data.nbytes, b, dst, None))
        out = sess.call(b.memcpy_d2h(dst, data.nbytes))
        np.testing.assert_array_equal(out, data)

    def test_keyword_transfer_does_not_warn(self, rig, recwarn):
        cluster, sess = rig
        a, b, src, dst, data = self._pair(cluster, sess)
        sess.call(a.peer_put(src, data.nbytes, b, dst, transfer=None))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_too_many_positionals_is_a_type_error(self, rig):
        cluster, sess = rig
        a, b, src, dst, data = self._pair(cluster, sess)
        with pytest.raises(TypeError, match="4 positional"):
            sess.call(a.peer_put(src, data.nbytes, b, dst, None, True))

    def test_positional_and_keyword_transfer_conflict(self, rig):
        cluster, sess = rig
        a, b, src, dst, data = self._pair(cluster, sess)
        from repro.core import DEFAULT_TRANSFER
        with pytest.warns(DeprecationWarning, match="transfer"):
            with pytest.raises(TypeError, match="both"):
                sess.call(a.peer_put(src, data.nbytes, b, dst,
                                     DEFAULT_TRANSFER,
                                     transfer=DEFAULT_TRANSFER))
